//! Shared helpers for the cross-crate integration test suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sfetch_cfg::gen::{GenParams, ProgramGenerator};
use sfetch_core::{simulate, ProcessorConfig, SimStats};
use sfetch_fetch::EngineKind;
use sfetch_workloads::{suite, LayoutChoice, Workload};

/// Builds one small-but-nontrivial workload for integration tests.
pub fn test_workload(seed: u64) -> Workload {
    let mut p = GenParams::default_int();
    p.n_funcs = 50;
    p.blocks_per_func = (12, 50);
    let cfg = ProgramGenerator::new(p, seed).generate();
    Workload::from_cfg("itest", cfg, seed * 3 + 1, seed * 5 + 2)
}

/// Builds a named member of the benchmark suite.
pub fn suite_workload(name: &str) -> Workload {
    suite::build(suite::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}")))
}

/// Simulates a workload on one engine with a standard test budget
/// (warmup = a quarter of the measured window).
pub fn sim(
    w: &Workload,
    kind: EngineKind,
    layout: LayoutChoice,
    width: usize,
    insts: u64,
) -> SimStats {
    simulate(
        w.cfg(),
        w.image(layout),
        kind,
        ProcessorConfig::table2(width),
        w.ref_seed(),
        insts / 4,
        insts,
    )
}
