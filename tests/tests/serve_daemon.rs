//! Integration tests for the resident `sfetch-serve` daemon: request
//! dedup over the shared cell ledger, incremental result streaming,
//! and byte-identity of the streamed merge with the one-shot path.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sfetch_bench::driver::{submit_and_collect, GridRequest, StreamOutcome};
use sfetch_bench::grid::{merge_grid, verify_merged};
use sfetch_bench::{workload_by_name, HarnessOpts};
use sfetch_fetch::EngineKind;
use sfetch_sample::SampleConfig;
use sfetch_serve::{Daemon, DaemonConfig};

/// Tiny schedule: 3 windows of 50k-instruction units — large enough to
/// exercise warming + measurement, small enough for debug builds.
fn quick_schedule() -> SampleConfig {
    SampleConfig {
        interval: 50_000,
        warm_func: 8_000,
        warm_mem: 8_000,
        warm_detail: 1_000,
        measure: 3_000,
        ..Default::default()
    }
}

const TOTAL: u64 = 150_000;
const BENCH: &str = "gzip";

fn request(engines: &[EngineKind]) -> GridRequest {
    let scfg = quick_schedule();
    GridRequest {
        bench: BENCH.to_owned(),
        engines: engines.to_vec(),
        widths: vec![8],
        total: TOTAL,
        scfg,
        opts: HarnessOpts {
            grid_total: TOTAL,
            grid_sample: scfg,
            jobs: 1,
            // Exercise the resident grouped path: compatible cells lease
            // in pairs and share one batched sweep per worker thread.
            batch: 2,
            warm_bank: true,
            ..HarnessOpts::default()
        },
    }
}

struct TestDaemon {
    socket: PathBuf,
    store: PathBuf,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TestDaemon {
    fn start(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("sfetch-serve-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create test root");
        let socket = root.join("d.sock");
        let store = root.join("store");
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let (socket, store, stop) = (socket.clone(), store.clone(), Arc::clone(&stop));
            std::thread::spawn(move || {
                let daemon = Daemon::new(DaemonConfig {
                    socket,
                    store_dir: store,
                    procs: 2,
                    max_retries: 1,
                    store_cap_bytes: None,
                });
                daemon.run(&stop).expect("daemon run");
            })
        };
        let d = TestDaemon { socket, store, stop, thread: Some(thread) };
        d.await_ready();
        d
    }

    /// Polls until the daemon answers the socket (it binds before it
    /// serves, so one successful connect is enough).
    fn await_ready(&self) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            if std::os::unix::net::UnixStream::connect(&self.socket).is_ok() {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("daemon never became ready at {}", self.socket.display());
    }

    fn submit(&self, id: &str, req: &GridRequest) -> StreamOutcome {
        submit_and_collect(&self.socket, id, req, |_| {}).expect("submit")
    }
}

impl Drop for TestDaemon {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        if let Some(root) = self.store.parent() {
            let _ = std::fs::remove_dir_all(root);
        }
    }
}

#[test]
fn overlapping_requests_share_work_and_merge_byte_identically() {
    let d = TestDaemon::start("overlap");

    // Two concurrent requests overlapping on the ev8 cell: 3 distinct
    // cells total, 4 subscriptions.
    let req_a = request(&[EngineKind::Stream, EngineKind::Ev8]);
    let req_b = request(&[EngineKind::Ev8, EngineKind::Ftb]);
    let (out_a, out_b) = std::thread::scope(|s| {
        let ta = s.spawn(|| d.submit("req-a", &req_a));
        let tb = s.spawn(|| d.submit("req-b", &req_b));
        (ta.join().expect("client a"), tb.join().expect("client b"))
    });

    assert_eq!(out_a.status, "complete");
    assert_eq!(out_b.status, "complete");
    let windows = req_a.windows();
    assert_eq!(out_a.points.len() as u64, 2 * windows, "one point per window per cell");
    assert_eq!(out_b.points.len() as u64, 2 * windows);

    // Singleflight: the 3 distinct cells were computed exactly once
    // between the two requests, and the 4th subscription was satisfied
    // by sharing (same batch) or ledger resume (later batch) — never by
    // recomputation.
    assert_eq!(
        out_a.computed + out_b.computed,
        3,
        "overlap must be computed once (a: {:?}, b: {:?})",
        (out_a.computed, out_a.resumed, out_a.shared),
        (out_b.computed, out_b.resumed, out_b.shared),
    );
    assert_eq!(out_a.shared + out_a.resumed + out_b.shared + out_b.resumed, 1);

    // Byte-identity: the streamed merge must be bit-identical to a
    // storeless in-process oracle (verify_merged panics on divergence),
    // i.e. exactly what the one-shot binaries print.
    let w = workload_by_name(BENCH);
    let scfg = quick_schedule();
    for (req, out) in [(&req_a, &out_a), (&req_b, &out_b)] {
        let runs =
            merge_grid(&req.grid(), windows, &out.points, scfg.confidence).expect("merge");
        verify_merged(&w, &runs, scfg, &req.opts, windows);
    }

    // Resubmission under a fresh id: every cell resumes from the
    // ledger with zero recomputation.
    let rerun = d.submit("req-a2", &req_a);
    assert_eq!(rerun.status, "complete");
    assert_eq!(rerun.computed, 0, "resubmit must not recompute");
    assert_eq!(rerun.shared, 0);
    assert_eq!(rerun.resumed, 2);
    let runs_rerun =
        merge_grid(&req_a.grid(), windows, &rerun.points, scfg.confidence).expect("merge rerun");
    let runs_first =
        merge_grid(&req_a.grid(), windows, &out_a.points, scfg.confidence).expect("merge first");
    assert_eq!(
        format!("{runs_first:?}"),
        format!("{runs_rerun:?}"),
        "resumed stream must reproduce the original merge exactly"
    );
}

#[test]
fn second_daemon_refuses_live_socket_and_first_keeps_serving() {
    use std::io::{BufRead, BufReader, Write};
    let d = TestDaemon::start("takeover");

    // A second daemon pointed at the live socket must refuse to start
    // (the incumbent answers ping) rather than unlink it.
    let stop = AtomicBool::new(false);
    let second = Daemon::new(DaemonConfig {
        socket: d.socket.clone(),
        store_dir: d.store.parent().expect("test root").join("store2"),
        procs: 1,
        max_retries: 0,
        store_cap_bytes: None,
    });
    let err = second.run(&stop).expect_err("second daemon must refuse a live socket");
    assert!(err.contains("refusing"), "got: {err}");
    assert!(err.contains("answered ping"), "got: {err}");

    // The incumbent must still be serving on the untouched socket.
    let s = std::os::unix::net::UnixStream::connect(&d.socket)
        .expect("first daemon lost its socket");
    let mut w = s.try_clone().expect("clone");
    w.write_all(b"{\"op\":\"ping\"}\n").expect("send");
    let mut line = String::new();
    BufReader::new(s).read_line(&mut line).expect("read");
    assert!(line.contains("\"ev\":\"pong\""), "got: {line}");
}

#[test]
fn stale_socket_is_reclaimed() {
    let root =
        std::env::temp_dir().join(format!("sfetch-serve-test-stale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create test root");
    let socket = root.join("d.sock");

    // Bind and drop: the socket file survives with nothing listening
    // behind it — exactly what a SIGKILLed daemon leaves.
    drop(std::os::unix::net::UnixListener::bind(&socket).expect("stale bind"));
    assert!(socket.exists(), "stale socket file must persist after drop");

    let stop = Arc::new(AtomicBool::new(false));
    let thread = {
        let (socket, root, stop) = (socket.clone(), root.clone(), Arc::clone(&stop));
        std::thread::spawn(move || {
            Daemon::new(DaemonConfig {
                socket,
                store_dir: root.join("store"),
                procs: 1,
                max_retries: 0,
                store_cap_bytes: None,
            })
            .run(&stop)
        })
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut ready = false;
    while Instant::now() < deadline {
        if std::os::unix::net::UnixStream::connect(&socket).is_ok() {
            ready = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    stop.store(true, Ordering::SeqCst);
    let res = thread.join().expect("daemon thread");
    assert!(res.is_ok(), "daemon must reclaim a provably stale socket, got: {res:?}");
    assert!(ready, "daemon never served on the reclaimed socket");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn daemon_rejects_duplicate_and_malformed_requests() {
    use std::io::{BufRead, BufReader, Write};
    let d = TestDaemon::start("reject");

    // Malformed submit: readable error event, no crash.
    let s = std::os::unix::net::UnixStream::connect(&d.socket).expect("connect");
    let mut w = s.try_clone().expect("clone");
    w.write_all(b"{\"op\":\"submit\",\"id\":\"x\",\"bench\":\"gzip\"}\n").expect("send");
    let mut line = String::new();
    BufReader::new(s).read_line(&mut line).expect("read");
    assert!(line.contains("\"ev\":\"error\""), "got: {line}");

    // Ping answers pong.
    let s = std::os::unix::net::UnixStream::connect(&d.socket).expect("connect");
    let mut w = s.try_clone().expect("clone");
    w.write_all(b"{\"op\":\"ping\"}\n").expect("send");
    let mut line = String::new();
    BufReader::new(s).read_line(&mut line).expect("read");
    assert!(line.contains("\"ev\":\"pong\""), "got: {line}");

    // A duplicate id is refused while the first stream exists.
    let req = request(&[EngineKind::Stream]);
    let first = d.submit("dup", &req);
    assert_eq!(first.status, "complete");
    let err = submit_and_collect(&d.socket, "dup", &req, |_| {});
    assert!(
        err.as_ref().is_err_and(|e| e.contains("duplicate request id")),
        "got: {err:?}"
    );
}
