//! Cross-crate correctness of the sampled-simulation subsystem
//! (`sfetch-sample`): the sampling-disabled path locksteps with the
//! canonical sim loop, checkpointed shards merge bit-identically, and
//! the sampled estimate brackets the truth on deterministic workloads.

use proptest::prelude::*;

use sfetch_cfg::gen::{GenParams, ProgramGenerator};
use sfetch_cfg::{layout, CfgBuilder, CodeImage, CondBehavior, TripCount};
use sfetch_core::{simulate, Processor, ProcessorConfig};
use sfetch_fetch::{EngineKind, StreamEngine};
use sfetch_sample::{
    estimate, merge_points, run_full_detailed, run_sampled, window_range, SampleConfig,
    SamplePoint, Sampler, ShardSpec,
};
use sfetch_trace::ArchCheckpoint;
use sfetch_workloads::phased::{self, PhasedParams};

fn small_image(seed: u64) -> CodeImage {
    let cfg = ProgramGenerator::new(GenParams::small(), seed).generate();
    let lay = layout::natural(&cfg);
    CodeImage::build(&cfg, &lay)
}

fn quick_schedule() -> SampleConfig {
    SampleConfig {
        interval: 50_000,
        warm_func: 10_000,
        warm_mem: 10_000,
        warm_detail: 2_000,
        measure: 5_000,
        ..Default::default()
    }
}

/// Sampling disabled must be **today's sim loop**: `run_full_detailed`
/// and `sfetch_core::simulate` construct the identical processor, so
/// every statistic — cycle counts included — locksteps exactly.
#[test]
fn disabled_sampling_locksteps_with_simulate() {
    let cfg = ProgramGenerator::new(GenParams::small(), 33).generate();
    let lay = layout::natural(&cfg);
    let img = CodeImage::build(&cfg, &lay);
    for kind in EngineKind::ALL {
        let pcfg = ProcessorConfig::table2(4);
        let via_sample = run_full_detailed(&img, kind, pcfg, 9, 3_000, 20_000);
        let via_simulate = simulate(&cfg, &img, kind, pcfg, 9, 3_000, 20_000);
        assert_eq!(via_sample, via_simulate, "{kind}: sampling-disabled path diverged");
    }
}

/// A run split into shards through **serialized** architectural
/// checkpoints merges bit-identically to the single-process run — the
/// property the multi-process `shard_runner` (and its CI smoke leg)
/// relies on. The checkpoint round-trips through bytes here, covering
/// the exact hand-off the child processes perform.
#[test]
fn serialized_shard_split_merges_bit_identically() {
    let img = small_image(44);
    let scfg = quick_schedule();
    let pcfg = ProcessorConfig::table2(4);
    let total = 10 * scfg.interval;
    let windows = scfg.windows(total);

    let single = run_sampled(&img, EngineKind::Stream, pcfg, 5, total, &scfg);

    let mut sharded: Vec<SamplePoint> = Vec::new();
    for index in 0..3u64 {
        let spec = ShardSpec { index, count: 3 };
        let range = window_range(windows, spec);
        // The parent-side walk to this shard's boundary checkpoint.
        let mut walker = Sampler::new(&img, EngineKind::Stream, pcfg, scfg, 5);
        walker.skip(range.start);
        let bytes = walker.checkpoint().to_bytes();
        // The child side: restore from bytes, run the range.
        let cp = ArchCheckpoint::from_bytes(&bytes).expect("checkpoint round-trip");
        let mut child = Sampler::resume(&img, EngineKind::Stream, pcfg, scfg, &cp);
        assert_eq!(child.window(), range.start);
        sharded.extend(child.run(range.end - range.start));
    }
    let merged = merge_points(sharded).expect("complete set of windows");
    assert_eq!(single.points, merged, "sharded windows must equal the single-process run");
    assert_eq!(
        single.estimate,
        estimate(&merged, scfg.confidence),
        "aggregates must match too"
    );
}

/// The stream engine's decoded-line cache is a host-side optimization:
/// simulated statistics are bit-identical with it on or off, across
/// enough instructions to exercise squash/recovery re-fetches.
#[test]
fn decode_cache_is_bit_identical() {
    let cfg = ProgramGenerator::new(GenParams::small(), 77).generate();
    let lay = layout::natural(&cfg);
    let img = CodeImage::build(&cfg, &lay);
    let run = |cached: bool| {
        let eng = StreamEngine::table2(8, img.entry());
        let eng = if cached { eng.with_decode_cache() } else { eng.without_decode_cache() };
        let mut p =
            Processor::new(ProcessorConfig::table2(8), Box::new(eng), &cfg, &img, 13);
        p.run(60_000);
        (p.stats(), p.engine().decode_counters())
    };
    let (with_cache, (hits, misses)) = run(true);
    let (without, zeros) = run(false);
    assert_eq!(with_cache, without, "decode cache changed simulated results");
    assert!(hits > 0, "cache saw traffic");
    assert!(hits > misses, "hot loops must mostly hit");
    assert_eq!(zeros, (0, 0), "disabled cache reports no counters");
}

/// A strictly deterministic, periodic program: every branch is a fixed
/// loop or a fixed pattern, so the executor's RNG never perturbs the
/// path and every steady-state window behaves identically.
fn periodic_program(body_blocks: u64, pattern_period: usize) -> CodeImage {
    let mut b = CfgBuilder::new();
    let f = b.add_func("main");
    let head = b.add_block(f, 4);
    let mut cur = head;
    for i in 0..body_blocks {
        let next = b.add_block(f, 6 + (i as usize % 5));
        let arm = b.add_block(f, 3);
        let pat: Vec<bool> = (0..pattern_period.max(2)).map(|k| k % 3 == 0).collect();
        b.set_cond(cur, arm, next, CondBehavior::Pattern(pat));
        b.set_fallthrough(arm, next);
        cur = next;
    }
    let inner = b.add_block(f, 5);
    b.set_fallthrough(cur, inner);
    let latch = b.add_block(f, 1);
    b.set_cond(inner, inner, latch, CondBehavior::Loop { trip: TripCount::Fixed(7) });
    let exit = b.add_block(f, 1);
    b.set_cond(latch, head, exit, CondBehavior::Loop { trip: TripCount::Fixed(1 << 30) });
    b.set_return(exit);
    let cfg = b.finish().expect("valid periodic program");
    let lay = layout::natural(&cfg);
    CodeImage::build(&cfg, &lay)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// On deterministic (periodic) workloads the sampled IPC estimate
    /// must land within its own reported confidence interval of the full
    /// detailed run's IPC (with an epsilon for the interval degenerating
    /// to a point when every window is identical).
    #[test]
    fn sampled_estimate_brackets_full_run_on_deterministic_workloads(
        body_blocks in 3u64..12,
        pattern_period in 2usize..7,
        seed in 0u64..50,
    ) {
        let img = periodic_program(body_blocks, pattern_period);
        let scfg = quick_schedule();
        let pcfg = ProcessorConfig::table2(4);
        let total = 8 * scfg.interval;
        let full = run_full_detailed(&img, EngineKind::Stream, pcfg, seed, 50_000, total);
        let run = run_sampled(&img, EngineKind::Stream, pcfg, seed, total, &scfg);
        prop_assert_eq!(run.points.len(), 8);
        let est = run.estimate;
        let eps = 0.02 * full.ipc();
        prop_assert!(
            est.ipc_lo - eps <= full.ipc() && full.ipc() <= est.ipc_hi + eps,
            "full IPC {:.4} outside sampled CI [{:.4}, {:.4}] (±{:.2}%)",
            full.ipc(), est.ipc_lo, est.ipc_hi, 100.0 * est.rel_half_width
        );
    }
}

/// The phased generator's small configuration runs end-to-end through
/// the sampler with a sane estimate (the long configuration is exercised
/// by `perfstats`' sampling A/B).
#[test]
fn phased_small_samples_sanely() {
    let cfg = phased::generate(&PhasedParams::small(), 3);
    let lay = layout::natural(&cfg);
    let img = CodeImage::build(&cfg, &lay);
    let scfg = SampleConfig {
        interval: 100_000,
        warm_func: 40_000,
        warm_mem: 40_000,
        warm_detail: 5_000,
        measure: 10_000,
        ..Default::default()
    };
    let run = run_sampled(&img, EngineKind::Stream, ProcessorConfig::table2(8), 7, 600_000, &scfg);
    assert_eq!(run.points.len(), 6);
    assert!(run.estimate.ipc > 0.5 && run.estimate.ipc <= 8.0);
    for p in &run.points {
        assert!(p.stall_cycles < p.cycles, "stall capture is bounded by cycles");
    }
}
