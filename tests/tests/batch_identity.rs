//! Differential oracle for **batched multi-window execution**: for any
//! cell mix (engine × width × front pipeline), any window schedule, any
//! batch size and any banking state, [`BatchSampler`] must produce
//! per-window results **bit-identical** to running every cell through
//! the per-window [`StoredSampler`] — the full `SimStats`, not just the
//! IPC. The squash-heavy phased workload additionally pins the case
//! where measured windows straddle the in-flight batch boundary.

use proptest::prelude::*;

use sfetch_bench::workload_by_name;
use sfetch_cfg::gen::{GenParams, ProgramGenerator};
use sfetch_cfg::{layout, CodeImage};
use sfetch_core::{ProcessorConfig, SimStats};
use sfetch_fetch::{EngineKind, FrontPipeline};
use sfetch_sample::{
    BatchCell, BatchSampler, CheckpointStore, SamplePoint, SampleConfig, StoredSampler,
};
use sfetch_workloads::LayoutChoice;

fn tmp_store(tag: &str) -> CheckpointStore {
    let dir =
        std::env::temp_dir().join(format!("sfetch-batch-ident-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    CheckpointStore::open(dir).expect("open store")
}

/// The per-window oracle: each cell independently through `StoredSampler`.
#[allow(clippy::too_many_arguments)]
fn serial_oracle(
    img: &CodeImage,
    fingerprint: u64,
    seed: u64,
    scfg: SampleConfig,
    store: &CheckpointStore,
    cells: &[BatchCell],
    range: std::ops::Range<u64>,
    warm_bank: bool,
) -> Vec<Vec<(SamplePoint, SimStats)>> {
    cells
        .iter()
        .map(|c| {
            StoredSampler::new(img, fingerprint, seed, scfg, store)
                .with_warm_bank(warm_bank)
                .run_range_stats(c.kind, c.pcfg, range.clone(), 1)
        })
        .collect()
}

fn cell(kind: EngineKind, width: usize, engine_front: bool) -> BatchCell {
    let mut pcfg = ProcessorConfig::table2(width);
    pcfg.front =
        if engine_front { FrontPipeline::for_engine(kind) } else { FrontPipeline::legacy() };
    BatchCell { kind, pcfg }
}

/// Phased pin: its program phases force squash-heavy windows, and the
/// window range is run at `jobs = 2` so measured windows straddle the
/// in-flight batch boundary (windows 0–1 sweep concurrently, window 2
/// lands in the next chunk).
#[test]
fn phased_squash_heavy_windows_straddle_batch_boundaries() {
    let w = workload_by_name("phased");
    let img = w.image(LayoutChoice::Optimized);
    let fp = w.fingerprint(LayoutChoice::Optimized);
    let scfg = SampleConfig {
        interval: 40_000,
        warm_func: 6_000,
        warm_mem: 6_000,
        warm_detail: 1_000,
        measure: 2_000,
        ..Default::default()
    };
    let cells: Vec<BatchCell> =
        EngineKind::ALL.iter().map(|&k| cell(k, 8, true)).collect();
    let store = tmp_store("phased");
    let got = BatchSampler::new(img, fp, w.ref_seed(), scfg, &store).run_range(&cells, 0..3, 2);
    let want = serial_oracle(img, fp, w.ref_seed(), scfg, &store, &cells, 0..3, false);
    assert_eq!(got, want, "phased batched windows must match the per-window oracle bit-for-bit");
    let mispredictions: u64 = got.iter().flatten().map(|(_, s)| s.mispredictions).sum();
    assert!(mispredictions > 0, "phased windows must actually exercise squash recovery");
    let _ = std::fs::remove_dir_all(store.root());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random (front pipeline, engine, width, batch size, window
    /// schedule, banking) → full per-window `SimStats` equality with the
    /// per-window path.
    #[test]
    fn batched_execution_is_bit_identical_to_per_window(
        gen_seed in 0u64..200,
        exec_seed in 1u64..50,
        warm_func in 800u64..2_500,
        mem_tenths in 1u64..=10,
        warm_detail in 100u64..400,
        measure in 200u64..700,
        slack in 0u64..1_500,
        jobs in 1usize..4,
        lo in 0u64..3,
        span in 1u64..4,
        mix in proptest::collection::vec((0usize..4, any::<bool>(), 0usize..3), 1..4),
        warm_bank in any::<bool>(),
    ) {
        let scfg = SampleConfig {
            interval: warm_func + warm_detail + measure + slack,
            warm_func,
            warm_mem: (warm_func * mem_tenths / 10).max(1),
            warm_detail,
            measure,
            ..Default::default()
        };
        let cfg = ProgramGenerator::new(GenParams::small(), gen_seed).generate();
        let img = CodeImage::build(&cfg, &layout::natural(&cfg));
        let cells: Vec<BatchCell> = mix
            .iter()
            .map(|&(k, engine_front, wi)| cell(EngineKind::ALL[k], [2, 4, 8][wi], engine_front))
            .collect();
        let store = tmp_store(&format!("prop-{gen_seed}-{exec_seed}"));
        let range = lo..lo + span;

        let mut b = BatchSampler::new(&img, gen_seed, exec_seed, scfg, &store)
            .with_warm_bank(warm_bank);
        let got = b.run_range(&cells, range.clone(), jobs);
        let want = serial_oracle(
            &img, gen_seed, exec_seed, scfg, &store, &cells, range.clone(), warm_bank,
        );
        prop_assert_eq!(&got, &want, "batched output diverged from the per-window oracle");

        // A banked rerun (restoring warm state the first pass saved)
        // must also reproduce the same bytes.
        if warm_bank {
            let mut b2 = BatchSampler::new(&img, gen_seed, exec_seed, scfg, &store)
                .with_warm_bank(true);
            let again = b2.run_range(&cells, range, jobs);
            prop_assert_eq!(&again, &want, "bank-restored rerun diverged");
            prop_assert!(b2.warm_bank_stats().hits > 0, "rerun never hit the warm bank");
        }
        let _ = std::fs::remove_dir_all(store.root());
    }
}
