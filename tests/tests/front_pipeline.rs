//! The per-engine front-pipeline model's contracts:
//!
//! * **`FrontPipeline::legacy()` lockstep** — engines built through the
//!   front-aware constructor with the neutral model match the pre-front
//!   construction path cycle-for-cycle, on generated programs and on
//!   the full seed-suite subset (complete [`SimStats`] equality): the
//!   threading refactor is exactly neutral at its neutral setting.
//! * **Stall accounting** — under *random* front models, the fetch-hold
//!   decomposition sums exactly (`hold_decode_cycles +
//!   hold_redirect_cycles == fetch_hold_cycles`), redirect penalties
//!   are charged once per execute-time squash and never under a zero
//!   penalty, and the event-driven back-end stays bit-identical to the
//!   legacy scan oracle (proptests).
//! * **The models differentiate** — each engine's own front model moves
//!   its cycle count off the legacy shared front (EV8's deeper,
//!   penalized front strictly costs cycles), and the shadow-decode
//!   engines actually install shadow branches.

use proptest::prelude::*;

use sfetch_cfg::gen::{GenParams, ProgramGenerator};
use sfetch_cfg::{layout, CodeImage};
use sfetch_core::{FrontPipeline, Processor, ProcessorConfig, SimStats};
use sfetch_fetch::EngineKind;
use sfetch_workloads::{LayoutChoice, Suite};

/// Runs `insts` committed instructions (no warmup/reset) with an
/// explicit front model and back-end selection.
fn run_with_front(
    cfg: &sfetch_cfg::Cfg,
    image: &CodeImage,
    kind: EngineKind,
    front: FrontPipeline,
    legacy_scan: bool,
    seed: u64,
    insts: u64,
) -> SimStats {
    let mut pc = ProcessorConfig::table2(4);
    pc.front = front;
    pc.legacy_scan = legacy_scan;
    let engine = kind.build_for(4, image.entry(), &pc.prefetch, &front);
    let mut p = Processor::new(pc, engine, cfg, image, seed);
    p.run(insts);
    p.stats()
}

/// The neutral front model must reproduce the pre-front construction
/// path (`build_with_prefetch`, no `with_front`) cycle-for-cycle.
#[test]
fn legacy_front_locksteps_the_pre_front_construction() {
    let cfg = ProgramGenerator::new(GenParams::small(), 42).generate();
    let image = CodeImage::build(&cfg, &layout::natural(&cfg));
    for kind in EngineKind::ALL {
        let pc = ProcessorConfig::table2(4);
        assert!(pc.front.is_legacy(), "table2 must default to the neutral front");
        let pre = kind.build_with_prefetch(4, image.entry(), &pc.prefetch);
        let via_front = kind.build_for(4, image.entry(), &pc.prefetch, &FrontPipeline::legacy());
        let mut pa = Processor::new(pc, pre, &cfg, &image, 7);
        let mut pb = Processor::new(pc, via_front, &cfg, &image, 7);
        for t in 0..30_000u64 {
            pa.cycle();
            pb.cycle();
            if t % 512 == 0 {
                assert_eq!(pa.stats(), pb.stats(), "{kind}: diverged by cycle {t}");
            }
        }
        assert_eq!(pa.stats(), pb.stats(), "{kind}: diverged");
        assert!(pa.stats().committed > 0, "{kind}: no progress");
        let s = pa.stats();
        assert_eq!(s.hold_redirect_cycles, 0, "{kind}: legacy front charged redirect holds");
        assert_eq!(s.redirect_penalties, 0, "{kind}: legacy front charged penalties");
        assert_eq!(s.engine.shadow_installs, 0, "{kind}: legacy front ran shadow decode");
        assert_eq!(
            s.fetch_hold_cycles, s.hold_decode_cycles,
            "{kind}: under the legacy front every hold is a decode-redirect bubble"
        );
    }
}

/// Full-[`SimStats`] equality on the seed-suite subset: the same
/// engines × benchmarks window the golden harness pins, measured once
/// through the pre-front path and once through the front-aware path.
#[test]
fn legacy_front_matches_pre_front_stats_on_the_seed_suite() {
    const BENCHES: [&str; 4] = ["gzip", "gcc", "crafty", "twolf"];
    const WARMUP: u64 = 10_000;
    const INSTS: u64 = 50_000;
    let suite = Suite::build_subset(&BENCHES, sfetch_workloads::default_jobs());
    for name in BENCHES {
        let w = suite.get(name).expect("subset member");
        let image = w.image(LayoutChoice::Optimized);
        for kind in EngineKind::ALL {
            let pc = ProcessorConfig::table2(8);
            let run = |engine: Box<dyn sfetch_fetch::FetchEngine>| {
                let mut p = Processor::new(pc, engine, w.cfg(), image, w.ref_seed());
                p.run(WARMUP);
                p.reset_stats();
                p.run(INSTS);
                p.stats()
            };
            let pre = run(kind.build_with_prefetch(8, image.entry(), &pc.prefetch));
            let via =
                run(kind.build_for(8, image.entry(), &pc.prefetch, &FrontPipeline::legacy()));
            assert_eq!(pre, via, "{name}/{kind}: front threading is not neutral");
        }
    }
}

/// The per-engine models must actually differentiate: every engine's
/// cycle count moves off the legacy shared front — in the direction its
/// own depth implies — and the shadow-decode engines install shadow
/// branches.
#[test]
fn per_engine_fronts_differentiate_and_shadow_decode_installs() {
    let cfg = ProgramGenerator::new(GenParams::small(), 9).generate();
    let image = CodeImage::build(&cfg, &layout::natural(&cfg));
    for kind in EngineKind::ALL {
        let legacy = run_with_front(&cfg, &image, kind, FrontPipeline::legacy(), false, 5, 40_000);
        let own = run_with_front(&cfg, &image, kind, FrontPipeline::for_engine(kind), false, 5, 40_000);
        assert_ne!(
            own.cycles, legacy.cycles,
            "{kind}: own front model is indistinguishable from the legacy shared front"
        );
        if kind == EngineKind::Ev8 {
            // The one unambiguous direction: EV8's front is both deeper
            // than legacy and the most heavily penalized, so it must
            // cost cycles (this is what widens the Fig. 8 spread).
            assert!(
                own.cycles > legacy.cycles,
                "EV8's deeper, penalized front ({} cycles) must cost more than legacy ({})",
                own.cycles,
                legacy.cycles
            );
        }
        assert!(own.redirect_penalties > 0, "{kind}: no redirect penalties charged");
        assert!(own.hold_redirect_cycles > 0, "{kind}: no redirect hold cycles");
        if FrontPipeline::for_engine(kind).shadow_decode {
            assert!(
                own.engine.shadow_installs > 0,
                "{kind}: shadow decode enabled but nothing installed"
            );
        } else {
            assert_eq!(own.engine.shadow_installs, 0, "{kind}: phantom shadow installs");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under random front models: the stall decomposition sums exactly,
    /// penalties are charged once per execute-time squash (and never
    /// with a zero penalty), and committed progress is unharmed.
    #[test]
    fn stall_decomposition_sums_exactly_under_random_fronts(
        depth in 1u32..24,
        redirect_penalty in 0u32..8,
        decode_redirect_lat in 1u32..6,
        shadow_decode in any::<bool>(),
        engine_idx in 0usize..4,
        seed in 0u64..1024,
    ) {
        let kind = EngineKind::ALL[engine_idx];
        let front = FrontPipeline { depth, redirect_penalty, decode_redirect_lat, shadow_decode };
        let cfg = ProgramGenerator::new(GenParams::small(), seed % 8).generate();
        let image = CodeImage::build(&cfg, &layout::natural(&cfg));
        let s = run_with_front(&cfg, &image, kind, front, false, seed, 15_000);
        prop_assert!(s.committed >= 15_000, "{kind}: no forward progress");
        prop_assert_eq!(
            s.hold_decode_cycles + s.hold_redirect_cycles,
            s.fetch_hold_cycles,
            "{}: stall decomposition does not sum", kind
        );
        if redirect_penalty == 0 {
            prop_assert_eq!(s.redirect_penalties, 0, "{}: penalty charged at zero", kind);
            prop_assert_eq!(s.hold_redirect_cycles, 0, "{}: redirect hold at zero penalty", kind);
        } else {
            prop_assert_eq!(
                s.redirect_penalties, s.mispredictions,
                "{}: penalties must be charged exactly once per squash", kind
            );
        }
    }

    /// The event-driven back-end and the legacy scan oracle stay
    /// bit-identical under random front models — the front pipeline is
    /// entirely a fetch-side concern.
    #[test]
    fn event_backend_matches_scan_oracle_under_random_fronts(
        depth in 1u32..20,
        redirect_penalty in 0u32..6,
        shadow_decode in any::<bool>(),
        engine_idx in 0usize..4,
        seed in 0u64..512,
    ) {
        let kind = EngineKind::ALL[engine_idx];
        let front = FrontPipeline {
            depth,
            redirect_penalty,
            decode_redirect_lat: 2,
            shadow_decode,
        };
        let cfg = ProgramGenerator::new(GenParams::small(), seed % 8).generate();
        let image = CodeImage::build(&cfg, &layout::natural(&cfg));
        let event = run_with_front(&cfg, &image, kind, front, false, seed, 10_000);
        let scan = run_with_front(&cfg, &image, kind, front, true, seed, 10_000);
        prop_assert_eq!(event, scan, "{}: back-ends diverged under a random front", kind);
    }
}
