//! Cross-crate correctness of the checkpoint store (`sfetch_sample::store`):
//! suspend/resume through *disk* is bit-identical to running straight
//! through, warm-store replays equal cold-store runs byte-for-byte, and
//! damaged store entries are rejected and recomputed — never trusted.

use proptest::prelude::*;

use sfetch_cfg::{layout, CodeImage};
use sfetch_core::ProcessorConfig;
use sfetch_fetch::EngineKind;
use sfetch_sample::{
    CheckpointStore, SampleConfig, Sampler, StoreKey, StoreMiss, StoredSampler,
};
use sfetch_workloads::phased::{self, PhasedParams};

fn phased_image(seed: u64) -> CodeImage {
    let cfg = phased::generate(&PhasedParams::small(), seed);
    let lay = layout::natural(&cfg);
    CodeImage::build(&cfg, &lay)
}

fn quick_schedule() -> SampleConfig {
    SampleConfig {
        interval: 50_000,
        warm_func: 8_000,
        warm_mem: 8_000,
        warm_detail: 1_000,
        measure: 3_000,
        ..Default::default()
    }
}

fn tmp_store(tag: &str) -> CheckpointStore {
    let dir = std::env::temp_dir().join(format!(
        "sfetch-ckpt-itest-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    CheckpointStore::open(dir).expect("open store")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Serialize → store (disk) → load → resume at a random sampling-unit
    /// boundary of the phased workload: every window measured after the
    /// suspension point — sample points *and* complete per-window
    /// `SimStats` — must be bit-identical to the uninterrupted run.
    #[test]
    fn suspend_resume_through_disk_is_bit_identical(
        boundary in 1u64..4,
        gen_seed in 0u64..20,
        exec_seed in 0u64..1000,
    ) {
        let img = phased_image(gen_seed);
        let scfg = quick_schedule();
        let pcfg = ProcessorConfig::table2(4);
        let windows = 4u64;

        // Uninterrupted run: full SimStats per window.
        let mut straight = Sampler::new(&img, EngineKind::Stream, pcfg, scfg, exec_seed);
        let all: Vec<_> = (0..windows).map(|_| straight.next_window_full()).collect();

        // Interrupted run: walk to `boundary`, checkpoint through the
        // on-disk store, drop everything, reload, resume.
        let store = tmp_store("resume");
        let key = {
            let mut head = Sampler::new(&img, EngineKind::Stream, pcfg, scfg, exec_seed);
            head.skip(boundary);
            let cp = head.checkpoint();
            let key = StoreKey {
                fingerprint: sfetch_trace::trace_fingerprint(&img, exec_seed, 4096),
                seed: exec_seed,
                at_inst: cp.seq,
            };
            store.save(&key, &cp).expect("bank the suspension point");
            key
        };
        let cp = store.load(&key).expect("verified reload");
        let mut resumed = Sampler::resume(&img, EngineKind::Stream, pcfg, scfg, &cp);
        prop_assert_eq!(resumed.window(), boundary);
        for (i, (want_point, want_stats)) in
            all.iter().enumerate().skip(boundary as usize)
        {
            let (point, stats) = resumed.next_window_full();
            prop_assert_eq!(want_point, &point, "window {} point diverged", i);
            prop_assert_eq!(want_stats, &stats, "window {} SimStats diverged", i);
        }
        let _ = std::fs::remove_dir_all(store.root());
    }
}

/// Running the sampler twice — once against a cold store, once against
/// the store the first run populated — must produce byte-identical
/// merged window stats, with the second run served entirely from disk.
#[test]
fn cold_and_warm_store_runs_are_byte_identical() {
    let img = phased_image(3);
    let scfg = quick_schedule();
    let pcfg = ProcessorConfig::table2(8);
    let store = tmp_store("reuse");
    let fp = sfetch_trace::trace_fingerprint(&img, 7, 4096);
    let windows = 4u64;

    let mut cold = StoredSampler::new(&img, fp, 7, scfg, &store);
    let cold_pts = cold.run_range(EngineKind::Stream, pcfg, 0..windows, 1);
    assert_eq!(cold.stats().misses, windows, "cold run computes every checkpoint");
    assert_eq!(store.entries() as u64, windows);

    let mut warm = StoredSampler::new(&img, fp, 7, scfg, &store);
    let warm_pts = warm.run_range(EngineKind::Stream, pcfg, 0..windows, 1);
    assert_eq!(warm.stats().hits, windows, "warm run loads every checkpoint");
    assert_eq!(warm.stats().misses, 0);
    assert_eq!(cold_pts, warm_pts, "warm-store replay must be byte-identical");

    // And so must a different engine/width riding the same store: the
    // checkpoints are configuration-independent.
    let mut other = StoredSampler::new(&img, fp, 7, scfg, &store);
    let other_pts = other.run_range(EngineKind::Ev8, ProcessorConfig::table2(4), 0..windows, 1);
    assert_eq!(other.stats().hits, windows, "cross-config run reuses the same entries");
    assert_eq!(other_pts.len() as u64, windows);
    let _ = std::fs::remove_dir_all(store.root());
}

/// A corrupted or version-mismatched store entry must be *rejected and
/// recomputed* — the run's results stay identical to a cold run, the
/// damage is counted, and the entry is healed on disk.
#[test]
fn damaged_entries_are_rejected_and_recomputed() {
    let img = phased_image(5);
    let scfg = quick_schedule();
    let pcfg = ProcessorConfig::table2(8);
    let store = tmp_store("damage");
    let fp = sfetch_trace::trace_fingerprint(&img, 9, 4096);
    let windows = 3u64;

    let mut cold = StoredSampler::new(&img, fp, 9, scfg, &store);
    let want = cold.run_range(EngineKind::Stream, pcfg, 0..windows, 1);

    // Corrupt window 1's entry (flip a payload byte) and stamp window
    // 2's entry with a future format version.
    let key = |w: u64| StoreKey {
        fingerprint: fp,
        seed: 9,
        at_inst: w * scfg.interval + scfg.fast_forward(),
    };
    let p1 = store.entry_path(&key(1));
    let mut bytes = std::fs::read(&p1).expect("read entry 1");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x5a;
    std::fs::write(&p1, &bytes).expect("corrupt entry 1");
    let p2 = store.entry_path(&key(2));
    let mut bytes = std::fs::read(&p2).expect("read entry 2");
    bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
    std::fs::write(&p2, &bytes).expect("version-mismatch entry 2");
    assert!(matches!(store.load(&key(1)), Err(StoreMiss::Rejected(_))));
    assert!(matches!(store.load(&key(2)), Err(StoreMiss::Rejected(_))));

    // The damaged run must notice, recompute, and still match.
    let mut healed = StoredSampler::new(&img, fp, 9, scfg, &store);
    let got = healed.run_range(EngineKind::Stream, pcfg, 0..windows, 1);
    assert_eq!(want, got, "recomputed windows must equal the cold run");
    assert_eq!(healed.stats().rejected, 2, "both damaged entries rejected");
    // Window 0's intact entry serves twice: once for its own window and
    // once as the restart point for recomputing window 1.
    assert_eq!(healed.stats().hits, 2, "intact entries keep serving");

    // The store healed itself: every entry verifies again.
    for w in 0..windows {
        assert!(store.load(&key(w)).is_ok(), "window {w} entry healed");
    }
    let _ = std::fs::remove_dir_all(store.root());
}
