//! The top-down cycle-accounting contracts:
//!
//! * **The identity** — every simulated cycle is attributed to exactly
//!   one [`CycleBuckets`] bucket, so `buckets.sum() == cycles` — not as
//!   a tolerance but as an equality, property-tested for all four
//!   engines under *random* front-pipeline models (the same generator
//!   space `front_pipeline.rs` exercises).
//! * **Observation never moves time** — attaching a real observer
//!   (Konata pipeline tracing, capture window *inside* the run) yields
//!   bit-identical [`SimStats`] to the monomorphized-away
//!   [`NullObserver`] default, again under random fronts.
//! * **Bucket semantics** — the commit bucket bounds committed
//!   throughput (`committed <= commit * width`), redirect-hold
//!   attributions never exceed the redirect-hold counter, a zero
//!   redirect penalty attributes zero redirect holds, and the seed
//!   programs never trip the watchdog.

use proptest::prelude::*;

use sfetch_bench::obs::KonataObserver;
use sfetch_cfg::gen::{GenParams, ProgramGenerator};
use sfetch_cfg::{layout, CodeImage};
use sfetch_core::{FrontPipeline, Processor, ProcessorConfig, SimStats};
use sfetch_fetch::EngineKind;
use sfetch_obs::KonataTrace;

/// Simulation width of every run in this harness.
const WIDTH: usize = 4;

/// Runs `insts` committed instructions (no warmup/reset) with an
/// explicit front model, with the default disabled observer.
fn run_with_front(
    cfg: &sfetch_cfg::Cfg,
    image: &CodeImage,
    kind: EngineKind,
    front: FrontPipeline,
    seed: u64,
    insts: u64,
) -> SimStats {
    let mut pc = ProcessorConfig::table2(WIDTH);
    pc.front = front;
    let engine = kind.build_for(WIDTH, image.entry(), &pc.prefetch, &front);
    let mut p = Processor::new(pc, engine, cfg, image, seed);
    p.run(insts);
    p.stats()
}

/// The identical run with a Konata observer attached and actively
/// capturing (the window sits inside the run, so the hooks do real
/// buffering work — the strongest perturbation the tracing layer can
/// exert).
fn run_observed(
    image: &CodeImage,
    kind: EngineKind,
    front: FrontPipeline,
    seed: u64,
    insts: u64,
) -> (SimStats, KonataTrace) {
    let mut pc = ProcessorConfig::table2(WIDTH);
    pc.front = front;
    let engine = kind.build_for(WIDTH, image.entry(), &pc.prefetch, &front);
    let mem = sfetch_mem::MemoryHierarchy::new(sfetch_mem::MemoryConfig::table2(WIDTH));
    let oracle = sfetch_trace::Executor::from_image(image, seed);
    let obs = KonataObserver(KonataTrace::new(insts / 4, insts / 2));
    let mut p = Processor::with_state_observed(pc, engine, image, oracle, mem, obs);
    p.run(insts);
    let stats = p.stats();
    (stats, p.into_observer().0)
}

/// Checks every structural bucket contract on one finished run.
fn assert_accounting(kind: EngineKind, front: &FrontPipeline, s: &SimStats) {
    assert_eq!(
        s.buckets.sum(),
        s.cycles,
        "{kind}: cycle accounting must attribute every cycle exactly once \
         (front {front:?}, buckets {:?})",
        s.buckets
    );
    assert_eq!(s.buckets.watchdog, 0, "{kind}: watchdog bucket charged on a healthy run");
    assert_eq!(s.watchdog_resyncs, 0, "{kind}: watchdog resynced on a healthy run");
    assert!(s.buckets.commit > 0, "{kind}: a committing run must have commit cycles");
    assert!(
        s.committed <= s.buckets.commit * WIDTH as u64,
        "{kind}: committed {} exceeds commit-bucket capacity {} × width {WIDTH}",
        s.committed,
        s.buckets.commit
    );
    assert!(
        s.buckets.hold_redirect <= s.hold_redirect_cycles,
        "{kind}: more redirect-hold attributions than redirect-hold cycles"
    );
    if front.redirect_penalty == 0 {
        assert_eq!(
            s.buckets.hold_redirect, 0,
            "{kind}: redirect holds attributed under a zero penalty"
        );
    }
}

/// Deterministic smoke: the identity and the observer neutrality on one
/// generated program, all four engines, both front models.
#[test]
fn accounting_sums_and_observer_is_neutral_on_generated_programs() {
    let cfg = ProgramGenerator::new(GenParams::small(), 42).generate();
    let image = CodeImage::build(&cfg, &layout::natural(&cfg));
    for kind in EngineKind::ALL {
        for front in [FrontPipeline::legacy(), FrontPipeline::for_engine(kind)] {
            let s = run_with_front(&cfg, &image, kind, front, 7, 20_000);
            assert_accounting(kind, &front, &s);
            let (observed, trace) = run_observed(&image, kind, front, 7, 20_000);
            assert_eq!(s, observed, "{kind}: attaching tracing moved simulated statistics");
            assert!(trace.captured() > 0, "{kind}: in-range capture recorded nothing");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The accounting identity under random front-pipeline models: for
    /// any engine, any front geometry, and any seed, every cycle lands
    /// in exactly one bucket.
    #[test]
    fn every_cycle_is_attributed_under_random_fronts(
        depth in 1u32..24,
        redirect_penalty in 0u32..8,
        decode_redirect_lat in 1u32..6,
        shadow_decode in any::<bool>(),
        engine_idx in 0usize..4,
        seed in 0u64..1024,
    ) {
        let kind = EngineKind::ALL[engine_idx];
        let front = FrontPipeline { depth, redirect_penalty, decode_redirect_lat, shadow_decode };
        let cfg = ProgramGenerator::new(GenParams::small(), seed % 8).generate();
        let image = CodeImage::build(&cfg, &layout::natural(&cfg));
        let s = run_with_front(&cfg, &image, kind, front, seed, 15_000);
        prop_assert!(s.committed >= 15_000, "{}: no forward progress", kind);
        assert_accounting(kind, &front, &s);
    }

    /// Observer neutrality under random fronts: a live, actively
    /// capturing pipeline tracer yields the same [`SimStats`] as the
    /// compiled-away default, bit for bit.
    #[test]
    fn tracing_never_moves_time_under_random_fronts(
        depth in 1u32..20,
        redirect_penalty in 0u32..6,
        shadow_decode in any::<bool>(),
        engine_idx in 0usize..4,
        seed in 0u64..512,
    ) {
        let kind = EngineKind::ALL[engine_idx];
        let front = FrontPipeline {
            depth,
            redirect_penalty,
            decode_redirect_lat: 2,
            shadow_decode,
        };
        let cfg = ProgramGenerator::new(GenParams::small(), seed % 8).generate();
        let image = CodeImage::build(&cfg, &layout::natural(&cfg));
        let plain = run_with_front(&cfg, &image, kind, front, seed, 10_000);
        let (observed, _) = run_observed(&image, kind, front, seed, 10_000);
        prop_assert_eq!(plain, observed, "{}: tracing perturbed the run", kind);
    }
}
