//! Property-based tests (proptest) over the simulator's core invariants:
//! random programs must lay out, execute and extract consistently, and the
//! predictor/cache structures must respect their contracts under arbitrary
//! operation sequences.

use proptest::prelude::*;

use sfetch_cfg::gen::{GenParams, ProgramGenerator};
use sfetch_cfg::{layout, CodeImage, EdgeProfile};
use sfetch_isa::{Addr, BranchKind};
use sfetch_predictors::{AssocTable, NextStreamPredictor, Ras, StreamPredictorConfig, StreamUpdate};
use sfetch_trace::{Executor, StreamExtractor};

fn small_params(n_funcs: usize) -> GenParams {
    let mut p = GenParams::small();
    p.n_funcs = n_funcs.max(2);
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated program, under every layout, yields an executor walk
    /// whose committed control flow is continuous (each pc equals the
    /// previous instruction's architectural successor).
    #[test]
    fn executor_is_continuous_under_all_layouts(
        gen_seed in 0u64..500,
        exec_seed in 0u64..500,
        n_funcs in 2usize..8,
        use_opt in any::<bool>(),
    ) {
        let cfg = ProgramGenerator::new(small_params(n_funcs), gen_seed).generate();
        let lay = if use_opt {
            layout::pettis_hansen(&cfg, &EdgeProfile::from_expected(&cfg))
        } else {
            layout::natural(&cfg)
        };
        let img = CodeImage::build(&cfg, &lay);
        let trace: Vec<_> = Executor::new(&cfg, &img, exec_seed).take(3_000).collect();
        for w in trace.windows(2) {
            prop_assert_eq!(w[1].pc, w[0].next_pc());
        }
    }

    /// Stream extraction is a partition: stream lengths sum to the trace
    /// length (minus the open tail), every stream ends at a taken branch or
    /// the cap, and consecutive streams chain start -> next.
    #[test]
    fn stream_extraction_partitions_the_trace(
        gen_seed in 0u64..500,
        exec_seed in 0u64..100,
    ) {
        let cfg = ProgramGenerator::new(small_params(4), gen_seed).generate();
        let img = CodeImage::build(&cfg, &layout::natural(&cfg));
        let mut ex = StreamExtractor::new();
        let mut covered = 0u64;
        let mut prev_next: Option<Addr> = None;
        let n = 4_000usize;
        for d in Executor::new(&cfg, &img, exec_seed).take(n) {
            if let Some(s) = ex.push(&d) {
                covered += u64::from(s.len);
                prop_assert!(s.len >= 1);
                if let Some(pn) = prev_next {
                    prop_assert_eq!(s.start, pn, "streams must chain");
                }
                prev_next = Some(s.next);
            }
        }
        prop_assert_eq!(covered + u64::from(ex.in_flight_len()), n as u64);
    }

    /// The layout passes always produce permutations, and images place every
    /// block at an instruction-aligned, in-bounds address.
    #[test]
    fn layouts_are_permutations_with_aligned_addresses(
        gen_seed in 0u64..500,
        shuffle_seed in 0u64..50,
    ) {
        let cfg = ProgramGenerator::new(small_params(4), gen_seed).generate();
        for lay in [
            layout::natural(&cfg),
            layout::random(&cfg, shuffle_seed),
            layout::pettis_hansen(&cfg, &EdgeProfile::from_expected(&cfg)),
        ] {
            let img = CodeImage::build(&cfg, &lay);
            for blk in cfg.blocks() {
                let addr = img.block_addr(blk.id());
                prop_assert!(addr.is_inst_aligned());
                prop_assert!(addr >= img.base() && addr <= img.end());
            }
        }
    }

    /// The associative table never returns a payload under the wrong tag and
    /// respects capacity.
    #[test]
    fn assoc_table_tag_discipline(
        ops in prop::collection::vec((0u64..64, 0u64..16, 0u32..1000), 1..200),
    ) {
        let mut t: AssocTable<u32> = AssocTable::new(8, 2);
        let mut inserted = std::collections::HashMap::new();
        for (idx, tag, val) in ops {
            t.insert_lru(idx, tag, val);
            inserted.insert((idx % 8, tag), val);
            if let Some(&got) = t.probe(idx, tag) {
                // A hit must return the *latest* value inserted under that
                // (set, tag).
                prop_assert_eq!(got, inserted[&(idx % 8, tag)]);
            }
            prop_assert!(t.occupancy() <= t.entries());
        }
    }

    /// RAS snapshot/restore always repairs a single push or pop.
    #[test]
    fn ras_single_divergence_repair(
        setup in prop::collection::vec(1u64..1_000_000, 0..12),
        wrong in 1u64..1_000_000,
        do_push in any::<bool>(),
    ) {
        let mut ras = Ras::new(8);
        for a in &setup {
            ras.push(Addr::new(a * 4));
        }
        let snap = ras.snapshot();
        let top_before = ras.top();
        if do_push {
            ras.push(Addr::new(wrong * 4));
        } else {
            ras.pop();
        }
        ras.restore(snap);
        prop_assert_eq!(ras.top(), top_before);
    }

    /// The stream predictor only ever predicts lengths within its cap, and a
    /// trained (start, len, next) triple round-trips while untouched
    /// addresses miss.
    #[test]
    fn stream_predictor_contract(
        starts in prop::collection::vec(1u64..10_000, 1..40),
        lens in prop::collection::vec(1u32..200, 1..40),
    ) {
        let mut p = NextStreamPredictor::new(StreamPredictorConfig::table2());
        let n = starts.len().min(lens.len());
        for i in 0..n {
            p.commit_stream(StreamUpdate {
                start: Addr::new(starts[i] * 4),
                len: lens[i],
                kind: Some(BranchKind::Cond),
                next: Addr::new(0x40_0000),
                mispredicted: false,
            });
        }
        for start in starts.iter().take(n) {
            if let Some(pred) = p.predict(Addr::new(start * 4)) {
                prop_assert!(pred.len >= 1);
                prop_assert!(pred.len <= p.config().max_len);
            }
        }
        // An address far outside anything trained must miss.
        prop_assert!(p.predict(Addr::new(0xdead_0000)).is_none());
    }
}
