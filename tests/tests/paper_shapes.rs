//! Integration tests asserting the paper's qualitative results at reduced
//! scale. These are the reproduction's regression net: if a change breaks
//! one of the orderings the paper reports, a test here fails.

use sfetch_core::metrics::harmonic_mean;
use sfetch_fetch::EngineKind;
use sfetch_tests::{sim, suite_workload};
use sfetch_workloads::LayoutChoice;

const INSTS: u64 = 400_000;
const BENCHES: [&str; 3] = ["gzip", "crafty", "twolf"];

fn hmean_over(kind: EngineKind, layout: LayoutChoice, metric: impl Fn(&sfetch_core::SimStats) -> f64) -> f64 {
    let vals: Vec<f64> = BENCHES
        .iter()
        .map(|b| {
            let w = suite_workload(b);
            metric(&sim(&w, kind, layout, 8, INSTS))
        })
        .collect();
    harmonic_mean(&vals)
}

#[test]
fn streams_beat_ev8_on_optimized_code() {
    // Paper §4.2: ~10% IPC advantage at 8 wide.
    let streams = hmean_over(EngineKind::Stream, LayoutChoice::Optimized, |s| s.ipc());
    let ev8 = hmean_over(EngineKind::Ev8, LayoutChoice::Optimized, |s| s.ipc());
    assert!(
        streams > ev8,
        "streams ({streams:.3}) must outperform EV8 ({ev8:.3}) at 8-wide optimized"
    );
}

#[test]
fn streams_beat_ftb_on_optimized_code() {
    // Paper §4.2: ~4% advantage over the FTB.
    let streams = hmean_over(EngineKind::Stream, LayoutChoice::Optimized, |s| s.ipc());
    let ftb = hmean_over(EngineKind::Ftb, LayoutChoice::Optimized, |s| s.ipc());
    assert!(
        streams > ftb,
        "streams ({streams:.3}) must outperform FTB ({ftb:.3}) at 8-wide optimized"
    );
}

#[test]
fn trace_cache_has_the_widest_fetch() {
    // Paper Table 3: the trace cache fetches 11-15% more instructions per
    // cycle than streams, which in turn beat EV8/FTB.
    let tc = hmean_over(EngineKind::TraceCache, LayoutChoice::Optimized, |s| s.fetch_ipc());
    let st = hmean_over(EngineKind::Stream, LayoutChoice::Optimized, |s| s.fetch_ipc());
    let ev8 = hmean_over(EngineKind::Ev8, LayoutChoice::Optimized, |s| s.fetch_ipc());
    assert!(tc > st, "trace cache fetch ({tc:.2}) must exceed streams ({st:.2})");
    assert!(st > ev8 * 0.98, "streams fetch ({st:.2}) must be at least EV8-class ({ev8:.2})");
}

#[test]
fn streams_stay_close_to_the_trace_cache_ipc() {
    // Paper headline: only ~1.5% slower than the trace cache with optimized
    // code. Give it slack at reduced scale: within 8%.
    let tc = hmean_over(EngineKind::TraceCache, LayoutChoice::Optimized, |s| s.ipc());
    let st = hmean_over(EngineKind::Stream, LayoutChoice::Optimized, |s| s.ipc());
    assert!(
        st > tc * 0.92,
        "streams ({st:.3}) must stay within 8% of the trace cache ({tc:.3})"
    );
}

#[test]
fn layout_optimization_helps_the_stream_frontend() {
    // Paper §4.2: the stream architecture benefits most from layout
    // optimization (a full 3% at 8-wide).
    let base = hmean_over(EngineKind::Stream, LayoutChoice::Base, |s| s.ipc());
    let opt = hmean_over(EngineKind::Stream, LayoutChoice::Optimized, |s| s.ipc());
    assert!(
        opt > base,
        "optimized layout ({opt:.3}) must beat base ({base:.3}) for streams"
    );
}

#[test]
fn optimized_layout_grows_stream_fetch_units() {
    // Table 1's "size" column: streams lengthen under layout optimization.
    let w = suite_workload("crafty");
    let base = sim(&w, EngineKind::Stream, LayoutChoice::Base, 8, INSTS);
    let opt = sim(&w, EngineKind::Stream, LayoutChoice::Optimized, 8, INSTS);
    assert!(
        opt.engine.mean_unit_len() > base.engine.mean_unit_len(),
        "opt units {:.1} must exceed base units {:.1}",
        opt.engine.mean_unit_len(),
        base.engine.mean_unit_len()
    );
}

#[test]
fn stream_predictor_wins_on_indirect_branches() {
    // §4.3's mechanism: the next-address field plus path correlation make
    // streams an indirect-target predictor; EV8's BTB only chases the last
    // target.
    // Aggregate over the indirect-heavy suite members for statistical
    // weight (single benchmarks have too few indirect mispredictions at
    // test scale).
    let mut st_total = 0u64;
    let mut ev8_total = 0u64;
    for bench in ["perlbmk", "eon", "gcc"] {
        let w = suite_workload(bench);
        st_total += sim(&w, EngineKind::Stream, LayoutChoice::Optimized, 8, INSTS).mispred_indirect;
        ev8_total += sim(&w, EngineKind::Ev8, LayoutChoice::Optimized, 8, INSTS).mispred_indirect;
    }
    assert!(
        st_total < ev8_total,
        "streams indirect mispredictions ({st_total}) must undercut EV8's ({ev8_total})"
    );
}

#[test]
fn mispredict_rates_are_in_a_credible_band() {
    for kind in EngineKind::ALL {
        let r = hmean_over(kind, LayoutChoice::Optimized, |s| s.mispred_rate().max(1e-9));
        assert!(
            r > 0.001 && r < 0.20,
            "{kind}: mispredict rate {r:.4} outside credible band"
        );
    }
}

#[test]
fn no_watchdog_resyncs_across_engines_and_layouts() {
    let w = suite_workload("twolf");
    for kind in EngineKind::ALL {
        for layout in [LayoutChoice::Base, LayoutChoice::Optimized] {
            let s = sim(&w, kind, layout, 8, 200_000);
            assert_eq!(s.watchdog_resyncs, 0, "{kind}/{layout}: watchdog fired");
        }
    }
}

#[test]
fn two_wide_pipes_level_the_field() {
    // Fig. 8a: at 2-wide every front-end performs within a few percent.
    let w = suite_workload("gzip");
    let ipcs: Vec<f64> = EngineKind::ALL
        .iter()
        .map(|&k| sim(&w, k, LayoutChoice::Optimized, 2, 300_000).ipc())
        .collect();
    let max = ipcs.iter().cloned().fold(0.0, f64::max);
    let min = ipcs.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        (max - min) / max < 0.12,
        "2-wide spread should be small: {ipcs:?}"
    );
}
