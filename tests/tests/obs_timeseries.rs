//! The cycle-accounting time-series contract, end to end: interval rows
//! emitted by [`TimeSeriesSink`] over sampled windows sum **exactly** to
//! the aggregate [`SimStats`] — across [`StoredSampler`] window
//! boundaries, for every interval choice, with no cycle dropped or
//! double-counted — and the stats-carrying sampler entry point
//! ([`StoredSampler::run_range_stats`]) returns the same sample points
//! as the point-only path, serial or parallel.

use sfetch_bench::obs::{ts_columns, ts_delta, TS_KEY};
use sfetch_cfg::{layout, CodeImage};
use sfetch_core::{CycleBuckets, ProcessorConfig, SimStats};
use sfetch_fetch::EngineKind;
use sfetch_obs::TimeSeriesSink;
use sfetch_sample::{CheckpointStore, SampleConfig, StoredSampler};
use sfetch_workloads::phased::{self, PhasedParams};

fn phased_image(seed: u64) -> CodeImage {
    let cfg = phased::generate(&PhasedParams::small(), seed);
    let lay = layout::natural(&cfg);
    CodeImage::build(&cfg, &lay)
}

fn quick_schedule() -> SampleConfig {
    SampleConfig {
        interval: 50_000,
        warm_func: 8_000,
        warm_mem: 8_000,
        warm_detail: 1_000,
        measure: 3_000,
        ..Default::default()
    }
}

fn tmp_store(tag: &str) -> CheckpointStore {
    let dir = std::env::temp_dir().join(format!("sfetch-obs-ts-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    CheckpointStore::open(dir).expect("open store")
}

/// Runs `windows` sampled windows and returns their per-window stats.
fn sampled_stats(store: &CheckpointStore, windows: u64, jobs: usize) -> Vec<SimStats> {
    let img = phased_image(5);
    let fp = sfetch_trace::trace_fingerprint(&img, 7, 4096);
    let mut sampler = StoredSampler::new(&img, fp, 7, quick_schedule(), store);
    sampler
        .run_range_stats(EngineKind::Stream, ProcessorConfig::table2(4), 0..windows, jobs)
        .into_iter()
        .map(|(_, s)| s)
        .collect()
}

/// For every interval choice — per-window rows (0), an interval that
/// splits mid-window, one that spans several windows, and one larger
/// than the whole run — the emitted rows partition the deltas exactly:
/// every column sums to the aggregate, bit for bit, and each row's
/// bucket columns sum to its cycles column.
#[test]
fn interval_rows_sum_exactly_to_the_aggregate_across_window_boundaries() {
    let store = tmp_store("sum");
    let windows = 6u64;
    let stats = sampled_stats(&store, windows, 1);
    assert_eq!(stats.len() as u64, windows);
    let mut agg = SimStats::default();
    for s in &stats {
        assert_eq!(s.buckets.sum(), s.cycles, "window accounting must be exhaustive");
        agg.accumulate(s);
    }
    let cols = ts_columns();
    let per_window = stats[0].committed;
    assert!(per_window > 0, "windows must commit instructions");
    // Intervals straddling every boundary case relative to the ~3k-inst
    // measured window: mid-window, exact, multi-window, whole-run.
    for interval in [0, per_window / 2, per_window, 2 * per_window + 1, u64::MAX / 2] {
        let mut buf = Vec::new();
        let mut sink = TimeSeriesSink::new(&mut buf, &cols, TS_KEY, interval).unwrap();
        for s in &stats {
            sink.record(&ts_delta(s)).unwrap();
        }
        let rows = sink.rows();
        let totals = sink.finish().unwrap();
        assert_eq!(
            totals,
            ts_delta(&agg),
            "interval {interval}: totals must equal the aggregate SimStats exactly"
        );
        // Re-derive the totals from the serialized rows themselves (the
        // same check the CI smoke leg runs on the emitted files).
        let text = String::from_utf8(buf).unwrap();
        let mut from_rows = vec![0u64; cols.len()];
        let mut n_rows = 0u64;
        for line in text.lines().skip(1) {
            for (i, c) in cols.iter().enumerate() {
                from_rows[i] += parse_u64(line, c).unwrap_or_else(|| {
                    panic!("interval {interval}: column {c} missing from row {line}")
                });
            }
            let row_cycles = parse_u64(line, "cycles").unwrap();
            let row_buckets: u64 =
                CycleBuckets::NAMES.iter().map(|n| parse_u64(line, n).unwrap()).sum();
            assert_eq!(row_buckets, row_cycles, "row bucket columns must sum to cycles");
            n_rows += 1;
        }
        assert!(
            n_rows == rows || n_rows == rows + 1,
            "interval {interval}: finish() may add exactly one residual row \
             ({rows} before, {n_rows} serialized)"
        );
        assert_eq!(from_rows, totals, "interval {interval}: serialized rows lost a delta");
    }
    let _ = std::fs::remove_dir_all(store.root());
}

/// The stats-carrying entry point agrees with the point-only path, and
/// the parallel fan-out with the serial order: same sample points, same
/// per-window stats, warm store or cold.
#[test]
fn run_range_stats_matches_run_range_serial_and_parallel() {
    let store = tmp_store("par");
    let windows = 5u64;
    let img = phased_image(5);
    let fp = sfetch_trace::trace_fingerprint(&img, 7, 4096);
    let scfg = quick_schedule();
    let pcfg = ProcessorConfig::table2(4);

    let mut points_only = StoredSampler::new(&img, fp, 7, scfg, &store);
    let points = points_only.run_range(EngineKind::Stream, pcfg, 0..windows, 1);

    let mut serial = StoredSampler::new(&img, fp, 7, scfg, &store);
    let serial_full = serial.run_range_stats(EngineKind::Stream, pcfg, 0..windows, 1);
    assert_eq!(
        points,
        serial_full.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
        "run_range_stats must visit the same sample points"
    );
    for (p, s) in &serial_full {
        assert_eq!((p.committed, p.cycles), (s.committed, s.cycles));
    }

    let mut parallel = StoredSampler::new(&img, fp, 7, scfg, &store);
    let parallel_full = parallel.run_range_stats(EngineKind::Stream, pcfg, 0..windows, 3);
    assert_eq!(serial_full, parallel_full, "parallel fan-out must preserve window order");
    let _ = std::fs::remove_dir_all(store.root());
}

/// Extracts `"key": N` from one JSONL line.
fn parse_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}
