//! Parallel simulation must be bit-identical to serial simulation: every
//! grid point owns its `Processor` and derives only from its workload +
//! configuration, so `--jobs N` may change scheduling but never results.

use sfetch_bench::{run_grid, HarnessOpts, RunPoint};
use sfetch_fetch::EngineKind;
use sfetch_workloads::{LayoutChoice, Suite};

fn grid(suite: &Suite, jobs: usize) -> Vec<RunPoint> {
    let opts = HarnessOpts { insts: 10_000, warmup: 1_000, jobs, ..HarnessOpts::default() };
    run_grid(
        suite,
        &[4],
        &[LayoutChoice::Base, LayoutChoice::Optimized],
        &[EngineKind::Stream, EngineKind::Ftb],
        opts,
    )
}

#[test]
fn run_grid_is_bit_identical_across_jobs() {
    let suite = Suite::build_subset(&["gzip", "twolf"], 2);
    let serial = grid(&suite, 1);
    let parallel = grid(&suite, 8);
    assert_eq!(serial.len(), parallel.len());
    assert_eq!(serial.len(), 2 * 2 * 2, "2 benches x 2 layouts x 2 engines");
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.bench, b.bench);
        assert_eq!(a.engine, b.engine);
        assert_eq!(a.layout, b.layout);
        assert_eq!(a.width, b.width);
        assert_eq!(a.stats, b.stats, "{}/{}/{} diverged under --jobs 8", a.bench, a.engine, a.layout);
    }
}

#[test]
fn suite_construction_is_jobs_invariant() {
    let a = Suite::build_subset(&["gzip"], 1);
    let b = Suite::build_subset(&["gzip"], 4);
    let (wa, wb) = (&a.workloads()[0], &b.workloads()[0]);
    assert_eq!(wa.name(), wb.name());
    assert_eq!(
        wa.image(LayoutChoice::Optimized).len_insts(),
        wb.image(LayoutChoice::Optimized).len_insts()
    );
    // Identical layouts imply identical block placement everywhere.
    for blk in wa.cfg().blocks() {
        assert_eq!(
            wa.image(LayoutChoice::Optimized).block_addr(blk.id()),
            wb.image(LayoutChoice::Optimized).block_addr(blk.id())
        );
    }
}
