//! Property tests for squash-during-inflight in the event-driven
//! back-end: random programs drive random misprediction squashes through
//! the completion wheel, and no squash may ever leave a stale wheel,
//! waiter, or ready token that changes behaviour — the retire count and
//! committed branch mix must match the architectural oracle exactly, and
//! the whole run must stay bit-identical to the legacy scan back-end.

use proptest::prelude::*;

use sfetch_cfg::gen::{GenParams, ProgramGenerator};
use sfetch_cfg::{layout, CodeImage};
use sfetch_core::{Processor, ProcessorConfig};
use sfetch_fetch::EngineKind;
use sfetch_isa::BranchKind;
use sfetch_trace::Executor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random misprediction squashes never leave stale scheduler state:
    /// the event-driven back-end retires exactly the oracle's instruction
    /// stream (count and branch mix) and matches the legacy scan
    /// bit-for-bit over the same window.
    #[test]
    fn random_squashes_retire_the_oracle_stream(
        gen_seed in 0u64..400,
        exec_seed in 0u64..100,
        engine_idx in 0usize..4,
        width_pow in 1u32..4,
    ) {
        let width = 1usize << width_pow; // 2, 4, 8
        let kind = EngineKind::ALL[engine_idx];
        let cfg = ProgramGenerator::new(GenParams::small(), gen_seed).generate();
        let image = CodeImage::build(&cfg, &layout::natural(&cfg));
        let n = 25_000u64;

        let run = |legacy_scan: bool| {
            let mut pc = ProcessorConfig::table2(width);
            pc.legacy_scan = legacy_scan;
            let engine = kind.build(width, image.entry());
            let mut p = Processor::new(pc, engine, &cfg, &image, exec_seed);
            p.run(n);
            p.stats()
        };
        let event = run(false);
        let scan = run(true);
        prop_assert_eq!(event, scan, "back-ends diverged ({kind}, width {width})");

        // The run must have exercised the squash path at all...
        prop_assert!(event.mispredictions > 0, "{kind}: window never squashed");
        // ...and still retire the oracle stream exactly: replay the
        // architectural executor over the same committed count and
        // compare the conditional-branch mix.
        let mut conds = 0u64;
        let mut taken = 0u64;
        for d in Executor::new(&cfg, &image, exec_seed).take(event.committed as usize) {
            if let Some(c) = d.control {
                if c.kind == BranchKind::Cond {
                    conds += 1;
                    taken += u64::from(c.taken);
                }
            }
        }
        prop_assert_eq!(event.cond_branches, conds);
        prop_assert_eq!(event.cond_taken, taken);
    }

    /// The same invariant at flight depths where the wheel does real
    /// work: large ROBs fill with wrong-path instructions before each
    /// squash, so stale tokens pile up and must all be discarded.
    #[test]
    fn large_rob_squashes_stay_oracle_exact(
        gen_seed in 0u64..200,
        rob_shift in 0u32..2,
    ) {
        let cfg = ProgramGenerator::new(GenParams::small(), gen_seed).generate();
        let image = CodeImage::build(&cfg, &layout::natural(&cfg));
        let mut pc = ProcessorConfig::table2(8);
        pc.rob_entries = 512 << rob_shift; // 512 or 1024
        let n = 20_000u64;

        let run = |legacy_scan: bool| {
            let mut pc = pc;
            pc.legacy_scan = legacy_scan;
            let engine = EngineKind::Ev8.build(8, image.entry());
            let mut p = Processor::new(pc, engine, &cfg, &image, gen_seed ^ 0xbeef);
            p.run(n);
            p.stats()
        };
        let event = run(false);
        let scan = run(true);
        prop_assert_eq!(event, scan, "rob_entries {}", pc.rob_entries);
        prop_assert!(event.committed >= n);
    }
}
