//! The prefetch subsystem's contracts:
//!
//! * **MSHR coalescing / fill ordering** — under random miss streams no
//!   fill is ever lost or duplicated, coalescing returns the original
//!   fill cycle, and fills drain in completion order (proptests).
//! * **`Prefetcher = None` lockstep** — engines built through the
//!   prefetch-aware constructor with the disabled configuration match
//!   the legacy construction cycle-for-cycle: the blocking I-cache path
//!   is untouched by the port refactor.
//! * **Pipelined demand-only stays on the blocking model's schedule** —
//!   with MSHRs but no policy, isolated misses complete on the exact
//!   cycle the blocking model delivers, so whole-run cycle counts stay
//!   within a whisker (they differ only when a redirect lands mid-miss,
//!   where the pipeline's in-flight fill is the honest model).
//! * **Stream-directed prefetch pays** — on an L1i-thrashing program the
//!   stream engine's fetch-stall cycles drop with prefetching on.

use std::collections::BTreeMap;

use proptest::prelude::*;

use sfetch_cfg::gen::{GenParams, ProgramGenerator};
use sfetch_cfg::{layout, CodeImage};
use sfetch_core::{PrefetchConfig, PrefetchKind, Processor, ProcessorConfig};
use sfetch_fetch::EngineKind;
use sfetch_isa::Addr;
use sfetch_mem::{InstDemand, MemoryConfig, MemoryHierarchy, MshrFile};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random allocate/drain sequences against a reference model: every
    /// allocated line drains exactly once, at its recorded fill cycle,
    /// in (fill_at, allocation-order) order, and capacity is respected.
    #[test]
    fn mshr_fills_are_never_lost_or_duplicated(
        caps in 1usize..6,
        ops in proptest::collection::vec((0u64..24, 1u64..150, 0u64..4), 1..120),
    ) {
        let mut file = MshrFile::new(caps);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new(); // line -> fill_at
        let mut drained: Vec<(u64, u64)> = Vec::new();
        let mut now = 0u64;
        let mut buf = Vec::new();
        for &(line, lat, advance) in &ops {
            now += advance;
            buf.clear();
            file.drain_due(now, &mut buf);
            let mut last = None;
            for m in &buf {
                prop_assert!(m.fill_at <= now, "drained a future fill");
                prop_assert_eq!(model.remove(&m.line), Some(m.fill_at), "fill not in model");
                if let Some(prev) = last {
                    prop_assert!(prev <= m.fill_at, "fills drained out of order");
                }
                last = Some(m.fill_at);
                drained.push((m.line, m.fill_at));
            }
            if file.lookup(line).is_none() && file.has_free() {
                file.allocate(line, now + lat, lat > 100, false);
                prop_assert!(model.insert(line, now + lat).is_none());
            } else if let Some(m) = file.lookup(line) {
                // Coalescing view: the in-flight entry keeps its fill time.
                prop_assert_eq!(Some(&m.fill_at), model.get(&line));
            }
            prop_assert!(file.in_flight() <= caps);
            prop_assert_eq!(file.in_flight(), model.len());
        }
        // Drain everything left; nothing may remain or double-complete.
        buf.clear();
        file.drain_due(u64::MAX, &mut buf);
        for m in &buf {
            prop_assert_eq!(model.remove(&m.line), Some(m.fill_at));
            drained.push((m.line, m.fill_at));
        }
        prop_assert!(model.is_empty(), "lost fills: {model:?}");
        prop_assert_eq!(file.in_flight(), 0);
        // No line completed twice while it was in flight once: every
        // drained (line, fill_at) pair was unique per allocation epoch.
        drained.sort_unstable();
        let before = drained.len();
        drained.dedup();
        prop_assert_eq!(drained.len(), before, "duplicated fill");
    }

    /// The hierarchy-level pipeline: a demand miss's reported fill cycle
    /// is exact — `Wait` until `fill_at`, `Ready` at `fill_at` — under
    /// random prefetch interference, and coalescing never changes it.
    #[test]
    fn demand_fill_cycles_are_exact_under_prefetch_interference(
        demand_line in 0u64..8,
        prefetch_lines in proptest::collection::vec(0u64..8, 0..6),
    ) {
        let mut m = MemoryHierarchy::new(MemoryConfig::table2(8));
        m.enable_inst_pipeline(4);
        let lb = m.l1i_line_bytes();
        let mut now = 0u64;
        for &l in &prefetch_lines {
            m.inst_tick(now);
            m.inst_prefetch(now, Addr::new(l * lb));
            now += 1;
        }
        m.inst_tick(now);
        let addr = Addr::new(demand_line * lb);
        match m.inst_demand(now, addr) {
            InstDemand::Ready => {} // filled by an earlier prefetch: fine
            InstDemand::Wait { fill_at, .. } => {
                prop_assert!(fill_at > now);
                for t in now + 1..fill_at {
                    m.inst_tick(t);
                    let d = m.inst_demand(t, addr);
                    prop_assert!(
                        matches!(d, InstDemand::Wait { fill_at: f, allocated: false, .. } if f == fill_at),
                        "cycle {t}: coalesce changed the fill cycle ({d:?})"
                    );
                }
                m.inst_tick(fill_at);
                prop_assert_eq!(m.inst_demand(fill_at, addr), InstDemand::Ready);
            }
            InstDemand::Blocked => {
                // 4 MSHRs, at most 6 prefetches over 6 cycles: possible
                // only while all fills are in flight; must clear by the
                // time they complete.
                m.inst_tick(now + 200);
                prop_assert!(matches!(
                    m.inst_demand(now + 200, addr),
                    InstDemand::Ready | InstDemand::Wait { .. }
                ));
            }
        }
    }
}

/// `Prefetcher = None` must match the legacy blocking model
/// cycle-for-cycle: same committed count, same cycle count, same stall
/// and cache statistics at every step.
#[test]
fn none_prefetcher_locksteps_the_legacy_blocking_model() {
    let cfg = ProgramGenerator::new(GenParams::small(), 42).generate();
    let image = CodeImage::build(&cfg, &layout::natural(&cfg));
    for kind in EngineKind::ALL {
        let pc = ProcessorConfig::table2(4);
        assert_eq!(pc.prefetch, PrefetchConfig::none(), "default must be disabled");
        let legacy = kind.build(4, image.entry());
        let via_port = kind.build_with_prefetch(4, image.entry(), &PrefetchConfig::none());
        let mut pa = Processor::new(pc, legacy, &cfg, &image, 7);
        let mut pb = Processor::new(pc, via_port, &cfg, &image, 7);
        for t in 0..40_000u64 {
            pa.cycle();
            pb.cycle();
            if t % 512 == 0 {
                assert_eq!(pa.stats(), pb.stats(), "{kind}: diverged by cycle {t}");
            }
        }
        assert_eq!(pa.stats(), pb.stats(), "{kind}: diverged");
        assert!(pa.stats().committed > 0, "{kind}: no progress");
        assert_eq!(pa.stats().prefetch, Default::default(), "{kind}: phantom prefetches");
    }
}

/// MSHRs without a policy keep (almost exactly) the blocking schedule:
/// isolated misses complete on the same cycle, so whole-run cycle counts
/// agree within a small tolerance (redirect-during-miss is the one
/// modeled difference).
#[test]
fn pipelined_demand_only_tracks_blocking_cycle_counts() {
    let cfg = ProgramGenerator::new(GenParams::small(), 11).generate();
    let image = CodeImage::build(&cfg, &layout::natural(&cfg));
    for kind in EngineKind::ALL {
        let run = |mshrs: usize| {
            let mut pc = ProcessorConfig::table2(4);
            if mshrs > 0 {
                pc.prefetch = PrefetchConfig { kind: PrefetchKind::None, mshrs, degree: 0 };
            }
            let engine = kind.build_with_prefetch(4, image.entry(), &pc.prefetch);
            let mut p = Processor::new(pc, engine, &cfg, &image, 3);
            p.run(40_000);
            p.stats()
        };
        let blocking = run(0);
        let piped = run(8);
        let ratio = piped.cycles as f64 / blocking.cycles as f64;
        assert!(
            (0.98..=1.02).contains(&ratio),
            "{kind}: pipelined demand-only drifted {ratio:.4}x off the blocking schedule \
             ({} vs {} cycles)",
            piped.cycles,
            blocking.cycles
        );
    }
}

/// The acceptance shape: on a program whose hot code overflows the 64KB
/// L1i, stream-directed prefetch cuts the stream engine's fetch-stall
/// cycles and does not hurt IPC.
#[test]
fn stream_directed_prefetch_reduces_stream_engine_fetch_stalls() {
    // 64 leaves × 12 blocks × 30 insts ≈ 92KB of cyclically-touched code.
    let cfg = sfetch_workloads::microbench::icache_walker(64);
    let image = CodeImage::build(&cfg, &layout::natural(&cfg));
    let run = |pf: PrefetchConfig| {
        let mut pc = ProcessorConfig::table2(8);
        pc.prefetch = pf;
        let engine = EngineKind::Stream.build_with_prefetch(8, image.entry(), &pf);
        let mut p = Processor::new(pc, engine, &cfg, &image, 9);
        p.run(30_000);
        p.reset_stats();
        p.run(120_000);
        p.stats()
    };
    let off = run(PrefetchConfig::none());
    let on = run(PrefetchConfig::enabled(PrefetchKind::StreamDirected));
    assert!(
        off.engine.icache_stall_cycles > 500,
        "workload does not stress the L1i (stall {} cycles) — test is vacuous",
        off.engine.icache_stall_cycles
    );
    assert!(
        on.engine.icache_stall_cycles < off.engine.icache_stall_cycles,
        "prefetch on did not reduce stalls: {} -> {}",
        off.engine.icache_stall_cycles,
        on.engine.icache_stall_cycles
    );
    assert!(on.prefetch.issued > 0, "no prefetches issued");
    assert!(on.prefetch.useful > 0, "no useful prefetches");
    assert!(
        on.ipc() >= off.ipc() * 0.98,
        "prefetch hurt IPC: {:.3} -> {:.3}",
        off.ipc(),
        on.ipc()
    );
}
