//! Golden-statistics regression harness: the seed suite's simulated
//! behaviour, pinned exactly.
//!
//! The repository's determinism story has so far lived in the BENCH
//! trajectory: `BENCH_3.json` and `BENCH_4.json` record bit-identical
//! per-engine `sim_cycles` (251057 / 268839 / 249240 / 244461 summed
//! over the ablation subset at 200k measured instructions), proving no
//! PR silently changed simulated behaviour — but a BENCH diff only
//! surfaces when someone regenerates the file and reads it. This test
//! moves that contract into tier-1: it snapshots the key [`SimStats`]
//! fields for **all four engines × all four seed-suite benchmarks**
//! under exactly the BENCH configuration (8-wide Table 2, optimized
//! layout, event back-end, no prefetch, 40k warmup + 200k measured) and
//! fails the build on any deviation.
//!
//! If a PR *intends* to change simulated behaviour (a timing-model fix,
//! a new default), regenerate the table with:
//!
//! ```text
//! cargo test --release -p sfetch-tests --test golden_stats -- --ignored --nocapture
//! ```
//!
//! paste the printed rows over `GOLDEN`, and say so in the PR — the
//! point is that the change is *declared*, never silent.

use sfetch_core::SimStats;
use sfetch_fetch::EngineKind;
use sfetch_workloads::{LayoutChoice, Suite};

/// The BENCH perfstats measurement window.
const WARMUP: u64 = 40_000;
const INSTS: u64 = 200_000;

/// The seed-suite subset the BENCH engine table measures, in order.
const BENCHES: [&str; 4] = ["gzip", "gcc", "crafty", "twolf"];

/// One pinned measurement: `(bench, engine_index-in-ALL, committed,
/// cycles, fetched_correct, branches, mispredictions, misfetches,
/// l1i_misses, l2_misses)`.
type GoldenRow = (&'static str, usize, u64, u64, u64, u64, u64, u64, u64, u64);

/// Regenerate with the `--ignored` printer below (see module docs).
const GOLDEN: [GoldenRow; 16] = [
    ("gzip", 0, 200000, 56710, 200249, 21452, 547, 1, 0, 37),
    ("gzip", 1, 200000, 62043, 200249, 21452, 441, 1, 0, 37),
    ("gzip", 2, 200000, 56193, 200249, 21452, 518, 1, 0, 37),
    ("gzip", 3, 200001, 54009, 200252, 21453, 538, 21, 0, 37),
    ("gcc", 0, 200007, 62405, 199956, 18412, 1112, 0, 0, 124),
    ("gcc", 1, 200000, 78194, 200040, 18412, 2660, 0, 0, 124),
    ("gcc", 2, 200000, 66222, 200159, 18412, 1327, 1, 0, 124),
    ("gcc", 3, 200000, 65042, 200006, 18412, 1494, 81, 0, 124),
    ("crafty", 0, 200001, 79674, 200102, 17555, 1628, 54, 67, 1540),
    ("crafty", 1, 200001, 74790, 200068, 17555, 1388, 58, 70, 1543),
    ("crafty", 2, 200001, 75006, 200105, 17555, 1452, 66, 70, 1543),
    ("crafty", 3, 200001, 75319, 200144, 17555, 1979, 309, 66, 1539),
    ("twolf", 0, 200007, 52268, 199994, 18528, 850, 1, 0, 84),
    ("twolf", 1, 200007, 53812, 199988, 18528, 998, 1, 0, 84),
    ("twolf", 2, 200007, 51819, 199994, 18528, 863, 1, 0, 84),
    ("twolf", 3, 200007, 50091, 200046, 18528, 1182, 86, 0, 84),
];

/// The BENCH_3/BENCH_4 per-engine `sim_cycles` totals over the subset —
/// the bit-identity anchor tying this harness to the recorded BENCH
/// trajectory.
const BENCH_SIM_CYCLES: [u64; 4] = [251_057, 268_839, 249_240, 244_461];

fn measure(suite: &Suite) -> Vec<(usize, usize, SimStats)> {
    let mut out = Vec::new();
    for (b, name) in BENCHES.iter().enumerate() {
        let w = suite.get(name).expect("subset member");
        for (e, &kind) in EngineKind::ALL.iter().enumerate() {
            let stats = sfetch_core::simulate(
                w.cfg(),
                w.image(LayoutChoice::Optimized),
                kind,
                sfetch_core::ProcessorConfig::table2(8),
                w.ref_seed(),
                WARMUP,
                INSTS,
            );
            out.push((b, e, stats));
        }
    }
    out
}

#[test]
fn seed_suite_stats_match_golden_snapshot() {
    let suite = Suite::build_subset(&BENCHES, sfetch_workloads::default_jobs());
    let measured = measure(&suite);

    let mut engine_cycles = [0u64; 4];
    for (b, e, stats) in &measured {
        let got: GoldenRow = (
            BENCHES[*b],
            *e,
            stats.committed,
            stats.cycles,
            stats.fetched_correct,
            stats.branches,
            stats.mispredictions,
            stats.misfetches,
            stats.l1i.misses,
            stats.l2.misses,
        );
        let want = GOLDEN[b * EngineKind::ALL.len() + e];
        assert_eq!(
            got, want,
            "{}/{}: simulated behaviour deviates from the golden snapshot — if this \
             change is intentional, regenerate GOLDEN (see module docs) and declare it",
            BENCHES[*b],
            EngineKind::ALL[*e]
        );
        engine_cycles[*e] += stats.cycles;
    }
    assert_eq!(
        engine_cycles, BENCH_SIM_CYCLES,
        "per-engine sim_cycles totals no longer match the BENCH_3/BENCH_4 record"
    );
}

/// Golden-table printer (not a test): run with `--ignored --nocapture`
/// and paste the output over `GOLDEN`.
#[test]
#[ignore = "generator: prints the golden table for manual regeneration"]
fn print_golden_table() {
    let suite = Suite::build_subset(&BENCHES, sfetch_workloads::default_jobs());
    for (b, e, s) in measure(&suite) {
        println!(
            "    ({:?}, {}, {}, {}, {}, {}, {}, {}, {}, {}),",
            BENCHES[b],
            e,
            s.committed,
            s.cycles,
            s.fetched_correct,
            s.branches,
            s.mispredictions,
            s.misfetches,
            s.l1i.misses,
            s.l2.misses
        );
    }
}
