//! Golden-statistics regression harness: the seed suite's simulated
//! behaviour, pinned exactly.
//!
//! The repository's determinism story has so far lived in the BENCH
//! trajectory: `BENCH_3.json` through `BENCH_8.json` record bit-identical
//! per-engine `sim_cycles` (251057 / 268839 / 249240 / 244461 summed
//! over the ablation subset at 200k measured instructions), proving no
//! PR silently changed simulated behaviour — but a BENCH diff only
//! surfaces when someone regenerates the file and reads it. This test
//! moves that contract into tier-1: it snapshots the key [`SimStats`]
//! fields for **all four engines × all four seed-suite benchmarks**
//! under exactly the BENCH configuration (8-wide Table 2, optimized
//! layout, event back-end, no prefetch, 40k warmup + 200k measured) and
//! fails the build on any deviation.
//!
//! Two tables are pinned:
//!
//! * [`GOLDEN`] — the **legacy shared front** ([`FrontPipeline::legacy`]):
//!   this is the bit-identity anchor tying the harness to the whole
//!   recorded BENCH trajectory, unchanged since BENCH_3.
//! * [`GOLDEN_FRONT`] — the **per-engine front models**
//!   ([`FrontPipeline::for_engine`]): the calibration behaviour BENCH_7's
//!   `front_pipeline` section records, pinned by [`FRONT_SIM_CYCLES`].
//!
//! Since the observability PR, each row also pins the full top-down
//! [`CycleBuckets`] decomposition (the trailing [`CycleBuckets::NAMES`]
//! columns of the payload array), and every window additionally asserts
//! the structural invariants `sum(buckets) == cycles` and
//! `watchdog_resyncs == 0` — the accounting attributes the seed suite's
//! every cycle without ever steering it.
//!
//! If a PR *intends* to change simulated behaviour (a timing-model fix,
//! a new default), regenerate the affected table with:
//!
//! ```text
//! cargo test --release -p sfetch-tests --test golden_stats -- --ignored --nocapture
//! ```
//!
//! paste the printed rows over `GOLDEN` / `GOLDEN_FRONT`, and say so in
//! the PR — the point is that the change is *declared*, never silent.

use sfetch_core::{CycleBuckets, FrontPipeline, SimStats};
use sfetch_fetch::EngineKind;
use sfetch_workloads::{LayoutChoice, Suite};

/// The BENCH perfstats measurement window.
const WARMUP: u64 = 40_000;
const INSTS: u64 = 200_000;

/// The seed-suite subset the BENCH engine table measures, in order.
const BENCHES: [&str; 4] = ["gzip", "gcc", "crafty", "twolf"];

/// Number of pinned counters per row: committed, cycles,
/// fetched_correct, branches, mispredictions, misfetches, l1i_misses,
/// l2_misses, fetch_hold_cycles, shadow_installs, then the 11
/// [`CycleBuckets::NAMES`] buckets in order.
const COLS: usize = 10 + CycleBuckets::NAMES.len();

/// One pinned measurement: `(bench, engine_index-in-ALL, counters)`,
/// with the counter columns listed at [`COLS`].
type GoldenRow = (&'static str, usize, [u64; COLS]);

/// Legacy-front table. Regenerate with the `--ignored` printer below
/// (see module docs). The first ten columns are unchanged since the
/// front-pipeline PR (and columns 0–7 since BENCH_3); the trailing
/// eleven are the cycle-accounting buckets.
const GOLDEN: [GoldenRow; 16] = [
    ("gzip", 0, [200000, 56710, 200249, 21452, 547, 1, 0, 37, 2, 0, 54675, 1381, 283, 0, 0, 0, 0, 0, 0, 371, 0]),
    ("gzip", 1, [200000, 62043, 200249, 21452, 441, 1, 0, 37, 2, 0, 59944, 1320, 525, 0, 0, 0, 0, 0, 0, 254, 0]),
    ("gzip", 2, [200000, 56193, 200249, 21452, 518, 1, 0, 37, 2, 0, 54313, 1317, 326, 0, 0, 0, 0, 0, 0, 237, 0]),
    ("gzip", 3, [200001, 54009, 200252, 21453, 538, 21, 0, 37, 42, 0, 52282, 1043, 452, 3, 0, 0, 0, 0, 0, 229, 0]),
    ("gcc", 0, [200007, 62405, 199956, 18412, 1112, 0, 0, 124, 0, 0, 45993, 4335, 10587, 0, 0, 0, 0, 0, 0, 1490, 0]),
    ("gcc", 1, [200000, 78194, 200040, 18412, 2660, 0, 0, 124, 0, 0, 55779, 10481, 4602, 0, 0, 0, 0, 0, 0, 7332, 0]),
    ("gcc", 2, [200000, 66222, 200159, 18412, 1327, 1, 0, 124, 2, 0, 48822, 4511, 10174, 0, 0, 0, 0, 0, 0, 2715, 0]),
    ("gcc", 3, [200000, 65042, 200006, 18412, 1494, 81, 0, 124, 162, 0, 48000, 4865, 9222, 62, 0, 0, 0, 0, 0, 2893, 0]),
    ("crafty", 0, [200001, 79674, 200102, 17555, 1628, 54, 67, 1540, 108, 0, 46779, 10600, 11549, 105, 0, 0, 4331, 0, 0, 6310, 0]),
    ("crafty", 1, [200001, 74790, 200068, 17555, 1388, 58, 70, 1543, 116, 0, 42089, 7182, 15901, 107, 0, 0, 4338, 0, 0, 5173, 0]),
    ("crafty", 2, [200001, 75006, 200105, 17555, 1452, 66, 70, 1543, 132, 0, 41934, 6974, 16113, 115, 0, 0, 4447, 0, 0, 5423, 0]),
    ("crafty", 3, [200001, 75319, 200144, 17555, 1979, 309, 66, 1539, 618, 0, 41540, 6670, 14844, 319, 0, 0, 4335, 0, 0, 7611, 0]),
    ("twolf", 0, [200007, 52268, 199994, 18528, 850, 1, 0, 84, 2, 0, 32617, 11318, 4908, 0, 0, 0, 0, 0, 0, 3425, 0]),
    ("twolf", 1, [200007, 53812, 199988, 18528, 998, 1, 0, 84, 2, 0, 33073, 11439, 4679, 2, 0, 0, 0, 0, 0, 4619, 0]),
    ("twolf", 2, [200007, 51819, 199994, 18528, 863, 1, 0, 84, 2, 0, 32647, 10888, 4743, 0, 0, 0, 0, 0, 0, 3541, 0]),
    ("twolf", 3, [200007, 50091, 200046, 18528, 1182, 86, 0, 84, 172, 0, 32133, 8435, 5235, 73, 0, 0, 0, 0, 0, 4215, 0]),
];

/// Per-engine-front table: the same grid measured with
/// [`FrontPipeline::for_engine`]. Regenerate with the `--ignored`
/// printer below.
const GOLDEN_FRONT: [GoldenRow; 16] = [
    ("gzip", 0, [200000, 59549, 200249, 21452, 543, 1, 0, 37, 3266, 0, 56528, 1772, 255, 0, 507, 0, 0, 0, 0, 487, 0]),
    ("gzip", 1, [200000, 60920, 200249, 21452, 441, 1, 0, 37, 884, 1, 59088, 1058, 509, 0, 92, 0, 0, 0, 0, 173, 0]),
    ("gzip", 2, [200000, 54087, 200249, 21452, 518, 1, 0, 37, 519, 0, 52686, 974, 299, 0, 7, 0, 0, 0, 0, 121, 0]),
    ("gzip", 3, [200001, 54527, 200252, 21453, 558, 16, 0, 37, 2267, 0, 52555, 1090, 445, 3, 212, 0, 0, 0, 0, 222, 0]),
    ("gcc", 0, [200007, 68272, 200028, 18412, 1110, 0, 0, 124, 6660, 0, 48927, 5623, 9816, 0, 1631, 0, 0, 0, 0, 2275, 0]),
    ("gcc", 1, [200000, 73032, 200032, 18412, 2665, 0, 0, 124, 5330, 0, 53395, 9550, 4569, 0, 1452, 0, 0, 0, 0, 4066, 0]),
    ("gcc", 2, [200000, 61306, 200009, 18412, 1374, 1, 0, 124, 1375, 0, 45960, 3835, 9754, 0, 299, 0, 0, 0, 0, 1458, 0]),
    ("gcc", 3, [200004, 66961, 200126, 18412, 1587, 86, 0, 124, 6520, 0, 48591, 5709, 8219, 48, 1413, 0, 0, 0, 0, 2981, 0]),
    ("crafty", 0, [200001, 88379, 200136, 17555, 1587, 53, 69, 1542, 9681, 0, 48962, 13681, 10252, 155, 3578, 0, 4240, 0, 0, 7511, 0]),
    ("crafty", 1, [200000, 72086, 200071, 17555, 1395, 38, 68, 1541, 2828, 69, 41638, 6648, 15194, 34, 775, 0, 4324, 0, 0, 3473, 0]),
    ("crafty", 2, [200000, 69897, 200105, 17555, 1465, 66, 67, 1540, 1531, 0, 40612, 5665, 15624, 55, 470, 0, 4417, 0, 0, 3054, 0]),
    ("crafty", 3, [200002, 79043, 200114, 17555, 1947, 306, 60, 1532, 8401, 82, 42158, 7602, 14743, 345, 2642, 0, 4356, 0, 0, 7197, 0]),
    ("twolf", 0, [200007, 57908, 200003, 18528, 849, 1, 0, 84, 5097, 0, 32737, 14615, 4640, 3, 1680, 0, 0, 0, 0, 4233, 0]),
    ("twolf", 1, [200007, 51705, 199977, 18528, 995, 0, 0, 84, 1990, 0, 32928, 11004, 4576, 0, 525, 0, 0, 0, 0, 2672, 0]),
    ("twolf", 2, [200007, 48453, 199969, 18528, 869, 1, 0, 84, 870, 0, 32443, 9180, 4706, 1, 415, 0, 0, 0, 0, 1708, 0]),
    ("twolf", 3, [200007, 52637, 200038, 18528, 1199, 57, 1, 85, 4910, 4, 32609, 9658, 5061, 55, 1357, 0, 81, 0, 0, 3816, 0]),
];

/// The BENCH_3..BENCH_8 per-engine `sim_cycles` totals over the subset
/// under the legacy front — the bit-identity anchor tying this harness
/// to the recorded BENCH trajectory.
const BENCH_SIM_CYCLES: [u64; 4] = [251_057, 268_839, 249_240, 244_461];

/// BENCH_7's `front_pipeline.sim_cycles` per-engine totals: the same
/// subset measured under [`FrontPipeline::for_engine`].
const FRONT_SIM_CYCLES: [u64; 4] = [274_108, 257_743, 233_743, 253_168];

/// Front-model selector for one measurement sweep.
fn front_for(kind: EngineKind, per_engine: bool) -> FrontPipeline {
    if per_engine { FrontPipeline::for_engine(kind) } else { FrontPipeline::legacy() }
}

fn measure(suite: &Suite, per_engine_front: bool) -> Vec<(usize, usize, SimStats)> {
    let mut out = Vec::new();
    for (b, name) in BENCHES.iter().enumerate() {
        let w = suite.get(name).expect("subset member");
        for (e, &kind) in EngineKind::ALL.iter().enumerate() {
            let mut pc = sfetch_core::ProcessorConfig::table2(8);
            pc.front = front_for(kind, per_engine_front);
            let stats = sfetch_core::simulate(
                w.cfg(),
                w.image(LayoutChoice::Optimized),
                kind,
                pc,
                w.ref_seed(),
                WARMUP,
                INSTS,
            );
            out.push((b, e, stats));
        }
    }
    out
}

fn to_row(b: usize, e: usize, stats: &SimStats) -> GoldenRow {
    let mut cols = [0u64; COLS];
    cols[..10].copy_from_slice(&[
        stats.committed,
        stats.cycles,
        stats.fetched_correct,
        stats.branches,
        stats.mispredictions,
        stats.misfetches,
        stats.l1i.misses,
        stats.l2.misses,
        stats.fetch_hold_cycles,
        stats.engine.shadow_installs,
    ]);
    cols[10..].copy_from_slice(&stats.buckets.to_array());
    (BENCHES[b], e, cols)
}

fn check_table(
    measured: &[(usize, usize, SimStats)],
    golden: &[GoldenRow; 16],
    anchor: &[u64; 4],
    what: &str,
) {
    let mut engine_cycles = [0u64; 4];
    for (b, e, stats) in measured {
        assert_eq!(
            stats.buckets.sum(),
            stats.cycles,
            "{}/{} [{what}]: cycle accounting must attribute every cycle",
            BENCHES[*b],
            EngineKind::ALL[*e]
        );
        assert_eq!(
            stats.watchdog_resyncs, 0,
            "{}/{} [{what}]: the seed suite must run without watchdog resyncs",
            BENCHES[*b],
            EngineKind::ALL[*e]
        );
        let got = to_row(*b, *e, stats);
        let want = golden[b * EngineKind::ALL.len() + e];
        assert_eq!(
            got, want,
            "{}/{} [{what}]: simulated behaviour deviates from the golden snapshot — if \
             this change is intentional, regenerate the table (see module docs) and \
             declare it",
            BENCHES[*b],
            EngineKind::ALL[*e]
        );
        engine_cycles[*e] += stats.cycles;
    }
    assert_eq!(
        &engine_cycles, anchor,
        "[{what}] per-engine sim_cycles totals no longer match the BENCH record"
    );
}

#[test]
fn seed_suite_stats_match_golden_snapshot() {
    let suite = Suite::build_subset(&BENCHES, sfetch_workloads::default_jobs());
    check_table(&measure(&suite, false), &GOLDEN, &BENCH_SIM_CYCLES, "legacy front");
}

#[test]
fn seed_suite_stats_match_golden_snapshot_per_engine_front() {
    let suite = Suite::build_subset(&BENCHES, sfetch_workloads::default_jobs());
    check_table(
        &measure(&suite, true),
        &GOLDEN_FRONT,
        &FRONT_SIM_CYCLES,
        "per-engine front",
    );
}

/// Golden-table printer (not a test): run with `--ignored --nocapture`
/// and paste the output over `GOLDEN` / `GOLDEN_FRONT` (and the summed
/// `FRONT_SIM_CYCLES`).
#[test]
#[ignore = "generator: prints both golden tables for manual regeneration"]
fn print_golden_table() {
    let suite = Suite::build_subset(&BENCHES, sfetch_workloads::default_jobs());
    for (per_engine, label) in [(false, "GOLDEN"), (true, "GOLDEN_FRONT")] {
        println!("// {label}:");
        let mut engine_cycles = [0u64; 4];
        for (b, e, s) in measure(&suite, per_engine) {
            let (bench, engine, cols) = to_row(b, e, &s);
            let cols: Vec<String> = cols.iter().map(u64::to_string).collect();
            println!("    ({bench:?}, {engine}, [{}]),", cols.join(", "));
            engine_cycles[e] += s.cycles;
        }
        println!("// {label} per-engine sim_cycles: {engine_cycles:?}");
    }
}
