//! Cross-crate correctness: whatever the front-end speculates, the committed
//! path must equal the architectural executor's, for every engine, layout
//! and width — and be bit-for-bit deterministic.

use sfetch_core::{Processor, ProcessorConfig};
use sfetch_fetch::EngineKind;
use sfetch_isa::BranchKind;
use sfetch_tests::{sim, test_workload};
use sfetch_trace::Executor;
use sfetch_workloads::LayoutChoice;

#[test]
fn committed_branch_counts_match_the_executor() {
    let w = test_workload(77);
    let n = 120_000u64;
    for layout in [LayoutChoice::Base, LayoutChoice::Optimized] {
        // Ground truth from the executor.
        let image = w.image(layout);
        let mut conds = 0u64;
        let mut taken = 0u64;
        for d in Executor::new(w.cfg(), image, w.ref_seed()).take(n as usize) {
            if let Some(c) = d.control {
                if c.kind == BranchKind::Cond {
                    conds += 1;
                    taken += u64::from(c.taken);
                }
            }
        }
        for kind in EngineKind::ALL {
            let engine = kind.build(4, image.entry());
            let mut p = Processor::new(ProcessorConfig::table2(4), engine, w.cfg(), image, w.ref_seed());
            p.run(n);
            let s = p.stats();
            assert_eq!(s.cond_branches, conds, "{kind}/{layout}: cond count diverged");
            assert_eq!(s.cond_taken, taken, "{kind}/{layout}: taken count diverged");
        }
    }
}

#[test]
fn simulation_is_bit_deterministic() {
    let w = test_workload(5);
    for kind in EngineKind::ALL {
        let a = sim(&w, kind, LayoutChoice::Optimized, 8, 80_000);
        let b = sim(&w, kind, LayoutChoice::Optimized, 8, 80_000);
        assert_eq!(a, b, "{kind}: repeated runs must be identical");
    }
}

#[test]
fn different_ref_seeds_change_results() {
    let w = test_workload(5);
    let a = sim(&w, EngineKind::Stream, LayoutChoice::Base, 4, 60_000);
    let w2 = {
        // Same program, different measurement input.
        let mut p = sfetch_cfg::gen::GenParams::default_int();
        p.n_funcs = 50;
        p.blocks_per_func = (12, 50);
        let cfg = sfetch_cfg::gen::ProgramGenerator::new(p, 5).generate();
        sfetch_workloads::Workload::from_cfg("itest", cfg, 16, 9999)
    };
    let b = sim(&w2, EngineKind::Stream, LayoutChoice::Base, 4, 60_000);
    assert_ne!(a.cycles, b.cycles, "different inputs should differ in timing");
}

#[test]
fn every_width_commits_the_requested_window() {
    let w = test_workload(21);
    for width in [2usize, 4, 8] {
        let s = sim(&w, EngineKind::Ftb, LayoutChoice::Optimized, width, 50_000);
        assert!(s.committed >= 50_000 && s.committed < 50_000 + width as u64);
        assert!(s.ipc() <= width as f64 + 1e-9, "IPC cannot exceed width");
    }
}

#[test]
fn fetch_ipc_never_below_ipc() {
    // Every committed instruction was fetched on the correct path, so fetch
    // bandwidth (per active cycle) must dominate commit bandwidth (per all
    // cycles).
    let w = test_workload(33);
    for kind in EngineKind::ALL {
        let s = sim(&w, kind, LayoutChoice::Base, 8, 80_000);
        assert!(
            s.fetch_ipc() >= s.ipc() * 0.99,
            "{kind}: fetch IPC {:.2} below IPC {:.2}",
            s.fetch_ipc(),
            s.ipc()
        );
    }
}

#[test]
fn random_layout_is_worse_than_optimized_for_streams() {
    // The pessimal direction of the layout experiments: a shuffled layout
    // must lose to the Pettis–Hansen one, and must execute strictly more
    // fix-up jumps (a structural property, immune to timing noise).
    let w = test_workload(44);
    let cfg = w.cfg();
    let random_img = sfetch_cfg::CodeImage::build(cfg, &sfetch_cfg::layout::random(cfg, 3));
    let opt = sim(&w, EngineKind::Stream, LayoutChoice::Optimized, 8, 150_000);
    let rand_stats = sfetch_core::simulate(
        cfg,
        &random_img,
        EngineKind::Stream,
        ProcessorConfig::table2(8),
        w.ref_seed(),
        30_000,
        150_000,
    );
    let n = 100_000usize;
    let fixup_frac = |img: &sfetch_cfg::CodeImage| {
        Executor::new(cfg, img, w.ref_seed())
            .take(n)
            .filter(|d| d.control.is_some_and(|c| c.is_fixup))
            .count() as f64
            / n as f64
    };
    let rand_fixups = fixup_frac(&random_img);
    let opt_fixups = fixup_frac(w.image(LayoutChoice::Optimized));
    assert!(
        rand_fixups > opt_fixups,
        "random layout must execute more fix-up jumps ({rand_fixups:.3} vs {opt_fixups:.3})"
    );
    // Raw IPC counts the fix-up jumps a bad layout *adds* as work; compare
    // useful (non-fixup) instructions per cycle instead.
    let useful_rand = rand_stats.ipc() * (1.0 - rand_fixups);
    let useful_opt = opt.ipc() * (1.0 - opt_fixups);
    assert!(
        useful_rand < useful_opt,
        "random layout useful-IPC ({useful_rand:.3}) must lose to optimized ({useful_opt:.3})"
    );
}
