//! Property tests over the fleet cell ledger (`sfetch_fleet::Ledger`):
//! the file-backed state machine is driven through random operation
//! sequences against a pure in-memory model, then re-opened (replayed)
//! and checked again — so crash recovery is exercised on every case.
//!
//! The three load-bearing invariants from the fleet design:
//!
//! * **double-lease exclusion** — a live lease can never be granted
//!   twice, but an *expired* lease is re-offered with its attempt count
//!   preserved (an interrupted worker is not the cell's fault);
//! * **replay equivalence** — dropping the ledger mid-run (a killed
//!   parent) and re-opening it reproduces exactly the modeled state;
//! * **resume idempotence** — `Done` cells whose outputs still verify
//!   are never offered for recomputation, across any number of reopens.

use std::path::PathBuf;

use proptest::prelude::*;

use sfetch_fleet::{fnv64, CellId, CellState, Ledger};

/// Retry budget used throughout: a cell is attempted at most 3 times.
const MAX_RETRIES: u32 = 2;
const N_CELLS: usize = 3;
const CONFIG: u64 = 0xfee7;

#[derive(Debug, Clone)]
enum Op {
    /// Try to lease cell `cell` for `dur_ms`.
    Lease { cell: usize, dur_ms: u64 },
    /// Try to complete cell `cell` (writes its output file first).
    Complete { cell: usize },
    /// Try to charge a failure with `backoff_ms` retry backoff.
    Fail { cell: usize, backoff_ms: u64 },
    /// Let wall-clock time pass.
    Advance { ms: u64 },
}

/// The vendored proptest stand-in has no `prop_oneof`/`prop_map`, so
/// ops are generated as raw `(kind, cell, amount)` tuples and decoded.
fn decode(raw: (u32, usize, u64)) -> Op {
    let (kind, cell, amount) = raw;
    match kind % 4 {
        0 => Op::Lease { cell, dur_ms: amount.max(1) },
        1 => Op::Complete { cell },
        2 => Op::Fail { cell, backoff_ms: amount % 300 },
        _ => Op::Advance { ms: amount % 400 + 1 },
    }
}

/// The pure model of one cell's state.
#[derive(Debug, Clone, PartialEq)]
enum Model {
    Pending { attempts: u32, not_before: u64 },
    Leased { attempt: u32, deadline: u64 },
    Done { digest: u64 },
    Failed { attempts: u32 },
}

fn assert_matches_model(ledger: &Ledger, cells: &[CellId], model: &[Model]) {
    for (cell, m) in cells.iter().zip(model) {
        let state = ledger.state(cell).expect("known cell");
        let ok = match (m, state) {
            (
                Model::Pending { attempts, not_before },
                CellState::Pending { attempts: a, not_before_ms },
            ) => attempts == a && not_before == not_before_ms,
            (
                Model::Leased { attempt, deadline },
                CellState::Leased { attempt: a, deadline_ms, .. },
            ) => attempt == a && deadline == deadline_ms,
            (Model::Done { digest }, CellState::Done { digest: d, .. }) => digest == d,
            (Model::Failed { attempts }, CellState::Failed { attempts: a, .. }) => attempts == a,
            _ => false,
        };
        assert!(ok, "cell {cell}: model {m:?} != ledger {state:?}");
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sfetch-pledger-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mk tmp");
    dir
}

fn validate(text: &str) -> Result<u64, String> {
    Ok(fnv64(text.as_bytes()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random op sequences: every transition's outcome (including every
    /// rejection) must match the model, and a reopen after the sequence
    /// — the killed-parent path — must replay to the modeled state with
    /// every surviving `Done` cell resumed, not recomputed.
    #[test]
    fn ledger_matches_model_and_survives_reopen(
        raw_ops in proptest::collection::vec((0u32..4, 0usize..N_CELLS, 1u64..500), 1..60),
        case in 0u64..1_000_000,
    ) {
        let ops: Vec<Op> = raw_ops.into_iter().map(decode).collect();
        let dir = fresh_dir(&format!("model-{case}"));
        let cells: Vec<CellId> =
            (0..N_CELLS).map(|i| CellId::new("eng", 4, i as u64, i as u64 + 1)).collect();
        let mut now: u64 = 1_000;
        let (mut ledger, summary) =
            Ledger::open(dir.join("l.ledger"), CONFIG, &cells, now, &validate).expect("open");
        prop_assert_eq!(summary.replayed_events, 0);
        let mut model: Vec<Model> =
            vec![Model::Pending { attempts: 0, not_before: 0 }; N_CELLS];

        for op in &ops {
            match *op {
                Op::Advance { ms } => now += ms,
                Op::Lease { cell, dur_ms } => {
                    let deadline = now + dur_ms;
                    let expect = match model[cell] {
                        Model::Pending { attempts, not_before } if not_before <= now => {
                            Some(attempts)
                        }
                        // Double-lease exclusion: only an expired lease
                        // may be re-granted, attempt preserved.
                        Model::Leased { attempt, deadline: d } if d <= now => Some(attempt),
                        _ => None,
                    };
                    let got = ledger.lease(&cells[cell], 7, deadline, now);
                    match expect {
                        Some(attempt) => {
                            prop_assert_eq!(got.expect("lease should succeed"), attempt);
                            model[cell] = Model::Leased { attempt, deadline };
                        }
                        None => prop_assert!(got.is_err(), "lease should be rejected"),
                    }
                }
                Op::Complete { cell } => {
                    let text = format!("output of cell {cell}\n");
                    let digest = fnv64(text.as_bytes());
                    let out = dir.join(format!("c{cell}.out"));
                    std::fs::write(&out, &text).expect("write out");
                    let got = ledger.complete(&cells[cell], digest, &out, 5, text);
                    match model[cell] {
                        Model::Leased { .. } => {
                            got.expect("complete should succeed");
                            model[cell] = Model::Done { digest };
                        }
                        _ => prop_assert!(got.is_err(), "complete requires a lease"),
                    }
                }
                Op::Fail { cell, backoff_ms } => {
                    let not_before = now + backoff_ms;
                    let got = ledger.fail(&cells[cell], "injected", not_before, MAX_RETRIES);
                    match model[cell] {
                        Model::Leased { attempt, .. } => {
                            let attempts = attempt + 1;
                            let permanent = attempts > MAX_RETRIES;
                            prop_assert_eq!(got.expect("fail should succeed"), permanent);
                            model[cell] = if permanent {
                                Model::Failed { attempts }
                            } else {
                                Model::Pending { attempts, not_before }
                            };
                        }
                        _ => prop_assert!(got.is_err(), "fail requires a lease"),
                    }
                }
            }
            assert_matches_model(&ledger, &cells, &model);

            // A Done or Failed cell must never be claimable again.
            for (i, m) in model.iter().enumerate() {
                if matches!(m, Model::Done { .. } | Model::Failed { .. }) {
                    prop_assert_ne!(
                        ledger.next_claimable(now + (1 << 40)),
                        Some(cells[i].clone())
                    );
                }
            }
        }

        // Parent "killed" here: drop the ledger and replay the file.
        let done_cells =
            model.iter().filter(|m| matches!(m, Model::Done { .. })).count() as u64;
        drop(ledger);
        let (reopened, summary) =
            Ledger::open(dir.join("l.ledger"), CONFIG, &cells, now, &validate).expect("reopen");
        // Expiry applies at reopen: leases past their deadline demote to
        // Pending without charging the interrupted attempt.
        let mut resumed_model = model.clone();
        for m in &mut resumed_model {
            if let Model::Leased { attempt, deadline } = *m {
                if deadline <= now {
                    *m = Model::Pending { attempts: attempt, not_before: 0 };
                }
            }
        }
        assert_matches_model(&reopened, &cells, &resumed_model);
        prop_assert_eq!(summary.resumed_done, done_cells, "every Done output re-verified");
        prop_assert_eq!(summary.invalidated, 0);

        // Reopen idempotence: a second replay changes nothing more.
        drop(reopened);
        let (again, summary2) =
            Ledger::open(dir.join("l.ledger"), CONFIG, &cells, now, &validate).expect("reopen 2");
        assert_matches_model(&again, &cells, &resumed_model);
        prop_assert_eq!(summary2.resumed_done, done_cells);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Resume-after-kill idempotence, sharpened: complete a random
    /// subset of cells, kill the parent, corrupt a random subset of the
    /// completed outputs — reopen must keep exactly the intact ones and
    /// demote exactly the corrupted ones.
    #[test]
    fn resume_keeps_intact_outputs_and_demotes_corrupt_ones(
        complete_mask in proptest::collection::vec(any::<bool>(), N_CELLS..N_CELLS + 1),
        corrupt_mask in proptest::collection::vec(any::<bool>(), N_CELLS..N_CELLS + 1),
        case in 0u64..1_000_000,
    ) {
        let dir = fresh_dir(&format!("resume-{case}"));
        let cells: Vec<CellId> =
            (0..N_CELLS).map(|i| CellId::new("eng", 8, i as u64, i as u64 + 1)).collect();
        let (mut ledger, _) =
            Ledger::open(dir.join("l.ledger"), CONFIG, &cells, 0, &validate).expect("open");
        for (i, done) in complete_mask.iter().enumerate() {
            if *done {
                let text = format!("cell {i} points\n");
                let out = dir.join(format!("c{i}.out"));
                std::fs::write(&out, &text).expect("write out");
                ledger.lease(&cells[i], 1, 10_000, 0).expect("lease");
                ledger
                    .complete(&cells[i], fnv64(text.as_bytes()), &out, 1, text)
                    .expect("complete");
            }
        }
        drop(ledger); // kill

        let mut expect_resumed = 0u64;
        let mut expect_invalidated = 0u64;
        for i in 0..N_CELLS {
            if complete_mask[i] {
                if corrupt_mask[i] {
                    std::fs::write(dir.join(format!("c{i}.out")), "rotted").expect("corrupt");
                    expect_invalidated += 1;
                } else {
                    expect_resumed += 1;
                }
            }
        }
        let (reopened, summary) =
            Ledger::open(dir.join("l.ledger"), CONFIG, &cells, 1, &validate).expect("reopen");
        prop_assert_eq!(summary.resumed_done, expect_resumed);
        prop_assert_eq!(summary.invalidated, expect_invalidated);
        for i in 0..N_CELLS {
            let state = reopened.state(&cells[i]).expect("state");
            if complete_mask[i] && !corrupt_mask[i] {
                prop_assert!(
                    matches!(state, CellState::Done { .. }),
                    "intact output stays Done"
                );
            } else {
                prop_assert!(
                    matches!(state, CellState::Pending { .. }),
                    "corrupt or never-run cell is Pending"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
