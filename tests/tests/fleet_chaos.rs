//! Fault-injection integration tests for the fleet supervisor
//! (`sfetch_fleet::run_fleet`) over **real OS processes**: shell-script
//! workers that crash, truncate their output, lie about their exit
//! status, or hang without heartbeating. The supervisor must converge
//! every time to output byte-identical with a fault-free run, and a
//! completed ledger must resume with zero recomputation.
//!
//! (The in-crate supervisor tests script workers in-process; these run
//! the `ProcessLauncher` path end-to-end — spawn, kill, exit-status
//! plumbing — which only exists on a real shell, hence `cfg(unix)`.)
#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::Command;

use sfetch_fleet::{
    fnv64, now_ms, run_fleet, CellId, FleetConfig, FleetReport, Ledger, ProcessLauncher,
    ResumeSummary,
};

const CONFIG: u64 = 0xc4a05;

/// A worker output is valid iff it carries both the header and the
/// terminator — so a truncated write is detectable, like the sealed
/// shard trailer in production.
fn validate(text: &str) -> Result<u64, String> {
    if text.starts_with("DATA ") && text.ends_with("END\n") {
        Ok(fnv64(text.as_bytes()))
    } else {
        Err("missing DATA header or END terminator".into())
    }
}

/// The canonical (fault-free) worker script: heartbeat once, then write
/// the cell's output atomically (temp + rename), exit 0. The output
/// depends only on the cell — the idempotence contract real cells get
/// from checkpointed windows.
fn good_script(cell: &CellId, out: &Path, hb: &Path) -> String {
    format!(
        "touch '{hb}'; printf 'DATA %s\\nEND\\n' '{cell}' > '{out}.part' && \
         mv '{out}.part' '{out}'",
        hb = hb.display(),
        out = out.display(),
    )
}

fn sh(script: String) -> Command {
    let mut cmd = Command::new("sh");
    cmd.arg("-c").arg(script);
    cmd
}

fn fast_cfg() -> FleetConfig {
    let mut cfg = FleetConfig::new(2);
    cfg.max_retries = 2;
    cfg.timeout_floor_ms = 5_000;
    cfg.timeout_initial_ms = 5_000;
    cfg.heartbeat_stale_ms = 5_000;
    cfg.backoff_base_ms = 2;
    cfg.backoff_cap_ms = 10;
    cfg.poll_ms = 5;
    cfg
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sfetch-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mk tmp");
    dir
}

fn open_ledger(dir: &Path, cells: &[CellId]) -> (Ledger, ResumeSummary) {
    Ledger::open(dir.join("cells.ledger"), CONFIG, cells, now_ms(), &validate).expect("open")
}

/// Runs the fleet with a per-(cell, attempt) script chooser.
fn run_scripted(
    dir: &Path,
    cells: &[CellId],
    cfg: &FleetConfig,
    script_for: impl Fn(&CellId, u32, &Path, &Path) -> String,
) -> FleetReport {
    let (mut ledger, resume) = open_ledger(dir, cells);
    let launcher = ProcessLauncher::new(|cell: &CellId, attempt: u32, out: &Path, hb: &Path| {
        sh(script_for(cell, attempt, out, hb))
    });
    run_fleet(cfg, &mut ledger, &launcher, &validate, resume, &mut |_msg| {}).expect("run_fleet")
}

fn done_texts(report: &FleetReport) -> Vec<(String, String)> {
    report.done.iter().map(|d| (d.cell.to_string(), d.text.clone())).collect()
}

/// Every first attempt misbehaves — one cell per fault mode — yet the
/// fleet converges and the merged output is byte-identical to a
/// fault-free run of the same cells.
#[test]
fn faulty_first_attempts_converge_to_identical_output() {
    // The engine name selects the fault injected at attempt 0.
    let cells = vec![
        CellId::new("crash", 4, 0, 1),
        CellId::new("truncate", 4, 0, 1),
        CellId::new("corrupt", 4, 0, 1),
        CellId::new("clean", 4, 0, 1),
    ];
    let chaos_dir = fresh_dir("faults");
    let chaos = run_scripted(&chaos_dir, &cells, &fast_cfg(), |cell, attempt, out, hb| {
        if attempt == 0 {
            match cell.engine.as_str() {
                "crash" => "exit 9".to_owned(),
                "truncate" => format!(
                    // Writes the header but never the END terminator.
                    "printf 'DATA %s\\n' '{cell}' > '{out}'",
                    out = out.display()
                ),
                "corrupt" => format!(
                    "printf 'GARBAGE\\nEND\\n' > '{out}'",
                    out = out.display()
                ),
                _ => good_script(cell, out, hb),
            }
        } else {
            good_script(cell, out, hb)
        }
    });

    let clean_dir = fresh_dir("clean");
    let clean = run_scripted(&clean_dir, &cells, &fast_cfg(), |cell, _attempt, out, hb| {
        good_script(cell, out, hb)
    });

    assert!(chaos.incomplete.is_empty(), "all cells must converge: {:?}", chaos.incomplete);
    assert_eq!(chaos.retries, 3, "crash, truncate and corrupt each cost one retry");
    assert_eq!(
        done_texts(&chaos),
        done_texts(&clean),
        "chaos and fault-free runs must merge byte-identically"
    );
    let _ = std::fs::remove_dir_all(&chaos_dir);
    let _ = std::fs::remove_dir_all(&clean_dir);
}

/// Satellite (c): a worker that leaves a perfectly valid output file but
/// exits nonzero is a *failed* cell — exit status wins — and the retry
/// recomputes it.
#[test]
fn lying_exit_status_fails_the_cell_despite_valid_output() {
    let cells = vec![CellId::new("liar", 8, 0, 2)];
    let dir = fresh_dir("liar");
    let report = run_scripted(&dir, &cells, &fast_cfg(), |cell, attempt, out, hb| {
        let good = good_script(cell, out, hb);
        if attempt == 0 {
            format!("{good}; exit 7")
        } else {
            good
        }
    });
    assert_eq!(report.done.len(), 1);
    assert_eq!(report.done[0].attempts, 1, "first attempt must not be trusted");
    assert_eq!(report.retries, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A hung worker that never heartbeats is killed on staleness and the
/// cell recovered by a retry.
#[test]
fn hung_worker_is_killed_and_recovered() {
    let cells = vec![CellId::new("slow", 4, 0, 1)];
    let dir = fresh_dir("hang");
    let mut cfg = fast_cfg();
    cfg.timeout_floor_ms = 400;
    cfg.timeout_initial_ms = 400;
    cfg.heartbeat_stale_ms = 300;
    let report = run_scripted(&dir, &cells, &cfg, |cell, attempt, out, hb| {
        if attempt == 0 {
            "sleep 60".to_owned() // never writes, never heartbeats
        } else {
            good_script(cell, out, hb)
        }
    });
    assert_eq!(report.done.len(), 1, "recovered after the kill");
    assert!(report.kills >= 1, "the straggler must have been killed");
    assert!(report.done[0].attempts >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A completed ledger resumed by a fresh supervisor run spawns zero
/// workers: every cell re-verifies and is carried over byte-identically.
#[test]
fn completed_run_resumes_with_zero_recompute() {
    let cells = vec![
        CellId::new("a", 4, 0, 1),
        CellId::new("a", 4, 1, 2),
        CellId::new("b", 8, 0, 1),
    ];
    let dir = fresh_dir("resume");
    let first = run_scripted(&dir, &cells, &fast_cfg(), |cell, _attempt, out, hb| {
        good_script(cell, out, hb)
    });
    assert_eq!(first.done.len(), 3);

    // Second run over the same ledger: any spawn would corrupt the
    // "zero recompute" guarantee, so the script is a tripwire.
    let second = run_scripted(&dir, &cells, &fast_cfg(), |_cell, _attempt, _out, _hb| {
        "echo 'must never spawn' >&2; exit 99".to_owned()
    });
    assert_eq!(second.spawned, 0, "resume must not spawn workers");
    assert_eq!(second.resumed_done, 3);
    assert!(second.done.iter().all(|d| d.resumed));
    assert!(second.summary_line().contains("recomputed=0"));
    assert_eq!(done_texts(&first), done_texts(&second));
    let _ = std::fs::remove_dir_all(&dir);
}
