//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the small slice of `rand`'s API it actually uses:
//!
//! * [`rngs::SmallRng`] — a seedable, non-cryptographic generator
//!   (xoshiro256++ with SplitMix64 seeding);
//! * [`Rng::random`], [`Rng::random_bool`], [`Rng::random_range`];
//! * [`SeedableRng::seed_from_u64`];
//! * [`seq::SliceRandom::shuffle`].
//!
//! Determinism contract: for a fixed seed the generator produces a fixed
//! stream, on every platform. The simulator's reproducibility tests rely on
//! this, not on matching upstream `rand`'s streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

/// Construction of a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single word, expanding it into the full
    /// internal state with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// The random-value interface. Only `next_u64` is required; everything else
/// derives from it.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T` (for floats: in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        self.random::<f64>() < p
    }

    /// A uniformly distributed value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Types with a canonical "uniform" distribution over the whole type (or
/// `[0, 1)` for floats).
pub trait Standard {
    /// Draws one value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 high-quality bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. Caller guarantees `lo < hi`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`. Caller guarantees `lo <= hi`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = hi.wrapping_sub(lo) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::from_rng(rng) * (hi - lo)
    }
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f32::from_rng(rng) * (hi - lo)
    }
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi)
    }
}

/// Range forms accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from an empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.random_range(3..9usize);
            assert!((3..9).contains(&v));
            let v = r.random_range(5..=5u32);
            assert_eq!(v, 5);
            let f = r.random_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn random_bool_tracks_p() {
        let mut r = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.random_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut r = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
