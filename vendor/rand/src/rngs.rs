//! Concrete generators.

use crate::{Rng, SeedableRng};

/// A small, fast, seedable non-cryptographic generator: xoshiro256++ with
/// SplitMix64 state expansion. Statistically solid for simulation use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SmallRng {
    /// The raw internal state, for architectural checkpointing. Combined
    /// with [`SmallRng::from_state`] this lets a simulator snapshot a
    /// generator mid-stream and resume it bit-identically — upstream
    /// `rand` offers the same capability through `serde`; this shim keeps
    /// it dependency-free.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`SmallRng::state`].
    /// The resulting stream continues exactly where the captured one was.
    pub fn from_state(s: [u64; 4]) -> Self {
        SmallRng { s }
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }
}

impl Rng for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
