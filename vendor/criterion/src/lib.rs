//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::throughput`], [`BenchmarkGroup::sample_size`], the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a straightforward
//! wall-clock measurement loop instead of criterion's statistical machinery:
//! one warmup iteration, then timed iterations until a time budget or the
//! sample budget is exhausted, reporting mean and best ns/iter (and derived
//! throughput when declared).
//!
//! Set `BENCH_TIME_MS` to change the per-benchmark time budget (default 300).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Declared per-iteration work, used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the default sample budget groups start from (builder style, as
    /// criterion's configuration API works).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n## {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _c: self, name, throughput: None, sample_size }
    }
}

/// A named collection of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the maximum number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark and prints its result line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new(), budget: time_budget(), max_samples: self.sample_size };
        f(&mut b);
        let (mean_ns, best_ns) = b.summarize();
        let mut line = format!("{}/{:<32} mean {:>12}  best {:>12}", self.name, id, fmt_ns(mean_ns), fmt_ns(best_ns));
        match self.throughput {
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                let per_sec = n as f64 / (mean_ns * 1e-9);
                line.push_str(&format!("  thrpt {:>10.2} Melem/s", per_sec / 1e6));
            }
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                let per_sec = n as f64 / (mean_ns * 1e-9);
                line.push_str(&format!("  thrpt {:>10.2} MiB/s", per_sec / (1024.0 * 1024.0)));
            }
            _ => {}
        }
        eprintln!("{line}");
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing extra).
    pub fn finish(self) {}
}

fn time_budget() -> Duration {
    let ms = std::env::var("BENCH_TIME_MS").ok().and_then(|v| v.parse::<u64>().ok()).unwrap_or(300);
    Duration::from_millis(ms.max(1))
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs and times the
/// benchmarked routine.
pub struct Bencher {
    samples: Vec<f64>,
    budget: Duration,
    max_samples: usize,
}

impl Bencher {
    /// Times repeated calls of `f`, recording per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warmup iteration.
        std::hint::black_box(f());
        let started = Instant::now();
        let min_samples = 5usize;
        loop {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed().as_secs_f64() * 1e9);
            let done = self.samples.len();
            if done >= self.max_samples {
                break;
            }
            if done >= min_samples && started.elapsed() >= self.budget {
                break;
            }
        }
    }

    fn summarize(&self) -> (f64, f64) {
        if self.samples.is_empty() {
            return (0.0, 0.0);
        }
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let best = self.samples.iter().copied().fold(f64::INFINITY, f64::min);
        (mean, best)
    }
}

/// Bundles benchmark functions into one callable group, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` running the listed groups. Accepts and ignores the
/// harness arguments cargo passes (`--bench`, filters); skips the run when
/// invoked as a test binary (`--test`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}
