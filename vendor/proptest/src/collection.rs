//! Collection strategies.

use std::ops::Range;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::Strategy;

/// Strategy for `Vec<S::Value>` with a length drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// A vector strategy: each case draws a length in `len`, then generates that
/// many elements.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        let n = if self.len.is_empty() { 0 } else { rng.random_range(self.len.clone()) };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
