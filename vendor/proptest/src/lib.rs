//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, range and
//! [`any`]`::<T>()` strategies, tuple strategies, [`collection::vec`], and
//! the `prop_assert*` macros. Unsupported upstream features (shrinking,
//! persistence, `prop_oneof`, mapped strategies) are intentionally absent.
//!
//! Cases are generated deterministically from the test function's name and
//! the case index, so failures reproduce across runs without a persistence
//! file. No shrinking is performed: a failing case reports the assertion it
//! tripped (via plain `panic!`/`assert!`) with the generated inputs captured
//! in the panic location's scope.

#![forbid(unsafe_code)]

use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub mod collection;
pub mod prelude;

/// Configuration for a [`proptest!`] block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.random_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Derives the deterministic RNG for `(test name, case index)`.
pub fn case_rng(test_name: &str, case: u32) -> SmallRng {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// Property assertion; identical to `assert!` in this stand-in.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Property equality assertion; identical to `assert_eq!` in this stand-in.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Property inequality assertion; identical to `assert_ne!` in this stand-in.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests. Each `arg in strategy` binding is generated per
/// case; the body runs once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); ) => {};
    (@impl ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut proptest_case_rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut proptest_case_rng);)*
                $body
            }
        }
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vectors_generate_in_bounds(
            x in 3u64..17,
            flip in any::<bool>(),
            v in prop::collection::vec((0u32..4, 1u64..9), 2..6),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (a, b) in v {
                prop_assert!(a < 4);
                prop_assert!((1..9).contains(&b), "b out of range: {b}");
            }
            let _ = flip;
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5).map(|c| (3u64..1000).generate(&mut crate::case_rng("t", c))).collect();
        let b: Vec<u64> = (0..5).map(|c| (3u64..1000).generate(&mut crate::case_rng("t", c))).collect();
        assert_eq!(a, b);
        assert!(a.windows(2).any(|w| w[0] != w[1]), "distinct cases should differ");
    }
}
