//! The **single source of truth** for the paper's evaluation grid —
//! engines × pipe widths — plus the store-backed sampled-grid runner
//! and the shard-file plumbing the multi-process binaries share.
//!
//! Before this module, every figure binary re-declared its own engine
//! and width axes; a drifted axis would have silently compared
//! different grids. `figure8`/`figure9` and their `_sampled` siblings,
//! `shard_runner`, and `perfstats`' calibration section all pull the
//! axes, the sampled-grid schedule, and the engine-key spellings from
//! here.

use std::ops::Range;

use sfetch_core::ProcessorConfig;
use sfetch_fetch::EngineKind;
use sfetch_sample::{
    estimate, CheckpointStore, Estimate, SampleConfig, SamplePoint, StoreStats, StoredSampler,
};
use sfetch_workloads::{LayoutChoice, Workload};

use crate::HarnessOpts;

/// Pipe widths of the Fig. 8 grid (panels a, b, c).
pub const FIG8_WIDTHS: [usize; 3] = [2, 4, 8];

/// The single width of the Fig. 9 per-benchmark comparison.
pub const FIG9_WIDTH: usize = 8;

/// The engines of the paper's comparison, in presentation order.
pub fn grid_engines() -> [EngineKind; 4] {
    EngineKind::ALL
}

/// One cell of the engines × widths grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridCell {
    /// Fetch engine under test.
    pub engine: EngineKind,
    /// Pipe width.
    pub width: usize,
}

/// The full cell list for given axes, width-major (matching the Fig. 8
/// presentation: one panel per width, engines within).
pub fn cells(engines: &[EngineKind], widths: &[usize]) -> Vec<GridCell> {
    let mut out = Vec::with_capacity(engines.len() * widths.len());
    for &width in widths {
        for &engine in engines {
            out.push(GridCell { engine, width });
        }
    }
    out
}

/// The sampled calibration-grid schedule: sparse SimPoint-style units
/// (one measured window per 12.5M instructions) under the validated
/// ~1M-instruction warming horizon.
///
/// The sparsity is deliberate: per window, the fast-forward span
/// (~11.6M instructions at plain-walk speed) dominates the warm + .
/// detailed span (~910k at warming speed), which is exactly the cost
/// the checkpoint store amortizes — a warm-store rerun of a grid cell
/// skips the fast-forward entirely and runs ≥3× faster (recorded in
/// `BENCH_5.json`'s `calibration_grid.store_ab`). The denser SMARTS
/// schedule ([`SampleConfig::default`]) remains the accuracy reference
/// (BENCH_4 `sampling_ab`: 0.64% error at 18 windows); this one trades
/// window count for per-experiment cost, and every grid point records
/// its own 95% CI so the trade stays visible.
pub fn calibration_schedule() -> SampleConfig {
    SampleConfig {
        interval: 12_500_000,
        warm_func: 900_000,
        warm_mem: 900_000,
        warm_detail: 5_000,
        measure: 5_000,
        ..SampleConfig::default()
    }
}

/// Short CLI/JSON key of an engine (`stream`, `ev8`, `ftb`, `tcache`).
pub fn engine_key(kind: EngineKind) -> &'static str {
    match kind {
        EngineKind::Stream => "stream",
        EngineKind::Ev8 => "ev8",
        EngineKind::Ftb => "ftb",
        EngineKind::TraceCache => "tcache",
    }
}

/// Parses a comma-separated engine list (or `all`).
///
/// # Panics
///
/// Panics on an unknown engine key.
pub fn parse_engines(spec: &str) -> Vec<EngineKind> {
    if spec == "all" {
        return grid_engines().to_vec();
    }
    spec.split(',')
        .map(|k| match k.trim() {
            "stream" => EngineKind::Stream,
            "ev8" => EngineKind::Ev8,
            "ftb" => EngineKind::Ftb,
            "tcache" => EngineKind::TraceCache,
            other => panic!("unknown engine {other:?} (stream|ev8|ftb|tcache|all)"),
        })
        .collect()
}

/// Parses a comma-separated width list (or `all` = the Fig. 8 widths).
///
/// # Panics
///
/// Panics on a malformed or zero width.
pub fn parse_widths(spec: &str) -> Vec<usize> {
    if spec == "all" {
        return FIG8_WIDTHS.to_vec();
    }
    spec.split(',')
        .map(|w| {
            w.trim()
                .parse::<usize>()
                .ok()
                .filter(|&w| w >= 1)
                .unwrap_or_else(|| panic!("bad width {w:?}"))
        })
        .collect()
}

/// The processor configuration of a grid cell under the harness options
/// (Table 2 at the cell's width, honoring `--legacy-scan`/`--prefetch`).
pub fn cell_config(cell: GridCell, opts: &HarnessOpts) -> ProcessorConfig {
    let mut pcfg = ProcessorConfig::table2(cell.width);
    pcfg.legacy_scan = opts.legacy_scan;
    pcfg.prefetch = opts.prefetch;
    pcfg
}

/// One finished grid cell of a sampled run.
#[derive(Debug, Clone)]
pub struct CellRun {
    /// The cell.
    pub cell: GridCell,
    /// Per-window measurements, in window order.
    pub points: Vec<SamplePoint>,
    /// Student-t aggregate over the windows.
    pub estimate: Estimate,
}

/// Runs one cell's window range through the checkpoint store with the
/// given sampling schedule (`--sample` for `shard_runner`,
/// `--grid-sample` for the figure bins).
pub fn run_cell_range(
    w: &Workload,
    cell: GridCell,
    scfg: SampleConfig,
    opts: &HarnessOpts,
    store: &CheckpointStore,
    range: Range<u64>,
) -> (Vec<SamplePoint>, StoreStats) {
    let img = w.image(LayoutChoice::Optimized);
    let fp = w.fingerprint(LayoutChoice::Optimized);
    let mut s = StoredSampler::new(img, fp, w.ref_seed(), scfg, store);
    let pts = s.run_range(cell.engine, cell_config(cell, opts), range, opts.jobs);
    (pts, s.stats())
}

/// Runs the whole grid for one workload through the store, cell by
/// cell, returning per-cell estimates plus the total store traffic.
pub fn run_sampled_grid(
    w: &Workload,
    cells: &[GridCell],
    scfg: SampleConfig,
    total_insts: u64,
    opts: &HarnessOpts,
    store: &CheckpointStore,
) -> (Vec<CellRun>, StoreStats) {
    let windows = scfg.windows(total_insts);
    let mut total = StoreStats::default();
    let runs = cells
        .iter()
        .map(|&cell| {
            let (points, st) = run_cell_range(w, cell, scfg, opts, store, 0..windows);
            total.hits += st.hits;
            total.misses += st.misses;
            total.rejected += st.rejected;
            let estimate = estimate(&points, scfg.confidence);
            CellRun { cell, points, estimate }
        })
        .collect();
    (runs, total)
}

/// Shard-file schema tag of the grid shard format (engine × width ×
/// window lines).
pub const GRID_SHARD_SCHEMA: &str = "sfetch-grid-shard-v2";

/// Renders one grid sample point as a shard-file JSON line.
pub fn point_line(cell: GridCell, p: &SamplePoint) -> String {
    format!(
        "{{\"engine\": \"{}\", \"width\": {}, \"window\": {}, \"start_inst\": {}, \
         \"committed\": {}, \"cycles\": {}, \"stall_cycles\": {}, \"mispredictions\": {}}}",
        engine_key(cell.engine),
        cell.width,
        p.window,
        p.start_inst,
        p.committed,
        p.cycles,
        p.stall_cycles,
        p.mispredictions
    )
}

/// Pulls `"key": value` out of a shard-file line (the files are our own
/// fixed format; no general JSON parser needed or vendored).
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\": ");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": \"");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    Some(&rest[..rest.find('"')?])
}

/// Parses a grid shard file's point lines back into `(engine key,
/// width, point)` tuples.
pub fn parse_shard_file(text: &str) -> Vec<(String, usize, SamplePoint)> {
    text.lines()
        .filter(|l| l.contains("\"window\""))
        .map(|l| {
            let engine = field_str(l, "engine").expect("engine key").to_owned();
            let width = field_u64(l, "width").expect("width") as usize;
            let p = SamplePoint {
                window: field_u64(l, "window").expect("window"),
                start_inst: field_u64(l, "start_inst").expect("start_inst"),
                committed: field_u64(l, "committed").expect("committed"),
                cycles: field_u64(l, "cycles").expect("cycles"),
                stall_cycles: field_u64(l, "stall_cycles").expect("stall_cycles"),
                mispredictions: field_u64(l, "mispredictions").expect("mispredictions"),
            };
            (engine, width, p)
        })
        .collect()
}

/// Renders one shard's slice of the grid as a complete shard file: the
/// child-mode body both multi-process binaries (`shard_runner`,
/// `figure8_sampled`) share.
pub fn shard_file_text(
    w: &Workload,
    grid: &[GridCell],
    windows: u64,
    scfg: SampleConfig,
    opts: &HarnessOpts,
    store: &CheckpointStore,
    shard: sfetch_sample::ShardSpec,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\": \"{GRID_SHARD_SCHEMA}\", \"shard\": \"{shard}\", \"bench\": \"{}\",\n",
        w.name()
    ));
    out.push_str(" \"points\": [\n");
    let mut first = true;
    for (cell_idx, range) in grid_shard_items(grid.len(), windows, shard) {
        let cell = grid[cell_idx];
        let (pts, _) = run_cell_range(w, cell, scfg, opts, store, range);
        for p in pts {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("  ");
            out.push_str(&point_line(cell, &p));
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Spawns `procs` copies of the **current executable** (one per shard),
/// waits for all of them, and parses their shard files back into
/// `(engine key, width, point)` tuples. `child_args` builds the full
/// argument list for shard `i` with its output file path.
///
/// # Panics
///
/// Panics if a shard cannot be spawned or exits unsuccessfully.
pub fn spawn_shards(
    procs: usize,
    tmp: &std::path::Path,
    child_args: impl Fn(usize, &std::path::Path) -> Vec<std::ffi::OsString>,
) -> Vec<(String, usize, SamplePoint)> {
    use std::process::{Command, Stdio};
    let exe = std::env::current_exe().expect("current exe");
    let mut children = Vec::new();
    let mut outs = Vec::new();
    for i in 0..procs {
        let out = tmp.join(format!("shard-{i}.json"));
        let mut cmd = Command::new(&exe);
        cmd.args(child_args(i, &out)).stdout(Stdio::inherit()).stderr(Stdio::inherit());
        children.push(cmd.spawn().expect("spawn shard process"));
        outs.push(out);
    }
    for (i, c) in children.iter_mut().enumerate() {
        let status = c.wait().expect("wait for shard");
        assert!(status.success(), "shard {i} failed: {status}");
    }
    let mut all = Vec::new();
    for p in &outs {
        all.extend(parse_shard_file(&std::fs::read_to_string(p).expect("read shard file")));
    }
    all
}

/// Verifies merged shard output against a **storeless** in-process
/// rerun of every cell: the live [`sfetch_sample::Sampler`] walks the
/// trace itself, so this oracle is independent of the checkpoint
/// save/load/resume path the shards used — a defect anywhere in the
/// store machinery shows up here as a divergence instead of being
/// replayed on both sides. Panics (with the offending cell) on any
/// divergence; used by the `--verify` legs.
pub fn verify_merged(
    w: &Workload,
    merged: &[CellRun],
    scfg: SampleConfig,
    opts: &HarnessOpts,
    windows: u64,
) {
    let img = w.image(LayoutChoice::Optimized);
    for run in merged {
        let mut oracle =
            sfetch_sample::Sampler::new(img, run.cell.engine, cell_config(run.cell, opts), scfg, w.ref_seed());
        let single = oracle.run_parallel(windows, opts.jobs);
        assert_eq!(
            &single, &run.points,
            "{}/{}: merged shard windows differ from the storeless single-process run",
            engine_key(run.cell.engine),
            run.cell.width
        );
    }
}

/// The contiguous slice of the flattened (cell-major) grid-work list a
/// shard owns: item `i` is `(cell[i / windows], window i % windows)`.
/// Reuses the window-range math so chunk sizes differ by at most one.
pub fn grid_shard_items(
    n_cells: usize,
    windows: u64,
    shard: sfetch_sample::ShardSpec,
) -> Vec<(usize, Range<u64>)> {
    let flat = sfetch_sample::window_range(n_cells as u64 * windows, shard);
    let mut out: Vec<(usize, Range<u64>)> = Vec::new();
    let mut i = flat.start;
    while i < flat.end {
        let cell = (i / windows) as usize;
        let w_lo = i % windows;
        let w_hi = (w_lo + (flat.end - i)).min(windows);
        out.push((cell, w_lo..w_hi));
        i += w_hi - w_lo;
    }
    out
}

/// Merges shard-file tuples back into per-cell window lists, verifying
/// every cell has exactly windows `0..windows`.
///
/// # Panics
///
/// Panics on missing/duplicate windows or unknown cells — a shard bug,
/// not an input error.
pub fn merge_grid(
    cells: &[GridCell],
    windows: u64,
    all: &[(String, usize, SamplePoint)],
    confidence: sfetch_sample::Confidence,
) -> Vec<CellRun> {
    cells
        .iter()
        .map(|&cell| {
            let pts: Vec<SamplePoint> = all
                .iter()
                .filter(|(k, w, _)| k == engine_key(cell.engine) && *w == cell.width)
                .map(|(_, _, p)| *p)
                .collect();
            let points = sfetch_sample::merge_points(pts).expect("shard outputs merge cleanly");
            assert_eq!(
                points.len() as u64,
                windows,
                "{}/{}: merged window count",
                engine_key(cell.engine),
                cell.width
            );
            let estimate = estimate(&points, confidence);
            CellRun { cell, points, estimate }
        })
        .collect()
}

/// Prints the per-cell estimate table the sampled grid binaries share.
pub fn print_grid_table(runs: &[CellRun]) {
    println!(
        "\n{:<18} {:>6} {:>8} {:>9} {:>9} {:>9} {:>8}",
        "engine", "width", "windows", "IPC", "ci lo", "ci hi", "±rel"
    );
    for r in runs {
        println!(
            "{:<18} {:>6} {:>8} {:>9.4} {:>9.4} {:>9.4} {:>7.2}%",
            r.cell.engine.to_string(),
            r.cell.width,
            r.estimate.windows,
            r.estimate.ipc,
            r.estimate.ipc_lo,
            r.estimate.ipc_hi,
            100.0 * r.estimate.rel_half_width
        );
    }
}

/// The engine IPC spread (max/min) among `runs` at one width — the
/// quantity compared against the paper's Fig. 8 (~3.5× at 8-wide
/// optimized).
pub fn spread_at_width(runs: &[CellRun], width: usize) -> Option<(f64, f64, f64)> {
    let ipcs: Vec<f64> = runs
        .iter()
        .filter(|r| r.cell.width == width && r.estimate.ipc > 0.0)
        .map(|r| r.estimate.ipc)
        .collect();
    let min = ipcs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = ipcs.iter().copied().fold(0.0f64, f64::max);
    (ipcs.len() >= 2).then_some((min, max, max / min))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfetch_sample::ShardSpec;

    #[test]
    fn cells_are_width_major_and_complete() {
        let cs = cells(&grid_engines(), &FIG8_WIDTHS);
        assert_eq!(cs.len(), 12);
        assert_eq!(cs[0], GridCell { engine: EngineKind::Ev8, width: 2 });
        assert_eq!(cs[4], GridCell { engine: EngineKind::Ev8, width: 4 });
        let mut uniq = cs.clone();
        uniq.dedup();
        assert_eq!(uniq.len(), 12, "no duplicate cells");
    }

    #[test]
    fn calibration_schedule_is_valid_and_sparse() {
        let s = calibration_schedule();
        s.validate();
        assert_eq!(s.windows(50_000_000), 4);
        assert!(
            s.fast_forward() > 2 * (s.warm_func + s.warm_detail + s.measure),
            "fast-forward must dominate the per-window work the store cannot amortize"
        );
    }

    #[test]
    fn engine_keys_roundtrip() {
        for kind in grid_engines() {
            assert_eq!(parse_engines(engine_key(kind)), vec![kind]);
        }
        assert_eq!(parse_engines("all").len(), 4);
        assert_eq!(parse_widths("all"), FIG8_WIDTHS.to_vec());
        assert_eq!(parse_widths("2, 8"), vec![2, 8]);
    }

    #[test]
    fn shard_items_partition_the_flat_grid() {
        for (n_cells, windows, procs) in [(12usize, 4u64, 2u64), (3, 7, 4), (2, 2, 5)] {
            let mut seen = vec![0u32; n_cells * windows as usize];
            for index in 0..procs {
                for (cell, range) in
                    grid_shard_items(n_cells, windows, ShardSpec { index, count: procs })
                {
                    for w in range {
                        seen[cell * windows as usize + w as usize] += 1;
                    }
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "every (cell, window) exactly once");
        }
    }

    #[test]
    fn point_lines_parse_back() {
        let cell = GridCell { engine: EngineKind::Stream, width: 8 };
        let p = SamplePoint {
            window: 3,
            start_inst: 123,
            committed: 5000,
            cycles: 2100,
            stall_cycles: 17,
            mispredictions: 9,
        };
        let parsed = parse_shard_file(&point_line(cell, &p));
        assert_eq!(parsed, vec![("stream".to_owned(), 8, p)]);
    }
}
