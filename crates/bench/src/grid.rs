//! The **single source of truth** for the paper's evaluation grid —
//! engines × pipe widths — plus the store-backed sampled-grid runner
//! and the shard-file plumbing the multi-process binaries share.
//!
//! Before this module, every figure binary re-declared its own engine
//! and width axes; a drifted axis would have silently compared
//! different grids. `figure8`/`figure9` and their `_sampled` siblings,
//! `shard_runner`, and `perfstats`' calibration section all pull the
//! axes, the sampled-grid schedule, and the engine-key spellings from
//! here.

use std::fmt;
use std::ops::Range;
use std::path::{Path, PathBuf};

use sfetch_core::ProcessorConfig;
use sfetch_fetch::EngineKind;
use sfetch_sample::{
    estimate, BatchCell, BatchSampler, CheckpointStore, Estimate, SampleConfig, SamplePoint,
    StoreStats, StoredSampler,
};
use sfetch_workloads::{LayoutChoice, Workload};

use crate::HarnessOpts;

/// What can go wrong in the grid plumbing — CLI axis specs, shard
/// files, child processes, merging. Every path that used to
/// `expect`/`panic!` now reports one of these so the binaries can exit
/// nonzero with a readable message (and the fleet supervisor can charge
/// the failure to a cell and retry) instead of tearing the run down.
#[derive(Debug)]
pub enum GridError {
    /// A malformed command-line axis spec (engine or width list).
    Cli(String),
    /// Filesystem failure on a shard-file path.
    Io {
        /// What the grid was doing.
        what: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying error, stringified.
        err: String,
    },
    /// A shard child process could not be spawned.
    Spawn {
        /// Shard index.
        shard: usize,
        /// The underlying error, stringified.
        err: String,
    },
    /// A shard child exited unsuccessfully. Raised **before** its
    /// output file is even read: a nonzero exit fails the shard even if
    /// a parseable file exists (the process may know something the file
    /// doesn't).
    ShardFailed {
        /// Shard index.
        shard: usize,
        /// The exit status, stringified.
        status: String,
    },
    /// A shard file is truncated, corrupt, or malformed.
    ShardParse {
        /// 1-based line number (0 = whole-file, e.g. a checksum-trailer
        /// failure).
        line: usize,
        /// What was wrong.
        what: String,
    },
    /// Shard outputs do not merge into a consistent grid.
    Merge {
        /// The offending `engine/width` cell.
        cell: String,
        /// What was wrong.
        what: String,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::Cli(msg) => f.write_str(msg),
            GridError::Io { what, path, err } => write!(f, "{what} {}: {err}", path.display()),
            GridError::Spawn { shard, err } => write!(f, "spawn shard {shard}: {err}"),
            GridError::ShardFailed { shard, status } => {
                write!(f, "shard {shard} failed: {status}")
            }
            GridError::ShardParse { line: 0, what } => write!(f, "shard file: {what}"),
            GridError::ShardParse { line, what } => write!(f, "shard file line {line}: {what}"),
            GridError::Merge { cell, what } => write!(f, "cell {cell}: {what}"),
        }
    }
}

impl std::error::Error for GridError {}

/// Pipe widths of the Fig. 8 grid (panels a, b, c).
pub const FIG8_WIDTHS: [usize; 3] = [2, 4, 8];

/// The single width of the Fig. 9 per-benchmark comparison.
pub const FIG9_WIDTH: usize = 8;

/// The engines of the paper's comparison, in presentation order.
pub fn grid_engines() -> [EngineKind; 4] {
    EngineKind::ALL
}

/// One cell of the engines × widths grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridCell {
    /// Fetch engine under test.
    pub engine: EngineKind,
    /// Pipe width.
    pub width: usize,
}

/// The full cell list for given axes, width-major (matching the Fig. 8
/// presentation: one panel per width, engines within).
pub fn cells(engines: &[EngineKind], widths: &[usize]) -> Vec<GridCell> {
    let mut out = Vec::with_capacity(engines.len() * widths.len());
    for &width in widths {
        for &engine in engines {
            out.push(GridCell { engine, width });
        }
    }
    out
}

/// The sampled calibration-grid schedule: sparse SimPoint-style units
/// (one measured window per 12.5M instructions) under the validated
/// ~1M-instruction warming horizon.
///
/// The sparsity is deliberate: per window, the fast-forward span
/// (~11.6M instructions at plain-walk speed) dominates the warm + .
/// detailed span (~910k at warming speed), which is exactly the cost
/// the checkpoint store amortizes — a warm-store rerun of a grid cell
/// skips the fast-forward entirely and runs ≥3× faster (recorded in
/// `BENCH_5.json`'s `calibration_grid.store_ab`). The denser SMARTS
/// schedule ([`SampleConfig::default`]) remains the accuracy reference
/// (BENCH_4 `sampling_ab`: 0.64% error at 18 windows); this one trades
/// window count for per-experiment cost, and every grid point records
/// its own 95% CI so the trade stays visible.
pub fn calibration_schedule() -> SampleConfig {
    SampleConfig {
        interval: 12_500_000,
        warm_func: 900_000,
        warm_mem: 900_000,
        warm_detail: 5_000,
        measure: 5_000,
        ..SampleConfig::default()
    }
}

/// Short CLI/JSON key of an engine (`stream`, `ev8`, `ftb`, `tcache`).
pub fn engine_key(kind: EngineKind) -> &'static str {
    match kind {
        EngineKind::Stream => "stream",
        EngineKind::Ev8 => "ev8",
        EngineKind::Ftb => "ftb",
        EngineKind::TraceCache => "tcache",
    }
}

/// Parses a comma-separated engine list (or `all`).
///
/// # Errors
///
/// [`GridError::Cli`] on an unknown engine key.
pub fn parse_engines(spec: &str) -> Result<Vec<EngineKind>, GridError> {
    if spec == "all" {
        return Ok(grid_engines().to_vec());
    }
    spec.split(',')
        .map(|k| match k.trim() {
            "stream" => Ok(EngineKind::Stream),
            "ev8" => Ok(EngineKind::Ev8),
            "ftb" => Ok(EngineKind::Ftb),
            "tcache" => Ok(EngineKind::TraceCache),
            other => Err(GridError::Cli(format!(
                "unknown engine {other:?} (stream|ev8|ftb|tcache|all)"
            ))),
        })
        .collect()
}

/// Parses a comma-separated width list (or `all` = the Fig. 8 widths).
///
/// # Errors
///
/// [`GridError::Cli`] on a malformed or zero width.
pub fn parse_widths(spec: &str) -> Result<Vec<usize>, GridError> {
    if spec == "all" {
        return Ok(FIG8_WIDTHS.to_vec());
    }
    spec.split(',')
        .map(|w| {
            w.trim()
                .parse::<usize>()
                .ok()
                .filter(|&w| w >= 1)
                .ok_or_else(|| GridError::Cli(format!("bad width {w:?}")))
        })
        .collect()
}

/// The processor configuration of a grid cell under the harness options:
/// Table 2 at the cell's width, honoring `--legacy-scan`,
/// `--front-pipeline` (the cell engine's front model under
/// [`crate::FrontMode::PerEngine`]), and the cell's prefetch policy —
/// `--prefetch` under [`crate::GridPrefetchMode::Shared`], the engine's
/// [`sfetch_fetch::EngineKind::natural_prefetch`] under
/// [`crate::GridPrefetchMode::Natural`].
///
/// The checkpoint store is content-addressed on the trace alone, so
/// every (front, prefetch) variant of a cell reuses the same stored
/// windows — sweeping these axes inside the grid is warm-store cheap.
pub fn cell_config(cell: GridCell, opts: &HarnessOpts) -> ProcessorConfig {
    let mut pcfg = ProcessorConfig::table2(cell.width);
    pcfg.legacy_scan = opts.legacy_scan;
    pcfg.prefetch = match opts.grid_prefetch {
        crate::GridPrefetchMode::Shared => opts.prefetch,
        crate::GridPrefetchMode::Natural => {
            sfetch_core::PrefetchConfig::enabled(cell.engine.natural_prefetch())
        }
    };
    pcfg.front = opts.front.front_for(cell.engine);
    pcfg
}

/// One finished grid cell of a sampled run.
#[derive(Debug, Clone)]
pub struct CellRun {
    /// The cell.
    pub cell: GridCell,
    /// Per-window measurements, in window order.
    pub points: Vec<SamplePoint>,
    /// Student-t aggregate over the windows.
    pub estimate: Estimate,
}

/// Runs one cell's window range through the checkpoint store with the
/// given sampling schedule (`--sample` for `shard_runner`,
/// `--grid-sample` for the figure bins).
pub fn run_cell_range(
    w: &Workload,
    cell: GridCell,
    scfg: SampleConfig,
    opts: &HarnessOpts,
    store: &CheckpointStore,
    range: Range<u64>,
) -> (Vec<SamplePoint>, StoreStats) {
    let img = w.image(LayoutChoice::Optimized);
    let fp = w.fingerprint(LayoutChoice::Optimized);
    let mut s =
        StoredSampler::new(img, fp, w.ref_seed(), scfg, store).with_warm_bank(opts.warm_bank);
    let pts = s.run_range(cell.engine, cell_config(cell, opts), range, opts.jobs);
    (pts, s.stats())
}

/// Runs a cell list's shared window range through batched sweeps: the
/// cells are chunked into groups of up to `batch` and each group rides
/// one [`BatchSampler`] — one recorded functional walk per window per
/// group instead of one per window per cell. Returns per-cell window
/// lists in cell order plus the total checkpoint-store traffic.
/// Bit-identical to [`run_cell_range`] per cell, for any `batch`.
pub fn run_cells_batched(
    w: &Workload,
    cells: &[GridCell],
    batch: usize,
    scfg: SampleConfig,
    opts: &HarnessOpts,
    store: &CheckpointStore,
    range: Range<u64>,
) -> (Vec<Vec<SamplePoint>>, StoreStats) {
    let img = w.image(LayoutChoice::Optimized);
    let fp = w.fingerprint(LayoutChoice::Optimized);
    let mut out = Vec::with_capacity(cells.len());
    let mut total = StoreStats::default();
    for group in cells.chunks(batch.max(1)) {
        let bcells: Vec<BatchCell> = group
            .iter()
            .map(|&c| BatchCell { kind: c.engine, pcfg: cell_config(c, opts) })
            .collect();
        let mut s =
            BatchSampler::new(img, fp, w.ref_seed(), scfg, store).with_warm_bank(opts.warm_bank);
        out.extend(s.run_range_points(&bcells, range.clone(), opts.jobs));
        if std::env::var_os("SFETCH_BATCH_DEBUG").is_some() {
            let t = s.timing();
            let wb = s.warm_bank_stats();
            let (ch, cm) = store.warm_cache_traffic();
            eprintln!(
                "    [batch debug] ff {:.3}s warm {:.3}s bank h/m/r {}/{}/{} cache h/m {}/{}",
                t.ff_ns as f64 / 1e9,
                t.warm_ns as f64 / 1e9,
                wb.hits,
                wb.misses,
                wb.rejected,
                ch,
                cm
            );
        }
        let st = s.stats();
        total.hits += st.hits;
        total.misses += st.misses;
        total.rejected += st.rejected;
    }
    (out, total)
}

/// Runs the whole grid for one workload through the store, returning
/// per-cell estimates plus the total store traffic. With `--batch N > 1`
/// the cells ride batched sweeps ([`run_cells_batched`]); otherwise cell
/// by cell. Either way the points are bit-identical.
pub fn run_sampled_grid(
    w: &Workload,
    cells: &[GridCell],
    scfg: SampleConfig,
    total_insts: u64,
    opts: &HarnessOpts,
    store: &CheckpointStore,
) -> (Vec<CellRun>, StoreStats) {
    let windows = scfg.windows(total_insts);
    if opts.batch > 1 {
        let (per_cell, total) = run_cells_batched(w, cells, opts.batch, scfg, opts, store, 0..windows);
        let runs = cells
            .iter()
            .zip(per_cell)
            .map(|(&cell, points)| {
                let estimate = estimate(&points, scfg.confidence);
                CellRun { cell, points, estimate }
            })
            .collect();
        return (runs, total);
    }
    let mut total = StoreStats::default();
    let runs = cells
        .iter()
        .map(|&cell| {
            let (points, st) = run_cell_range(w, cell, scfg, opts, store, 0..windows);
            total.hits += st.hits;
            total.misses += st.misses;
            total.rejected += st.rejected;
            let estimate = estimate(&points, scfg.confidence);
            CellRun { cell, points, estimate }
        })
        .collect();
    (runs, total)
}

/// Shard-file schema tag of the grid shard format (engine × width ×
/// window lines). v3 = v2 sealed with the fleet's end-of-file checksum
/// trailer, written atomically (temp + rename): a worker that dies
/// mid-write can no longer leave a plausible-looking prefix that merges
/// short.
pub const GRID_SHARD_SCHEMA: &str = "sfetch-grid-shard-v3";

/// Renders one grid sample point as a shard-file JSON line.
pub fn point_line(cell: GridCell, p: &SamplePoint) -> String {
    format!(
        "{{\"engine\": \"{}\", \"width\": {}, \"window\": {}, \"start_inst\": {}, \
         \"committed\": {}, \"cycles\": {}, \"stall_cycles\": {}, \"mispredictions\": {}}}",
        engine_key(cell.engine),
        cell.width,
        p.window,
        p.start_inst,
        p.committed,
        p.cycles,
        p.stall_cycles,
        p.mispredictions
    )
}

/// Pulls `"key": value` out of a shard-file line (the files are our own
/// fixed format; no general JSON parser needed or vendored).
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\": ");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": \"");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    Some(&rest[..rest.find('"')?])
}

/// Parses a sealed grid shard file — checksum trailer first, then the
/// point lines — into `(engine key, width, point)` tuples.
///
/// # Errors
///
/// [`GridError::ShardParse`] on a missing/failing trailer (truncation,
/// corruption), a schema mismatch, or a malformed point line.
pub fn parse_shard_file(text: &str) -> Result<Vec<(String, usize, SamplePoint)>, GridError> {
    let body = sfetch_fleet::unseal(text)
        .map_err(|e| GridError::ShardParse { line: 0, what: e.to_string() })?;
    parse_shard_body(body)
}

/// Parses the point lines of an already-unsealed shard body.
///
/// # Errors
///
/// [`GridError::ShardParse`] on a schema mismatch or malformed line.
pub fn parse_shard_body(body: &str) -> Result<Vec<(String, usize, SamplePoint)>, GridError> {
    let mut out = Vec::new();
    for (i, l) in body.lines().enumerate() {
        let line_no = i + 1;
        if let Some(schema) = field_str(l, "schema") {
            if schema != GRID_SHARD_SCHEMA {
                return Err(GridError::ShardParse {
                    line: line_no,
                    what: format!(
                        "schema {schema:?}, this build reads {GRID_SHARD_SCHEMA:?} \
                         (delete stale shard files)"
                    ),
                });
            }
        }
        if !l.contains("\"window\"") {
            continue;
        }
        let want = |key: &'static str| {
            field_u64(l, key).ok_or(GridError::ShardParse {
                line: line_no,
                what: format!("missing or non-numeric field {key:?}"),
            })
        };
        let engine = field_str(l, "engine")
            .ok_or(GridError::ShardParse {
                line: line_no,
                what: "missing field \"engine\"".to_owned(),
            })?
            .to_owned();
        let width = want("width")? as usize;
        let p = SamplePoint {
            window: want("window")?,
            start_inst: want("start_inst")?,
            committed: want("committed")?,
            cycles: want("cycles")?,
            stall_cycles: want("stall_cycles")?,
            mispredictions: want("mispredictions")?,
        };
        out.push((engine, width, p));
    }
    Ok(out)
}

/// Seals `body` with the checksum trailer and writes it **atomically**
/// (temp sibling + rename), so a reader never observes a half-written
/// shard file and a died writer leaves either nothing or a complete,
/// verifiable file.
///
/// # Errors
///
/// [`GridError::Io`] on any filesystem failure.
pub fn write_shard_atomic(path: &Path, body: &str) -> Result<(), GridError> {
    let sealed = sfetch_fleet::seal(body);
    let tmp = path.with_extension("part");
    std::fs::write(&tmp, sealed.as_bytes())
        .map_err(|e| GridError::Io { what: "write shard file", path: tmp.clone(), err: e.to_string() })?;
    std::fs::rename(&tmp, path).map_err(|e| GridError::Io {
        what: "rename shard file into place",
        path: path.to_path_buf(),
        err: e.to_string(),
    })
}

/// Reads and parses a sealed shard file.
///
/// # Errors
///
/// [`GridError::Io`] on read failure, [`GridError::ShardParse`] on
/// verification/parse failure.
pub fn read_shard_file(path: &Path) -> Result<Vec<(String, usize, SamplePoint)>, GridError> {
    let text = std::fs::read_to_string(path).map_err(|e| GridError::Io {
        what: "read shard file",
        path: path.to_path_buf(),
        err: e.to_string(),
    })?;
    parse_shard_file(&text)
}

/// Renders one shard's slice of the grid as a complete shard file: the
/// child-mode body both multi-process binaries (`shard_runner`,
/// `figure8_sampled`) share.
pub fn shard_file_text(
    w: &Workload,
    grid: &[GridCell],
    windows: u64,
    scfg: SampleConfig,
    opts: &HarnessOpts,
    store: &CheckpointStore,
    shard: sfetch_sample::ShardSpec,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\": \"{GRID_SHARD_SCHEMA}\", \"shard\": \"{shard}\", \"bench\": \"{}\",\n",
        w.name()
    ));
    out.push_str(" \"points\": [\n");
    let mut first = true;
    let mut emit = |cell: GridCell, pts: Vec<SamplePoint>, out: &mut String| {
        for p in pts {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("  ");
            out.push_str(&point_line(cell, &p));
        }
    };
    let items = grid_shard_items(grid.len(), windows, shard);
    let mut i = 0;
    while i < items.len() {
        let range = items[i].1.clone();
        // Consecutive cells sharing the same window range ride one
        // batched sweep (`--batch N`); a lone or range-split item runs
        // the classic per-cell path. Output order and bytes are
        // identical either way.
        let mut j = i + 1;
        while opts.batch > 1 && j < items.len() && j - i < opts.batch && items[j].1 == range {
            j += 1;
        }
        if j - i > 1 {
            let group: Vec<GridCell> = items[i..j].iter().map(|&(ci, _)| grid[ci]).collect();
            let (per_cell, _) =
                run_cells_batched(w, &group, opts.batch, scfg, opts, store, range);
            for (&cell, pts) in group.iter().zip(per_cell) {
                emit(cell, pts, &mut out);
            }
        } else {
            let cell = grid[items[i].0];
            let (pts, _) = run_cell_range(w, cell, scfg, opts, store, range);
            emit(cell, pts, &mut out);
        }
        i = j;
    }
    out.push_str("\n]}\n");
    out
}

/// Spawns `procs` copies of the **current executable** (one per shard),
/// waits for all of them, and parses their shard files back into
/// `(engine key, width, point)` tuples. `child_args` builds the full
/// argument list for shard `i` with its output file path.
///
/// This is the plain one-shot fan-out (`--no-fleet`); the fleet
/// supervisor (`sfetch_fleet::run_fleet` driven by
/// [`crate::fleet_grid`]) supersedes it with leases, retries, and
/// resume. Exit statuses are checked for **every** child before any
/// shard file is read: a nonzero exit fails the run even if that child
/// left a parseable file behind.
///
/// # Errors
///
/// [`GridError::Spawn`]/[`GridError::ShardFailed`] on child trouble,
/// [`GridError::Io`]/[`GridError::ShardParse`] on output trouble.
pub fn spawn_shards(
    procs: usize,
    tmp: &Path,
    child_args: impl Fn(usize, &Path) -> Vec<std::ffi::OsString>,
) -> Result<Vec<(String, usize, SamplePoint)>, GridError> {
    use std::process::{Command, Stdio};
    let exe = std::env::current_exe()
        .map_err(|e| GridError::Spawn { shard: 0, err: format!("no current exe: {e}") })?;
    let mut children = Vec::new();
    let mut outs = Vec::new();
    let mut first_err = None;
    for i in 0..procs {
        let out = tmp.join(format!("shard-{i}.json"));
        let mut cmd = Command::new(&exe);
        cmd.args(child_args(i, &out)).stdout(Stdio::inherit()).stderr(Stdio::inherit());
        match cmd.spawn() {
            Ok(child) => {
                children.push((i, child));
                outs.push(out);
            }
            Err(e) => {
                first_err = Some(GridError::Spawn { shard: i, err: e.to_string() });
                break;
            }
        }
    }
    // Reap everything we started even on error — no orphan simulators.
    for (i, c) in &mut children {
        match c.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                first_err.get_or_insert(GridError::ShardFailed {
                    shard: *i,
                    status: status.to_string(),
                });
            }
            Err(e) => {
                first_err.get_or_insert(GridError::ShardFailed {
                    shard: *i,
                    status: format!("wait failed: {e}"),
                });
            }
        }
    }
    if let Some(err) = first_err {
        return Err(err);
    }
    let mut all = Vec::new();
    for p in &outs {
        all.extend(read_shard_file(p)?);
    }
    Ok(all)
}

/// Verifies merged shard output against a **storeless** in-process
/// rerun of every cell: the live [`sfetch_sample::Sampler`] walks the
/// trace itself, so this oracle is independent of the checkpoint
/// save/load/resume path the shards used — a defect anywhere in the
/// store machinery shows up here as a divergence instead of being
/// replayed on both sides. Panics (with the offending cell) on any
/// divergence; used by the `--verify` legs.
pub fn verify_merged(
    w: &Workload,
    merged: &[CellRun],
    scfg: SampleConfig,
    opts: &HarnessOpts,
    windows: u64,
) {
    let img = w.image(LayoutChoice::Optimized);
    for run in merged {
        let mut oracle =
            sfetch_sample::Sampler::new(img, run.cell.engine, cell_config(run.cell, opts), scfg, w.ref_seed());
        let single = oracle.run_parallel(windows, opts.jobs);
        assert_eq!(
            &single, &run.points,
            "{}/{}: merged shard windows differ from the storeless single-process run",
            engine_key(run.cell.engine),
            run.cell.width
        );
    }
}

/// The contiguous slice of the flattened (cell-major) grid-work list a
/// shard owns: item `i` is `(cell[i / windows], window i % windows)`.
/// Reuses the window-range math so chunk sizes differ by at most one.
pub fn grid_shard_items(
    n_cells: usize,
    windows: u64,
    shard: sfetch_sample::ShardSpec,
) -> Vec<(usize, Range<u64>)> {
    let flat = sfetch_sample::window_range(n_cells as u64 * windows, shard);
    let mut out: Vec<(usize, Range<u64>)> = Vec::new();
    let mut i = flat.start;
    while i < flat.end {
        let cell = (i / windows) as usize;
        let w_lo = i % windows;
        let w_hi = (w_lo + (flat.end - i)).min(windows);
        out.push((cell, w_lo..w_hi));
        i += w_hi - w_lo;
    }
    out
}

/// Merges shard-file tuples back into per-cell window lists, verifying
/// every cell has exactly windows `0..windows`.
///
/// # Errors
///
/// [`GridError::Merge`] on missing/duplicate windows — a shard bug, not
/// an input error, but one the caller reports and exits on instead of
/// panicking.
pub fn merge_grid(
    cells: &[GridCell],
    windows: u64,
    all: &[(String, usize, SamplePoint)],
    confidence: sfetch_sample::Confidence,
) -> Result<Vec<CellRun>, GridError> {
    cells
        .iter()
        .map(|&cell| {
            let name = format!("{}/{}", engine_key(cell.engine), cell.width);
            let pts: Vec<SamplePoint> = all
                .iter()
                .filter(|(k, w, _)| k == engine_key(cell.engine) && *w == cell.width)
                .map(|(_, _, p)| *p)
                .collect();
            let points = sfetch_sample::merge_points(pts)
                .map_err(|what| GridError::Merge { cell: name.clone(), what })?;
            if points.len() as u64 != windows {
                return Err(GridError::Merge {
                    cell: name,
                    what: format!("merged {} windows, expected {windows}", points.len()),
                });
            }
            let estimate = estimate(&points, confidence);
            Ok(CellRun { cell, points, estimate })
        })
        .collect()
}

/// A degraded merge: what [`merge_grid_partial`] salvaged when some
/// cells never completed.
#[derive(Debug)]
pub struct PartialMerge {
    /// Cells with at least one window, estimated over the windows that
    /// exist (fewer windows → wider Student-t interval, so the
    /// degradation is visible in the CI, not hidden).
    pub runs: Vec<CellRun>,
    /// Cells short of the full window count, with `(have, want)`.
    pub incomplete: Vec<(GridCell, u64, u64)>,
}

/// Merges whatever shard output exists, tolerating **missing** windows
/// (a fleet cell that exhausted its retry budget) but still rejecting
/// **duplicates** (two workers' outputs for the same window would mean
/// the lease exclusion failed — that is corruption, not degradation).
///
/// # Errors
///
/// [`GridError::Merge`] on duplicate windows or windows outside
/// `0..windows`.
pub fn merge_grid_partial(
    cells: &[GridCell],
    windows: u64,
    all: &[(String, usize, SamplePoint)],
    confidence: sfetch_sample::Confidence,
) -> Result<PartialMerge, GridError> {
    let mut runs = Vec::new();
    let mut incomplete = Vec::new();
    for &cell in cells {
        let name = format!("{}/{}", engine_key(cell.engine), cell.width);
        let mut pts: Vec<SamplePoint> = all
            .iter()
            .filter(|(k, w, _)| k == engine_key(cell.engine) && *w == cell.width)
            .map(|(_, _, p)| *p)
            .collect();
        pts.sort_by_key(|p| p.window);
        for pair in pts.windows(2) {
            if pair[0].window == pair[1].window {
                return Err(GridError::Merge {
                    cell: name,
                    what: format!("duplicate window {}", pair[0].window),
                });
            }
        }
        if let Some(p) = pts.last() {
            if p.window >= windows {
                return Err(GridError::Merge {
                    cell: name,
                    what: format!("window {} out of range 0..{windows}", p.window),
                });
            }
        }
        let have = pts.len() as u64;
        if have < windows {
            incomplete.push((cell, have, windows));
        }
        if have > 0 {
            let estimate = estimate(&pts, confidence);
            runs.push(CellRun { cell, points: pts, estimate });
        }
    }
    Ok(PartialMerge { runs, incomplete })
}

/// Prints the per-cell estimate table the sampled grid binaries share.
pub fn print_grid_table(runs: &[CellRun]) {
    println!(
        "\n{:<18} {:>6} {:>8} {:>9} {:>9} {:>9} {:>8}",
        "engine", "width", "windows", "IPC", "ci lo", "ci hi", "±rel"
    );
    for r in runs {
        println!(
            "{:<18} {:>6} {:>8} {:>9.4} {:>9.4} {:>9.4} {:>7.2}%",
            r.cell.engine.to_string(),
            r.cell.width,
            r.estimate.windows,
            r.estimate.ipc,
            r.estimate.ipc_lo,
            r.estimate.ipc_hi,
            100.0 * r.estimate.rel_half_width
        );
    }
}

/// The engine IPC spread (max/min) among `runs` at one width — the
/// quantity compared against the paper's Fig. 8 (~3.5× at 8-wide
/// optimized).
pub fn spread_at_width(runs: &[CellRun], width: usize) -> Option<(f64, f64, f64)> {
    let ipcs: Vec<f64> = runs
        .iter()
        .filter(|r| r.cell.width == width && r.estimate.ipc > 0.0)
        .map(|r| r.estimate.ipc)
        .collect();
    let min = ipcs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = ipcs.iter().copied().fold(0.0f64, f64::max);
    (ipcs.len() >= 2).then_some((min, max, max / min))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfetch_sample::ShardSpec;

    #[test]
    fn cells_are_width_major_and_complete() {
        let cs = cells(&grid_engines(), &FIG8_WIDTHS);
        assert_eq!(cs.len(), 12);
        assert_eq!(cs[0], GridCell { engine: EngineKind::Ev8, width: 2 });
        assert_eq!(cs[4], GridCell { engine: EngineKind::Ev8, width: 4 });
        let mut uniq = cs.clone();
        uniq.dedup();
        assert_eq!(uniq.len(), 12, "no duplicate cells");
    }

    #[test]
    fn calibration_schedule_is_valid_and_sparse() {
        let s = calibration_schedule();
        s.validate();
        assert_eq!(s.windows(50_000_000), 4);
        assert!(
            s.fast_forward() > 2 * (s.warm_func + s.warm_detail + s.measure),
            "fast-forward must dominate the per-window work the store cannot amortize"
        );
    }

    #[test]
    fn engine_keys_roundtrip() {
        for kind in grid_engines() {
            assert_eq!(parse_engines(engine_key(kind)).expect("known key"), vec![kind]);
        }
        assert_eq!(parse_engines("all").expect("all").len(), 4);
        assert_eq!(parse_widths("all").expect("all"), FIG8_WIDTHS.to_vec());
        assert_eq!(parse_widths("2, 8").expect("list"), vec![2, 8]);
        assert!(parse_engines("warp-drive").is_err(), "unknown engine is a CLI error");
        assert!(parse_widths("0").is_err(), "zero width is a CLI error");
    }

    #[test]
    fn shard_items_partition_the_flat_grid() {
        for (n_cells, windows, procs) in [(12usize, 4u64, 2u64), (3, 7, 4), (2, 2, 5)] {
            let mut seen = vec![0u32; n_cells * windows as usize];
            for index in 0..procs {
                for (cell, range) in
                    grid_shard_items(n_cells, windows, ShardSpec { index, count: procs })
                {
                    for w in range {
                        seen[cell * windows as usize + w as usize] += 1;
                    }
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "every (cell, window) exactly once");
        }
    }

    fn point(window: u64) -> SamplePoint {
        SamplePoint {
            window,
            start_inst: 123 + window,
            committed: 5000,
            cycles: 2100 + window,
            stall_cycles: 17,
            mispredictions: 9,
        }
    }

    #[test]
    fn point_lines_parse_back_through_the_seal() {
        let cell = GridCell { engine: EngineKind::Stream, width: 8 };
        let p = point(3);
        let body = format!("{}\n", point_line(cell, &p));
        let parsed = parse_shard_body(&body).expect("body parses");
        assert_eq!(parsed, vec![("stream".to_owned(), 8, p)]);
        // The sealed full-file path verifies the trailer first.
        let sealed = sfetch_fleet::seal(&body);
        assert_eq!(parse_shard_file(&sealed).expect("sealed parses").len(), 1);
        // Truncation (the fault the trailer exists for) is rejected.
        let truncated = &sealed[..sealed.len() - 10];
        assert!(matches!(
            parse_shard_file(truncated),
            Err(GridError::ShardParse { line: 0, .. })
        ));
        // A malformed point line is rejected with its line number.
        let bad = sfetch_fleet::seal("{\"engine\": \"stream\", \"window\": oops}\n");
        assert!(matches!(
            parse_shard_file(&bad),
            Err(GridError::ShardParse { line: 1, .. })
        ));
    }

    #[test]
    fn atomic_write_roundtrips_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("sfetch-grid-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mk tmp");
        let path = dir.join("shard-0.json");
        let cell = GridCell { engine: EngineKind::Ev8, width: 4 };
        let body = format!("{}\n{}\n", point_line(cell, &point(0)), point_line(cell, &point(1)));
        write_shard_atomic(&path, &body).expect("atomic write");
        assert!(!path.with_extension("part").exists(), "temp renamed away");
        assert_eq!(read_shard_file(&path).expect("read back").len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_grid_reports_instead_of_panicking() {
        let cell = GridCell { engine: EngineKind::Stream, width: 8 };
        let conf = sfetch_sample::Confidence::default();
        let tuples =
            vec![("stream".to_owned(), 8, point(0)), ("stream".to_owned(), 8, point(1))];
        let runs = merge_grid(&[cell], 2, &tuples, conf).expect("complete grid merges");
        assert_eq!(runs[0].points.len(), 2);
        // Short a window: strict merge errors, partial merge degrades.
        let short = &tuples[..1];
        assert!(matches!(merge_grid(&[cell], 2, short, conf), Err(GridError::Merge { .. })));
        let partial = merge_grid_partial(&[cell], 2, short, conf).expect("partial merge");
        assert_eq!(partial.runs.len(), 1);
        assert_eq!(partial.incomplete, vec![(cell, 1, 2)]);
        // Duplicate windows are corruption, not degradation.
        let dup = vec![tuples[0].clone(), tuples[0].clone()];
        assert!(matches!(
            merge_grid_partial(&[cell], 2, &dup, conf),
            Err(GridError::Merge { .. })
        ));
    }
}
