//! Shared driver plumbing for the sampled-grid binaries and the
//! resident daemon (`sfetch-serve`).
//!
//! Before this module, `figure8_sampled`, `figure9_sampled` and
//! `shard_runner` each carried a private copy of the same ~150 lines:
//! argument parsing, store resolution, populate, the `--no-fleet`
//! self-respawn argument list, fleet dispatch, degradation exit codes.
//! The daemon needs exactly the same plumbing — so it lives here once,
//! and the one-shot bins and the resident path can never drift apart.
//!
//! The module also defines the **line-JSON serve protocol**: a
//! [`GridRequest`] (one experiment = one benchmark's engines × widths
//! grid under one sampling schedule) serializes to a single `submit`
//! line over a Unix socket, and the daemon streams [`ServeEvent`] lines
//! back — `accepted`, one `cell` per completed ledger cell, one `point`
//! per sampled window, per-cell `estimate` updates, and a terminal
//! `final` carrying the request's singleflight counters. A client
//! merges the streamed points with the same [`merge_grid`] the one-shot
//! bins use, so the final table is **byte-identical** to a local run.
//!
//! Requests that must share work carry the same [`GridRequest::family_tag`]
//! — the fingerprint of everything a cell's output bytes depend on
//! (bench, schedule, horizon, simulated model), deliberately *excluding*
//! the engine/width axes, job counts and warm-state banking. Two
//! overlapping requests therefore map to the same ledger family, and the
//! ledger's cell states are the cross-request singleflight: a cell is
//! computed once, streamed to every subscriber, and resumed with zero
//! recomputation on resubmit.

use std::ffi::OsString;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use sfetch_fetch::EngineKind;
use sfetch_fleet::{fnv64, CellId};
use sfetch_sample::{CheckpointStore, SampleConfig, SamplePoint, ShardSpec, StoredSampler};
use sfetch_workloads::{LayoutChoice, Workload};

use crate::fleet_grid::{degradation_exit, run_fleet_grid, FleetGridError, FleetGridSpec};
use crate::grid::{
    cells, engine_key, merge_grid, parse_engines, parse_widths, point_line, run_cell_range,
    spawn_shards, write_shard_atomic, CellRun, GridCell, GridError, GRID_SHARD_SCHEMA,
};
use crate::obs::ObsOpts;
use crate::{workload_by_name, HarnessOpts};

/// Exits with a readable message instead of a panic backtrace.
pub fn or_die<T, E: std::fmt::Display>(r: Result<T, E>) -> T {
    r.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    })
}

// ---------------------------------------------------------------------
// Line-JSON field extraction
// ---------------------------------------------------------------------
//
// The repo has two line-JSON writers: the shard files put a space after
// the colon (`"key": 1`), the observability `Row` does not (`"key":1`).
// The serve protocol reads both shapes, so these helpers tolerate an
// optional single space — no general JSON parser needed or vendored.

fn jfield_tail<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let at = line.find(&tag)? + tag.len();
    Some(line[at..].strip_prefix(' ').unwrap_or(&line[at..]))
}

/// Pulls an unsigned integer field out of a line-JSON object.
pub fn jfield_u64(line: &str, key: &str) -> Option<u64> {
    let rest = jfield_tail(line, key)?;
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pulls a float field out of a line-JSON object.
pub fn jfield_f64(line: &str, key: &str) -> Option<f64> {
    let rest = jfield_tail(line, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pulls a boolean field out of a line-JSON object.
pub fn jfield_bool(line: &str, key: &str) -> Option<bool> {
    let rest = jfield_tail(line, key)?;
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Pulls a string field out of a line-JSON object, undoing the escapes
/// [`sfetch_obs::jsonl::esc`] produces.
pub fn jfield_str(line: &str, key: &str) -> Option<String> {
    let rest = jfield_tail(line, key)?.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

// ---------------------------------------------------------------------
// Unified CLI
// ---------------------------------------------------------------------

/// Per-binary defaults for [`CommonArgs::parse`].
pub struct ArgDefaults {
    /// Default `--bench`/`--benches` list.
    pub benches: &'static str,
    /// Default `--engines` spec.
    pub engines: &'static str,
    /// Default `--widths` spec.
    pub widths: &'static str,
    /// Default `--procs`.
    pub procs: usize,
}

/// The command-line surface shared by `figure8_sampled`,
/// `figure9_sampled` and `shard_runner` (each bin previously carried
/// its own copy of this parse loop). Flags a given binary does not act
/// on are accepted and ignored — the cost of one parser that can never
/// drift between the one-shot and resident paths.
pub struct CommonArgs {
    /// Harness options (`--grid-total`, `--jobs`, `--warm-bank`, …).
    pub opts: HarnessOpts,
    /// `--bench NAME` / `--benches A,B,…` (synonyms).
    pub benches: Vec<String>,
    /// `--engines all|stream,ev8,…`, parsed.
    pub engines: Vec<EngineKind>,
    /// `--widths all|2,4,8`, parsed.
    pub widths: Vec<usize>,
    /// `--procs N`.
    pub procs: usize,
    /// `--verify`.
    pub verify: bool,
    /// `--shard i/N` (child mode).
    pub shard: Option<ShardSpec>,
    /// `--out FILE` (child mode output path).
    pub out: Option<String>,
    /// `--store DIR` (persistent checkpoint store).
    pub store: Option<String>,
    /// `--chaos SEED`.
    pub chaos: Option<u64>,
    /// `--max-retries N`.
    pub max_retries: u32,
    /// `--cell-timeout SECS`.
    pub cell_timeout: Option<u64>,
    /// `--no-fleet`.
    pub no_fleet: bool,
    /// `--spread-floor F`.
    pub spread_floor: Option<f64>,
    /// `--serve SOCKET`: submit to a resident `sfetch-serve` daemon at
    /// this Unix socket instead of simulating locally.
    pub serve: Option<PathBuf>,
    /// `--req ID`: request id used with `--serve` (default: derived
    /// from the process id).
    pub req_id: Option<String>,
    /// Observability options (`--obs-dir`, `--interval`, `--ptrace`).
    pub obs: ObsOpts,
}

impl CommonArgs {
    /// Parses the process arguments (see [`CommonArgs::parse_list`]).
    pub fn parse(d: &ArgDefaults) -> Self {
        Self::parse_list(std::env::args().skip(1).collect(), d)
    }

    /// Parses an explicit argument list.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments (matching the
    /// historical per-binary parsers).
    pub fn parse_list(args: Vec<String>, d: &ArgDefaults) -> Self {
        let mut benches = d.benches.to_owned();
        let mut engines = d.engines.to_owned();
        let mut widths = d.widths.to_owned();
        let mut procs = d.procs;
        let mut verify = false;
        let mut shard = None;
        let mut out = None;
        let mut store = None;
        let mut chaos = None;
        let mut max_retries = 3u32;
        let mut cell_timeout = None;
        let mut no_fleet = false;
        let mut spread_floor = None;
        let mut serve = None;
        let mut req_id = None;
        let mut rest: Vec<String> = Vec::new();
        let take = |i: usize, what: &str| -> String {
            args.get(i + 1).unwrap_or_else(|| panic!("{what} requires a value")).clone()
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--bench" | "--benches" => {
                    benches = take(i, "--bench");
                    i += 2;
                }
                "--engines" => {
                    engines = take(i, "--engines");
                    i += 2;
                }
                "--widths" => {
                    widths = take(i, "--widths");
                    i += 2;
                }
                "--procs" => {
                    procs = take(i, "--procs").parse().expect("--procs requires a number >= 1");
                    i += 2;
                }
                "--verify" => {
                    verify = true;
                    i += 1;
                }
                "--shard" => {
                    shard = Some(ShardSpec::parse(&take(i, "--shard")).expect("bad --shard"));
                    i += 2;
                }
                "--out" => {
                    out = Some(take(i, "--out"));
                    i += 2;
                }
                "--store" => {
                    store = Some(take(i, "--store"));
                    i += 2;
                }
                "--chaos" => {
                    chaos = Some(take(i, "--chaos").parse().expect("--chaos requires a seed"));
                    i += 2;
                }
                "--max-retries" => {
                    max_retries =
                        take(i, "--max-retries").parse().expect("--max-retries requires a number");
                    i += 2;
                }
                "--cell-timeout" => {
                    cell_timeout = Some(
                        take(i, "--cell-timeout")
                            .parse()
                            .expect("--cell-timeout requires seconds"),
                    );
                    i += 2;
                }
                "--no-fleet" => {
                    no_fleet = true;
                    i += 1;
                }
                "--spread-floor" => {
                    spread_floor = Some(
                        take(i, "--spread-floor")
                            .parse()
                            .expect("--spread-floor requires a ratio"),
                    );
                    i += 2;
                }
                "--serve" => {
                    serve = Some(PathBuf::from(take(i, "--serve")));
                    i += 2;
                }
                "--req" => {
                    req_id = Some(take(i, "--req"));
                    i += 2;
                }
                // Bool flags HarnessOpts understands.
                flag @ ("--legacy-scan" | "--long" | "--warm-bank") => {
                    rest.push(flag.to_owned());
                    i += 1;
                }
                // Everything else HarnessOpts understands takes one value
                // (unknown flags fail inside from_arg_list with its usage).
                other => {
                    rest.push(other.to_owned());
                    rest.push(take(i, other));
                    i += 2;
                }
            }
        }
        assert!(procs >= 1, "--procs must be >= 1");
        let obs = ObsOpts::extract(&mut rest);
        CommonArgs {
            opts: HarnessOpts::from_arg_list(&rest),
            benches: benches.split(',').map(|b| b.trim().to_owned()).collect(),
            engines: or_die(parse_engines(&engines)),
            widths: or_die(parse_widths(&widths)),
            procs,
            verify,
            shard,
            out,
            store,
            chaos,
            max_retries,
            cell_timeout,
            no_fleet,
            spread_floor,
            serve,
            req_id,
            obs,
        }
    }

    /// The single-benchmark binaries' bench name (first of the list).
    pub fn bench(&self) -> &str {
        &self.benches[0]
    }

    /// Builds this invocation's serve-protocol request for one
    /// benchmark, on the given schedule axis.
    pub fn request(&self, bench: &str, axis: ScheduleAxis) -> GridRequest {
        GridRequest {
            bench: bench.to_owned(),
            engines: self.engines.clone(),
            widths: self.widths.clone(),
            total: axis.total(&self.opts),
            scfg: axis.scfg(&self.opts),
            opts: self.opts,
        }
    }
}

/// Which (total, schedule) pair of [`HarnessOpts`] a binary samples on:
/// the figure bins use `--grid-total`/`--grid-sample`, `shard_runner`
/// uses `--sample-total`/`--sample`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleAxis {
    /// `--grid-total` / `--grid-sample`.
    Grid,
    /// `--sample-total` / `--sample`.
    Sample,
}

impl ScheduleAxis {
    /// The sampled instruction horizon on this axis.
    pub fn total(self, o: &HarnessOpts) -> u64 {
        match self {
            ScheduleAxis::Grid => o.grid_total,
            ScheduleAxis::Sample => o.sample_total,
        }
    }

    /// The sampling schedule on this axis.
    pub fn scfg(self, o: &HarnessOpts) -> SampleConfig {
        match self {
            ScheduleAxis::Grid => o.grid_sample,
            ScheduleAxis::Sample => o.sample,
        }
    }

    /// The `--*-total` flag spelling a `--no-fleet` child is re-spawned
    /// with.
    pub fn total_flag(self) -> &'static str {
        match self {
            ScheduleAxis::Grid => "--grid-total",
            ScheduleAxis::Sample => "--sample-total",
        }
    }

    /// The `--*-sample` flag spelling a `--no-fleet` child is
    /// re-spawned with.
    pub fn sample_flag(self) -> &'static str {
        match self {
            ScheduleAxis::Grid => "--grid-sample",
            ScheduleAxis::Sample => "--sample",
        }
    }
}

// ---------------------------------------------------------------------
// One-shot plumbing shared by the bins
// ---------------------------------------------------------------------

/// Child mode (`--shard i/N` under `--no-fleet`): runs this shard's
/// slice of the grid and writes the sealed shard file atomically (or
/// sealed stdout without `--out`).
pub fn run_shard_child(a: &CommonArgs, axis: ScheduleAxis, shard: ShardSpec) -> ExitCode {
    let w = workload_by_name(a.bench());
    let grid = cells(&a.engines, &a.widths);
    let windows = axis.scfg(&a.opts).windows(axis.total(&a.opts));
    let Some(store_path) = a.store.as_deref() else {
        eprintln!("error: shard child needs --store");
        return ExitCode::FAILURE;
    };
    let store =
        or_die(CheckpointStore::open(store_path)).with_cap_bytes(a.opts.store_cap_bytes);
    let text = crate::grid::shard_file_text(
        &w,
        &grid,
        windows,
        axis.scfg(&a.opts),
        &a.opts,
        &store,
        shard,
    );
    match &a.out {
        Some(path) => or_die(write_shard_atomic(Path::new(path), &text)),
        None => print!("{}", sfetch_fleet::seal(&text)),
    }
    ExitCode::SUCCESS
}

/// Resolves the checkpoint-store directory: an explicit `--store DIR`
/// persists, otherwise `fallback` is used and flagged temporary.
pub fn resolve_store(cli: Option<&str>, fallback: PathBuf) -> (PathBuf, bool) {
    match cli {
        Some(dir) => (PathBuf::from(dir), false),
        None => (fallback, true),
    }
}

/// Populates a workload's warming-start checkpoints (one architectural
/// walk; pure verification traffic on a warm store) and prints the
/// store-readiness line the CI smoke legs grep for.
pub fn populate_store(
    w: &Workload,
    scfg: SampleConfig,
    windows: u64,
    store: &CheckpointStore,
    prefix: &str,
) {
    let img = w.image(LayoutChoice::Optimized);
    let fp = w.fingerprint(LayoutChoice::Optimized);
    let mut populate = StoredSampler::new(img, fp, w.ref_seed(), scfg, store);
    let computed = populate.populate(windows);
    eprintln!(
        "{prefix}: {windows} windows ready ({computed} computed, {} loaded warm)",
        populate.stats().hits
    );
}

/// Drops a temporary store, or announces a kept persistent one.
pub fn finish_store(store_is_temp: bool, store_dir: &Path, store: &CheckpointStore, announce: bool) {
    if store_is_temp {
        let _ = std::fs::remove_dir_all(store_dir);
    } else if announce {
        println!("store kept at {} ({} entries)", store_dir.display(), store.entries());
    }
}

/// The argument list a `--no-fleet` parent re-spawns itself with for
/// shard `i` of `procs` (both multi-process binaries previously built
/// this list by hand, differing only in the schedule-flag spellings).
pub fn shard_child_args(
    a: &CommonArgs,
    axis: ScheduleAxis,
    bench: &str,
    i: usize,
    procs: usize,
    store_dir: &Path,
    out: &Path,
) -> Vec<OsString> {
    let mut args: Vec<OsString> = vec![
        "--bench".into(),
        bench.to_owned().into(),
        "--engines".into(),
        a.engines.iter().map(|&k| engine_key(k)).collect::<Vec<_>>().join(",").into(),
        "--widths".into(),
        a.widths.iter().map(|w| w.to_string()).collect::<Vec<_>>().join(",").into(),
        axis.total_flag().into(),
        axis.total(&a.opts).to_string().into(),
        axis.sample_flag().into(),
        axis.scfg(&a.opts).to_spec().into(),
        "--jobs".into(),
        a.opts.jobs.to_string().into(),
        "--batch".into(),
        a.opts.batch.to_string().into(),
        "--front-pipeline".into(),
        a.opts.front.as_str().into(),
        "--grid-prefetch".into(),
        a.opts.grid_prefetch.as_str().into(),
    ];
    // Forward the simulation-model flags so children build the same
    // processors the parent's verify leg does.
    if a.opts.legacy_scan {
        args.push("--legacy-scan".into());
    }
    if a.opts.warm_bank {
        args.push("--warm-bank".into());
    }
    if a.opts.prefetch.mshrs > 0 {
        args.extend(["--prefetch".into(), a.opts.prefetch.kind.to_string().into()]);
        args.extend(["--mshrs".into(), a.opts.prefetch.mshrs.to_string().into()]);
    }
    if let Some(cap) = a.opts.store_cap_bytes {
        args.extend(["--store-cap-bytes".into(), cap.to_string().into()]);
    }
    args.extend(["--no-fleet".into(), "--shard".into(), format!("{i}/{procs}").into()]);
    args.extend(["--store".into(), store_dir.to_path_buf().into()]);
    args.extend(["--out".into(), out.as_os_str().to_owned()]);
    args
}

/// The plain one-shot fan-out (`--no-fleet`): spawn self once per
/// shard, merge strictly, fail the whole run on any shard trouble.
///
/// # Errors
///
/// Propagates [`GridError`] from spawn/merge.
#[allow(clippy::too_many_arguments)]
pub fn run_no_fleet(
    a: &CommonArgs,
    axis: ScheduleAxis,
    bench: &str,
    grid: &[GridCell],
    windows: u64,
    procs: usize,
    tmp: &Path,
    store_dir: &Path,
) -> Result<Vec<CellRun>, GridError> {
    let all = spawn_shards(procs, tmp, |i, out| {
        shard_child_args(a, axis, bench, i, procs, store_dir, out)
    })?;
    merge_grid(grid, windows, &all, axis.scfg(&a.opts).confidence)
}

/// The fleet-supervised fan-out: leased cells, retries, resume, chaos.
/// Returns the merged runs and whether the result is degraded (some
/// cells permanently failed; the degradation report has been printed
/// and recorded).
///
/// # Errors
///
/// Infrastructure failures only ([`FleetGridError`]).
pub fn run_fleet_cells(
    a: &CommonArgs,
    axis: ScheduleAxis,
    bench: &str,
    grid: &[GridCell],
    store_dir: &Path,
    procs: usize,
) -> Result<(Vec<CellRun>, bool), FleetGridError> {
    let outcome = run_fleet_grid(&FleetGridSpec {
        bench,
        grid,
        scfg: axis.scfg(&a.opts),
        total: axis.total(&a.opts),
        opts: &a.opts,
        store_dir,
        procs,
        chaos: a.chaos,
        max_retries: a.max_retries,
        cell_timeout_s: a.cell_timeout,
    })?;
    let degraded = degradation_exit(&outcome) != 0;
    Ok((outcome.runs, degraded))
}

/// Runs one [`CellId`] end-to-end through the checkpoint store and
/// renders its shard body — the **single code path** behind fleet
/// worker processes, the daemon's in-process workers, and (via
/// [`crate::grid::shard_file_text`]'s shared `run_cell_range`) the
/// one-shot shards.
///
/// # Errors
///
/// A readable message on an unknown engine key.
pub fn cell_body_text(
    w: &Workload,
    cell: &CellId,
    scfg: SampleConfig,
    opts: &HarnessOpts,
    store: &CheckpointStore,
) -> Result<String, String> {
    let bodies = cell_group_bodies(w, std::slice::from_ref(cell), scfg, opts, store)?;
    Ok(bodies.into_iter().next().expect("one body per cell"))
}

/// Runs a **compatible group** of [`CellId`]s (same window range) and
/// renders one shard body per cell. A singleton group takes the classic
/// per-cell [`run_cell_range`] path; larger groups share one batched
/// sweep per window ([`crate::grid::run_cells_batched`]) — the point
/// the fleet's group leasing exists for. Bodies are byte-identical
/// either way.
///
/// # Errors
///
/// A readable message on an unknown engine key or a range-incompatible
/// group.
pub fn cell_group_bodies(
    w: &Workload,
    cells: &[CellId],
    scfg: SampleConfig,
    opts: &HarnessOpts,
    store: &CheckpointStore,
) -> Result<Vec<String>, String> {
    let first = cells.first().ok_or("empty cell group")?;
    let mut grid_cells = Vec::with_capacity(cells.len());
    for cell in cells {
        if cell.lo != first.lo || cell.hi != first.hi {
            return Err(format!(
                "cell group mixes window ranges ({first} vs {cell}) — cannot share a sweep"
            ));
        }
        let engine = *parse_engines(&cell.engine)
            .map_err(|e| e.to_string())?
            .first()
            .ok_or("empty engine")?;
        grid_cells.push(GridCell { engine, width: cell.width });
    }
    let range = first.lo..first.hi;
    let per_cell: Vec<Vec<SamplePoint>> = if cells.len() == 1 {
        let (pts, _) = run_cell_range(w, grid_cells[0], scfg, opts, store, range);
        vec![pts]
    } else {
        let (pts, _) = crate::grid::run_cells_batched(
            w,
            &grid_cells,
            cells.len(),
            scfg,
            opts,
            store,
            range,
        );
        pts
    };
    let mut bodies = Vec::with_capacity(cells.len());
    for ((cell, grid_cell), pts) in cells.iter().zip(&grid_cells).zip(per_cell) {
        let mut body = format!(
            "{{\"schema\": \"{GRID_SHARD_SCHEMA}\", \"cell\": \"{}\", \"bench\": \"{}\"}}\n",
            cell,
            w.name()
        );
        for p in &pts {
            body.push_str(&point_line(*grid_cell, p));
            body.push('\n');
        }
        debug_assert!(
            crate::grid::parse_shard_body(&body).is_ok(),
            "cell bodies must parse back"
        );
        bodies.push(body);
    }
    Ok(bodies)
}

/// The shard-output validator shared by every ledger consumer (fleet
/// parents, the daemon): the trailer must verify and every point line
/// must parse. Returns the digest of the full sealed text.
///
/// # Errors
///
/// A readable message on trailer or parse failure.
pub fn validate_shard_text(text: &str) -> Result<u64, String> {
    crate::grid::parse_shard_file(text).map_err(|e| e.to_string())?;
    Ok(fnv64(text.as_bytes()))
}

// ---------------------------------------------------------------------
// The serve protocol
// ---------------------------------------------------------------------

/// Protocol schema tag, carried on `accepted` events; bump on any
/// incompatible wire change.
pub const SERVE_SCHEMA: &str = "sfetch-serve-v1";

/// One experiment request: a benchmark's engines × widths grid under
/// one sampling schedule. Serializes to a single `submit` line.
#[derive(Debug, Clone)]
pub struct GridRequest {
    /// Benchmark name (suite member or `phased`).
    pub bench: String,
    /// Engine axis.
    pub engines: Vec<EngineKind>,
    /// Width axis.
    pub widths: Vec<usize>,
    /// Sampled instruction horizon.
    pub total: u64,
    /// Sampling schedule.
    pub scfg: SampleConfig,
    /// Simulated-model options (legacy scan, prefetch, front pipeline,
    /// grid prefetch) plus jobs/warm-bank execution knobs.
    pub opts: HarnessOpts,
}

impl GridRequest {
    /// The request's grid cells (width-major, like the bins).
    pub fn grid(&self) -> Vec<GridCell> {
        cells(&self.engines, &self.widths)
    }

    /// Number of sampled windows per cell.
    pub fn windows(&self) -> u64 {
        self.scfg.windows(self.total)
    }

    /// The fingerprint of everything a cell's **output bytes** depend
    /// on — and nothing else. Engine/width axes are deliberately
    /// excluded (each cell already carries its own), as are `jobs`,
    /// `batch` and `warm_bank` (host-time knobs, bit-identical
    /// results): two overlapping requests must land in the same ledger
    /// family so the ledger dedupes their shared cells.
    pub fn family_tag(&self) -> u64 {
        let key = format!(
            "serve-family|{GRID_SHARD_SCHEMA}|{}|{}|{}|legacy={}|pf={}:{}|front={}|gridpf={}",
            self.bench,
            self.scfg.to_spec(),
            self.total,
            self.opts.legacy_scan,
            self.opts.prefetch.kind,
            self.opts.prefetch.mshrs,
            self.opts.front.as_str(),
            self.opts.grid_prefetch.as_str(),
        );
        fnv64(key.as_bytes())
    }

    /// The request's **canonical** ledger cells: exactly one [`CellId`]
    /// per (engine, width) pair covering every window. Canonical (never
    /// chunked by a proc count) so that overlapping requests produce
    /// identical cell ids — the dedup key.
    pub fn canonical_cells(&self) -> Vec<CellId> {
        let windows = self.windows();
        self.grid()
            .iter()
            .map(|c| CellId::new(engine_key(c.engine), c.width, 0, windows))
            .collect()
    }

    /// Renders the `submit` line for this request.
    pub fn submit_line(&self, id: &str) -> String {
        sfetch_obs::Row::new()
            .s("op", "submit")
            .s("id", id)
            .s("bench", &self.bench)
            .s(
                "engines",
                &self.engines.iter().map(|&k| engine_key(k)).collect::<Vec<_>>().join(","),
            )
            .s(
                "widths",
                &self.widths.iter().map(|w| w.to_string()).collect::<Vec<_>>().join(","),
            )
            .u("total", self.total)
            .s("sample", &self.scfg.to_spec())
            .b("legacy", self.opts.legacy_scan)
            .s("pf", &self.opts.prefetch.kind.to_string())
            .u("mshrs", self.opts.prefetch.mshrs as u64)
            .s("front", self.opts.front.as_str())
            .s("gridpf", self.opts.grid_prefetch.as_str())
            .u("jobs", self.opts.jobs as u64)
            .u("batch", self.opts.batch as u64)
            .b("warm_bank", self.opts.warm_bank)
            .finish()
    }

    /// Parses a `submit` line back into `(request id, request)`.
    ///
    /// # Errors
    ///
    /// A readable message on a malformed line.
    pub fn parse_submit(line: &str) -> Result<(String, GridRequest), String> {
        if jfield_str(line, "op").as_deref() != Some("submit") {
            return Err("not a submit line".into());
        }
        let id = jfield_str(line, "id").ok_or("submit: missing id")?;
        if id.is_empty() {
            return Err("submit: empty id".into());
        }
        let bench = jfield_str(line, "bench").ok_or("submit: missing bench")?;
        let engines = parse_engines(&jfield_str(line, "engines").ok_or("submit: missing engines")?)
            .map_err(|e| e.to_string())?;
        let widths = parse_widths(&jfield_str(line, "widths").ok_or("submit: missing widths")?)
            .map_err(|e| e.to_string())?;
        let total = jfield_u64(line, "total").ok_or("submit: missing total")?;
        let scfg = SampleConfig::parse(&jfield_str(line, "sample").ok_or("submit: missing sample")?)
            .map_err(|e| e.to_string())?;
        let mut opts = HarnessOpts {
            grid_total: total,
            grid_sample: scfg,
            legacy_scan: jfield_bool(line, "legacy").unwrap_or(false),
            warm_bank: jfield_bool(line, "warm_bank").unwrap_or(false),
            ..HarnessOpts::default()
        };
        if let Some(jobs) = jfield_u64(line, "jobs") {
            opts.jobs = usize::try_from(jobs)
                .ok()
                .filter(|&j| j >= 1)
                .ok_or_else(|| {
                    GridError::Cli(format!("submit: jobs must be >= 1 (got {jobs})")).to_string()
                })?;
        }
        if let Some(batch) = jfield_u64(line, "batch") {
            opts.batch = usize::try_from(batch)
                .ok()
                .filter(|&b| b >= 1)
                .ok_or_else(|| {
                    GridError::Cli(format!("submit: batch must be >= 1 (got {batch})")).to_string()
                })?;
        }
        if let Some(front) = jfield_str(line, "front") {
            opts.front =
                crate::FrontMode::parse(&front).ok_or_else(|| format!("bad front {front:?}"))?;
        }
        if let Some(gridpf) = jfield_str(line, "gridpf") {
            opts.grid_prefetch = crate::GridPrefetchMode::parse(&gridpf)
                .ok_or_else(|| format!("bad gridpf {gridpf:?}"))?;
        }
        let pf = jfield_str(line, "pf").unwrap_or_else(|| "none".to_owned());
        let kind =
            sfetch_core::PrefetchKind::parse(&pf).ok_or_else(|| format!("bad pf {pf:?}"))?;
        opts.prefetch = if kind == sfetch_core::PrefetchKind::None {
            sfetch_core::PrefetchConfig::none()
        } else {
            sfetch_core::PrefetchConfig::enabled(kind)
        };
        if let Some(m) = jfield_u64(line, "mshrs") {
            if kind == sfetch_core::PrefetchKind::None {
                // `submit_line` always writes the field; 0 is the only
                // value consistent with a disabled prefetcher.
                if m > 0 {
                    return Err(GridError::Cli(format!(
                        "submit: mshrs {m} given but prefetch is \"none\""
                    ))
                    .to_string());
                }
            } else {
                opts.prefetch.mshrs =
                    usize::try_from(m).ok().filter(|&m| m >= 1).ok_or_else(|| {
                        GridError::Cli(format!(
                            "submit: mshrs must be >= 1 with prefetch {kind} (got {m})"
                        ))
                        .to_string()
                    })?;
            }
        }
        Ok((id, GridRequest { bench, engines, widths, total, scfg, opts }))
    }
}

/// One line of the daemon's result stream.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeEvent {
    /// Reply to `{"op":"ping"}` — the CI readiness probe.
    Pong,
    /// The request was parsed and scheduled.
    Accepted {
        /// Request id.
        req: String,
        /// Canonical cell count.
        cells: u64,
        /// Windows per cell.
        windows: u64,
    },
    /// One canonical cell completed (or was resumed from the ledger).
    Cell {
        /// Request id.
        req: String,
        /// The canonical cell id.
        cell: String,
        /// Served from the ledger without any fresh compute.
        resumed: bool,
        /// How many requests of the batch subscribe to this cell.
        shared_by: u64,
    },
    /// One sampled window of a completed cell.
    Point {
        /// Engine key (`stream`/`ev8`/`ftb`/`tcache`).
        engine: String,
        /// Pipe width.
        width: usize,
        /// The measurement.
        point: SamplePoint,
    },
    /// Running confidence-interval update for one (engine, width) after
    /// its cell completed.
    Estimate {
        /// Engine key.
        engine: String,
        /// Pipe width.
        width: usize,
        /// Windows merged so far.
        windows: u64,
        /// Sampled IPC.
        ipc: f64,
        /// CI lower bound.
        lo: f64,
        /// CI upper bound.
        hi: f64,
    },
    /// Terminal event: the request's merge is complete (or degraded).
    Final {
        /// Request id.
        req: String,
        /// `complete` or `degraded`.
        status: String,
        /// Cells computed fresh for this request's batch.
        computed: u64,
        /// Cells served from the ledger (singleflight hits across
        /// daemon restarts and resubmits).
        resumed: u64,
        /// Cells shared with another in-batch request (singleflight
        /// hits across concurrent requests).
        shared: u64,
    },
    /// Terminal event: the request failed.
    Error {
        /// Request id (may be empty when the submit line didn't parse).
        req: String,
        /// What went wrong.
        msg: String,
    },
}

impl ServeEvent {
    /// Renders the event as one stream line.
    pub fn to_line(&self) -> String {
        use sfetch_obs::Row;
        match self {
            ServeEvent::Pong => Row::new().s("ev", "pong").s("schema", SERVE_SCHEMA).finish(),
            ServeEvent::Accepted { req, cells, windows } => Row::new()
                .s("ev", "accepted")
                .s("schema", SERVE_SCHEMA)
                .s("req", req)
                .u("cells", *cells)
                .u("windows", *windows)
                .finish(),
            ServeEvent::Cell { req, cell, resumed, shared_by } => Row::new()
                .s("ev", "cell")
                .s("req", req)
                .s("cell", cell)
                .b("resumed", *resumed)
                .u("shared_by", *shared_by)
                .finish(),
            ServeEvent::Point { engine, width, point } => Row::new()
                .s("ev", "point")
                .s("engine", engine)
                .u("width", *width as u64)
                .u("window", point.window)
                .u("start_inst", point.start_inst)
                .u("committed", point.committed)
                .u("cycles", point.cycles)
                .u("stall_cycles", point.stall_cycles)
                .u("mispredictions", point.mispredictions)
                .finish(),
            ServeEvent::Estimate { engine, width, windows, ipc, lo, hi } => Row::new()
                .s("ev", "estimate")
                .s("engine", engine)
                .u("width", *width as u64)
                .u("windows", *windows)
                .f("ipc", *ipc)
                .f("lo", *lo)
                .f("hi", *hi)
                .finish(),
            ServeEvent::Final { req, status, computed, resumed, shared } => Row::new()
                .s("ev", "final")
                .s("req", req)
                .s("status", status)
                .u("computed", *computed)
                .u("resumed", *resumed)
                .u("shared", *shared)
                .finish(),
            ServeEvent::Error { req, msg } => {
                Row::new().s("ev", "error").s("req", req).s("msg", msg).finish()
            }
        }
    }

    /// Parses one stream line.
    ///
    /// # Errors
    ///
    /// A readable message on an unknown or malformed event.
    pub fn parse(line: &str) -> Result<ServeEvent, String> {
        let ev = jfield_str(line, "ev").ok_or("missing ev field")?;
        let want_str = |key: &str| {
            jfield_str(line, key).ok_or_else(|| format!("{ev}: missing field {key:?}"))
        };
        let want_u64 =
            |key: &str| jfield_u64(line, key).ok_or_else(|| format!("{ev}: missing field {key:?}"));
        let want_f64 =
            |key: &str| jfield_f64(line, key).ok_or_else(|| format!("{ev}: missing field {key:?}"));
        match ev.as_str() {
            "pong" => Ok(ServeEvent::Pong),
            "accepted" => Ok(ServeEvent::Accepted {
                req: want_str("req")?,
                cells: want_u64("cells")?,
                windows: want_u64("windows")?,
            }),
            "cell" => Ok(ServeEvent::Cell {
                req: want_str("req")?,
                cell: want_str("cell")?,
                resumed: jfield_bool(line, "resumed").unwrap_or(false),
                shared_by: want_u64("shared_by")?,
            }),
            "point" => Ok(ServeEvent::Point {
                engine: want_str("engine")?,
                width: want_u64("width")? as usize,
                point: SamplePoint {
                    window: want_u64("window")?,
                    start_inst: want_u64("start_inst")?,
                    committed: want_u64("committed")?,
                    cycles: want_u64("cycles")?,
                    stall_cycles: want_u64("stall_cycles")?,
                    mispredictions: want_u64("mispredictions")?,
                },
            }),
            "estimate" => Ok(ServeEvent::Estimate {
                engine: want_str("engine")?,
                width: want_u64("width")? as usize,
                windows: want_u64("windows")?,
                ipc: want_f64("ipc")?,
                lo: want_f64("lo")?,
                hi: want_f64("hi")?,
            }),
            "final" => Ok(ServeEvent::Final {
                req: want_str("req")?,
                status: want_str("status")?,
                computed: want_u64("computed")?,
                resumed: want_u64("resumed")?,
                shared: want_u64("shared")?,
            }),
            "error" => Ok(ServeEvent::Error {
                req: jfield_str(line, "req").unwrap_or_default(),
                msg: want_str("msg")?,
            }),
            other => Err(format!("unknown event {other:?}")),
        }
    }
}

/// What a client collected from one streamed request.
#[derive(Debug)]
pub struct StreamOutcome {
    /// Every streamed `(engine key, width, point)` tuple — the same
    /// shape shard files parse into, so [`merge_grid`] merges them into
    /// the byte-identical final table.
    pub points: Vec<(String, usize, SamplePoint)>,
    /// Final status (`complete`/`degraded`).
    pub status: String,
    /// Cells computed fresh.
    pub computed: u64,
    /// Cells resumed from the ledger.
    pub resumed: u64,
    /// Cells shared with concurrent requests.
    pub shared: u64,
}

/// Submits `req` to a resident daemon at `addr` and collects the
/// streamed result. Every raw stream line is also handed to `on_line`
/// (progress displays, transcripts).
///
/// # Errors
///
/// A readable message on connection, protocol, or daemon-side errors.
#[cfg(unix)]
pub fn submit_and_collect(
    addr: &Path,
    id: &str,
    req: &GridRequest,
    mut on_line: impl FnMut(&str),
) -> Result<StreamOutcome, String> {
    use std::io::{BufRead, BufReader, Write};
    let stream = std::os::unix::net::UnixStream::connect(addr)
        .map_err(|e| format!("connect {}: {e}", addr.display()))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone socket: {e}"))?;
    writer
        .write_all(format!("{}\n", req.submit_line(id)).as_bytes())
        .map_err(|e| format!("send request: {e}"))?;
    let mut points = Vec::new();
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line.map_err(|e| format!("read stream: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        on_line(&line);
        match ServeEvent::parse(&line)? {
            ServeEvent::Point { engine, width, point } => points.push((engine, width, point)),
            ServeEvent::Final { status, computed, resumed, shared, .. } => {
                return Ok(StreamOutcome { points, status, computed, resumed, shared });
            }
            ServeEvent::Error { msg, .. } => return Err(format!("daemon: {msg}")),
            _ => {}
        }
    }
    Err("stream ended before the final event (daemon died?)".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> GridRequest {
        let opts = HarnessOpts { jobs: 3, batch: 4, ..HarnessOpts::default() };
        GridRequest {
            bench: "phased".into(),
            engines: vec![EngineKind::Stream, EngineKind::Ev8],
            widths: vec![4, 8],
            total: 2_000_000,
            scfg: SampleConfig::parse("500000,60000,5000,5000").expect("spec"),
            opts,
        }
    }

    #[test]
    fn jfields_tolerate_both_spacings() {
        for line in [
            "{\"a\": 7, \"s\": \"x,y\", \"b\": true, \"f\": -1.5}",
            "{\"a\":7,\"s\":\"x,y\",\"b\":true,\"f\":-1.5}",
        ] {
            assert_eq!(jfield_u64(line, "a"), Some(7));
            assert_eq!(jfield_str(line, "s").as_deref(), Some("x,y"));
            assert_eq!(jfield_bool(line, "b"), Some(true));
            assert_eq!(jfield_f64(line, "f"), Some(-1.5));
            assert_eq!(jfield_u64(line, "missing"), None);
        }
        // Escapes round-trip through the obs writer.
        let line = sfetch_obs::Row::new().s("m", "a \"b\"\n\tc").finish();
        assert_eq!(jfield_str(&line, "m").as_deref(), Some("a \"b\"\n\tc"));
    }

    #[test]
    fn submit_line_round_trips() {
        let r = req();
        let line = r.submit_line("r-1");
        let (id, back) = GridRequest::parse_submit(&line).expect("parse");
        assert_eq!(id, "r-1");
        assert_eq!(back.bench, r.bench);
        assert_eq!(back.engines, r.engines);
        assert_eq!(back.widths, r.widths);
        assert_eq!(back.total, r.total);
        assert_eq!(back.scfg.to_spec(), r.scfg.to_spec());
        assert_eq!(back.opts.jobs, 3);
        assert_eq!(back.opts.batch, 4);
        assert_eq!(back.opts.warm_bank, r.opts.warm_bank);
        assert_eq!(back.family_tag(), r.family_tag());
    }

    #[test]
    fn submit_rejects_out_of_range_knobs() {
        let good = req().submit_line("r-1");
        // A zero jobs/batch count used to be silently clamped to 1; the
        // daemon now refuses the request, naming the offending value.
        let zero_jobs = good.replace("\"jobs\":3", "\"jobs\":0");
        let err = GridRequest::parse_submit(&zero_jobs).expect_err("jobs 0 must be rejected");
        assert!(err.contains("jobs") && err.contains("0"), "err: {err}");
        let zero_batch = good.replace("\"batch\":4", "\"batch\":0");
        let err = GridRequest::parse_submit(&zero_batch).expect_err("batch 0 must be rejected");
        assert!(err.contains("batch") && err.contains("0"), "err: {err}");
        // mshrs with prefetch disabled used to be silently ignored.
        let ghost_mshrs = good.replace("\"mshrs\":0", "\"mshrs\":9");
        let err =
            GridRequest::parse_submit(&ghost_mshrs).expect_err("mshrs without pf must be rejected");
        assert!(err.contains("mshrs") && err.contains("none"), "err: {err}");
        // mshrs 0 with an enabled prefetcher is equally out of range.
        let pf_no_mshrs = good.replace("\"pf\":\"none\"", "\"pf\":\"stream\"");
        let err = GridRequest::parse_submit(&pf_no_mshrs)
            .expect_err("pf without mshrs capacity must be rejected");
        assert!(err.contains("mshrs"), "err: {err}");
    }

    #[test]
    fn family_tag_ignores_axes_and_host_knobs() {
        let a = req();
        let mut b = req();
        b.engines = vec![EngineKind::Ftb];
        b.widths = vec![8];
        b.opts.jobs = 1;
        b.opts.batch = 16;
        b.opts.warm_bank = true;
        assert_eq!(a.family_tag(), b.family_tag(), "axes and host knobs must not split families");
        let mut c = req();
        c.total = 4_000_000;
        assert_ne!(a.family_tag(), c.family_tag(), "the horizon is output-relevant");
        let mut d = req();
        d.opts.legacy_scan = true;
        assert_ne!(a.family_tag(), d.family_tag(), "the simulated model is output-relevant");
    }

    #[test]
    fn canonical_cells_cover_every_pair_once() {
        let r = req();
        let cells = r.canonical_cells();
        assert_eq!(cells.len(), 4);
        for c in &cells {
            assert_eq!(c.lo, 0);
            assert_eq!(c.hi, r.windows());
        }
        // Canonical = stable across request shapes: the same pair from a
        // wider request produces the identical cell id.
        let mut wide = req();
        wide.engines = EngineKind::ALL.to_vec();
        wide.widths = vec![2, 4, 8];
        let wide_cells = wide.canonical_cells();
        for c in &cells {
            assert!(
                wide_cells.iter().any(|w| w.to_string() == c.to_string()),
                "cell {c} missing from the superset request"
            );
        }
    }

    #[test]
    fn serve_events_round_trip() {
        let evs = vec![
            ServeEvent::Pong,
            ServeEvent::Accepted { req: "r-1".into(), cells: 4, windows: 4 },
            ServeEvent::Cell {
                req: "r-1".into(),
                cell: "stream/8/0-4".into(),
                resumed: true,
                shared_by: 2,
            },
            ServeEvent::Point {
                engine: "stream".into(),
                width: 8,
                point: SamplePoint {
                    window: 3,
                    start_inst: 1_500_000,
                    committed: 5000,
                    cycles: 2600,
                    stall_cycles: 400,
                    mispredictions: 17,
                },
            },
            ServeEvent::Estimate {
                engine: "stream".into(),
                width: 8,
                windows: 4,
                ipc: 1.9231,
                lo: 1.87,
                hi: 1.98,
            },
            ServeEvent::Final {
                req: "r-1".into(),
                status: "complete".into(),
                computed: 2,
                resumed: 1,
                shared: 1,
            },
            ServeEvent::Error { req: "r-1".into(), msg: "bad \"sample\" spec".into() },
        ];
        for ev in evs {
            let line = ev.to_line();
            assert_eq!(ServeEvent::parse(&line).expect("parse"), ev, "line: {line}");
        }
    }

    #[test]
    fn shard_child_args_carry_every_model_flag() {
        let d = ArgDefaults { benches: "phased", engines: "all", widths: "all", procs: 1 };
        let a = CommonArgs::parse_list(
            vec![
                "--engines".into(),
                "stream,ev8".into(),
                "--widths".into(),
                "8".into(),
                "--warm-bank".into(),
                "--legacy-scan".into(),
                "--grid-total".into(),
                "2000000".into(),
                "--batch".into(),
                "4".into(),
                "--store-cap-bytes".into(),
                "1048576".into(),
            ],
            &d,
        );
        assert!(a.opts.warm_bank && a.opts.legacy_scan);
        assert_eq!(a.opts.batch, 4);
        assert_eq!(a.opts.store_cap_bytes, Some(1_048_576));
        let args = shard_child_args(
            &a,
            ScheduleAxis::Grid,
            "phased",
            1,
            4,
            Path::new("/s"),
            Path::new("/o"),
        );
        let has = |flag: &str| args.iter().any(|x| x == flag);
        assert!(has("--warm-bank") && has("--legacy-scan") && has("--grid-total"));
        assert!(has("--batch") && has("--store-cap-bytes"));
        assert!(has("--shard") && has("--no-fleet"));
    }
}
