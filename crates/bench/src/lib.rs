//! # sfetch-bench
//!
//! The experiment harness that regenerates every table and figure of
//! *"Fetching instruction streams"* (see DESIGN.md §3 for the experiment
//! index). Each binary under `src/bin/` reproduces one artifact:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `figure8` | Fig. 8 (a,b,c): IPC × {2,4,8}-wide × {base, optimized} |
//! | `figure9` | Fig. 9: per-benchmark IPC, 8-wide optimized |
//! | `table1`  | Table 1: fetch-unit size & storage cost per engine |
//! | `table2`  | Table 2: the configuration actually simulated |
//! | `table3`  | Table 3: misprediction rate & fetch IPC, 8-wide |
//! | `ablation_linesize` | Fig. 7 motivation: line width sweep |
//! | `ablation_predictor` | cascaded vs single-level stream predictor |
//! | `ablation_ftq` | FTQ depth sweep |
//! | `ablation_sts` | selective trace storage on/off |
//! | `all` | everything above, in sequence |
//!
//! Run with `--inst N` / `--warmup N` to change the measured window
//! (defaults: 1M measured after 200k warmup per point).

use std::time::Instant;

use sfetch_core::{metrics::harmonic_mean, simulate, Processor, ProcessorConfig, SimStats};
use sfetch_fetch::{EngineKind, FetchEngine};
use sfetch_mem::MemoryConfig;
use sfetch_workloads::{LayoutChoice, Suite, Workload};

/// Command-line options shared by all harness binaries.
#[derive(Debug, Clone, Copy)]
pub struct HarnessOpts {
    /// Measured committed instructions per point.
    pub insts: u64,
    /// Warmup committed instructions per point (excluded from stats).
    pub warmup: u64,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts { insts: 1_000_000, warmup: 200_000 }
    }
}

impl HarnessOpts {
    /// Parses `--inst N` and `--warmup N` from the process arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Self {
        let mut o = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--inst" => {
                    o.insts = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .expect("--inst requires a number");
                    i += 2;
                }
                "--warmup" => {
                    o.warmup = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .expect("--warmup requires a number");
                    i += 2;
                }
                other => panic!("unknown argument {other}; supported: --inst N, --warmup N"),
            }
        }
        o
    }
}

/// One simulated point of the evaluation grid.
#[derive(Debug, Clone, Copy)]
pub struct RunPoint {
    /// Benchmark name.
    pub bench: &'static str,
    /// Fetch engine.
    pub engine: EngineKind,
    /// Layout flavour.
    pub layout: LayoutChoice,
    /// Pipe width.
    pub width: usize,
    /// Measured statistics.
    pub stats: SimStats,
}

/// Simulates one point.
pub fn run_point(
    w: &Workload,
    engine: EngineKind,
    layout: LayoutChoice,
    width: usize,
    opts: HarnessOpts,
) -> RunPoint {
    let image = w.image(layout);
    let stats = simulate(
        w.cfg(),
        image,
        engine,
        ProcessorConfig::table2(width),
        w.ref_seed(),
        opts.warmup,
        opts.insts,
    );
    RunPoint { bench: w.name(), engine, layout, width, stats }
}

/// Simulates one point with a custom-built engine and memory configuration
/// (for the ablation studies: line-size sweeps, FTQ depths, predictor
/// organizations, selective trace storage).
pub fn run_custom(
    w: &Workload,
    layout: LayoutChoice,
    width: usize,
    memcfg: MemoryConfig,
    engine: Box<dyn FetchEngine>,
    opts: HarnessOpts,
) -> SimStats {
    let image = w.image(layout);
    let mut p = Processor::with_memory(
        ProcessorConfig::table2(width),
        memcfg,
        engine,
        w.cfg(),
        image,
        w.ref_seed(),
    );
    p.run(opts.warmup);
    p.reset_stats();
    p.run(opts.insts);
    p.stats()
}

/// The four-benchmark subset used by the quicker ablation binaries.
pub const ABLATION_BENCHES: [&str; 4] = ["gzip", "gcc", "crafty", "twolf"];

/// Runs the whole grid for the given widths/layouts/engines, printing a
/// progress line per benchmark.
pub fn run_grid(
    suite: &Suite,
    widths: &[usize],
    layouts: &[LayoutChoice],
    engines: &[EngineKind],
    opts: HarnessOpts,
) -> Vec<RunPoint> {
    let mut out = Vec::new();
    for w in suite.workloads() {
        let t0 = Instant::now();
        for &width in widths {
            for &layout in layouts {
                for &engine in engines {
                    out.push(run_point(w, engine, layout, width, opts));
                }
            }
        }
        eprintln!("  [{}] done in {:.1}s", w.name(), t0.elapsed().as_secs_f64());
    }
    out
}

/// Harmonic-mean IPC over the suite for a (engine, layout, width) cell.
pub fn hmean_ipc(points: &[RunPoint], engine: EngineKind, layout: LayoutChoice, width: usize) -> f64 {
    let vals: Vec<f64> = points
        .iter()
        .filter(|p| p.engine == engine && p.layout == layout && p.width == width)
        .map(|p| p.stats.ipc())
        .collect();
    harmonic_mean(&vals)
}

/// Arithmetic mean of a per-point metric over the suite for one cell.
pub fn mean_metric(
    points: &[RunPoint],
    engine: EngineKind,
    layout: LayoutChoice,
    width: usize,
    f: impl Fn(&SimStats) -> f64,
) -> f64 {
    let vals: Vec<f64> = points
        .iter()
        .filter(|p| p.engine == engine && p.layout == layout && p.width == width)
        .map(|p| f(&p.stats))
        .collect();
    if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// Prints a markdown-style table: rows = engines, columns = (layout).
pub fn print_engine_table(
    title: &str,
    points: &[RunPoint],
    metric: impl Fn(&[RunPoint], EngineKind, LayoutChoice) -> f64,
    unit: &str,
) {
    println!("\n{title}");
    println!("{:<18} {:>10} {:>10}", "engine", "base", "optimized");
    for kind in EngineKind::ALL {
        let b = metric(points, kind, LayoutChoice::Base);
        let o = metric(points, kind, LayoutChoice::Optimized);
        println!("{:<18} {:>9.3}{unit} {:>9.3}{unit}", kind.to_string(), b, o);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_opts_are_sane() {
        let o = HarnessOpts::default();
        assert!(o.insts >= 100_000);
        assert!(o.warmup < o.insts);
    }
}
