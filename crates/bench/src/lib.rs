//! # sfetch-bench
//!
//! The experiment harness that regenerates every table and figure of
//! *"Fetching instruction streams"* (see DESIGN.md §3 for the experiment
//! index). Each binary under `src/bin/` reproduces one artifact:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `figure8` | Fig. 8 (a,b,c): IPC × {2,4,8}-wide × {base, optimized} |
//! | `figure9` | Fig. 9: per-benchmark IPC, 8-wide optimized |
//! | `table1`  | Table 1: fetch-unit size & storage cost per engine |
//! | `table2`  | Table 2: the configuration actually simulated |
//! | `table3`  | Table 3: misprediction rate & fetch IPC, 8-wide |
//! | `ablation_linesize` | Fig. 7 motivation: line width sweep |
//! | `ablation_predictor` | cascaded vs single-level stream predictor |
//! | `ablation_ftq` | FTQ depth sweep |
//! | `ablation_sts` | selective trace storage on/off |
//! | `figure8_sampled` | Fig. 8 grid at paper-scale horizons via the sampler + checkpoint store |
//! | `figure9_sampled` | Fig. 9 per-benchmark comparison, sampled through the store |
//! | `perfstats` | host throughput per engine + the sampling/redecode A/Bs + the store-backed calibration grid → `BENCH_5.json` |
//! | `shard_runner` | multi-process sampled simulation: windows × engines × widths fanned across OS processes via the checkpoint store, merged bit-identically |
//! | `all` | everything above, in sequence |
//!
//! Run with `--inst N` / `--warmup N` to change the measured window
//! (defaults: 1M measured after 200k warmup per point) and `--jobs N` to
//! bound worker threads (default: all cores). `--long` appends the
//! long-horizon phased workload to the ablation set; `--sample` /
//! `--sample-total` configure the sampled-simulation schedule (see
//! [`sfetch_sample::SampleConfig`]). Every grid point owns its
//! `Processor` and derives only from its workload + configuration, so
//! parallel runs are bit-identical to serial ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use sfetch_core::{
    metrics::harmonic_mean, simulate, FrontPipeline, PrefetchConfig, PrefetchKind, Processor,
    ProcessorConfig, SimStats,
};
use sfetch_fetch::{EngineKind, FetchEngine};
use sfetch_mem::MemoryConfig;
use sfetch_sample::SampleConfig;
use sfetch_workloads::{par_map, phased, LayoutChoice, Suite, Workload};

pub mod driver;
pub mod fleet_grid;
pub mod grid;
pub mod obs;
pub mod progress;

pub use progress::{GridProgress, Reporter};

/// Which front-pipeline model the grids simulate
/// (`--front-pipeline legacy|engine`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrontMode {
    /// [`FrontPipeline::legacy`] for every engine — the pre-calibration
    /// shared front end; bit-identical to the historical harness.
    Legacy,
    /// [`FrontPipeline::for_engine`]: each engine pays its own decode
    /// depth, redirect penalty and decode-redirect bubble, and the
    /// shadow-decode engines get their BTB/FTB shadow scan. The default:
    /// this is the Fig. 8 calibration the grid exists to measure.
    #[default]
    PerEngine,
}

impl FrontMode {
    /// Parses a `--front-pipeline` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "legacy" => Some(FrontMode::Legacy),
            "engine" => Some(FrontMode::PerEngine),
            _ => None,
        }
    }

    /// The CLI spelling (`legacy` / `engine`), round-tripping
    /// [`FrontMode::parse`].
    pub fn as_str(self) -> &'static str {
        match self {
            FrontMode::Legacy => "legacy",
            FrontMode::PerEngine => "engine",
        }
    }

    /// The front pipeline this mode assigns to `engine`.
    pub fn front_for(self, engine: EngineKind) -> FrontPipeline {
        match self {
            FrontMode::Legacy => FrontPipeline::legacy(),
            FrontMode::PerEngine => FrontPipeline::for_engine(engine),
        }
    }
}

/// Which instruction-prefetch policy the **sampled calibration grid**
/// assigns per cell (`--grid-prefetch shared|natural`). Distinct from
/// the global [`HarnessOpts::prefetch`] so the A/B sweeps that compare
/// one explicit policy across engines keep working unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GridPrefetchMode {
    /// Every cell runs [`HarnessOpts::prefetch`] (the historical
    /// behavior; the default opts make that the blocking L1i).
    Shared,
    /// Each cell runs its engine's [`EngineKind::natural_prefetch`]
    /// policy — the front ends compete at their best, as the paper's
    /// configuration table intends. The default for the grid.
    #[default]
    Natural,
}

impl GridPrefetchMode {
    /// Parses a `--grid-prefetch` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "shared" => Some(GridPrefetchMode::Shared),
            "natural" => Some(GridPrefetchMode::Natural),
            _ => None,
        }
    }

    /// The CLI spelling (`shared` / `natural`), round-tripping
    /// [`GridPrefetchMode::parse`].
    pub fn as_str(self) -> &'static str {
        match self {
            GridPrefetchMode::Shared => "shared",
            GridPrefetchMode::Natural => "natural",
        }
    }
}

/// Command-line options shared by all harness binaries.
#[derive(Debug, Clone, Copy)]
pub struct HarnessOpts {
    /// Measured committed instructions per point.
    pub insts: u64,
    /// Warmup committed instructions per point (excluded from stats).
    pub warmup: u64,
    /// Maximum simulation worker threads.
    pub jobs: usize,
    /// Simulate with the legacy per-cycle ROB scan instead of the
    /// event-driven scheduler (differential testing / A-B measurement;
    /// results are bit-identical, only host throughput differs).
    pub legacy_scan: bool,
    /// Instruction-prefetch configuration applied to every grid point
    /// (default: disabled — the legacy blocking L1i). Honored by the
    /// `run_point`-based grids and `ablation_prefetch`; the
    /// custom-engine ablation sweeps (`run_custom`) ignore it, since
    /// their hand-built engines carry no prefetcher.
    pub prefetch: PrefetchConfig,
    /// Include the long-horizon phased workload (`--long`). Off by
    /// default so tier-1 runtimes stay bounded; `ablation_workloads`
    /// appends it when set.
    pub long: bool,
    /// Committed instructions of the sampling A/B's long run
    /// (`--sample-total N`; `perfstats` and `shard_runner` only).
    pub sample_total: u64,
    /// The U/W/D sampling schedule (`--sample U,Wf,Wd,D`).
    pub sample: SampleConfig,
    /// Committed instructions of the sampled calibration grid
    /// (`--grid-total N`; the `*_sampled` bins and `perfstats`).
    pub grid_total: u64,
    /// The calibration grid's sampling schedule (`--grid-sample
    /// U,Wf,Wd,D[,Wm]`; default [`grid::calibration_schedule`]).
    pub grid_sample: SampleConfig,
    /// Front-pipeline model selection (`--front-pipeline
    /// legacy|engine`). Applied by [`run_point`] and by the sampled
    /// grid's [`grid::cell_config`]; `run_custom` ignores it (hand-built
    /// ablation engines model their own organization).
    pub front: FrontMode,
    /// Per-cell prefetch policy of the sampled calibration grid
    /// (`--grid-prefetch shared|natural`). Only [`grid::cell_config`]
    /// reads it; the flat `run_point` grids keep honoring
    /// [`HarnessOpts::prefetch`].
    pub grid_prefetch: GridPrefetchMode,
    /// Bank per-(engine, config) warm simulator state in the checkpoint
    /// store (`--warm-bank`), so resident reruns of the same cell skip
    /// the functional-warming walk. Results are bit-identical with the
    /// bank on or off; only host time changes. Off by default.
    pub warm_bank: bool,
    /// Grid cells driven per shared functional sweep (`--batch N`): the
    /// sampled grids batch up to `N` same-window cells through one
    /// recorded executor walk ([`sfetch_sample::BatchSampler`]).
    /// Results are bit-identical for any value — batching, like
    /// `--warm-bank` and `--jobs`, is a host-time knob. Default 1 (the
    /// per-window path).
    pub batch: usize,
    /// Byte cap on the checkpoint store (`--store-cap-bytes N`): saves
    /// evict least-recently-accessed unleased entries past the cap,
    /// which later runs recompute transparently. `None` (default) never
    /// sheds.
    pub store_cap_bytes: Option<u64>,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            insts: 1_000_000,
            warmup: 200_000,
            jobs: sfetch_workloads::default_jobs(),
            legacy_scan: false,
            prefetch: PrefetchConfig::none(),
            long: false,
            sample_total: 50_000_000,
            sample: SampleConfig::default(),
            grid_total: 50_000_000,
            grid_sample: grid::calibration_schedule(),
            front: FrontMode::default(),
            grid_prefetch: GridPrefetchMode::default(),
            warm_bank: false,
            batch: 1,
            store_cap_bytes: None,
        }
    }
}

impl HarnessOpts {
    /// Parses `--inst N`, `--warmup N`, `--jobs N`, `--legacy-scan`,
    /// `--prefetch KIND` (`none|next-line|stream|mana`), `--mshrs N`,
    /// `--long`, `--sample-total N`, `--sample U,Wf,Wd,D`,
    /// `--grid-total N`, `--grid-sample U,Wf,Wd,D[,Wm]`,
    /// `--front-pipeline legacy|engine`, `--grid-prefetch
    /// shared|natural`, `--warm-bank`, `--batch N` and
    /// `--store-cap-bytes N` from the process arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Self {
        Self::from_arg_list(&std::env::args().skip(1).collect::<Vec<String>>())
    }

    /// Parses an explicit argument list (see [`HarnessOpts::from_args`]).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_arg_list(args: &[String]) -> Self {
        let mut o = Self::default();
        let mut pf_kind = PrefetchKind::None;
        let mut mshrs_override: Option<usize> = None;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--inst" => {
                    o.insts = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .expect("--inst requires a number");
                    i += 2;
                }
                "--warmup" => {
                    o.warmup = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .expect("--warmup requires a number");
                    i += 2;
                }
                "--jobs" => {
                    o.jobs = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &usize| n >= 1)
                        .expect("--jobs requires a number >= 1");
                    i += 2;
                }
                "--legacy-scan" => {
                    o.legacy_scan = true;
                    i += 1;
                }
                "--prefetch" => {
                    pf_kind = args
                        .get(i + 1)
                        .and_then(|v| PrefetchKind::parse(v))
                        .expect("--prefetch requires one of: none, next-line, stream, mana");
                    i += 2;
                }
                "--mshrs" => {
                    mshrs_override = Some(
                        args.get(i + 1)
                            .and_then(|v| v.parse().ok())
                            .expect("--mshrs requires a number"),
                    );
                    i += 2;
                }
                "--long" => {
                    o.long = true;
                    i += 1;
                }
                "--sample-total" => {
                    o.sample_total = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .expect("--sample-total requires a number");
                    i += 2;
                }
                "--sample" => {
                    let spec = args.get(i + 1).expect("--sample requires U,Wf,Wd,D");
                    o.sample = SampleConfig::parse(spec)
                        .unwrap_or_else(|e| panic!("bad --sample schedule: {e}"));
                    i += 2;
                }
                "--grid-total" => {
                    o.grid_total = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .expect("--grid-total requires a number");
                    i += 2;
                }
                "--grid-sample" => {
                    let spec = args.get(i + 1).expect("--grid-sample requires U,Wf,Wd,D");
                    o.grid_sample = SampleConfig::parse(spec)
                        .unwrap_or_else(|e| panic!("bad --grid-sample schedule: {e}"));
                    i += 2;
                }
                "--front-pipeline" => {
                    o.front = args
                        .get(i + 1)
                        .and_then(|v| FrontMode::parse(v))
                        .expect("--front-pipeline requires one of: legacy, engine");
                    i += 2;
                }
                "--grid-prefetch" => {
                    o.grid_prefetch = args
                        .get(i + 1)
                        .and_then(|v| GridPrefetchMode::parse(v))
                        .expect("--grid-prefetch requires one of: shared, natural");
                    i += 2;
                }
                "--warm-bank" => {
                    o.warm_bank = true;
                    i += 1;
                }
                "--batch" => {
                    o.batch = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &usize| n >= 1)
                        .expect("--batch requires a number >= 1");
                    i += 2;
                }
                "--store-cap-bytes" => {
                    o.store_cap_bytes = Some(
                        args.get(i + 1)
                            .and_then(|v| v.parse().ok())
                            .filter(|&n: &u64| n >= 1)
                            .expect("--store-cap-bytes requires a number >= 1"),
                    );
                    i += 2;
                }
                other => {
                    panic!(
                        "unknown argument {other}; supported: --inst N, --warmup N, --jobs N, \
                         --legacy-scan, --prefetch none|next-line|stream|mana, --mshrs N, \
                         --long, --sample-total N, --sample U,Wf,Wd,D, --grid-total N, \
                         --grid-sample U,Wf,Wd,D, --front-pipeline legacy|engine, \
                         --grid-prefetch shared|natural, --warm-bank, --batch N, \
                         --store-cap-bytes N"
                    )
                }
            }
        }
        // Combine after parsing so --prefetch / --mshrs are order-free.
        o.prefetch = if pf_kind == PrefetchKind::None {
            PrefetchConfig::none()
        } else {
            PrefetchConfig::enabled(pf_kind)
        };
        if let Some(m) = mshrs_override {
            o.prefetch.mshrs = m;
        }
        o.prefetch.validate();
        o
    }
}

/// One simulated point of the evaluation grid.
#[derive(Debug, Clone, Copy)]
pub struct RunPoint {
    /// Benchmark name.
    pub bench: &'static str,
    /// Fetch engine.
    pub engine: EngineKind,
    /// Layout flavour.
    pub layout: LayoutChoice,
    /// Pipe width.
    pub width: usize,
    /// Measured statistics.
    pub stats: SimStats,
}

/// Simulates one point.
pub fn run_point(
    w: &Workload,
    engine: EngineKind,
    layout: LayoutChoice,
    width: usize,
    opts: HarnessOpts,
) -> RunPoint {
    let image = w.image(layout);
    let mut pc = ProcessorConfig::table2(width);
    pc.legacy_scan = opts.legacy_scan;
    pc.prefetch = opts.prefetch;
    pc.front = opts.front.front_for(engine);
    let stats = simulate(w.cfg(), image, engine, pc, w.ref_seed(), opts.warmup, opts.insts);
    RunPoint { bench: w.name(), engine, layout, width, stats }
}

/// Simulates one point with a custom-built engine and memory configuration
/// (for the ablation studies: line-size sweeps, FTQ depths, predictor
/// organizations, selective trace storage).
pub fn run_custom(
    w: &Workload,
    layout: LayoutChoice,
    width: usize,
    memcfg: MemoryConfig,
    engine: Box<dyn FetchEngine>,
    opts: HarnessOpts,
) -> SimStats {
    let image = w.image(layout);
    let mut pc = ProcessorConfig::table2(width);
    pc.legacy_scan = opts.legacy_scan;
    // `opts.prefetch` is deliberately NOT applied here: the caller built
    // the engine without a prefetcher attached, so enabling the miss
    // pipeline alone would change the timing model while the output
    // still reads as a plain blocking-I-cache sweep. Prefetch studies go
    // through `run_point`/`simulate` or the `ablation_prefetch` binary.
    let mut p = Processor::with_memory(pc, memcfg, engine, w.cfg(), image, w.ref_seed());
    p.run(opts.warmup);
    p.reset_stats();
    p.run(opts.insts);
    p.stats()
}

/// Runs one ablation sweep row: simulates every workload with an engine and
/// memory configuration built per point by `mk` (engines are constructed
/// inside the worker so nothing mutable crosses threads), up to `opts.jobs`
/// points in flight. Results come back in workload order.
pub fn run_custom_sweep(
    workloads: &[Workload],
    layout: LayoutChoice,
    width: usize,
    opts: HarnessOpts,
    mk: impl Fn(&Workload) -> (MemoryConfig, Box<dyn FetchEngine>) + Sync,
) -> Vec<SimStats> {
    par_map(workloads, opts.jobs, |_, w| {
        let (memcfg, engine) = mk(w);
        run_custom(w, layout, width, memcfg, engine, opts)
    })
}

/// The four-benchmark subset used by the quicker ablation binaries.
pub const ABLATION_BENCHES: [&str; 4] = ["gzip", "gcc", "crafty", "twolf"];

/// Builds the ablation workload subset in parallel. With
/// [`HarnessOpts::long`] set, the long-horizon phased workload
/// (`sfetch_workloads::phased`) rides along at the end of the list —
/// behind the flag so tier-1 runtimes stay bounded.
pub fn ablation_workloads(opts: HarnessOpts) -> Vec<Workload> {
    let suite = Suite::build_subset(&ABLATION_BENCHES, opts.jobs);
    // Re-order to the ABLATION_BENCHES order the binaries print.
    let mut by_name: Vec<Option<Workload>> = suite.into_workloads().into_iter().map(Some).collect();
    let mut out: Vec<Workload> = ABLATION_BENCHES
        .iter()
        .map(|n| {
            let i = by_name
                .iter()
                .position(|w| w.as_ref().is_some_and(|w| w.name() == *n))
                .expect("subset contains every ablation bench");
            by_name[i].take().expect("taken once")
        })
        .collect();
    if opts.long {
        out.push(phased::long_workload());
    }
    out
}

/// Builds a named workload: a suite member, or the registered phased
/// long-horizon workload under its [`phased::LONG_NAME`].
///
/// # Panics
///
/// Panics on an unknown name.
pub fn workload_by_name(name: &str) -> Workload {
    if name == phased::LONG_NAME {
        return phased::long_workload();
    }
    sfetch_workloads::suite::build(
        sfetch_workloads::suite::by_name(name)
            .unwrap_or_else(|| panic!("unknown benchmark {name:?} (suite member or \"phased\")")),
    )
}

/// Runs the whole grid for the given widths/layouts/engines with up to
/// `opts.jobs` points in flight, reporting progress per benchmark through a
/// mutex-guarded reporter. Points are returned in deterministic
/// benchmark-major order and each point's statistics are bit-identical to a
/// serial (`jobs = 1`) run.
pub fn run_grid(
    suite: &Suite,
    widths: &[usize],
    layouts: &[LayoutChoice],
    engines: &[EngineKind],
    opts: HarnessOpts,
) -> Vec<RunPoint> {
    #[derive(Clone, Copy)]
    struct PointSpec {
        w_idx: usize,
        width: usize,
        layout: LayoutChoice,
        engine: EngineKind,
    }
    let workloads = suite.workloads();
    let mut specs = Vec::with_capacity(workloads.len() * widths.len() * layouts.len() * engines.len());
    for w_idx in 0..workloads.len() {
        for &width in widths {
            for &layout in layouts {
                for &engine in engines {
                    specs.push(PointSpec { w_idx, width, layout, engine });
                }
            }
        }
    }
    let per_bench = widths.len() * layouts.len() * engines.len();
    let progress = GridProgress::new(workloads.len(), per_bench);
    par_map(&specs, opts.jobs, |_, s| {
        let w = &workloads[s.w_idx];
        let p = run_point(w, s.engine, s.layout, s.width, opts);
        progress.point_done(s.w_idx, w.name());
        p
    })
}

/// Harmonic-mean IPC over the suite for a (engine, layout, width) cell.
pub fn hmean_ipc(points: &[RunPoint], engine: EngineKind, layout: LayoutChoice, width: usize) -> f64 {
    let vals: Vec<f64> = points
        .iter()
        .filter(|p| p.engine == engine && p.layout == layout && p.width == width)
        .map(|p| p.stats.ipc())
        .collect();
    harmonic_mean(&vals)
}

/// Arithmetic mean of a per-point metric over the suite for one cell.
pub fn mean_metric(
    points: &[RunPoint],
    engine: EngineKind,
    layout: LayoutChoice,
    width: usize,
    f: impl Fn(&SimStats) -> f64,
) -> f64 {
    let vals: Vec<f64> = points
        .iter()
        .filter(|p| p.engine == engine && p.layout == layout && p.width == width)
        .map(|p| f(&p.stats))
        .collect();
    if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// Prints a markdown-style table: rows = engines, columns = (layout).
pub fn print_engine_table(
    title: &str,
    points: &[RunPoint],
    metric: impl Fn(&[RunPoint], EngineKind, LayoutChoice) -> f64,
    unit: &str,
) {
    println!("\n{title}");
    println!("{:<18} {:>10} {:>10}", "engine", "base", "optimized");
    for kind in EngineKind::ALL {
        let b = metric(points, kind, LayoutChoice::Base);
        let o = metric(points, kind, LayoutChoice::Optimized);
        println!("{:<18} {:>9.3}{unit} {:>9.3}{unit}", kind.to_string(), b, o);
    }
}

/// Wall-clock timing of a closure, for host-throughput reporting.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_opts_are_sane() {
        let o = HarnessOpts::default();
        assert!(o.insts >= 100_000);
        assert!(o.warmup < o.insts);
        assert!(o.jobs >= 1);
        // The calibration defaults: per-engine fronts competing at
        // their natural prefetch policies.
        assert_eq!(o.front, FrontMode::PerEngine);
        assert_eq!(o.grid_prefetch, GridPrefetchMode::Natural);
    }

    #[test]
    fn front_mode_flags_parse_and_round_trip() {
        for m in [FrontMode::Legacy, FrontMode::PerEngine] {
            assert_eq!(FrontMode::parse(m.as_str()), Some(m));
        }
        for m in [GridPrefetchMode::Shared, GridPrefetchMode::Natural] {
            assert_eq!(GridPrefetchMode::parse(m.as_str()), Some(m));
        }
        assert_eq!(FrontMode::parse("bogus"), None);
        assert_eq!(GridPrefetchMode::parse("bogus"), None);
        let o = HarnessOpts::from_arg_list(&[
            "--front-pipeline".to_owned(),
            "legacy".to_owned(),
            "--grid-prefetch".to_owned(),
            "shared".to_owned(),
        ]);
        assert_eq!(o.front, FrontMode::Legacy);
        assert_eq!(o.grid_prefetch, GridPrefetchMode::Shared);
        assert!(o.front.front_for(EngineKind::Ev8).is_legacy());
        assert!(!FrontMode::PerEngine.front_for(EngineKind::Ev8).is_legacy());
    }
}
