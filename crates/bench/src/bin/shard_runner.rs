//! Multi-process sampled-simulation runner: fans the **full grid** —
//! sample windows × fetch engines × pipe widths — across OS processes
//! through the shared checkpoint store.
//!
//! The parent opens (or creates) a [`sfetch_sample::CheckpointStore`],
//! populates it with one architectural walk (each window's warming-start
//! checkpoint is written once, keyed on the workload fingerprint), then
//! re-spawns **itself** with `--shard i/N`. Each child claims a
//! contiguous slice of the flattened (engine, width, window) work list,
//! resumes every window straight from the store — no per-shard
//! fast-forward, unlike the PR 4 design where each shard re-walked its
//! span — and writes a line-oriented JSON shard file. The parent merges
//! the shards per grid cell and reports each cell's IPC estimate with
//! its confidence interval.
//!
//! Because every window derives only from the trace state at its own
//! warming start, the merged result is **bit-identical** to a
//! single-process run; `--verify` asserts exactly that (the CI smoke
//! leg runs it with `--procs 2`). The verify oracle is deliberately
//! **storeless** — a live `Sampler` re-walks the trace itself — so a
//! defect anywhere in the checkpoint save/load/resume path surfaces as
//! a divergence instead of being replayed on both sides.
//!
//! ```text
//! cargo run --release -p sfetch-bench --bin shard_runner -- \
//!     [--bench phased|gzip|…] [--engines all|stream,ev8,ftb,tcache] \
//!     [--widths all|2,4,8] [--sample-total N] [--sample U,Wf,Wd,D[,Wm]] \
//!     [--procs N] [--verify] [--store DIR] \
//!     [--chaos SEED] [--max-retries N] [--cell-timeout SECS] [--no-fleet] \
//!     [--jobs N] [--legacy-scan] [--prefetch K --mshrs N] [--warm-bank] \
//!     [--front-pipeline legacy|engine] [--grid-prefetch shared|natural]
//! ```
//!
//! With `--store DIR` the checkpoints persist, so a later invocation —
//! any engine or width set, same workload and schedule — starts warm;
//! without it a temporary store lives for this invocation only.
//!
//! By default the fan-out runs under the **fleet supervisor**
//! (`sfetch_fleet`): the grid decomposes into leased (engine, width,
//! window-range) cells persisted in a ledger next to the store, crashed
//! or hung workers are killed and their cells retried with backoff, and
//! a re-invocation after a `SIGKILL` resumes mid-grid without
//! recomputing finished cells. `--chaos SEED` injects deterministic
//! worker faults (crashes, stalls, truncated/corrupt files, lying
//! exits) to prove it; the merged output is asserted byte-identical to
//! a fault-free run in CI. `--no-fleet` falls back to the plain
//! one-shot `--shard i/N` fan-out. Exit status: 0 complete, 2 degraded
//! (some cells exhausted retries; estimates cover completed windows
//! only), 1 error.
//!
//! All of the submit/populate/fan-out/merge plumbing is the shared
//! [`sfetch_bench::driver`] module — the same code path the figure
//! binaries and the resident `sfetch-serve` daemon run.
//!
//! Accuracy note: sampled-IPC accuracy is validated (BENCH_4
//! `sampling_ab`) for the **stream** engine, whose self-checking
//! `warm_block` trains partial streams during functional warming. The
//! other engines warm through plain commit training and their sampled
//! IPC may carry additional cold-structure bias; compare engines under
//! identical schedules and treat cross-engine deltas, not absolute
//! levels, as the signal.

use std::io::Write as _;
use std::process::ExitCode;

use sfetch_bench::driver::{
    finish_store, or_die, populate_store, resolve_store, run_fleet_cells, run_no_fleet,
    run_shard_child, ArgDefaults, CommonArgs, ScheduleAxis,
};
use sfetch_bench::fleet_grid::maybe_run_fleet_child;
use sfetch_bench::grid::{cells, print_grid_table, verify_merged};
use sfetch_bench::workload_by_name;
use sfetch_sample::CheckpointStore;

const AXIS: ScheduleAxis = ScheduleAxis::Sample;

/// Parent mode: populate the store, fan out (fleet supervisor by
/// default, plain one-shot shards with `--no-fleet`), merge, report
/// (and verify).
fn run_parent(a: &CommonArgs) -> ExitCode {
    let w = workload_by_name(a.bench());
    let grid = cells(&a.engines, &a.widths);
    let windows = a.opts.sample.windows(a.opts.sample_total);
    assert!(windows >= 1, "sample-total {} yields no windows", a.opts.sample_total);
    let items = grid.len() as u64 * windows;
    let procs = a.procs.min(items as usize).max(1);
    eprintln!(
        "{}: {} windows × {} grid cells over {} insts, {procs} shard processes",
        w.name(),
        windows,
        grid.len(),
        a.opts.sample_total
    );

    let tmp = std::env::temp_dir().join(format!("sfetch-shards-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create shard temp dir");
    let (store_dir, store_is_temp) = resolve_store(a.store.as_deref(), tmp.join("store"));
    let store = or_die(CheckpointStore::open(&store_dir)).with_cap_bytes(a.opts.store_cap_bytes);

    // One architectural walk banks every window's warming-start
    // checkpoint; on a warm store this is pure verification traffic.
    populate_store(&w, a.opts.sample, windows, &store, &format!("store {}", store_dir.display()));

    let mut exit = ExitCode::SUCCESS;
    if a.no_fleet {
        let merged =
            or_die(run_no_fleet(a, AXIS, a.bench(), &grid, windows, procs, &tmp, &store_dir));
        print_grid_table(&merged);
        if a.verify {
            eprintln!("verifying merged shards against a storeless single-process run…");
            verify_merged(&w, &merged, a.opts.sample, &a.opts, windows);
            println!(
                "verify OK: merged {procs}-process result is bit-identical to a storeless \
                 single-process run"
            );
        }
    } else {
        let (runs, degraded) =
            or_die(run_fleet_cells(a, AXIS, a.bench(), &grid, &store_dir, procs));
        print_grid_table(&runs);
        if a.verify && !degraded {
            eprintln!("verifying merged shards against a storeless single-process run…");
            verify_merged(&w, &runs, a.opts.sample, &a.opts, windows);
            println!(
                "verify OK: merged {procs}-process result is bit-identical to a storeless \
                 single-process run"
            );
        } else if a.verify {
            eprintln!("verify skipped: degraded result has incomplete cells");
        }
        if degraded {
            exit = ExitCode::from(2);
        }
    }

    finish_store(store_is_temp, &store_dir, &store, false);
    let _ = std::fs::remove_dir_all(&tmp);
    let _ = std::io::stdout().flush();
    exit
}

fn main() -> ExitCode {
    maybe_run_fleet_child();
    let a = CommonArgs::parse(&ArgDefaults {
        benches: "phased",
        engines: "stream",
        widths: "8",
        procs: 2,
    });
    match a.shard {
        Some(spec) => run_shard_child(&a, AXIS, spec),
        None => run_parent(&a),
    }
}
