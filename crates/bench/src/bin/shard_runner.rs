//! Multi-process sampled-simulation runner: fans the **full grid** —
//! sample windows × fetch engines × pipe widths — across OS processes
//! through the shared checkpoint store.
//!
//! The parent opens (or creates) a [`sfetch_sample::CheckpointStore`],
//! populates it with one architectural walk (each window's warming-start
//! checkpoint is written once, keyed on the workload fingerprint), then
//! re-spawns **itself** with `--shard i/N`. Each child claims a
//! contiguous slice of the flattened (engine, width, window) work list,
//! resumes every window straight from the store — no per-shard
//! fast-forward, unlike the PR 4 design where each shard re-walked its
//! span — and writes a line-oriented JSON shard file. The parent merges
//! the shards per grid cell and reports each cell's IPC estimate with
//! its confidence interval.
//!
//! Because every window derives only from the trace state at its own
//! warming start, the merged result is **bit-identical** to a
//! single-process run; `--verify` asserts exactly that (the CI smoke
//! leg runs it with `--procs 2`). The verify oracle is deliberately
//! **storeless** — a live `Sampler` re-walks the trace itself — so a
//! defect anywhere in the checkpoint save/load/resume path surfaces as
//! a divergence instead of being replayed on both sides.
//!
//! ```text
//! cargo run --release -p sfetch-bench --bin shard_runner -- \
//!     [--bench phased|gzip|…] [--engines all|stream,ev8,ftb,tcache] \
//!     [--widths all|2,4,8] [--sample-total N] [--sample U,Wf,Wd,D[,Wm]] \
//!     [--procs N] [--verify] [--store DIR] \
//!     [--chaos SEED] [--max-retries N] [--cell-timeout SECS] [--no-fleet] \
//!     [--jobs N] [--legacy-scan] [--prefetch K --mshrs N] \
//!     [--front-pipeline legacy|engine] [--grid-prefetch shared|natural]
//! ```
//!
//! With `--store DIR` the checkpoints persist, so a later invocation —
//! any engine or width set, same workload and schedule — starts warm;
//! without it a temporary store lives for this invocation only.
//!
//! By default the fan-out runs under the **fleet supervisor**
//! (`sfetch_fleet`): the grid decomposes into leased (engine, width,
//! window-range) cells persisted in a ledger next to the store, crashed
//! or hung workers are killed and their cells retried with backoff, and
//! a re-invocation after a `SIGKILL` resumes mid-grid without
//! recomputing finished cells. `--chaos SEED` injects deterministic
//! worker faults (crashes, stalls, truncated/corrupt files, lying
//! exits) to prove it; the merged output is asserted byte-identical to
//! a fault-free run in CI. `--no-fleet` falls back to the plain
//! one-shot `--shard i/N` fan-out. Exit status: 0 complete, 2 degraded
//! (some cells exhausted retries; estimates cover completed windows
//! only), 1 error.
//!
//! Accuracy note: sampled-IPC accuracy is validated (BENCH_4
//! `sampling_ab`) for the **stream** engine, whose self-checking
//! `warm_block` trains partial streams during functional warming. The
//! other engines warm through plain commit training and their sampled
//! IPC may carry additional cold-structure bias; compare engines under
//! identical schedules and treat cross-engine deltas, not absolute
//! levels, as the signal.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use sfetch_bench::fleet_grid::{
    degradation_exit, maybe_run_fleet_child, run_fleet_grid, FleetGridSpec,
};
use sfetch_bench::grid::{
    cells, engine_key, merge_grid, parse_engines, parse_widths, print_grid_table,
    shard_file_text, spawn_shards, verify_merged, write_shard_atomic,
};
use sfetch_bench::{workload_by_name, HarnessOpts};
use sfetch_fetch::EngineKind;
use sfetch_sample::{CheckpointStore, ShardSpec, StoredSampler};
use sfetch_workloads::LayoutChoice;

/// Exits with a readable message instead of a panic backtrace.
fn or_die<T, E: std::fmt::Display>(r: Result<T, E>) -> T {
    r.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    })
}

/// Arguments beyond [`HarnessOpts`] (which handles `--sample*`/`--jobs`).
struct ShardArgs {
    opts: HarnessOpts,
    bench: String,
    engines: Vec<EngineKind>,
    widths: Vec<usize>,
    procs: usize,
    verify: bool,
    shard: Option<ShardSpec>,
    out: Option<String>,
    store: Option<String>,
    chaos: Option<u64>,
    max_retries: u32,
    cell_timeout: Option<u64>,
    no_fleet: bool,
}

fn parse_args() -> ShardArgs {
    let mut bench = "phased".to_owned();
    let mut engines = "stream".to_owned();
    let mut widths = "8".to_owned();
    let mut procs = 2usize;
    let mut verify = false;
    let mut shard = None;
    let mut out = None;
    let mut store = None;
    let mut chaos = None;
    let mut max_retries = 3u32;
    let mut cell_timeout = None;
    let mut no_fleet = false;
    let mut rest: Vec<String> = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let take = |i: usize, what: &str| -> String {
        args.get(i + 1).unwrap_or_else(|| panic!("{what} requires a value")).clone()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => {
                bench = take(i, "--bench");
                i += 2;
            }
            "--engines" => {
                engines = take(i, "--engines");
                i += 2;
            }
            "--widths" => {
                widths = take(i, "--widths");
                i += 2;
            }
            "--procs" => {
                procs = take(i, "--procs").parse().expect("--procs requires a number >= 1");
                i += 2;
            }
            "--verify" => {
                verify = true;
                i += 1;
            }
            "--shard" => {
                shard = Some(ShardSpec::parse(&take(i, "--shard")).expect("bad --shard"));
                i += 2;
            }
            "--out" => {
                out = Some(take(i, "--out"));
                i += 2;
            }
            "--store" => {
                store = Some(take(i, "--store"));
                i += 2;
            }
            "--chaos" => {
                chaos = Some(take(i, "--chaos").parse().expect("--chaos requires a seed"));
                i += 2;
            }
            "--max-retries" => {
                max_retries =
                    take(i, "--max-retries").parse().expect("--max-retries requires a number");
                i += 2;
            }
            "--cell-timeout" => {
                cell_timeout = Some(
                    take(i, "--cell-timeout").parse().expect("--cell-timeout requires seconds"),
                );
                i += 2;
            }
            "--no-fleet" => {
                no_fleet = true;
                i += 1;
            }
            // Bool flags HarnessOpts understands.
            flag @ ("--legacy-scan" | "--long") => {
                rest.push(flag.to_owned());
                i += 1;
            }
            // Everything else HarnessOpts understands takes one value
            // (unknown flags fail inside from_arg_list with its usage).
            other => {
                rest.push(other.to_owned());
                rest.push(take(i, other));
                i += 2;
            }
        }
    }
    let opts = HarnessOpts::from_arg_list(&rest);
    assert!(procs >= 1, "--procs must be >= 1");
    ShardArgs {
        opts,
        bench,
        engines: or_die(parse_engines(&engines)),
        widths: or_die(parse_widths(&widths)),
        procs,
        verify,
        shard,
        out,
        store,
        chaos,
        max_retries,
        cell_timeout,
        no_fleet,
    }
}

/// Child mode (`--no-fleet` protocol): run this shard's slice of the
/// grid and write the sealed shard file atomically.
fn run_child(a: &ShardArgs, shard: ShardSpec) -> ExitCode {
    let w = workload_by_name(&a.bench);
    let grid = cells(&a.engines, &a.widths);
    let windows = a.opts.sample.windows(a.opts.sample_total);
    let Some(store_path) = a.store.as_deref() else {
        eprintln!("error: shard child needs --store");
        return ExitCode::FAILURE;
    };
    let store = or_die(CheckpointStore::open(store_path));
    let text = shard_file_text(&w, &grid, windows, a.opts.sample, &a.opts, &store, shard);
    match &a.out {
        Some(path) => or_die(write_shard_atomic(std::path::Path::new(path), &text)),
        None => print!("{}", sfetch_fleet::seal(&text)),
    }
    ExitCode::SUCCESS
}

/// Parent mode: populate the store, fan out (fleet supervisor by
/// default, plain one-shot shards with `--no-fleet`), merge, report
/// (and verify).
fn run_parent(a: &ShardArgs) -> ExitCode {
    let w = workload_by_name(&a.bench);
    let grid = cells(&a.engines, &a.widths);
    let windows = a.opts.sample.windows(a.opts.sample_total);
    assert!(windows >= 1, "sample-total {} yields no windows", a.opts.sample_total);
    let items = grid.len() as u64 * windows;
    let procs = a.procs.min(items as usize).max(1);
    eprintln!(
        "{}: {} windows × {} grid cells over {} insts, {procs} shard processes",
        w.name(),
        windows,
        grid.len(),
        a.opts.sample_total
    );

    let tmp = std::env::temp_dir().join(format!("sfetch-shards-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create shard temp dir");
    let (store_dir, store_is_temp) = match &a.store {
        Some(dir) => (PathBuf::from(dir), false),
        None => (tmp.join("store"), true),
    };
    let store = or_die(CheckpointStore::open(&store_dir));

    // One architectural walk banks every window's warming-start
    // checkpoint; on a warm store this is pure verification traffic.
    let img = w.image(LayoutChoice::Optimized);
    let fp = w.fingerprint(LayoutChoice::Optimized);
    let mut populate = StoredSampler::new(img, fp, w.ref_seed(), a.opts.sample, &store);
    let computed = populate.populate(windows);
    eprintln!(
        "store {}: {} windows ready ({} computed, {} loaded warm)",
        store_dir.display(),
        windows,
        computed,
        populate.stats().hits
    );

    let mut exit = ExitCode::SUCCESS;
    if a.no_fleet {
        // Plain one-shot fan-out: spawn self once per shard, merge
        // strictly, fail the whole run on any shard trouble.
        let all = or_die(spawn_shards(procs, &tmp, |i, out| {
            let mut args: Vec<std::ffi::OsString> = vec![
                "--bench".into(),
                a.bench.clone().into(),
                "--engines".into(),
                a.engines.iter().map(|&k| engine_key(k)).collect::<Vec<_>>().join(",").into(),
                "--widths".into(),
                a.widths.iter().map(|w| w.to_string()).collect::<Vec<_>>().join(",").into(),
                "--sample-total".into(),
                a.opts.sample_total.to_string().into(),
                "--sample".into(),
                a.opts.sample.to_spec().into(),
                "--jobs".into(),
                a.opts.jobs.to_string().into(),
                "--front-pipeline".into(),
                a.opts.front.as_str().into(),
                "--grid-prefetch".into(),
                a.opts.grid_prefetch.as_str().into(),
            ];
            // Forward the simulation-model flags so children build the
            // same processors the parent's verify leg does.
            if a.opts.legacy_scan {
                args.push("--legacy-scan".into());
            }
            if a.opts.prefetch.mshrs > 0 {
                args.extend(["--prefetch".into(), a.opts.prefetch.kind.to_string().into()]);
                args.extend(["--mshrs".into(), a.opts.prefetch.mshrs.to_string().into()]);
            }
            args.extend(["--no-fleet".into(), "--shard".into(), format!("{i}/{procs}").into()]);
            args.extend(["--store".into(), store_dir.clone().into()]);
            args.extend(["--out".into(), out.as_os_str().to_owned()]);
            args
        }));
        let merged = or_die(merge_grid(&grid, windows, &all, a.opts.sample.confidence));
        print_grid_table(&merged);
        if a.verify {
            eprintln!("verifying merged shards against a storeless single-process run…");
            verify_merged(&w, &merged, a.opts.sample, &a.opts, windows);
            println!(
                "verify OK: merged {procs}-process result is bit-identical to a storeless \
                 single-process run"
            );
        }
    } else {
        // Fleet supervisor: leased cells, retries, resume, chaos.
        let outcome = or_die(run_fleet_grid(&FleetGridSpec {
            bench: &a.bench,
            grid: &grid,
            scfg: a.opts.sample,
            total: a.opts.sample_total,
            opts: &a.opts,
            store_dir: &store_dir,
            procs,
            chaos: a.chaos,
            max_retries: a.max_retries,
            cell_timeout_s: a.cell_timeout,
        }));
        print_grid_table(&outcome.runs);
        if a.verify && outcome.incomplete.is_empty() {
            eprintln!("verifying merged shards against a storeless single-process run…");
            verify_merged(&w, &outcome.runs, a.opts.sample, &a.opts, windows);
            println!(
                "verify OK: merged {procs}-process result is bit-identical to a storeless \
                 single-process run"
            );
        } else if a.verify {
            eprintln!("verify skipped: degraded result has incomplete cells");
        }
        if degradation_exit(&outcome) != 0 {
            exit = ExitCode::from(2);
        }
    }

    if store_is_temp {
        let _ = std::fs::remove_dir_all(&store_dir);
    }
    let _ = std::fs::remove_dir_all(&tmp);
    let _ = std::io::stdout().flush();
    exit
}

fn main() -> ExitCode {
    maybe_run_fleet_child();
    let a = parse_args();
    match a.shard {
        Some(spec) => run_child(&a, spec),
        None => run_parent(&a),
    }
}
