//! Multi-process sampled-simulation runner: fans sample windows × fetch
//! engines across OS processes and merges the per-shard results.
//!
//! The parent builds the workload, walks the architectural trace once to
//! write one [`sfetch_trace::ArchCheckpoint`] per shard (at the unit
//! boundary of the shard's first window), then re-spawns **itself** with
//! `--shard i/N`. Each child restores its checkpoint — skipping the
//! fast-forward the parent already did — runs its contiguous window
//! range for every requested engine, and writes a line-oriented JSON
//! shard file. The parent merges the shards per engine and reports the
//! aggregate estimate with its confidence interval.
//!
//! Because every window derives only from the master executor's state at
//! its own unit boundary, the merged result is **bit-identical** to a
//! single-process run; `--verify` asserts exactly that (the CI smoke leg
//! runs it with `--procs 2`).
//!
//! ```text
//! cargo run --release -p sfetch-bench --bin shard_runner -- \
//!     [--bench phased|gzip|…] [--engines all|stream,ev8,ftb,tcache] \
//!     [--sample-total N] [--sample U,Wf,Wd,D[,Wm]] [--procs N] [--verify] \
//!     [--jobs N] [--legacy-scan] [--prefetch K --mshrs N]
//! ```
//!
//! Of the shared harness flags, this binary honors `--sample`,
//! `--sample-total`, `--jobs` (window threads per shard),
//! `--legacy-scan` and `--prefetch`/`--mshrs` (all forwarded to the
//! shard children); `--inst`/`--warmup`/`--long` have no meaning here —
//! the sampling schedule defines the measured windows and `--bench`
//! names the workload.
//!
//! Accuracy note: sampled-IPC accuracy is validated (BENCH_4
//! `sampling_ab`) for the **stream** engine, whose self-checking
//! `warm_block` trains partial streams during functional warming. The
//! other engines warm through plain commit training and their sampled
//! IPC may carry additional cold-structure bias; compare engines under
//! identical schedules and treat cross-engine deltas, not absolute
//! levels, as the signal.

use std::io::Write as _;
use std::process::{Command, Stdio};

use sfetch_bench::{workload_by_name, HarnessOpts};
use sfetch_core::ProcessorConfig;
use sfetch_fetch::EngineKind;
use sfetch_sample::{
    estimate, merge_points, window_range, SamplePoint, Sampler, ShardSpec,
};
use sfetch_trace::ArchCheckpoint;
use sfetch_workloads::{LayoutChoice, Workload};

/// Shard-file schema tag.
const SHARD_SCHEMA: &str = "sfetch-shard-v1";

/// Short CLI keys for the four engines.
fn engine_key(kind: EngineKind) -> &'static str {
    match kind {
        EngineKind::Stream => "stream",
        EngineKind::Ev8 => "ev8",
        EngineKind::Ftb => "ftb",
        EngineKind::TraceCache => "tcache",
    }
}

fn parse_engines(spec: &str) -> Vec<EngineKind> {
    if spec == "all" {
        return EngineKind::ALL.to_vec();
    }
    spec.split(',')
        .map(|k| match k.trim() {
            "stream" => EngineKind::Stream,
            "ev8" => EngineKind::Ev8,
            "ftb" => EngineKind::Ftb,
            "tcache" => EngineKind::TraceCache,
            other => panic!("unknown engine {other:?} (stream|ev8|ftb|tcache|all)"),
        })
        .collect()
}

/// Arguments beyond [`HarnessOpts`] (which handles `--sample*`/`--jobs`).
struct ShardArgs {
    opts: HarnessOpts,
    bench: String,
    engines: Vec<EngineKind>,
    procs: usize,
    verify: bool,
    shard: Option<ShardSpec>,
    out: Option<String>,
    ckpt: Option<String>,
}

fn parse_args() -> ShardArgs {
    let mut bench = "phased".to_owned();
    let mut engines = "stream".to_owned();
    let mut procs = 2usize;
    let mut verify = false;
    let mut shard = None;
    let mut out = None;
    let mut ckpt = None;
    let mut rest: Vec<String> = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let take = |i: usize, what: &str| -> String {
        args.get(i + 1).unwrap_or_else(|| panic!("{what} requires a value")).clone()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => {
                bench = take(i, "--bench");
                i += 2;
            }
            "--engines" => {
                engines = take(i, "--engines");
                i += 2;
            }
            "--procs" => {
                procs = take(i, "--procs").parse().expect("--procs requires a number >= 1");
                i += 2;
            }
            "--verify" => {
                verify = true;
                i += 1;
            }
            "--shard" => {
                shard = Some(ShardSpec::parse(&take(i, "--shard")).expect("bad --shard"));
                i += 2;
            }
            "--out" => {
                out = Some(take(i, "--out"));
                i += 2;
            }
            "--ckpt" => {
                ckpt = Some(take(i, "--ckpt"));
                i += 2;
            }
            // Bool flags HarnessOpts understands.
            flag @ ("--legacy-scan" | "--long") => {
                rest.push(flag.to_owned());
                i += 1;
            }
            // Everything else HarnessOpts understands takes one value
            // (unknown flags fail inside from_arg_list with its usage).
            other => {
                rest.push(other.to_owned());
                rest.push(take(i, other));
                i += 2;
            }
        }
    }
    let opts = HarnessOpts::from_arg_list(&rest);
    assert!(procs >= 1, "--procs must be >= 1");
    ShardArgs {
        opts,
        bench,
        engines: parse_engines(&engines),
        procs,
        verify,
        shard,
        out,
        ckpt,
    }
}

/// Runs one engine's contiguous window range from a boundary sampler.
fn run_range(
    w: &Workload,
    kind: EngineKind,
    a: &ShardArgs,
    from_ckpt: Option<&ArchCheckpoint>,
    lo: u64,
    hi: u64,
) -> Vec<SamplePoint> {
    let img = w.image(LayoutChoice::Optimized);
    let mut pcfg = ProcessorConfig::table2(8);
    pcfg.legacy_scan = a.opts.legacy_scan;
    pcfg.prefetch = a.opts.prefetch;
    let mut s = match from_ckpt {
        Some(cp) => Sampler::resume(img, kind, pcfg, a.opts.sample, cp),
        None => Sampler::new(img, kind, pcfg, a.opts.sample, w.ref_seed()),
    };
    assert!(s.window() <= lo, "checkpoint is past the shard's first window");
    s.skip(lo - s.window());
    s.run_parallel(hi - lo, a.opts.jobs)
}

fn point_line(kind: EngineKind, p: &SamplePoint) -> String {
    format!(
        "{{\"engine\": \"{}\", \"window\": {}, \"start_inst\": {}, \"committed\": {}, \
         \"cycles\": {}, \"stall_cycles\": {}, \"mispredictions\": {}}}",
        engine_key(kind),
        p.window,
        p.start_inst,
        p.committed,
        p.cycles,
        p.stall_cycles,
        p.mispredictions
    )
}

/// Pulls `"key": value` out of a shard-file line (the files are our own
/// fixed format; no general JSON parser needed or vendored).
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\": ");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": \"");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    Some(&rest[..rest.find('"')?])
}

fn parse_shard_file(text: &str) -> Vec<(String, SamplePoint)> {
    text.lines()
        .filter(|l| l.contains("\"window\""))
        .map(|l| {
            let engine = field_str(l, "engine").expect("engine key").to_owned();
            let p = SamplePoint {
                window: field_u64(l, "window").expect("window"),
                start_inst: field_u64(l, "start_inst").expect("start_inst"),
                committed: field_u64(l, "committed").expect("committed"),
                cycles: field_u64(l, "cycles").expect("cycles"),
                stall_cycles: field_u64(l, "stall_cycles").expect("stall_cycles"),
                mispredictions: field_u64(l, "mispredictions").expect("mispredictions"),
            };
            (engine, p)
        })
        .collect()
}

/// Child mode: run this shard's windows and write the shard file.
fn run_child(a: &ShardArgs, shard: ShardSpec) {
    let w = workload_by_name(&a.bench);
    let windows = a.opts.sample.windows(a.opts.sample_total);
    let range = window_range(windows, shard);
    let cp = a.ckpt.as_ref().map(|path| {
        let bytes = std::fs::read(path).expect("read checkpoint file");
        ArchCheckpoint::from_bytes(&bytes).expect("parse checkpoint file")
    });
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\": \"{SHARD_SCHEMA}\", \"shard\": \"{shard}\", \"bench\": \"{}\",\n",
        w.name()
    ));
    out.push_str(" \"points\": [\n");
    let mut first = true;
    for &kind in &a.engines {
        for p in run_range(&w, kind, a, cp.as_ref(), range.start, range.end) {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("  ");
            out.push_str(&point_line(kind, &p));
        }
    }
    out.push_str("\n]}\n");
    match &a.out {
        Some(path) => std::fs::write(path, &out).expect("write shard file"),
        None => print!("{out}"),
    }
}

/// Parent mode: checkpoint, spawn shards, merge, report (and verify).
fn run_parent(a: &ShardArgs) {
    let w = workload_by_name(&a.bench);
    let img = w.image(LayoutChoice::Optimized);
    let pcfg = ProcessorConfig::table2(8);
    let windows = a.opts.sample.windows(a.opts.sample_total);
    assert!(windows >= 1, "sample-total {} yields no windows", a.opts.sample_total);
    let procs = a.procs.min(windows as usize).max(1);
    eprintln!(
        "{}: {} windows over {} insts, {} engines, {procs} shard processes",
        w.name(),
        windows,
        a.opts.sample_total,
        a.engines.len()
    );

    // One fast-forward pass writes each shard's boundary checkpoint. The
    // sampler's engine kind is irrelevant here — skip() never simulates.
    let tmp = std::env::temp_dir().join(format!("sfetch-shards-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create shard temp dir");
    let mut walker = Sampler::new(img, EngineKind::Stream, pcfg, a.opts.sample, w.ref_seed());
    let mut ckpt_paths = Vec::new();
    for i in 0..procs {
        let spec = ShardSpec { index: i as u64, count: procs as u64 };
        let lo = window_range(windows, spec).start;
        walker.skip(lo - walker.window());
        let path = tmp.join(format!("ckpt-{i}.bin"));
        std::fs::write(&path, walker.checkpoint().to_bytes()).expect("write checkpoint");
        ckpt_paths.push(path);
    }

    // Spawn self once per shard.
    let exe = std::env::current_exe().expect("current exe");
    let mut children = Vec::new();
    let mut out_paths = Vec::new();
    for (i, ckpt_path) in ckpt_paths.iter().enumerate() {
        let out = tmp.join(format!("shard-{i}.json"));
        let mut cmd = Command::new(&exe);
        cmd.arg("--bench")
            .arg(&a.bench)
            .arg("--engines")
            .arg(a.engines.iter().map(|&k| engine_key(k)).collect::<Vec<_>>().join(","))
            .arg("--sample-total")
            .arg(a.opts.sample_total.to_string())
            .arg("--sample")
            .arg(format!(
                "{},{},{},{},{}",
                a.opts.sample.interval,
                a.opts.sample.warm_func,
                a.opts.sample.warm_detail,
                a.opts.sample.measure,
                a.opts.sample.warm_mem
            ))
            .arg("--jobs")
            .arg(a.opts.jobs.to_string());
        // Forward the simulation-model flags so children build the same
        // processors the parent's verify leg does.
        if a.opts.legacy_scan {
            cmd.arg("--legacy-scan");
        }
        if a.opts.prefetch.mshrs > 0 {
            cmd.arg("--prefetch")
                .arg(a.opts.prefetch.kind.to_string())
                .arg("--mshrs")
                .arg(a.opts.prefetch.mshrs.to_string());
        }
        cmd.arg("--shard")
            .arg(format!("{i}/{procs}"))
            .arg("--ckpt")
            .arg(ckpt_path)
            .arg("--out")
            .arg(&out)
            .stdout(Stdio::inherit())
            .stderr(Stdio::inherit());
        children.push(cmd.spawn().expect("spawn shard process"));
        out_paths.push(out);
    }
    for (i, c) in children.iter_mut().enumerate() {
        let status = c.wait().expect("wait for shard");
        assert!(status.success(), "shard {i} failed: {status}");
    }

    // Merge per engine.
    let mut merged: Vec<(EngineKind, Vec<SamplePoint>)> = Vec::new();
    let mut all: Vec<(String, SamplePoint)> = Vec::new();
    for p in &out_paths {
        all.extend(parse_shard_file(&std::fs::read_to_string(p).expect("read shard file")));
    }
    for &kind in &a.engines {
        let pts: Vec<SamplePoint> = all
            .iter()
            .filter(|(k, _)| k == engine_key(kind))
            .map(|(_, p)| *p)
            .collect();
        let pts = merge_points(pts).expect("shard outputs merge cleanly");
        assert_eq!(pts.len() as u64, windows, "{kind}: merged window count");
        merged.push((kind, pts));
    }

    println!(
        "\n{:<18} {:>8} {:>9} {:>9} {:>9} {:>10}",
        "engine", "windows", "IPC", "ci lo", "ci hi", "±rel"
    );
    for (kind, pts) in &merged {
        let est = estimate(pts, a.opts.sample.confidence);
        println!(
            "{:<18} {:>8} {:>9.4} {:>9.4} {:>9.4} {:>9.2}%",
            kind.to_string(),
            est.windows,
            est.ipc,
            est.ipc_lo,
            est.ipc_hi,
            100.0 * est.rel_half_width
        );
    }

    if a.verify {
        eprintln!("verifying merged shards against a single-process run…");
        for (kind, pts) in &merged {
            let single = run_range(&w, *kind, a, None, 0, windows);
            assert_eq!(
                &single, pts,
                "{kind}: merged shard windows differ from the single-process run"
            );
        }
        println!("verify OK: merged {procs}-process result is bit-identical to single-process");
    }

    let _ = std::fs::remove_dir_all(&tmp);
    let _ = std::io::stdout().flush();
}

fn main() {
    let a = parse_args();
    match a.shard {
        Some(spec) => run_child(&a, spec),
        None => run_parent(&a),
    }
}
