//! Host-throughput reporter: how fast does this machine simulate?
//!
//! Measures, for each fetch engine, the wall-clock cost of simulating the
//! ablation subset (8-wide, optimized layout) and reports simulated MIPS
//! (millions of committed instructions per wall second, summed over the
//! points in flight) and ns per simulated cycle, plus the raw
//! architectural executor's throughput in ns per committed instruction.
//! A large-ROB A/B point (1024 entries, where the legacy per-cycle ROB
//! scan is quadratic in flight-depth) measures the event-driven
//! scheduler's speedup against `--legacy-scan`. Results go to stdout and
//! to `BENCH_2.json` in the current directory, extending the repository's
//! performance trajectory (`BENCH_1.json` was the scan-based baseline);
//! see README.md for the `sfetch-perfstats-v2` schema.
//!
//! ```text
//! cargo run --release -p sfetch-bench --bin perfstats \
//!     [-- --inst N --warmup N --jobs N --legacy-scan]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use sfetch_bench::{ablation_workloads, timed, HarnessOpts};
use sfetch_core::{Processor, ProcessorConfig};
use sfetch_fetch::EngineKind;
use sfetch_trace::Executor;
use sfetch_workloads::{par_map, LayoutChoice, Workload};

/// ROB capacity of the large-flight-depth A/B point.
const LARGE_ROB: usize = 1024;

struct EngineRow {
    engine: String,
    points: usize,
    simulated_insts: u64,
    sim_cycles: u64,
    wall_s: f64,
    mips: f64,
    ns_per_cycle: f64,
}

/// One timed simulation leg: wall seconds and cycles of the measured
/// window (warmup excluded from both, so `ns_per_cycle` is exact).
struct TimedLeg {
    wall_s: f64,
    cycles: u64,
    committed: u64,
}

impl TimedLeg {
    fn ns_per_cycle(&self) -> f64 {
        self.wall_s * 1e9 / self.cycles as f64
    }

    fn mips(&self) -> f64 {
        self.committed as f64 / self.wall_s / 1e6
    }
}

/// Warms up a fresh processor, then times exactly the measured window.
fn timed_run(
    w: &Workload,
    kind: EngineKind,
    mut pc: ProcessorConfig,
    legacy_scan: bool,
    warmup: u64,
    insts: u64,
) -> (sfetch_core::SimStats, TimedLeg) {
    pc.legacy_scan = legacy_scan;
    let image = w.image(LayoutChoice::Optimized);
    let engine = kind.build(pc.width, image.entry());
    let mut p = Processor::new(pc, engine, w.cfg(), image, w.ref_seed());
    p.run(warmup);
    p.reset_stats();
    let t0 = Instant::now();
    p.run(insts);
    let wall_s = t0.elapsed().as_secs_f64();
    let stats = p.stats();
    (stats, TimedLeg { wall_s, cycles: stats.cycles, committed: stats.committed })
}

fn measure_engine(workloads: &[Workload], kind: EngineKind, opts: HarnessOpts) -> EngineRow {
    let (points, wall_s) = timed(|| {
        par_map(workloads, opts.jobs, |_, w| {
            timed_run(
                w,
                kind,
                ProcessorConfig::table2(8),
                opts.legacy_scan,
                opts.warmup,
                opts.insts,
            )
        })
    });
    let simulated_insts: u64 = points.iter().map(|(s, _)| s.committed + opts.warmup).sum();
    let sim_cycles: u64 = points.iter().map(|(_, l)| l.cycles).sum();
    let measured_wall: f64 = points.iter().map(|(_, l)| l.wall_s).sum();
    EngineRow {
        engine: kind.to_string(),
        points: points.len(),
        simulated_insts,
        sim_cycles,
        wall_s,
        mips: simulated_insts as f64 / wall_s / 1e6,
        ns_per_cycle: measured_wall * 1e9 / sim_cycles as f64,
    }
}

/// Executor-only throughput: ns per committed instruction of the oracle walk
/// (no timing model), the quantity the interned control table optimizes.
fn measure_executor(workloads: &[Workload], insts: u64) -> f64 {
    let w = &workloads[0];
    let img = w.image(LayoutChoice::Optimized);
    let t0 = Instant::now();
    let mut acc = 0u64;
    for d in Executor::from_image(img, w.ref_seed()).take(insts as usize) {
        acc = acc.wrapping_add(d.pc.get());
    }
    std::hint::black_box(acc);
    t0.elapsed().as_secs_f64() * 1e9 / insts as f64
}

/// The large-flight-depth A/B point: one benchmark, 8-wide, 1024-entry
/// ROB, event-driven vs legacy scan. The two legs retire bit-identical
/// windows (asserted), so the wall-clock ratio is a pure scheduler
/// speedup. Each leg is best-of-3 (the window is short enough that a
/// single run is at the mercy of scheduler noise).
fn measure_large_rob(w: &Workload, opts: HarnessOpts) -> (TimedLeg, TimedLeg) {
    let mut pc = ProcessorConfig::table2(8);
    pc.rob_entries = LARGE_ROB;
    let mut best: [Option<(sfetch_core::SimStats, TimedLeg)>; 2] = [None, None];
    for _rep in 0..3 {
        for (slot, legacy) in [(0, false), (1, true)] {
            let (stats, leg) = timed_run(w, EngineKind::Stream, pc, legacy, opts.warmup, opts.insts);
            match &best[slot] {
                Some((prev_stats, prev)) => {
                    assert_eq!(&stats, prev_stats, "repeat runs must be deterministic");
                    if leg.wall_s < prev.wall_s {
                        best[slot] = Some((stats, leg));
                    }
                }
                None => best[slot] = Some((stats, leg)),
            }
        }
    }
    let [ev, sc] = best;
    let (ev_stats, event) = ev.expect("ran");
    let (sc_stats, scan) = sc.expect("ran");
    assert_eq!(ev_stats, sc_stats, "back-ends diverged — the A/B ratio would be meaningless");
    (event, scan)
}

fn main() {
    let opts = HarnessOpts::from_args();
    let backend = if opts.legacy_scan { "legacy-scan" } else { "event" };
    eprintln!("generating ablation subset ({} jobs, {backend} back-end)…", opts.jobs);
    let (workloads, build_s) = timed(|| ablation_workloads(opts));

    let exec_insts = (opts.insts * 4).max(1_000_000);
    let executor_ns_per_inst = measure_executor(&workloads, exec_insts);
    println!(
        "oracle executor: {executor_ns_per_inst:.1} ns/inst ({:.1} Minst/s)",
        1e3 / executor_ns_per_inst
    );

    println!(
        "\n{:<18} {:>7} {:>12} {:>9} {:>9} {:>9}",
        "engine", "points", "sim insts", "wall (s)", "MIPS", "ns/cyc"
    );
    let mut rows = Vec::new();
    let t0 = Instant::now();
    for kind in EngineKind::ALL {
        let row = measure_engine(&workloads, kind, opts);
        println!(
            "{:<18} {:>7} {:>12} {:>9.2} {:>9.2} {:>9.2}",
            row.engine, row.points, row.simulated_insts, row.wall_s, row.mips, row.ns_per_cycle
        );
        rows.push(row);
    }

    // gzip keeps the deepest average flight depth of the ablation subset,
    // so it is where the scan's O(rob)-per-cycle cost shows clearest.
    let large_w = &workloads[0];
    let (event, scan) = measure_large_rob(large_w, opts);
    let speedup = scan.ns_per_cycle() / event.ns_per_cycle();
    println!(
        "\nlarge-ROB point (rob_entries = {LARGE_ROB}, Streams/{}, 8-wide):\n  \
         event-driven {:.2} ns/cyc, legacy scan {:.2} ns/cyc → {speedup:.2}× speedup",
        large_w.name(),
        event.ns_per_cycle(),
        scan.ns_per_cycle()
    );
    let total_wall_s = t0.elapsed().as_secs_f64();
    println!("\ntotal: {total_wall_s:.2}s simulation wall clock, {build_s:.2}s suite construction");

    let json = render_json(
        &opts,
        backend,
        build_s,
        executor_ns_per_inst,
        &rows,
        (large_w.name(), &event, &scan, speedup),
        total_wall_s,
    );
    std::fs::write("BENCH_2.json", &json).expect("write BENCH_2.json");
    println!("wrote BENCH_2.json");
}

fn render_json(
    opts: &HarnessOpts,
    backend: &str,
    build_s: f64,
    executor_ns_per_inst: f64,
    rows: &[EngineRow],
    large_rob: (&str, &TimedLeg, &TimedLeg, f64),
    total_wall_s: f64,
) -> String {
    let (bench, event, scan, speedup) = large_rob;
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"sfetch-perfstats-v2\",");
    let _ = writeln!(s, "  \"backend\": \"{backend}\",");
    let _ = writeln!(s, "  \"insts_per_point\": {},", opts.insts);
    let _ = writeln!(s, "  \"warmup_per_point\": {},", opts.warmup);
    let _ = writeln!(s, "  \"jobs\": {},", opts.jobs);
    let _ = writeln!(s, "  \"rob_entries\": {},", ProcessorConfig::table2(8).rob_entries);
    let _ = writeln!(s, "  \"suite_build_s\": {build_s:.3},");
    let _ = writeln!(s, "  \"executor_ns_per_inst\": {executor_ns_per_inst:.2},");
    s.push_str("  \"engines\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"engine\": \"{}\", \"points\": {}, \"simulated_insts\": {}, \"sim_cycles\": {}, \"wall_s\": {:.3}, \"mips\": {:.3}, \"ns_per_cycle\": {:.2}}}{}",
            r.engine,
            r.points,
            r.simulated_insts,
            r.sim_cycles,
            r.wall_s,
            r.mips,
            r.ns_per_cycle,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    s.push_str("  ],\n");
    s.push_str("  \"large_rob\": {\n");
    let _ = writeln!(s, "    \"bench\": \"{bench}\", \"engine\": \"Streams\", \"width\": 8,");
    let _ = writeln!(s, "    \"rob_entries\": {LARGE_ROB}, \"insts\": {},", opts.insts);
    for (name, leg) in [("event", event), ("legacy_scan", scan)] {
        let _ = writeln!(
            s,
            "    \"{name}\": {{\"wall_s\": {:.3}, \"cycles\": {}, \"ns_per_cycle\": {:.2}, \"mips\": {:.3}}},",
            leg.wall_s,
            leg.cycles,
            leg.ns_per_cycle(),
            leg.mips()
        );
    }
    let _ = writeln!(s, "    \"speedup\": {speedup:.2}");
    s.push_str("  },\n");
    let _ = writeln!(s, "  \"total_wall_s\": {total_wall_s:.3}");
    s.push_str("}\n");
    s
}
