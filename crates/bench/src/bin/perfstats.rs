//! Host-throughput reporter: how fast does this machine simulate?
//!
//! Measures, for each fetch engine, the wall-clock cost of simulating the
//! ablation subset (8-wide, optimized layout) and reports simulated MIPS
//! (millions of committed instructions per wall second, summed over the
//! points in flight), plus the raw architectural executor's throughput in
//! ns per committed instruction. Results go to stdout and to
//! `BENCH_1.json` in the current directory, seeding the repository's
//! performance trajectory; see README.md for the schema.
//!
//! ```text
//! cargo run --release -p sfetch-bench --bin perfstats [-- --inst N --warmup N --jobs N]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use sfetch_bench::{ablation_workloads, run_point, timed, HarnessOpts};
use sfetch_fetch::EngineKind;
use sfetch_trace::Executor;
use sfetch_workloads::{par_map, LayoutChoice, Workload};

struct EngineRow {
    engine: String,
    points: usize,
    simulated_insts: u64,
    wall_s: f64,
    mips: f64,
}

fn measure_engine(
    workloads: &[Workload],
    kind: EngineKind,
    opts: HarnessOpts,
) -> EngineRow {
    let (points, wall_s) = timed(|| {
        par_map(workloads, opts.jobs, |_, w| {
            run_point(w, kind, LayoutChoice::Optimized, 8, opts)
        })
    });
    let simulated_insts: u64 =
        points.iter().map(|p| p.stats.committed + opts.warmup).sum();
    EngineRow {
        engine: kind.to_string(),
        points: points.len(),
        simulated_insts,
        wall_s,
        mips: simulated_insts as f64 / wall_s / 1e6,
    }
}

/// Executor-only throughput: ns per committed instruction of the oracle walk
/// (no timing model), the quantity the interned control table optimizes.
fn measure_executor(workloads: &[Workload], insts: u64) -> f64 {
    let w = &workloads[0];
    let img = w.image(LayoutChoice::Optimized);
    let t0 = Instant::now();
    let mut acc = 0u64;
    for d in Executor::from_image(img, w.ref_seed()).take(insts as usize) {
        acc = acc.wrapping_add(d.pc.get());
    }
    std::hint::black_box(acc);
    t0.elapsed().as_secs_f64() * 1e9 / insts as f64
}

fn main() {
    let opts = HarnessOpts::from_args();
    eprintln!("generating ablation subset ({} jobs)…", opts.jobs);
    let (workloads, build_s) = timed(|| ablation_workloads(opts));

    let exec_insts = (opts.insts * 4).max(1_000_000);
    let executor_ns_per_inst = measure_executor(&workloads, exec_insts);
    println!(
        "oracle executor: {executor_ns_per_inst:.1} ns/inst ({:.1} Minst/s)",
        1e3 / executor_ns_per_inst
    );

    println!(
        "\n{:<18} {:>7} {:>12} {:>9} {:>9}",
        "engine", "points", "sim insts", "wall (s)", "MIPS"
    );
    let mut rows = Vec::new();
    let t0 = Instant::now();
    for kind in EngineKind::ALL {
        let row = measure_engine(&workloads, kind, opts);
        println!(
            "{:<18} {:>7} {:>12} {:>9.2} {:>9.2}",
            row.engine, row.points, row.simulated_insts, row.wall_s, row.mips
        );
        rows.push(row);
    }
    let total_wall_s = t0.elapsed().as_secs_f64();
    println!("\ntotal: {total_wall_s:.2}s simulation wall clock, {build_s:.2}s suite construction");

    let json = render_json(&opts, build_s, executor_ns_per_inst, &rows, total_wall_s);
    std::fs::write("BENCH_1.json", &json).expect("write BENCH_1.json");
    println!("wrote BENCH_1.json");
}

fn render_json(
    opts: &HarnessOpts,
    build_s: f64,
    executor_ns_per_inst: f64,
    rows: &[EngineRow],
    total_wall_s: f64,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"sfetch-perfstats-v1\",");
    let _ = writeln!(s, "  \"insts_per_point\": {},", opts.insts);
    let _ = writeln!(s, "  \"warmup_per_point\": {},", opts.warmup);
    let _ = writeln!(s, "  \"jobs\": {},", opts.jobs);
    let _ = writeln!(s, "  \"suite_build_s\": {build_s:.3},");
    let _ = writeln!(s, "  \"executor_ns_per_inst\": {executor_ns_per_inst:.2},");
    s.push_str("  \"engines\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"engine\": \"{}\", \"points\": {}, \"simulated_insts\": {}, \"wall_s\": {:.3}, \"mips\": {:.3}}}{}",
            r.engine,
            r.points,
            r.simulated_insts,
            r.wall_s,
            r.mips,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    s.push_str("  ],\n");
    let _ = writeln!(s, "  \"total_wall_s\": {total_wall_s:.3}");
    s.push_str("}\n");
    s
}
