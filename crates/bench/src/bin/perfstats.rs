//! Host-throughput reporter: how fast does this machine simulate?
//!
//! Measures, for each fetch engine, the wall-clock cost of simulating the
//! ablation subset (8-wide, optimized layout) and reports simulated MIPS
//! (millions of committed instructions per wall second, summed over the
//! points in flight) and ns per simulated cycle, plus the raw
//! architectural executor's throughput in ns per committed instruction.
//! A large-ROB A/B point (1024 entries, where the legacy per-cycle ROB
//! scan is quadratic in flight-depth) measures the event-driven
//! scheduler's speedup against `--legacy-scan`, and a per-engine
//! prefetch A/B (each engine's natural policy vs the blocking L1i, on
//! the `icache_walker` microbench — the suite's own benchmarks fit the
//! L1i once warm) records how much fetch-stall time the non-blocking
//! miss pipeline recovers.
//!
//! Two v4 additions: `redecode_ab` measures the stream engine's
//! decoded-line cache (wrong-path re-decode elimination) at a 1024-entry
//! ROB, asserting bit-identical simulated statistics with the cache on
//! or off; and `sampling_ab` runs the 50M-instruction phased workload
//! both straight through and under SMARTS sampling (`sfetch-sample`),
//! recording the IPC estimate, its confidence interval, the relative
//! error against the full run, and the wall-clock speedup.
//!
//! The v5 addition is the **`calibration_grid`** section: the full
//! Fig. 8 engines × widths grid on the 50M phased workload, measured by
//! sampling through the reusable checkpoint store
//! (`sfetch_sample::store`). Per grid point it records the sampled IPC
//! with its 95% confidence interval; `store_ab` records the cold-store
//! run (fast-forward computed and banked) against the warm-store rerun
//! of the same cell (fast-forward amortized away — the rerun's windows
//! are asserted byte-identical), and `spread_8wide` compares the engine
//! IPC spread against the paper's ~3.5× (Fig. 8c).
//!
//! The v6 addition is the **`fleet_resilience`** section: a 2-engine ×
//! 2-width slice of the grid run twice under the fault-tolerant fleet
//! supervisor (`sfetch_fleet`) against a shared pre-populated store —
//! once clean, once with deterministic chaos injection (`--chaos`-style
//! worker crashes, stalls, and corrupted shard files). The merged
//! results are asserted byte-identical; the record is the wall-clock
//! overhead the retries cost plus the supervisor's spawn/retry/kill
//! accounting.
//!
//! The v7 addition is the **`front_pipeline`** section: per engine, the
//! golden-window cycle sums under that engine's own front-pipeline
//! model ([`sfetch_fetch::FrontPipeline::for_engine`]) against the
//! legacy shared front, with the model parameters and the
//! stall-decomposition counters on the record. The `engines` section
//! stays on the legacy front (Table 2 defaults), so its `sim_cycles`
//! remain comparable to `BENCH_6.json`, and the `calibration_grid` now
//! runs each cell under its engine's front model and natural prefetch
//! policy (the `--front-pipeline` / `--grid-prefetch` defaults) — the
//! Fig. 8 differentiation the per-engine models exist to recover.
//!
//! The v8 addition is the **`cycle_accounting`** section, recording the
//! top-down cycle decomposition (`sfetch_core::CycleBuckets`) the
//! observability layer attributes per cycle: per-engine bucket shares on
//! the seed suite (legacy front — the `engines` section's own windows,
//! so `sum(buckets) == sim_cycles` is asserted against the identical
//! totals) and on the phased calibration grid at 8-wide (per-engine
//! front, sampled through the warm store). Two contracts ride along and
//! are **asserted**, not just recorded: at the BENCH window (`--inst
//! 200000 --warmup 40000`, event back-end) the per-engine `sim_cycles`
//! must still equal `BENCH_7.json`'s — cycle accounting observes timing,
//! it never alters it — and a tracing-off vs tracing-on A/B (NullObserver
//! against an attached but out-of-range Konata observer, best-of-5) must
//! stay bit-identical in simulated statistics with under 2% wall-clock
//! overhead.
//!
//! The v9 addition is the **`serve_ab`** section, measuring the
//! warm-engine-state banking the resident `sfetch-serve` daemon rests
//! on: the headline cell run twice against one fresh store with
//! banking enabled. The cold leg warms every window live and banks the
//! warmed engine/memory state; the banked leg restores it — asserted
//! byte-identical, with the banked per-window warming cost asserted
//! strictly below the live one.
//!
//! The v10 addition is the **`batch_ab`** section, measuring batched
//! multi-window execution (`sfetch_sample::BatchSampler`): the full
//! Fig. 8 grid swept three ways against one shared pre-populated store
//! — per-window (every cell re-walks every window's functional span),
//! batched (one shared sweep drives every cell of a window, bank off),
//! and composed (batched + warm-state bank restore, the resident
//! steady state, where the shared sweep shrinks to the detailed span).
//! All three merges are asserted byte-identical; at the default
//! 50M-instruction grid scale the composed leg's throughput is
//! asserted at ≥5× the per-window baseline. Results go to stdout and
//! to `BENCH_10.json` in the current directory, extending the
//! repository's performance trajectory (`BENCH_1.json`: scan-based
//! baseline; `BENCH_2.json`: event-driven back-end; `BENCH_3.json`:
//! prefetch subsystem; `BENCH_4.json`: sampled simulation;
//! `BENCH_5.json`: checkpoint store; `BENCH_6.json`: fleet supervisor;
//! `BENCH_7.json`: front-pipeline calibration; `BENCH_8.json`: cycle
//! accounting; `BENCH_9.json`: warm-state banking); see README.md for
//! the `sfetch-perfstats-v10` schema — all v9 sections carry over
//! unchanged.
//!
//! ```text
//! cargo run --release -p sfetch-bench --bin perfstats \
//!     [-- --inst N --warmup N --jobs N --legacy-scan \
//!         --sample-total N --sample U,Wf,Wd,D \
//!         --grid-total N --grid-sample U,Wf,Wd,D[,Wm] \
//!         --obs-dir DIR --interval N --ptrace LO-HI]
//! ```
//!
//! With `--obs-dir DIR` the calibration grid additionally writes its
//! cycle-accounting time series (and, with `--ptrace`, Konata pipeline
//! traces) into `DIR` — a pure side pass over the warm checkpoint store.

use std::fmt::Write as _;
use std::time::Instant;

use sfetch_bench::fleet_grid::{
    maybe_run_fleet_child, run_fleet_grid, FleetGridOutcome, FleetGridSpec,
};
use sfetch_bench::grid::{
    cell_config, cells, engine_key, grid_engines, point_line, run_cell_range, run_cells_batched,
    spread_at_width, CellRun, GridCell, FIG8_WIDTHS,
};
use sfetch_bench::obs::{write_sampled_obs, KonataObserver, ObsOpts};
use sfetch_bench::{ablation_workloads, timed, HarnessOpts};
use sfetch_core::{
    CycleBuckets, NullObserver, Observer, PrefetchConfig, Processor, ProcessorConfig, SimStats,
};
use sfetch_obs::KonataTrace;
use sfetch_fetch::{EngineKind, FetchEngine, StreamEngine};
use sfetch_sample::{
    estimate, run_full_detailed, run_sampled_jobs, CheckpointStore, Estimate, SamplePoint,
    StoredSampler,
};
use sfetch_trace::Executor;
use sfetch_workloads::{par_map, phased, LayoutChoice, Workload};

/// ROB capacity of the large-flight-depth A/B point.
const LARGE_ROB: usize = 1024;

/// The BENCH measurement window: `(insts, warmup)` per point. Whenever
/// this binary runs that window on the event back-end, the per-engine
/// `sim_cycles` totals are asserted against the `BENCH_7.json` record —
/// cycle accounting observes simulated time, it must never move it.
const BENCH_WINDOW: (u64, u64) = (200_000, 40_000);

/// `BENCH_7.json` `engines[].sim_cycles` (legacy front), in
/// [`EngineKind::ALL`] order.
const BENCH7_SIM_CYCLES: [u64; 4] = [251_057, 268_839, 249_240, 244_461];

/// `BENCH_7.json` `front_pipeline[].sim_cycles` (per-engine front), in
/// [`EngineKind::ALL`] order.
const BENCH7_FRONT_SIM_CYCLES: [u64; 4] = [274_108, 257_743, 233_743, 253_168];

struct EngineRow {
    engine: String,
    points: usize,
    simulated_insts: u64,
    sim_cycles: u64,
    wall_s: f64,
    mips: f64,
    ns_per_cycle: f64,
    /// Top-down cycle accounting summed over the measured windows; its
    /// total equals `sim_cycles` by construction (asserted).
    buckets: CycleBuckets,
}

/// One timed simulation leg: wall seconds and cycles of the measured
/// window (warmup excluded from both, so `ns_per_cycle` is exact).
struct TimedLeg {
    wall_s: f64,
    cycles: u64,
    committed: u64,
}

impl TimedLeg {
    fn ns_per_cycle(&self) -> f64 {
        self.wall_s * 1e9 / self.cycles as f64
    }

    fn mips(&self) -> f64 {
        self.committed as f64 / self.wall_s / 1e6
    }
}

/// Warms up a fresh processor around an explicitly built engine, then
/// times exactly the measured window. Returns the decoded-line-cache
/// counters alongside (zeros for engines without one).
fn timed_run_engine(
    w: &Workload,
    engine: Box<dyn FetchEngine>,
    mut pc: ProcessorConfig,
    legacy_scan: bool,
    warmup: u64,
    insts: u64,
) -> (sfetch_core::SimStats, TimedLeg, (u64, u64)) {
    pc.legacy_scan = legacy_scan;
    let image = w.image(LayoutChoice::Optimized);
    let mut p = Processor::new(pc, engine, w.cfg(), image, w.ref_seed());
    p.run(warmup);
    p.reset_stats();
    let t0 = Instant::now();
    p.run(insts);
    let wall_s = t0.elapsed().as_secs_f64();
    let stats = p.stats();
    let decode = p.engine().decode_counters();
    (stats, TimedLeg { wall_s, cycles: stats.cycles, committed: stats.committed }, decode)
}

/// Warms up a fresh processor, then times exactly the measured window.
fn timed_run(
    w: &Workload,
    kind: EngineKind,
    pc: ProcessorConfig,
    legacy_scan: bool,
    warmup: u64,
    insts: u64,
) -> (sfetch_core::SimStats, TimedLeg) {
    let image = w.image(LayoutChoice::Optimized);
    let engine = kind.build_for(pc.width, image.entry(), &pc.prefetch, &pc.front);
    let (stats, leg, _) = timed_run_engine(w, engine, pc, legacy_scan, warmup, insts);
    (stats, leg)
}

fn measure_engine(workloads: &[Workload], kind: EngineKind, opts: HarnessOpts) -> EngineRow {
    let (points, wall_s) = timed(|| {
        par_map(workloads, opts.jobs, |_, w| {
            timed_run(
                w,
                kind,
                ProcessorConfig::table2(8),
                opts.legacy_scan,
                opts.warmup,
                opts.insts,
            )
        })
    });
    let simulated_insts: u64 = points.iter().map(|(s, _)| s.committed + opts.warmup).sum();
    let sim_cycles: u64 = points.iter().map(|(_, l)| l.cycles).sum();
    let measured_wall: f64 = points.iter().map(|(_, l)| l.wall_s).sum();
    let mut buckets = CycleBuckets::default();
    for (s, _) in &points {
        assert_eq!(s.buckets.sum(), s.cycles, "cycle accounting must attribute every cycle");
        assert_eq!(s.watchdog_resyncs, 0, "seed suite must run without watchdog resyncs");
        buckets.add(&s.buckets);
    }
    EngineRow {
        engine: kind.to_string(),
        points: points.len(),
        simulated_insts,
        sim_cycles,
        wall_s,
        mips: simulated_insts as f64 / wall_s / 1e6,
        ns_per_cycle: measured_wall * 1e9 / sim_cycles as f64,
        buckets,
    }
}

/// One engine's row of the front-pipeline calibration record: the
/// golden-window cycle sums under the engine's own front model vs the
/// legacy shared front, plus the model parameters and the new
/// stall-decomposition counters.
struct FrontRow {
    engine: EngineKind,
    front: sfetch_fetch::FrontPipeline,
    /// Summed `sim_cycles` over the ablation subset, per-engine front.
    sim_cycles: u64,
    /// The same sum under [`sfetch_fetch::FrontPipeline::legacy`] —
    /// must match the `engines` section (and `BENCH_6.json`).
    legacy_cycles: u64,
    /// Summed redirect-penalty holds under the per-engine front.
    hold_redirect_cycles: u64,
    /// Summed decode-redirect holds under the per-engine front.
    hold_decode_cycles: u64,
    /// Summed shadow-branch installs under the per-engine front.
    shadow_installs: u64,
}

/// Measures every engine at 8-wide optimized under its own front model
/// and under the legacy front, on the same windows the `engines`
/// section times. The legacy sums double as a cross-check that the
/// front threading is exactly neutral at its neutral setting.
fn measure_front_pipeline(workloads: &[Workload], opts: HarnessOpts) -> Vec<FrontRow> {
    EngineKind::ALL
        .into_iter()
        .map(|kind| {
            let front = sfetch_fetch::FrontPipeline::for_engine(kind);
            let run = |f: sfetch_fetch::FrontPipeline| {
                par_map(workloads, opts.jobs, |_, w| {
                    let mut pc = ProcessorConfig::table2(8);
                    pc.front = f;
                    timed_run(w, kind, pc, opts.legacy_scan, opts.warmup, opts.insts).0
                })
            };
            let engine_stats = run(front);
            let legacy_stats = run(sfetch_fetch::FrontPipeline::legacy());
            FrontRow {
                engine: kind,
                front,
                sim_cycles: engine_stats.iter().map(|s| s.cycles).sum(),
                legacy_cycles: legacy_stats.iter().map(|s| s.cycles).sum(),
                hold_redirect_cycles: engine_stats.iter().map(|s| s.hold_redirect_cycles).sum(),
                hold_decode_cycles: engine_stats.iter().map(|s| s.hold_decode_cycles).sum(),
                shadow_installs: engine_stats.iter().map(|s| s.engine.shadow_installs).sum(),
            }
        })
        .collect()
}

/// Executor-only throughput: ns per committed instruction of the oracle walk
/// (no timing model), the quantity the interned control table optimizes.
fn measure_executor(workloads: &[Workload], insts: u64) -> f64 {
    let w = &workloads[0];
    let img = w.image(LayoutChoice::Optimized);
    let t0 = Instant::now();
    let mut acc = 0u64;
    for d in Executor::from_image(img, w.ref_seed()).take(insts as usize) {
        acc = acc.wrapping_add(d.pc.get());
    }
    std::hint::black_box(acc);
    t0.elapsed().as_secs_f64() * 1e9 / insts as f64
}

/// The large-flight-depth A/B point: one benchmark, 8-wide, 1024-entry
/// ROB, event-driven vs legacy scan. The two legs retire bit-identical
/// windows (asserted), so the wall-clock ratio is a pure scheduler
/// speedup. Each leg is best-of-3 (the window is short enough that a
/// single run is at the mercy of scheduler noise).
fn measure_large_rob(w: &Workload, opts: HarnessOpts) -> (TimedLeg, TimedLeg) {
    let mut pc = ProcessorConfig::table2(8);
    pc.rob_entries = LARGE_ROB;
    let mut best: [Option<(sfetch_core::SimStats, TimedLeg)>; 2] = [None, None];
    for _rep in 0..3 {
        for (slot, legacy) in [(0, false), (1, true)] {
            let (stats, leg) = timed_run(w, EngineKind::Stream, pc, legacy, opts.warmup, opts.insts);
            match &best[slot] {
                Some((prev_stats, prev)) => {
                    assert_eq!(&stats, prev_stats, "repeat runs must be deterministic");
                    if leg.wall_s < prev.wall_s {
                        best[slot] = Some((stats, leg));
                    }
                }
                None => best[slot] = Some((stats, leg)),
            }
        }
    }
    let [ev, sc] = best;
    let (ev_stats, event) = ev.expect("ran");
    let (sc_stats, scan) = sc.expect("ran");
    assert_eq!(ev_stats, sc_stats, "back-ends diverged — the A/B ratio would be meaningless");
    (event, scan)
}

/// One leg of the prefetch A/B: simulated (not wall-clock) quantities.
struct PrefetchLeg {
    cycles: u64,
    ipc: f64,
    stall_cycles: u64,
    issued: u64,
    useful: u64,
    late: u64,
    polluting: u64,
}

/// The A/B workload: the suite's benchmarks fit their hot code inside the
/// 64KB L1i once warm, so the prefetch point runs the `icache_walker`
/// microbench instead — ~92KB of cyclically-touched straight-line code,
/// where every line misses every iteration under the blocking model.
fn prefetch_ab_workload() -> Workload {
    Workload::from_cfg("icache_walker", sfetch_workloads::microbench::icache_walker(64), 100, 7)
}

/// The per-engine prefetch A/B on one benchmark: the engine's natural
/// policy (8 MSHRs) against the legacy blocking L1i. Simulated results
/// are deterministic, so one run per leg suffices.
fn measure_prefetch_ab(w: &Workload, kind: EngineKind, opts: HarnessOpts) -> [PrefetchLeg; 2] {
    [PrefetchConfig::none(), PrefetchConfig::enabled(kind.natural_prefetch())].map(|pf| {
        let mut pc = ProcessorConfig::table2(8);
        pc.prefetch = pf;
        let (stats, _) = timed_run(w, kind, pc, opts.legacy_scan, opts.warmup, opts.insts);
        PrefetchLeg {
            cycles: stats.cycles,
            ipc: stats.ipc(),
            stall_cycles: stats.engine.icache_stall_cycles,
            issued: stats.prefetch.issued,
            useful: stats.prefetch.useful,
            late: stats.prefetch.late,
            polluting: stats.prefetch.polluting,
        }
    })
}

/// The wrong-path re-decode A/B: stream engine at a 1024-entry ROB (deep
/// speculation — each misprediction re-fetches, and without the cache
/// re-decodes, the recovery region), decoded-line cache on vs off.
/// Simulated statistics are asserted bit-identical, so the wall-clock
/// ratio is a pure host-side delta. Best-of-3 per leg. Measurement
/// verdict: the cache **loses** ~2–3% (decode on the interned image is
/// one array read), which is why it defaults off; the A/B stays to keep
/// the negative result on the record.
fn measure_redecode(w: &Workload, opts: HarnessOpts) -> (TimedLeg, TimedLeg, (u64, u64)) {
    let mut pc = ProcessorConfig::table2(8);
    pc.rob_entries = LARGE_ROB;
    let entry = w.image(LayoutChoice::Optimized).entry();
    let mut best: [Option<(sfetch_core::SimStats, TimedLeg)>; 2] = [None, None];
    let mut counters = (0, 0);
    for _rep in 0..3 {
        for (slot, cached) in [(0, true), (1, false)] {
            let eng = StreamEngine::table2(8, entry);
            let eng = if cached { eng.with_decode_cache() } else { eng };
            let (stats, leg, dec) =
                timed_run_engine(w, Box::new(eng), pc, opts.legacy_scan, opts.warmup, opts.insts);
            if cached {
                counters = dec;
            }
            match &best[slot] {
                Some((prev_stats, prev)) => {
                    assert_eq!(&stats, prev_stats, "repeat runs must be deterministic");
                    if leg.wall_s < prev.wall_s {
                        best[slot] = Some((stats, leg));
                    }
                }
                None => best[slot] = Some((stats, leg)),
            }
        }
    }
    let [on, off] = best;
    let (on_stats, on_leg) = on.expect("ran");
    let (off_stats, off_leg) = off.expect("ran");
    assert_eq!(on_stats, off_stats, "decode cache changed simulated results — not a pure host win");
    (on_leg, off_leg, counters)
}

/// The tracing-off vs tracing-on A/B record.
struct ObsOverhead {
    off: TimedLeg,
    on: TimedLeg,
    overhead_pct: f64,
}

/// Wall-clock guard of the observability layer: tracing on may cost at
/// most this much over tracing off (asserted).
const OBS_MAX_OVERHEAD_PCT: f64 = 2.0;

/// One timed leg under an explicit [`Observer`] instantiation: warmed
/// up, then exactly the measured window. Both A/B legs build the
/// processor through this one path, so the only difference between them
/// is the observer type parameter.
fn observed_leg<O: Observer>(
    w: &Workload,
    mut pc: ProcessorConfig,
    legacy_scan: bool,
    warmup: u64,
    insts: u64,
    obs: O,
) -> (SimStats, TimedLeg) {
    pc.legacy_scan = legacy_scan;
    let image = w.image(LayoutChoice::Optimized);
    let engine = EngineKind::Stream.build_for(pc.width, image.entry(), &pc.prefetch, &pc.front);
    let mem = sfetch_mem::MemoryHierarchy::new(sfetch_mem::MemoryConfig::table2(pc.width));
    let oracle = Executor::from_image(image, w.ref_seed());
    let mut p = Processor::with_state_observed(pc, engine, image, oracle, mem, obs);
    p.run(warmup);
    p.reset_stats();
    let t0 = Instant::now();
    p.run(insts);
    let wall_s = t0.elapsed().as_secs_f64();
    let stats = p.stats();
    (stats, TimedLeg { wall_s, cycles: stats.cycles, committed: stats.committed })
}

/// The observability overhead A/B: the disabled [`NullObserver`] (hooks
/// monomorphized away — the configuration every measurement run uses)
/// against an attached [`KonataObserver`] whose capture window never
/// matches (hooks compiled in and called every event, nothing buffered —
/// the steady-state cost of leaving tracing compiled in). Simulated
/// statistics are asserted bit-identical and the wall-clock overhead is
/// asserted under [`OBS_MAX_OVERHEAD_PCT`]. Always measured on the
/// event back-end — the configuration every tracing run uses — with the
/// window floored well past the pin window.
///
/// The reported overhead is the **minimum of paired per-rep ratios**
/// (off and on run back to back, nine reps): host scheduler noise is
/// one-sided and uncorrelated across pairs, so it inflates most ratios
/// but not the quietest pair, while a real per-hook cost shows up in
/// every pair and survives the minimum. The recorded `ns_per_cycle`
/// legs are the per-leg best walls.
fn measure_obs_overhead(w: &Workload, opts: HarnessOpts) -> ObsOverhead {
    let pc = ProcessorConfig::table2(8);
    let (insts, warmup) = (opts.insts.max(2 * BENCH_WINDOW.0), opts.warmup.max(BENCH_WINDOW.1));
    let mut best: [Option<(SimStats, TimedLeg)>; 2] = [None, None];
    let mut min_ratio = f64::INFINITY;
    for _rep in 0..9 {
        let (off_stats, off_leg) = observed_leg(w, pc, false, warmup, insts, NullObserver);
        // The capture range sits past any reachable sequence number, so
        // the trace buffers nothing while every hook still fires.
        let trace = KonataTrace::new(u64::MAX - 1, u64::MAX);
        let (on_stats, on_leg) =
            observed_leg(w, pc, false, warmup, insts, KonataObserver(trace));
        assert_eq!(
            off_stats, on_stats,
            "an attached observer must never alter simulated statistics"
        );
        min_ratio = min_ratio.min(on_leg.wall_s / off_leg.wall_s);
        for (entry, (stats, leg)) in
            best.iter_mut().zip([(off_stats, off_leg), (on_stats, on_leg)])
        {
            match entry {
                Some((prev_stats, prev)) => {
                    assert_eq!(&stats, prev_stats, "repeat runs must be deterministic");
                    if leg.wall_s < prev.wall_s {
                        *entry = Some((stats, leg));
                    }
                }
                None => *entry = Some((stats, leg)),
            }
        }
    }
    let [off, on] = best;
    let (_, off) = off.expect("ran");
    let (_, on) = on.expect("ran");
    let overhead_pct = 100.0 * (min_ratio - 1.0);
    assert!(
        overhead_pct < OBS_MAX_OVERHEAD_PCT,
        "tracing-on overhead {overhead_pct:.2}% breaches the {OBS_MAX_OVERHEAD_PCT}% contract"
    );
    ObsOverhead { off, on, overhead_pct }
}

/// One leg of the sampling A/B.
struct SamplingLeg {
    ipc: f64,
    committed: u64,
    cycles: u64,
    wall_s: f64,
}

/// The sampled-vs-full A/B on the long-horizon phased workload: a
/// straight-through detailed run of `--sample-total` instructions against
/// the `sfetch-sample` systematic sampler with the `--sample` schedule.
fn measure_sampling_ab(
    w: &Workload,
    opts: HarnessOpts,
) -> (SamplingLeg, SamplingLeg, Estimate, u64) {
    let img = w.image(LayoutChoice::Optimized);
    let mut pc = ProcessorConfig::table2(8);
    // Both legs honor the backend selection, like every other section —
    // the legacy-scan differential covers the sampler path too.
    pc.legacy_scan = opts.legacy_scan;
    let total = opts.sample_total;
    let t0 = Instant::now();
    let full_stats = run_full_detailed(img, EngineKind::Stream, pc, w.ref_seed(), 0, total);
    let full = SamplingLeg {
        ipc: full_stats.ipc(),
        committed: full_stats.committed,
        cycles: full_stats.cycles,
        wall_s: t0.elapsed().as_secs_f64(),
    };
    // The full run is inherently serial; the sampler's windows are
    // independent and fan out across `--jobs` threads — that parallelism
    // is the sampling subsystem's structural advantage and is recorded
    // as part of the A/B (the per-window results are bit-identical to a
    // serial run).
    let t1 = Instant::now();
    let run =
        run_sampled_jobs(img, EngineKind::Stream, pc, w.ref_seed(), total, &opts.sample, opts.jobs);
    let wall_s = t1.elapsed().as_secs_f64();
    let committed: u64 = run.points.iter().map(|p| p.committed).sum();
    let cycles: u64 = run.points.iter().map(|p| p.cycles).sum();
    let sampled =
        SamplingLeg { ipc: run.estimate.ipc, committed, cycles, wall_s };
    (full, sampled, run.estimate, run.points.len() as u64)
}

/// The finished calibration grid plus its store A/B record.
struct CalibrationGrid {
    runs: Vec<CellRun>,
    windows: u64,
    cold_wall_s: f64,
    warm_wall_s: f64,
    store_entries: usize,
    /// 8-wide engine spread (min IPC, max IPC, ratio).
    spread: Option<(f64, f64, f64)>,
    /// Per-engine aggregate [`SimStats`] at 8-wide (per-engine front,
    /// natural prefetch — the grid defaults), re-simulated through the
    /// warm store for the `cycle_accounting.phased_grid_8wide` record.
    bucket_rows: Vec<(EngineKind, SimStats)>,
}

/// The headline cell whose cold-store vs warm-store rerun is recorded.
const AB_CELL: GridCell = GridCell { engine: EngineKind::Stream, width: 8 };

/// Runs the Fig. 8 engines × widths grid on the phased workload by
/// sampling through a fresh checkpoint store.
///
/// The first leg runs the headline cell against the **cold** store: its
/// wall clock includes computing (and banking) every window's
/// fast-forward checkpoint — the cost the PR 4 sampler paid on *every*
/// run. The second leg reruns the identical cell against the now-warm
/// store and is asserted byte-identical; its wall clock is what every
/// subsequent experiment pays. The remaining cells then sweep the grid
/// entirely from the warm store.
fn measure_calibration_grid(w: &Workload, opts: HarnessOpts, obs: &ObsOpts) -> CalibrationGrid {
    let scfg = opts.grid_sample;
    let total = opts.grid_total;
    let windows = scfg.windows(total);
    assert!(windows >= 1, "grid-total {total} yields no windows under the grid schedule");
    let store_dir = std::env::temp_dir().join(format!("sfetch-calib-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = CheckpointStore::open(&store_dir).expect("open calibration store");

    let (cold, cold_wall_s) = timed(|| run_cell_range(w, AB_CELL, scfg, &opts, &store, 0..windows));
    let (cold_points, cold_traffic) = cold;
    assert_eq!(cold_traffic.hits, 0, "store A/B cold leg must start from an empty store");

    let (warm, warm_wall_s) = timed(|| run_cell_range(w, AB_CELL, scfg, &opts, &store, 0..windows));
    let (warm_points, warm_traffic) = warm;
    assert_eq!(
        cold_points, warm_points,
        "warm-store rerun must replay the cold run byte-identically"
    );
    assert_eq!(
        warm_traffic.misses + warm_traffic.rejected,
        0,
        "store A/B warm leg must run entirely from the store"
    );

    let grid = cells(&grid_engines(), &FIG8_WIDTHS);
    let runs: Vec<CellRun> = grid
        .iter()
        .map(|&cell| {
            let points = if cell == AB_CELL {
                cold_points.clone()
            } else {
                run_cell_range(w, cell, scfg, &opts, &store, 0..windows).0
            };
            let est = estimate(&points, scfg.confidence);
            CellRun { cell, points, estimate: est }
        })
        .collect();
    // Phased-grid cycle accounting: re-simulate every 8-wide cell's
    // windows through the now-warm store, this time keeping the full
    // per-window `SimStats`, and aggregate. A pure side pass — the grid
    // estimates above are already final.
    let img = w.image(LayoutChoice::Optimized);
    let fp = w.fingerprint(LayoutChoice::Optimized);
    let bucket_rows: Vec<(EngineKind, SimStats)> = grid_engines()
        .iter()
        .map(|&kind| {
            let cell = GridCell { engine: kind, width: 8 };
            let mut sampler = StoredSampler::new(img, fp, w.ref_seed(), scfg, &store);
            let results =
                sampler.run_range_stats(kind, cell_config(cell, &opts), 0..windows, opts.jobs);
            let mut agg = SimStats::default();
            for (_, s) in &results {
                agg.accumulate(s);
            }
            assert_eq!(agg.buckets.sum(), agg.cycles, "grid cycle accounting must be exhaustive");
            (kind, agg)
        })
        .collect();
    if obs.enabled() {
        write_sampled_obs(w, &grid, scfg, windows, &opts, obs, &store)
            .expect("write observability artifacts");
    }
    let store_entries = store.entries();
    let _ = std::fs::remove_dir_all(&store_dir);
    CalibrationGrid {
        spread: spread_at_width(&runs, 8),
        runs,
        windows,
        cold_wall_s,
        warm_wall_s,
        store_entries,
        bucket_rows,
    }
}

/// The chaos A/B record: the same fleet grid run clean and under
/// deterministic fault injection, against one shared warm store.
struct FleetResilience {
    procs: usize,
    fleet_cells: usize,
    chaos_seed: u64,
    clean_wall_s: f64,
    chaos_wall_s: f64,
    clean_spawned: u64,
    chaos_spawned: u64,
    chaos_retries: u64,
    chaos_kills: u64,
    identical: bool,
}

/// Chaos seed for the resilience A/B (fixed, so the fault schedule —
/// and therefore the measurement — is reproducible run to run).
const FLEET_CHAOS_SEED: u64 = 42;

/// Worker-pool width of the resilience A/B.
const FLEET_PROCS: usize = 2;

/// Runs a 2-engine × 2-width slice of the grid under the fleet
/// supervisor twice — clean, then with deterministic fault injection —
/// and asserts the merged results are byte-identical. Both legs fan out
/// over the same pre-populated store, so the wall-clock delta is pure
/// supervision + retry cost.
fn measure_fleet_resilience(w: &Workload, opts: HarnessOpts) -> FleetResilience {
    let scfg = opts.grid_sample;
    let windows = scfg.windows(opts.grid_total);
    let grid = cells(&[EngineKind::Stream, EngineKind::Ev8], &[4, 8]);
    let store_dir = std::env::temp_dir().join(format!("sfetch-fleetab-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    {
        let store = CheckpointStore::open(&store_dir).expect("open fleet A/B store");
        let img = w.image(LayoutChoice::Optimized);
        let fp = w.fingerprint(LayoutChoice::Optimized);
        StoredSampler::new(img, fp, w.ref_seed(), scfg, &store).populate(windows);
    }

    let run = |chaos: Option<u64>| {
        timed(|| {
            run_fleet_grid(&FleetGridSpec {
                bench: w.name(),
                grid: &grid,
                scfg,
                total: opts.grid_total,
                opts: &opts,
                store_dir: &store_dir,
                procs: FLEET_PROCS,
                chaos,
                max_retries: 3,
                cell_timeout_s: None,
            })
            .expect("fleet A/B run")
        })
    };
    let (clean, clean_wall_s) = run(None);
    let (chaos, chaos_wall_s) = run(Some(FLEET_CHAOS_SEED));
    assert!(
        clean.report.incomplete.is_empty() && chaos.report.incomplete.is_empty(),
        "fleet A/B legs must converge to a complete grid"
    );
    let lines = |o: &FleetGridOutcome| -> Vec<String> {
        o.runs.iter().flat_map(|r| r.points.iter().map(|p| point_line(r.cell, p))).collect()
    };
    let identical = lines(&clean) == lines(&chaos);
    assert!(identical, "chaos run must merge byte-identically to the clean run");
    let fleet_cells = clean.report.done.len();
    let _ = std::fs::remove_dir_all(&store_dir);
    FleetResilience {
        procs: FLEET_PROCS,
        fleet_cells,
        chaos_seed: FLEET_CHAOS_SEED,
        clean_wall_s,
        chaos_wall_s,
        clean_spawned: clean.report.spawned,
        chaos_spawned: chaos.report.spawned,
        chaos_retries: chaos.report.retries,
        chaos_kills: chaos.report.kills,
        identical,
    }
}

/// The warm-engine-state banking A/B: what a resident `sfetch-serve`
/// rerun pays for window warming against what a cold first run pays.
struct ServeAb {
    windows: u64,
    cold_wall_s: f64,
    banked_wall_s: f64,
    cold_warm_ns_per_window: u64,
    banked_warm_ns_per_window: u64,
    bank_entries_written: u64,
    bank_hits: u64,
    identical: bool,
}

/// Runs the headline cell twice through one fresh store with warm-state
/// banking enabled. The first (cold) leg warms every window live and
/// banks the warmed engine/memory state as a side effect; the second
/// (banked) leg restores every window's warm state from the bank — an
/// in-memory reconstruction instead of executing the warming schedule —
/// and is asserted byte-identical. The record is each leg's per-window
/// warming cost ([`sfetch_sample::WarmTiming`]): the host time the
/// resident daemon's warm bank removes from every rerun.
fn measure_serve_ab(w: &Workload, opts: HarnessOpts) -> ServeAb {
    let scfg = opts.grid_sample;
    let windows = scfg.windows(opts.grid_total);
    let store_dir = std::env::temp_dir().join(format!("sfetch-serveab-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = CheckpointStore::open(&store_dir).expect("open serve A/B store");
    let img = w.image(LayoutChoice::Optimized);
    let fp = w.fingerprint(LayoutChoice::Optimized);
    let pcfg = cell_config(AB_CELL, &opts);

    let mut cold = StoredSampler::new(img, fp, w.ref_seed(), scfg, &store).with_warm_bank(true);
    let (cold_points, cold_wall_s) =
        timed(|| cold.run_range(AB_CELL.engine, pcfg, 0..windows, opts.jobs));
    let cold_bank = cold.warm_bank_stats();
    assert_eq!(cold_bank.hits, 0, "serve A/B cold leg must start from an empty warm bank");

    let mut banked = StoredSampler::new(img, fp, w.ref_seed(), scfg, &store).with_warm_bank(true);
    let (banked_points, banked_wall_s) =
        timed(|| banked.run_range(AB_CELL.engine, pcfg, 0..windows, opts.jobs));
    let banked_bank = banked.warm_bank_stats();
    assert_eq!(
        banked_bank.hits, windows,
        "serve A/B banked leg must restore every window from the bank"
    );
    let identical = cold_points == banked_points;
    assert!(identical, "banked rerun must replay the cold run byte-identically");
    assert!(
        banked.timing().warm_ns < cold.timing().warm_ns,
        "restoring banked warm state must beat live warming ({} ns vs {} ns)",
        banked.timing().warm_ns,
        cold.timing().warm_ns
    );

    let _ = std::fs::remove_dir_all(&store_dir);
    ServeAb {
        windows,
        cold_wall_s,
        banked_wall_s,
        cold_warm_ns_per_window: cold.timing().warm_ns_per_window(),
        banked_warm_ns_per_window: banked.timing().warm_ns_per_window(),
        bank_entries_written: cold_bank.misses + cold_bank.rejected,
        bank_hits: banked_bank.hits,
        identical,
    }
}

/// The batched-execution A/B record: the full Fig. 8 grid swept three
/// ways against one shared pre-populated checkpoint store.
struct BatchAb {
    grid_cells: usize,
    batch: usize,
    windows: u64,
    per_window_wall_s: f64,
    batched_wall_s: f64,
    batched_banked_wall_s: f64,
    batched_speedup: f64,
    composed_speedup: f64,
    identical: bool,
    floor_checked: bool,
}

/// Throughput floor asserted on the composed (batched + banked) leg at
/// the default 50M-instruction grid scale.
const BATCH_AB_MIN_SPEEDUP: f64 = 5.0;

/// Sweeps the full Fig. 8 grid three ways: per-window (every cell
/// re-walks every window's functional span through its own executor),
/// batched (one shared functional sweep per window drives every cell,
/// bank off), and composed (batched + warm-bank restore — the resident
/// steady state, where the shared sweep starts at the post-warm
/// checkpoint). All three merges are asserted byte-identical; the
/// wall-clock ratios are therefore pure host-throughput deltas.
fn measure_batch_ab(w: &Workload, opts: HarnessOpts) -> BatchAb {
    let scfg = opts.grid_sample;
    let windows = scfg.windows(opts.grid_total);
    let grid = cells(&grid_engines(), &FIG8_WIDTHS);
    let batch = grid.len();
    let store_dir = std::env::temp_dir().join(format!("sfetch-batchab-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = CheckpointStore::open(&store_dir).expect("open batch A/B store");
    // All legs share pre-populated fast-forward checkpoints, so the A/B
    // isolates the window-sweep cost the batch executor removes.
    {
        let img = w.image(LayoutChoice::Optimized);
        let fp = w.fingerprint(LayoutChoice::Optimized);
        StoredSampler::new(img, fp, w.ref_seed(), scfg, &store).populate(windows);
    }
    let lines = |points: &[Vec<SamplePoint>]| -> Vec<String> {
        grid.iter()
            .zip(points)
            .flat_map(|(&cell, pts)| pts.iter().map(move |p| point_line(cell, p)))
            .collect()
    };
    let mut no_bank = opts;
    no_bank.warm_bank = false;

    let (per_window, per_window_wall_s) = timed(|| {
        grid.iter()
            .map(|&c| run_cell_range(w, c, scfg, &no_bank, &store, 0..windows).0)
            .collect::<Vec<_>>()
    });
    eprintln!("  per-window leg: {per_window_wall_s:.2}s");

    let (batched, batched_wall_s) =
        timed(|| run_cells_batched(w, &grid, batch, scfg, &no_bank, &store, 0..windows).0);
    eprintln!("  batched leg: {batched_wall_s:.2}s");

    // Composed leg: populate the warm bank once (unmeasured), then time
    // the rerun every resident resubmission pays.
    let mut banked_opts = opts;
    banked_opts.warm_bank = true;
    let _ = run_cells_batched(w, &grid, batch, scfg, &banked_opts, &store, 0..windows);
    let (banked, batched_banked_wall_s) =
        timed(|| run_cells_batched(w, &grid, batch, scfg, &banked_opts, &store, 0..windows).0);
    eprintln!("  batched+banked leg: {batched_banked_wall_s:.2}s");

    let base = lines(&per_window);
    let identical = base == lines(&batched) && base == lines(&banked);
    assert!(identical, "batched legs must merge byte-identically to the per-window oracle");
    let batched_speedup = per_window_wall_s / batched_wall_s;
    let composed_speedup = per_window_wall_s / batched_banked_wall_s;
    let floor_checked = opts.grid_total >= 50_000_000;
    if floor_checked {
        assert!(
            composed_speedup >= BATCH_AB_MIN_SPEEDUP,
            "composed batched+banked grid throughput {composed_speedup:.2}× fell below the \
             {BATCH_AB_MIN_SPEEDUP}× floor"
        );
    }
    let _ = std::fs::remove_dir_all(&store_dir);
    BatchAb {
        grid_cells: grid.len(),
        batch,
        windows,
        per_window_wall_s,
        batched_wall_s,
        batched_banked_wall_s,
        batched_speedup,
        composed_speedup,
        identical,
        floor_checked,
    }
}

fn main() {
    maybe_run_fleet_child();
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let obs_opts = ObsOpts::extract(&mut raw);
    let opts = HarnessOpts::from_arg_list(&raw);
    let backend = if opts.legacy_scan { "legacy-scan" } else { "event" };
    eprintln!("generating ablation subset ({} jobs, {backend} back-end)…", opts.jobs);
    let (workloads, build_s) = timed(|| ablation_workloads(opts));

    let exec_insts = (opts.insts * 4).max(1_000_000);
    let executor_ns_per_inst = measure_executor(&workloads, exec_insts);
    println!(
        "oracle executor: {executor_ns_per_inst:.1} ns/inst ({:.1} Minst/s)",
        1e3 / executor_ns_per_inst
    );

    println!(
        "\n{:<18} {:>7} {:>12} {:>9} {:>9} {:>9}",
        "engine", "points", "sim insts", "wall (s)", "MIPS", "ns/cyc"
    );
    let mut rows = Vec::new();
    let t0 = Instant::now();
    for kind in EngineKind::ALL {
        let row = measure_engine(&workloads, kind, opts);
        println!(
            "{:<18} {:>7} {:>12} {:>9.2} {:>9.2} {:>9.2}",
            row.engine, row.points, row.simulated_insts, row.wall_s, row.mips, row.ns_per_cycle
        );
        rows.push(row);
    }

    // Front-pipeline calibration: each engine under its own front model
    // vs the legacy shared front, on the same windows as above.
    let front_rows = measure_front_pipeline(&workloads, opts);
    println!(
        "\nfront pipeline (8-wide, per-engine model vs legacy shared front):\n\
         {:<18} {:>5} {:>7} {:>7} {:>6} {:>12} {:>12} {:>8}",
        "engine", "depth", "redir", "decode", "shadow", "cycles", "legacy", "Δcyc"
    );
    for r in &front_rows {
        assert_eq!(
            r.legacy_cycles,
            rows.iter()
                .find(|e| e.engine == r.engine.to_string())
                .expect("engine row")
                .sim_cycles,
            "legacy front must reproduce the engines section bit-for-bit"
        );
        println!(
            "{:<18} {:>5} {:>7} {:>7} {:>6} {:>12} {:>12} {:>7.2}%",
            r.engine.to_string(),
            r.front.depth,
            r.front.redirect_penalty,
            r.front.decode_redirect_lat,
            r.front.shadow_decode,
            r.sim_cycles,
            r.legacy_cycles,
            100.0 * (r.sim_cycles as f64 / r.legacy_cycles as f64 - 1.0)
        );
    }

    // BENCH_7 pin: at the BENCH window, cycle accounting must not have
    // moved a single simulated cycle anywhere in either sweep.
    let pinned = !opts.legacy_scan && (opts.insts, opts.warmup) == BENCH_WINDOW;
    if pinned {
        let got: Vec<u64> = rows.iter().map(|r| r.sim_cycles).collect();
        assert_eq!(
            got,
            BENCH7_SIM_CYCLES.to_vec(),
            "engines sim_cycles deviate from the BENCH_7 record"
        );
        let front_got: Vec<u64> = front_rows.iter().map(|r| r.sim_cycles).collect();
        assert_eq!(
            front_got,
            BENCH7_FRONT_SIM_CYCLES.to_vec(),
            "front_pipeline sim_cycles deviate from the BENCH_7 record"
        );
        println!("\nBENCH_7 pin: per-engine sim_cycles bit-identical (engines + front_pipeline)");
    }

    // Top-down cycle accounting on the windows the engines section timed.
    println!(
        "\ncycle accounting (8-wide, legacy front, % of cycles):\n{:<18} {}",
        "engine",
        CycleBuckets::NAMES.iter().map(|n| format!("{n:>14}")).collect::<String>()
    );
    for r in &rows {
        let total = r.sim_cycles as f64;
        println!(
            "{:<18} {}",
            r.engine,
            r.buckets
                .to_array()
                .iter()
                .map(|&c| format!("{:>13.2}%", 100.0 * c as f64 / total))
                .collect::<String>()
        );
    }

    // Observability overhead: tracing off vs on, stats bit-identical.
    let obs_ab = measure_obs_overhead(&workloads[0], opts);
    println!(
        "\nobservability overhead (Streams/{}, 8-wide, tracing off vs on):\n  \
         off {:.2} ns/cyc, on {:.2} ns/cyc → {:+.2}% systematic overhead \
         (min paired on/off ratio, < {OBS_MAX_OVERHEAD_PCT}% asserted, \
         simulated stats bit-identical)",
        workloads[0].name(),
        obs_ab.off.ns_per_cycle(),
        obs_ab.on.ns_per_cycle(),
        obs_ab.overhead_pct,
    );

    // gzip keeps the deepest average flight depth of the ablation subset,
    // so it is where the scan's O(rob)-per-cycle cost shows clearest.
    let large_w = &workloads[0];
    let (event, scan) = measure_large_rob(large_w, opts);
    let speedup = scan.ns_per_cycle() / event.ns_per_cycle();
    println!(
        "\nlarge-ROB point (rob_entries = {LARGE_ROB}, Streams/{}, 8-wide):\n  \
         event-driven {:.2} ns/cyc, legacy scan {:.2} ns/cyc → {speedup:.2}× speedup",
        large_w.name(),
        event.ns_per_cycle(),
        scan.ns_per_cycle()
    );
    // Prefetch A/B: each engine's natural policy vs the blocking L1i.
    let ab_w = prefetch_ab_workload();
    println!("\nprefetch A/B ({}, 8-wide, natural policy per engine):", ab_w.name());
    println!(
        "{:<18} {:<12} {:>11} {:>11} {:>8} {:>8} {:>8}",
        "engine", "policy", "stall off", "stall on", "Δstall", "ΔIPC", "useful"
    );
    let mut ab_rows = Vec::new();
    for kind in EngineKind::ALL {
        let [off, on] = measure_prefetch_ab(&ab_w, kind, opts);
        let dstall = if off.stall_cycles == 0 {
            0.0
        } else {
            100.0 * (on.stall_cycles as f64 / off.stall_cycles as f64 - 1.0)
        };
        println!(
            "{:<18} {:<12} {:>11} {:>11} {:>7.1}% {:>7.2}% {:>8}",
            kind.to_string(),
            kind.natural_prefetch().to_string(),
            off.stall_cycles,
            on.stall_cycles,
            dstall,
            100.0 * (on.ipc / off.ipc - 1.0),
            on.useful
        );
        ab_rows.push((kind, off, on));
    }

    // Wrong-path re-decode A/B: decoded-line cache on/off at ROB 1024.
    let (dec_on, dec_off, (dec_hits, dec_misses)) = measure_redecode(large_w, opts);
    let dec_speedup = dec_off.ns_per_cycle() / dec_on.ns_per_cycle();
    println!(
        "\nwrong-path re-decode point (decoded-line cache, rob_entries = {LARGE_ROB}, Streams/{}):\n  \
         cache on {:.2} ns/cyc, cache off {:.2} ns/cyc → {dec_speedup:.2}× \
         ({dec_hits} line hits / {dec_misses} misses)",
        large_w.name(),
        dec_on.ns_per_cycle(),
        dec_off.ns_per_cycle(),
    );

    // Sampling A/B: the long-horizon phased workload, full vs sampled.
    eprintln!("building phased long-horizon workload…");
    let (phased_w, phased_build_s) = timed(phased::long_workload);
    eprintln!(
        "sampling A/B: {} insts full + sampled (U={},Wf={},Wd={},D={})…",
        opts.sample_total,
        opts.sample.interval,
        opts.sample.warm_func,
        opts.sample.warm_detail,
        opts.sample.measure,
    );
    let (full, sampled, est, windows) = measure_sampling_ab(&phased_w, opts);
    let rel_err = if full.ipc > 0.0 { (sampled.ipc - full.ipc).abs() / full.ipc } else { 0.0 };
    let sampling_speedup = full.wall_s / sampled.wall_s;
    println!(
        "\nsampling A/B ({}/{} insts, Streams, 8-wide):\n  \
         full     IPC {:.4} in {:.2}s\n  \
         sampled  IPC {:.4} [{:.4}, {:.4}] @{} over {windows} windows in {:.2}s\n  \
         relative error {:.2}%, wall-clock speedup {sampling_speedup:.1}×",
        phased_w.name(),
        opts.sample_total,
        full.ipc,
        full.wall_s,
        sampled.ipc,
        est.ipc_lo,
        est.ipc_hi,
        est.confidence,
        sampled.wall_s,
        rel_err * 100.0,
    );

    // Calibration grid: Fig. 8 engines × widths, sampled via the store.
    eprintln!(
        "calibration grid: {} cells × {} windows over {} insts (store-backed)…",
        grid_engines().len() * FIG8_WIDTHS.len(),
        opts.grid_sample.windows(opts.grid_total),
        opts.grid_total
    );
    let calib = measure_calibration_grid(&phased_w, opts, &obs_opts);
    let store_speedup = calib.cold_wall_s / calib.warm_wall_s;
    println!(
        "\ncalibration grid ({}/{} insts, {} windows, store-backed):",
        phased_w.name(),
        opts.grid_total,
        calib.windows
    );
    for run in &calib.runs {
        println!(
            "  {:<18} {}-wide  IPC {:.4} [{:.4}, {:.4}] ±{:.2}%",
            run.cell.engine.to_string(),
            run.cell.width,
            run.estimate.ipc,
            run.estimate.ipc_lo,
            run.estimate.ipc_hi,
            100.0 * run.estimate.rel_half_width
        );
    }
    if let Some((min, max, ratio)) = calib.spread {
        println!("  8-wide engine spread {max:.3}/{min:.3} = {ratio:.2}× (paper Fig. 8c ~3.5×)");
    }
    println!(
        "  store A/B (Streams, 8-wide): cold {:.3}s → warm rerun {:.3}s = {store_speedup:.2}× \
         (fast-forward amortized into {} store entries)",
        calib.cold_wall_s, calib.warm_wall_s, calib.store_entries
    );

    // Fleet resilience: the same grid slice clean vs chaos-injected.
    eprintln!(
        "fleet resilience A/B: 4 cells × {} windows, {FLEET_PROCS} workers, chaos seed \
         {FLEET_CHAOS_SEED}…",
        opts.grid_sample.windows(opts.grid_total)
    );
    let fleet = measure_fleet_resilience(&phased_w, opts);
    let fleet_overhead =
        100.0 * (fleet.chaos_wall_s / fleet.clean_wall_s - 1.0);
    println!(
        "\nfleet resilience ({}, {} cells, {} workers):\n  \
         clean {:.2}s ({} spawned) vs chaos {:.2}s ({} spawned, {} retries, {} kills) → \
         {fleet_overhead:+.1}% wall overhead, merged output byte-identical",
        phased_w.name(),
        fleet.fleet_cells,
        fleet.procs,
        fleet.clean_wall_s,
        fleet.clean_spawned,
        fleet.chaos_wall_s,
        fleet.chaos_spawned,
        fleet.chaos_retries,
        fleet.chaos_kills,
    );

    // Serve A/B: live warming vs banked warm-state restore, same cell.
    eprintln!(
        "serve A/B: {} windows, warm bank cold vs banked (Streams, 8-wide)…",
        opts.grid_sample.windows(opts.grid_total)
    );
    let serve = measure_serve_ab(&phased_w, opts);
    let serve_speedup = serve.cold_warm_ns_per_window as f64
        / (serve.banked_warm_ns_per_window.max(1)) as f64;
    println!(
        "\nserve A/B ({}, Streams, 8-wide, {} windows):\n  \
         live warming {} ns/window → banked restore {} ns/window = {serve_speedup:.1}× \
         ({} bank entries written, {} restored, points byte-identical)",
        phased_w.name(),
        serve.windows,
        serve.cold_warm_ns_per_window,
        serve.banked_warm_ns_per_window,
        serve.bank_entries_written,
        serve.bank_hits,
    );

    // Batch A/B: per-window vs batched vs batched+banked grid sweeps.
    eprintln!(
        "batch A/B: {} cells × {} windows, per-window vs one batched sweep…",
        grid_engines().len() * FIG8_WIDTHS.len(),
        opts.grid_sample.windows(opts.grid_total)
    );
    let batch_ab = measure_batch_ab(&phased_w, opts);
    println!(
        "\nbatch A/B ({}, {} cells, batch {}, {} windows):\n  \
         per-window {:.2}s → batched {:.2}s = {:.2}× → batched+banked {:.2}s = {:.2}× \
         (merged output byte-identical{})",
        phased_w.name(),
        batch_ab.grid_cells,
        batch_ab.batch,
        batch_ab.windows,
        batch_ab.per_window_wall_s,
        batch_ab.batched_wall_s,
        batch_ab.batched_speedup,
        batch_ab.batched_banked_wall_s,
        batch_ab.composed_speedup,
        if batch_ab.floor_checked {
            format!(", ≥{BATCH_AB_MIN_SPEEDUP}× floor asserted")
        } else {
            String::new()
        },
    );

    let total_wall_s = t0.elapsed().as_secs_f64();
    println!("\ntotal: {total_wall_s:.2}s simulation wall clock, {build_s:.2}s suite construction");

    let json = render_json(
        &opts,
        backend,
        build_s,
        executor_ns_per_inst,
        &rows,
        &front_rows,
        (large_w.name(), &event, &scan, speedup),
        (ab_w.name(), &ab_rows),
        (large_w.name(), &dec_on, &dec_off, dec_speedup, (dec_hits, dec_misses)),
        (phased_w.name(), &full, &sampled, &est, windows, phased_build_s),
        (phased_w.name(), &calib, full.ipc),
        (phased_w.name(), &fleet),
        (workloads[0].name(), &obs_ab, pinned),
        (phased_w.name(), &serve),
        (phased_w.name(), &batch_ab),
        total_wall_s,
    );
    std::fs::write("BENCH_10.json", &json).expect("write BENCH_10.json");
    println!("wrote BENCH_10.json");
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    opts: &HarnessOpts,
    backend: &str,
    build_s: f64,
    executor_ns_per_inst: f64,
    rows: &[EngineRow],
    front_rows: &[FrontRow],
    large_rob: (&str, &TimedLeg, &TimedLeg, f64),
    prefetch_ab: (&str, &[(EngineKind, PrefetchLeg, PrefetchLeg)]),
    redecode_ab: (&str, &TimedLeg, &TimedLeg, f64, (u64, u64)),
    sampling_ab: (&str, &SamplingLeg, &SamplingLeg, &Estimate, u64, f64),
    calibration: (&str, &CalibrationGrid, f64),
    fleet: (&str, &FleetResilience),
    accounting: (&str, &ObsOverhead, bool),
    serve_ab: (&str, &ServeAb),
    batch_ab: (&str, &BatchAb),
    total_wall_s: f64,
) -> String {
    let (bench, event, scan, speedup) = large_rob;
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"sfetch-perfstats-v10\",");
    let _ = writeln!(s, "  \"backend\": \"{backend}\",");
    let _ = writeln!(s, "  \"insts_per_point\": {},", opts.insts);
    let _ = writeln!(s, "  \"warmup_per_point\": {},", opts.warmup);
    let _ = writeln!(s, "  \"jobs\": {},", opts.jobs);
    let _ = writeln!(s, "  \"rob_entries\": {},", ProcessorConfig::table2(8).rob_entries);
    let _ = writeln!(s, "  \"suite_build_s\": {build_s:.3},");
    let _ = writeln!(s, "  \"executor_ns_per_inst\": {executor_ns_per_inst:.2},");
    s.push_str("  \"engines\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"engine\": \"{}\", \"points\": {}, \"simulated_insts\": {}, \"sim_cycles\": {}, \"wall_s\": {:.3}, \"mips\": {:.3}, \"ns_per_cycle\": {:.2}}}{}",
            r.engine,
            r.points,
            r.simulated_insts,
            r.sim_cycles,
            r.wall_s,
            r.mips,
            r.ns_per_cycle,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    s.push_str("  ],\n");
    s.push_str("  \"front_pipeline\": [\n");
    for (i, r) in front_rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"engine\": \"{}\", \"depth\": {}, \"redirect_penalty\": {}, \
             \"decode_redirect_lat\": {}, \"shadow_decode\": {}, \"sim_cycles\": {}, \
             \"legacy_cycles\": {}, \"hold_redirect_cycles\": {}, \"hold_decode_cycles\": {}, \
             \"shadow_installs\": {}}}{}",
            engine_key(r.engine),
            r.front.depth,
            r.front.redirect_penalty,
            r.front.decode_redirect_lat,
            r.front.shadow_decode,
            r.sim_cycles,
            r.legacy_cycles,
            r.hold_redirect_cycles,
            r.hold_decode_cycles,
            r.shadow_installs,
            if i + 1 < front_rows.len() { "," } else { "" }
        );
    }
    s.push_str("  ],\n");
    s.push_str("  \"large_rob\": {\n");
    let _ = writeln!(s, "    \"bench\": \"{bench}\", \"engine\": \"Streams\", \"width\": 8,");
    let _ = writeln!(s, "    \"rob_entries\": {LARGE_ROB}, \"insts\": {},", opts.insts);
    for (name, leg) in [("event", event), ("legacy_scan", scan)] {
        let _ = writeln!(
            s,
            "    \"{name}\": {{\"wall_s\": {:.3}, \"cycles\": {}, \"ns_per_cycle\": {:.2}, \"mips\": {:.3}}},",
            leg.wall_s,
            leg.cycles,
            leg.ns_per_cycle(),
            leg.mips()
        );
    }
    let _ = writeln!(s, "    \"speedup\": {speedup:.2}");
    s.push_str("  },\n");
    let (ab_bench, ab_rows) = prefetch_ab;
    s.push_str("  \"prefetch_ab\": {\n");
    let _ = writeln!(s, "    \"bench\": \"{ab_bench}\", \"width\": 8, \"mshrs\": 8,");
    s.push_str("    \"engines\": [\n");
    for (i, (kind, off, on)) in ab_rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "      {{\"engine\": \"{kind}\", \"policy\": \"{}\",",
            kind.natural_prefetch()
        );
        for (name, leg, comma) in [("off", off, ","), ("on", on, "}")] {
            let _ = writeln!(
                s,
                "       \"{name}\": {{\"cycles\": {}, \"ipc\": {:.4}, \"fetch_stall_cycles\": {}, \
                 \"issued\": {}, \"useful\": {}, \"late\": {}, \"polluting\": {}}}{comma}{}",
                leg.cycles,
                leg.ipc,
                leg.stall_cycles,
                leg.issued,
                leg.useful,
                leg.late,
                leg.polluting,
                if comma == "}" && i + 1 < ab_rows.len() { "," } else { "" }
            );
        }
    }
    s.push_str("    ]\n");
    s.push_str("  },\n");
    let (rd_bench, rd_on, rd_off, rd_speedup, (rd_hits, rd_misses)) = redecode_ab;
    s.push_str("  \"redecode_ab\": {\n");
    let _ = writeln!(s, "    \"bench\": \"{rd_bench}\", \"engine\": \"Streams\", \"width\": 8,");
    let _ = writeln!(s, "    \"rob_entries\": {LARGE_ROB}, \"insts\": {},", opts.insts);
    for (name, leg) in [("cache_on", rd_on), ("cache_off", rd_off)] {
        let _ = writeln!(
            s,
            "    \"{name}\": {{\"wall_s\": {:.3}, \"ns_per_cycle\": {:.2}}},",
            leg.wall_s,
            leg.ns_per_cycle()
        );
    }
    let _ = writeln!(s, "    \"decode_hits\": {rd_hits}, \"decode_misses\": {rd_misses},");
    let _ = writeln!(s, "    \"speedup\": {rd_speedup:.3}");
    s.push_str("  },\n");
    let (sa_bench, sa_full, sa_sampled, sa_est, sa_windows, sa_build_s) = sampling_ab;
    let sa_rel_err = if sa_full.ipc > 0.0 {
        (sa_sampled.ipc - sa_full.ipc).abs() / sa_full.ipc
    } else {
        0.0
    };
    s.push_str("  \"sampling_ab\": {\n");
    let _ = writeln!(s, "    \"bench\": \"{sa_bench}\", \"engine\": \"Streams\", \"width\": 8,");
    let _ = writeln!(
        s,
        "    \"total_insts\": {}, \"workload_build_s\": {sa_build_s:.3}, \"window_jobs\": {},",
        opts.sample_total, opts.jobs
    );
    let _ = writeln!(
        s,
        "    \"schedule\": {{\"interval\": {}, \"warm_func\": {}, \"warm_mem\": {}, \
         \"warm_detail\": {}, \"measure\": {}, \"confidence\": \"{}\"}},",
        opts.sample.interval,
        opts.sample.warm_func,
        opts.sample.warm_mem,
        opts.sample.warm_detail,
        opts.sample.measure,
        opts.sample.confidence,
    );
    let _ = writeln!(
        s,
        "    \"full\": {{\"ipc\": {:.4}, \"committed\": {}, \"cycles\": {}, \"wall_s\": {:.3}}},",
        sa_full.ipc, sa_full.committed, sa_full.cycles, sa_full.wall_s
    );
    let _ = writeln!(
        s,
        "    \"sampled\": {{\"ipc\": {:.4}, \"ipc_lo\": {:.4}, \"ipc_hi\": {:.4}, \
         \"rel_half_width\": {:.4}, \"windows\": {sa_windows}, \"detailed_committed\": {}, \
         \"detailed_cycles\": {}, \"wall_s\": {:.3}}},",
        sa_sampled.ipc,
        sa_est.ipc_lo,
        sa_est.ipc_hi,
        sa_est.rel_half_width,
        sa_sampled.committed,
        sa_sampled.cycles,
        sa_sampled.wall_s
    );
    let _ = writeln!(
        s,
        "    \"rel_error\": {sa_rel_err:.4}, \"speedup\": {:.2}",
        sa_full.wall_s / sa_sampled.wall_s
    );
    s.push_str("  },\n");
    let (cg_bench, cg, full_ipc) = calibration;
    s.push_str("  \"calibration_grid\": {\n");
    let _ = writeln!(
        s,
        "    \"bench\": \"{cg_bench}\", \"total_insts\": {}, \"windows\": {}, \"layout\": \"optimized\",",
        opts.grid_total, cg.windows
    );
    let _ = writeln!(
        s,
        "    \"front_pipeline\": \"{}\", \"grid_prefetch\": \"{}\",",
        opts.front.as_str(),
        opts.grid_prefetch.as_str()
    );
    let _ = writeln!(
        s,
        "    \"schedule\": {{\"interval\": {}, \"warm_func\": {}, \"warm_mem\": {}, \
         \"warm_detail\": {}, \"measure\": {}, \"confidence\": \"{}\"}},",
        opts.grid_sample.interval,
        opts.grid_sample.warm_func,
        opts.grid_sample.warm_mem,
        opts.grid_sample.warm_detail,
        opts.grid_sample.measure,
        opts.grid_sample.confidence,
    );
    s.push_str("    \"points\": [\n");
    for (i, run) in cg.runs.iter().enumerate() {
        let _ = writeln!(
            s,
            "      {{\"engine\": \"{}\", \"width\": {}, \"ipc\": {:.4}, \"ipc_lo\": {:.4}, \
             \"ipc_hi\": {:.4}, \"rel_half_width\": {:.4}, \"windows\": {}}}{}",
            engine_key(run.cell.engine),
            run.cell.width,
            run.estimate.ipc,
            run.estimate.ipc_lo,
            run.estimate.ipc_hi,
            run.estimate.rel_half_width,
            run.estimate.windows,
            if i + 1 < cg.runs.len() { "," } else { "" }
        );
    }
    s.push_str("    ],\n");
    if let Some((min, max, ratio)) = cg.spread {
        let _ = writeln!(
            s,
            "    \"spread_8wide\": {{\"min_ipc\": {min:.4}, \"max_ipc\": {max:.4}, \
             \"ratio\": {ratio:.3}, \"paper_ratio\": 3.5}},"
        );
    }
    let cg_stream8 = cg
        .runs
        .iter()
        .find(|r| r.cell == AB_CELL)
        .map(|r| r.estimate.ipc)
        .unwrap_or(0.0);
    let cg_rel = if full_ipc > 0.0 { (cg_stream8 - full_ipc).abs() / full_ipc } else { 0.0 };
    let _ = writeln!(
        s,
        "    \"stream8_vs_full\": {{\"grid_ipc\": {cg_stream8:.4}, \"sampling_ab_full_ipc\": \
         {full_ipc:.4}, \"rel_error\": {cg_rel:.4}}},"
    );
    let _ = writeln!(
        s,
        "    \"store_ab\": {{\"engine\": \"{}\", \"width\": {}, \"cold_wall_s\": {:.3}, \
         \"warm_wall_s\": {:.3}, \"speedup\": {:.2}, \"store_entries\": {}}}",
        engine_key(AB_CELL.engine),
        AB_CELL.width,
        cg.cold_wall_s,
        cg.warm_wall_s,
        cg.cold_wall_s / cg.warm_wall_s,
        cg.store_entries
    );
    s.push_str("  },\n");
    let (fr_bench, fr) = fleet;
    s.push_str("  \"fleet_resilience\": {\n");
    let _ = writeln!(
        s,
        "    \"bench\": \"{fr_bench}\", \"engines\": [\"stream\", \"ev8\"], \"widths\": [4, 8],"
    );
    let _ = writeln!(
        s,
        "    \"procs\": {}, \"fleet_cells\": {}, \"chaos_seed\": {},",
        fr.procs, fr.fleet_cells, fr.chaos_seed
    );
    let _ = writeln!(
        s,
        "    \"clean\": {{\"wall_s\": {:.3}, \"spawned\": {}}},",
        fr.clean_wall_s, fr.clean_spawned
    );
    let _ = writeln!(
        s,
        "    \"chaos\": {{\"wall_s\": {:.3}, \"spawned\": {}, \"retries\": {}, \"kills\": {}}},",
        fr.chaos_wall_s, fr.chaos_spawned, fr.chaos_retries, fr.chaos_kills
    );
    let _ = writeln!(
        s,
        "    \"overhead_pct\": {:.1}, \"identical\": {}",
        100.0 * (fr.chaos_wall_s / fr.clean_wall_s - 1.0),
        fr.identical
    );
    s.push_str("  },\n");
    let (ob_bench, ob, pinned) = accounting;
    let bucket_list = |b: &CycleBuckets| -> (String, String) {
        let counts = b.to_array();
        let total = b.sum().max(1) as f64;
        (
            counts.iter().map(u64::to_string).collect::<Vec<_>>().join(", "),
            counts
                .iter()
                .map(|&c| format!("{:.4}", c as f64 / total))
                .collect::<Vec<_>>()
                .join(", "),
        )
    };
    s.push_str("  \"cycle_accounting\": {\n");
    let _ = writeln!(
        s,
        "    \"buckets\": [{}],",
        CycleBuckets::NAMES.iter().map(|n| format!("\"{n}\"")).collect::<Vec<_>>().join(", ")
    );
    s.push_str("    \"seed_suite\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let (counts, shares) = bucket_list(&r.buckets);
        let _ = writeln!(
            s,
            "      {{\"engine\": \"{}\", \"sim_cycles\": {}, \"counts\": [{counts}], \
             \"shares\": [{shares}]}}{}",
            r.engine,
            r.sim_cycles,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    s.push_str("    ],\n");
    let (_, cg, _) = calibration;
    s.push_str("    \"phased_grid_8wide\": [\n");
    for (i, (kind, agg)) in cg.bucket_rows.iter().enumerate() {
        let (counts, shares) = bucket_list(&agg.buckets);
        let _ = writeln!(
            s,
            "      {{\"engine\": \"{}\", \"sim_cycles\": {}, \"counts\": [{counts}], \
             \"shares\": [{shares}]}}{}",
            engine_key(*kind),
            agg.cycles,
            if i + 1 < cg.bucket_rows.len() { "," } else { "" }
        );
    }
    s.push_str("    ],\n");
    let _ = writeln!(
        s,
        "    \"bench7_pin\": {{\"checked\": {pinned}, \"engines_sim_cycles\": [{}], \
         \"front_sim_cycles\": [{}]}},",
        BENCH7_SIM_CYCLES.map(|c| c.to_string()).join(", "),
        BENCH7_FRONT_SIM_CYCLES.map(|c| c.to_string()).join(", "),
    );
    let _ = writeln!(
        s,
        "    \"tracing_overhead\": {{\"bench\": \"{ob_bench}\", \"engine\": \"Streams\", \
         \"width\": 8, \"off_ns_per_cycle\": {:.2}, \"on_ns_per_cycle\": {:.2}, \
         \"overhead_pct\": {:.2}, \"asserted_max_pct\": {OBS_MAX_OVERHEAD_PCT}, \
         \"identical\": true}}",
        ob.off.ns_per_cycle(),
        ob.on.ns_per_cycle(),
        ob.overhead_pct,
    );
    s.push_str("  },\n");
    let (sv_bench, sv) = serve_ab;
    s.push_str("  \"serve_ab\": {\n");
    let _ = writeln!(
        s,
        "    \"bench\": \"{sv_bench}\", \"engine\": \"{}\", \"width\": {}, \"windows\": {},",
        engine_key(AB_CELL.engine),
        AB_CELL.width,
        sv.windows
    );
    let _ = writeln!(
        s,
        "    \"cold\": {{\"wall_s\": {:.3}, \"warm_ns_per_window\": {}, \
         \"bank_entries_written\": {}}},",
        sv.cold_wall_s, sv.cold_warm_ns_per_window, sv.bank_entries_written
    );
    let _ = writeln!(
        s,
        "    \"banked\": {{\"wall_s\": {:.3}, \"warm_ns_per_window\": {}, \"bank_hits\": {}}},",
        sv.banked_wall_s, sv.banked_warm_ns_per_window, sv.bank_hits
    );
    let _ = writeln!(
        s,
        "    \"warm_speedup\": {:.2}, \"identical\": {}",
        sv.cold_warm_ns_per_window as f64 / (sv.banked_warm_ns_per_window.max(1)) as f64,
        sv.identical
    );
    s.push_str("  },\n");
    let (ba_bench, ba) = batch_ab;
    s.push_str("  \"batch_ab\": {\n");
    let _ = writeln!(
        s,
        "    \"bench\": \"{ba_bench}\", \"grid_cells\": {}, \"batch\": {}, \"windows\": {},",
        ba.grid_cells, ba.batch, ba.windows
    );
    let _ = writeln!(s, "    \"per_window\": {{\"wall_s\": {:.3}}},", ba.per_window_wall_s);
    let _ = writeln!(
        s,
        "    \"batched\": {{\"wall_s\": {:.3}, \"speedup\": {:.2}}},",
        ba.batched_wall_s, ba.batched_speedup
    );
    let _ = writeln!(
        s,
        "    \"batched_banked\": {{\"wall_s\": {:.3}, \"speedup\": {:.2}}},",
        ba.batched_banked_wall_s, ba.composed_speedup
    );
    let _ = writeln!(
        s,
        "    \"floor\": {BATCH_AB_MIN_SPEEDUP}, \"floor_checked\": {}, \"identical\": {}",
        ba.floor_checked, ba.identical
    );
    s.push_str("  },\n");
    let _ = writeln!(s, "  \"total_wall_s\": {total_wall_s:.3}");
    s.push_str("}\n");
    s
}
