//! Figure 9 at **paper-scale horizons**: per-benchmark sampled IPC for
//! the 8-wide optimized configuration, through the checkpoint store.
//!
//! Where `figure9` measures million-instruction windows, this binary
//! samples tens of millions of committed instructions per benchmark
//! (the long-horizon phased workload rides along by default — the one
//! bench where instruction footprints actually overflow the L1i) and
//! reports per-benchmark IPC with 95% confidence intervals. The engine
//! axis and the 8-wide width come from the shared `sfetch_bench::grid`
//! definition, so this binary can never drift from `figure9` or
//! `figure8_sampled`.
//!
//! Each benchmark keys its own checkpoints (per-workload trace
//! fingerprints), so one shared `--store DIR` serves the whole suite:
//! the first invocation banks every benchmark's fast-forward state,
//! every later one — any engine subset — starts warm.
//!
//! With `--procs N` each benchmark's windows × engines fan out across
//! OS processes under the fleet supervisor (`sfetch_fleet`): leased
//! cells, retry/backoff on worker crashes, resumable ledger. `--chaos`,
//! `--max-retries` and `--cell-timeout` behave as in `figure8_sampled`.
//! Exit status: 0 complete, 2 degraded (some cells permanently failed),
//! 1 error.
//!
//! ```text
//! cargo run --release -p sfetch-bench --bin figure9_sampled -- \
//!     [--benches gzip,gcc,crafty,twolf,phased] [--engines all|…] \
//!     [--grid-total N] [--grid-sample U,Wf,Wd,D[,Wm]] [--store DIR] \
//!     [--procs N] [--chaos SEED] [--max-retries N] [--cell-timeout S] \
//!     [--jobs N] [--legacy-scan] [--prefetch K] \
//!     [--front-pipeline legacy|engine] [--grid-prefetch shared|natural] \
//!     [--obs-dir DIR] [--interval N] [--ptrace LO-HI]
//! ```
//!
//! With `--obs-dir DIR` each benchmark additionally writes its
//! cycle-accounting time series (and, with `--ptrace`, Konata pipeline
//! traces) into `DIR/<bench>/` — a pure side pass over the warm
//! checkpoint store that leaves the reported IPC numbers untouched.

use std::path::PathBuf;
use std::process::ExitCode;

use sfetch_bench::fleet_grid::{
    degradation_exit, maybe_run_fleet_child, run_fleet_grid, FleetGridSpec,
};
use sfetch_bench::grid::{cells, parse_engines, run_sampled_grid, CellRun, FIG9_WIDTH};
use sfetch_bench::obs::{write_sampled_obs, ObsOpts};
use sfetch_bench::{workload_by_name, HarnessOpts};
use sfetch_core::metrics::harmonic_mean;
use sfetch_fetch::EngineKind;
use sfetch_sample::{CheckpointStore, StoredSampler};
use sfetch_workloads::LayoutChoice;

/// Default benchmark set: the quick ablation subset plus the
/// long-horizon phased workload.
const DEFAULT_BENCHES: &str = "gzip,gcc,crafty,twolf,phased";

/// Exits with a readable message instead of a panic backtrace.
fn or_die<T, E: std::fmt::Display>(r: Result<T, E>) -> T {
    r.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    })
}

struct Args {
    opts: HarnessOpts,
    benches: Vec<String>,
    engines: Vec<EngineKind>,
    store: Option<String>,
    procs: usize,
    chaos: Option<u64>,
    max_retries: u32,
    cell_timeout: Option<u64>,
    obs: ObsOpts,
}

fn parse_args() -> Args {
    let mut benches = DEFAULT_BENCHES.to_owned();
    let mut engines = "all".to_owned();
    let mut store = None;
    let mut procs = 1usize;
    let mut chaos = None;
    let mut max_retries = 3u32;
    let mut cell_timeout = None;
    let mut rest: Vec<String> = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let take = |i: usize, what: &str| -> String {
        args.get(i + 1).unwrap_or_else(|| panic!("{what} requires a value")).clone()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--benches" => {
                benches = take(i, "--benches");
                i += 2;
            }
            "--engines" => {
                engines = take(i, "--engines");
                i += 2;
            }
            "--store" => {
                store = Some(take(i, "--store"));
                i += 2;
            }
            "--procs" => {
                procs = take(i, "--procs").parse().expect("--procs requires a number >= 1");
                i += 2;
            }
            "--chaos" => {
                chaos = Some(take(i, "--chaos").parse().expect("--chaos requires a seed"));
                i += 2;
            }
            "--max-retries" => {
                max_retries =
                    take(i, "--max-retries").parse().expect("--max-retries requires a number");
                i += 2;
            }
            "--cell-timeout" => {
                cell_timeout = Some(
                    take(i, "--cell-timeout").parse().expect("--cell-timeout requires seconds"),
                );
                i += 2;
            }
            flag @ ("--legacy-scan" | "--long") => {
                rest.push(flag.to_owned());
                i += 1;
            }
            other => {
                rest.push(other.to_owned());
                rest.push(take(i, other));
                i += 2;
            }
        }
    }
    assert!(procs >= 1, "--procs must be >= 1");
    let obs = ObsOpts::extract(&mut rest);
    Args {
        opts: HarnessOpts::from_arg_list(&rest),
        benches: benches.split(',').map(|b| b.trim().to_owned()).collect(),
        engines: or_die(parse_engines(&engines)),
        store,
        procs,
        chaos,
        max_retries,
        cell_timeout,
        obs,
    }
}

fn main() -> ExitCode {
    maybe_run_fleet_child();
    let a = parse_args();
    let scfg = a.opts.grid_sample;
    let windows = scfg.windows(a.opts.grid_total);
    assert!(windows >= 1, "grid-total {} yields no windows", a.opts.grid_total);

    let tmp = std::env::temp_dir().join(format!("sfetch-fig9s-{}", std::process::id()));
    let (store_dir, store_is_temp) = match &a.store {
        Some(dir) => (PathBuf::from(dir), false),
        None => (tmp.clone(), true),
    };
    let store = or_die(CheckpointStore::open(&store_dir));
    let grid = cells(&a.engines, &[FIG9_WIDTH]);
    let mut degraded = false;

    println!(
        "\nFigure 9 sampled: per-benchmark IPC [±rel 95% CI], {FIG9_WIDTH}-wide, optimized, \
         {} insts sampled per bench ({windows} windows)",
        a.opts.grid_total
    );
    println!(
        "{:<10} {}",
        "bench",
        a.engines
            .iter()
            .map(|k| format!("{:>22}", k.to_string()))
            .collect::<String>()
    );
    let mut per_engine: Vec<(EngineKind, Vec<f64>)> =
        a.engines.iter().map(|&k| (k, Vec::new())).collect();
    for bench in &a.benches {
        let w = workload_by_name(bench);
        let runs: Vec<CellRun> = if a.procs > 1 {
            // Populate this benchmark's checkpoints once, then fan the
            // engine × window cells across fleet workers.
            let img = w.image(LayoutChoice::Optimized);
            let fp = w.fingerprint(LayoutChoice::Optimized);
            let mut populate = StoredSampler::new(img, fp, w.ref_seed(), scfg, &store);
            let computed = populate.populate(windows);
            eprintln!(
                "  [{}] store: {windows} windows ready ({computed} computed, {} loaded warm)",
                w.name(),
                populate.stats().hits
            );
            let outcome = or_die(run_fleet_grid(&FleetGridSpec {
                bench,
                grid: &grid,
                scfg,
                total: a.opts.grid_total,
                opts: &a.opts,
                store_dir: &store_dir,
                procs: a.procs,
                chaos: a.chaos,
                max_retries: a.max_retries,
                cell_timeout_s: a.cell_timeout,
            }));
            degraded |= degradation_exit(&outcome) != 0;
            outcome.runs
        } else {
            let (runs, traffic) =
                run_sampled_grid(&w, &grid, scfg, a.opts.grid_total, &a.opts, &store);
            eprintln!(
                "  [{}] store: {} hits, {} computed, {} rejected",
                w.name(),
                traffic.hits,
                traffic.misses,
                traffic.rejected
            );
            runs
        };
        if a.obs.enabled() {
            // Per-benchmark subdirectory: one time-series file per
            // engine, plus optional pipeline traces, per bench.
            let mut per_bench = a.obs.clone();
            per_bench.dir = a.obs.dir.as_ref().map(|d| d.join(bench));
            or_die(write_sampled_obs(&w, &grid, scfg, windows, &a.opts, &per_bench, &store));
        }
        let row: String = runs
            .iter()
            .map(|r| {
                format!(
                    "{:>13.2} ±{:>5.2}%",
                    r.estimate.ipc,
                    100.0 * r.estimate.rel_half_width
                )
            })
            .collect();
        println!("{:<10} {row}", w.name());
        for (slot, r) in per_engine.iter_mut().zip(&runs) {
            slot.1.push(r.estimate.ipc);
        }
    }
    let hmeans: String = per_engine
        .iter()
        .map(|(_, v)| format!("{:>13.2}        ", harmonic_mean(v)))
        .collect();
    println!("{:<10} {hmeans}", "Hmean");

    // The paper's Fig. 9 observation, restated for the sampled run:
    // where does the stream engine rank per benchmark?
    if let Some(stream_col) = a.engines.iter().position(|&k| k == EngineKind::Stream) {
        let mut rank_counts = vec![0usize; a.engines.len()];
        let n_benches = per_engine[0].1.len();
        for b in 0..n_benches {
            let mut row: Vec<(f64, usize)> =
                per_engine.iter().enumerate().map(|(i, (_, v))| (v[b], i)).collect();
            row.sort_by(|x, y| y.0.partial_cmp(&x.0).expect("finite IPC"));
            let rank = row.iter().position(|&(_, i)| i == stream_col).expect("ranked");
            rank_counts[rank] += 1;
        }
        println!(
            "\nstreams rank histogram over benchmarks (1st..{}th): {rank_counts:?}",
            a.engines.len()
        );
    }

    if store_is_temp {
        let _ = std::fs::remove_dir_all(&store_dir);
    } else {
        println!("store kept at {} ({} entries)", store_dir.display(), store.entries());
    }
    if degraded { ExitCode::from(2) } else { ExitCode::SUCCESS }
}
