//! Figure 9 at **paper-scale horizons**: per-benchmark sampled IPC for
//! the 8-wide optimized configuration, through the checkpoint store.
//!
//! Where `figure9` measures million-instruction windows, this binary
//! samples tens of millions of committed instructions per benchmark
//! (the long-horizon phased workload rides along by default — the one
//! bench where instruction footprints actually overflow the L1i) and
//! reports per-benchmark IPC with 95% confidence intervals. The engine
//! axis and the 8-wide width come from the shared `sfetch_bench::grid`
//! definition, so this binary can never drift from `figure9` or
//! `figure8_sampled`.
//!
//! Each benchmark keys its own checkpoints (per-workload trace
//! fingerprints), so one shared `--store DIR` serves the whole suite:
//! the first invocation banks every benchmark's fast-forward state,
//! every later one — any engine subset — starts warm.
//!
//! With `--procs N` each benchmark's windows × engines fan out across
//! OS processes under the fleet supervisor (`sfetch_fleet`): leased
//! cells, retry/backoff on worker crashes, resumable ledger. `--chaos`,
//! `--max-retries` and `--cell-timeout` behave as in `figure8_sampled`.
//! Exit status: 0 complete, 2 degraded (some cells permanently failed),
//! 1 error.
//!
//! With `--serve SOCKET` nothing is simulated locally: each benchmark
//! is submitted to a resident `sfetch-serve` daemon as its own request,
//! the streamed points are merged client-side, and the printed table is
//! byte-identical to a local run — while the daemon's warm store and
//! cell ledger dedupe the suite's work across all concurrent clients.
//!
//! ```text
//! cargo run --release -p sfetch-bench --bin figure9_sampled -- \
//!     [--benches gzip,gcc,crafty,twolf,phased] [--engines all|…] \
//!     [--grid-total N] [--grid-sample U,Wf,Wd,D[,Wm]] [--store DIR] \
//!     [--procs N] [--chaos SEED] [--max-retries N] [--cell-timeout S] \
//!     [--jobs N] [--legacy-scan] [--prefetch K] [--warm-bank] \
//!     [--front-pipeline legacy|engine] [--grid-prefetch shared|natural] \
//!     [--serve SOCKET] [--req ID] \
//!     [--obs-dir DIR] [--interval N] [--ptrace LO-HI]
//! ```
//!
//! With `--obs-dir DIR` each benchmark additionally writes its
//! cycle-accounting time series (and, with `--ptrace`, Konata pipeline
//! traces) into `DIR/<bench>/` — a pure side pass over the warm
//! checkpoint store that leaves the reported IPC numbers untouched.
//! (`--obs-dir` needs the local store, so it is ignored under
//! `--serve`.)

use std::process::ExitCode;

use sfetch_bench::driver::{
    finish_store, or_die, populate_store, resolve_store, run_fleet_cells, submit_and_collect,
    ArgDefaults, CommonArgs, ScheduleAxis,
};
use sfetch_bench::fleet_grid::maybe_run_fleet_child;
use sfetch_bench::grid::{cells, merge_grid, run_sampled_grid, CellRun, FIG9_WIDTH};
use sfetch_bench::obs::write_sampled_obs;
use sfetch_bench::workload_by_name;
use sfetch_core::metrics::harmonic_mean;
use sfetch_fetch::EngineKind;
use sfetch_sample::CheckpointStore;

/// Default benchmark set: the quick ablation subset plus the
/// long-horizon phased workload.
const DEFAULT_BENCHES: &str = "gzip,gcc,crafty,twolf,phased";

const AXIS: ScheduleAxis = ScheduleAxis::Grid;

fn main() -> ExitCode {
    maybe_run_fleet_child();
    let mut a = CommonArgs::parse(&ArgDefaults {
        benches: DEFAULT_BENCHES,
        engines: "all",
        widths: "8",
        procs: 1,
    });
    a.widths = vec![FIG9_WIDTH];
    let scfg = a.opts.grid_sample;
    let windows = scfg.windows(a.opts.grid_total);
    assert!(windows >= 1, "grid-total {} yields no windows", a.opts.grid_total);

    let serving = a.serve.is_some();
    let tmp = std::env::temp_dir().join(format!("sfetch-fig9s-{}", std::process::id()));
    let (store_dir, store_is_temp) = resolve_store(a.store.as_deref(), tmp.clone());
    // Under --serve the daemon owns the (warm) store; nothing local.
    let store = if serving {
        None
    } else {
        Some(or_die(CheckpointStore::open(&store_dir)).with_cap_bytes(a.opts.store_cap_bytes))
    };
    let grid = cells(&a.engines, &a.widths);
    let mut degraded = false;

    println!(
        "\nFigure 9 sampled: per-benchmark IPC [±rel 95% CI], {FIG9_WIDTH}-wide, optimized, \
         {} insts sampled per bench ({windows} windows)",
        a.opts.grid_total
    );
    println!(
        "{:<10} {}",
        "bench",
        a.engines
            .iter()
            .map(|k| format!("{:>22}", k.to_string()))
            .collect::<String>()
    );
    let mut per_engine: Vec<(EngineKind, Vec<f64>)> =
        a.engines.iter().map(|&k| (k, Vec::new())).collect();
    for bench in &a.benches.clone() {
        let runs: Vec<CellRun> = if let Some(sock) = &a.serve {
            // Resident path: one request per benchmark, merged from the
            // daemon's result stream.
            let req = a.request(bench, AXIS);
            let id = a
                .req_id
                .as_deref()
                .map(|base| format!("{base}-{bench}"))
                .unwrap_or_else(|| format!("fig9-{}-{bench}", std::process::id()));
            let out = or_die(submit_and_collect(sock, &id, &req, |_| {}));
            eprintln!(
                "  [{bench}] serve: {} computed, {} resumed, {} shared",
                out.computed, out.resumed, out.shared
            );
            degraded |= out.status != "complete";
            or_die(merge_grid(&grid, windows, &out.points, scfg.confidence))
        } else if a.procs > 1 {
            // Populate this benchmark's checkpoints once, then fan the
            // engine × window cells across fleet workers.
            let w = workload_by_name(bench);
            let store = store.as_ref().expect("local store");
            populate_store(&w, scfg, windows, store, &format!("  [{}] store", w.name()));
            let (runs, d) = or_die(run_fleet_cells(&a, AXIS, bench, &grid, &store_dir, a.procs));
            degraded |= d;
            runs
        } else {
            let w = workload_by_name(bench);
            let store = store.as_ref().expect("local store");
            let (runs, traffic) =
                run_sampled_grid(&w, &grid, scfg, a.opts.grid_total, &a.opts, store);
            eprintln!(
                "  [{}] store: {} hits, {} computed, {} rejected",
                w.name(),
                traffic.hits,
                traffic.misses,
                traffic.rejected
            );
            runs
        };
        if a.obs.enabled() && !serving {
            // Per-benchmark subdirectory: one time-series file per
            // engine, plus optional pipeline traces, per bench.
            let w = workload_by_name(bench);
            let mut per_bench = a.obs.clone();
            per_bench.dir = a.obs.dir.as_ref().map(|d| d.join(bench));
            let store = store.as_ref().expect("local store");
            or_die(write_sampled_obs(&w, &grid, scfg, windows, &a.opts, &per_bench, store));
        }
        let row: String = runs
            .iter()
            .map(|r| {
                format!(
                    "{:>13.2} ±{:>5.2}%",
                    r.estimate.ipc,
                    100.0 * r.estimate.rel_half_width
                )
            })
            .collect();
        println!("{:<10} {row}", bench);
        for (slot, r) in per_engine.iter_mut().zip(&runs) {
            slot.1.push(r.estimate.ipc);
        }
    }
    let hmeans: String = per_engine
        .iter()
        .map(|(_, v)| format!("{:>13.2}        ", harmonic_mean(v)))
        .collect();
    println!("{:<10} {hmeans}", "Hmean");

    // The paper's Fig. 9 observation, restated for the sampled run:
    // where does the stream engine rank per benchmark?
    if let Some(stream_col) = a.engines.iter().position(|&k| k == EngineKind::Stream) {
        let mut rank_counts = vec![0usize; a.engines.len()];
        let n_benches = per_engine[0].1.len();
        for b in 0..n_benches {
            let mut row: Vec<(f64, usize)> =
                per_engine.iter().enumerate().map(|(i, (_, v))| (v[b], i)).collect();
            row.sort_by(|x, y| y.0.partial_cmp(&x.0).expect("finite IPC"));
            let rank = row.iter().position(|&(_, i)| i == stream_col).expect("ranked");
            rank_counts[rank] += 1;
        }
        println!(
            "\nstreams rank histogram over benchmarks (1st..{}th): {rank_counts:?}",
            a.engines.len()
        );
    }

    if let Some(store) = &store {
        finish_store(store_is_temp, &store_dir, store, true);
    }
    if degraded { ExitCode::from(2) } else { ExitCode::SUCCESS }
}
