//! Workload characterization — the statistics behind §3.2's argument:
//! layout optimization drives ~80% of conditional *instances* not-taken
//! while only ~60% of *static* branches are strongly biased, which is the
//! gap the stream predictor exploits (it ignores every not-taken instance,
//! the FTB only never-taken branches).
//!
//! ```text
//! cargo run --release -p sfetch-bench --bin characterize [-- --inst N --jobs N]
//! ```

use sfetch_bench::HarnessOpts;
use sfetch_trace::{Executor, TraceStats};
use sfetch_workloads::{par_map, suite, LayoutChoice, Workload};

fn row(w: &Workload, layout: LayoutChoice, insts: u64) -> TraceStats {
    let image = w.image(layout);
    TraceStats::collect(Executor::new(w.cfg(), image, w.ref_seed()), insts)
}

fn main() {
    let opts = HarnessOpts::from_args();
    println!(
        "{:<9} {:>7} | {:>9} {:>9} | {:>9} {:>9} | {:>8} {:>8} | {:>7}",
        "bench", "kinsts", "NT% base", "NT% opt", "strm base", "strm opt", "blk base", "blk opt", "static%"
    );
    let mut agg_nt = (0.0, 0.0);
    let mut agg_stream = (0.0, 0.0);
    let mut n = 0.0;
    // Build the workloads and collect both layouts' trace statistics in
    // parallel; print serially in suite order.
    let rows = par_map(&suite::all_specs(), opts.jobs, |_, spec| {
        let w = suite::build(spec.clone());
        let base = row(&w, LayoutChoice::Base, opts.insts);
        let opt = row(&w, LayoutChoice::Optimized, opts.insts);
        (w, base, opt)
    });
    for (w, base, opt) in rows {
        // Static characterization: fraction of static conditionals that are
        // strongly biased (>=90% one way) by their behaviour model.
        let strong = w
            .cfg()
            .cond_branches()
            .filter(|(_, b)| b.is_strongly_biased(0.9))
            .count() as f64
            / w.cfg().num_cond_branches().max(1) as f64;
        println!(
            "{:<9} {:>7} | {:>8.1}% {:>8.1}% | {:>9.1} {:>9.1} | {:>8.1} {:>8.1} | {:>6.0}%",
            w.name(),
            w.image(LayoutChoice::Base).len_insts() / 1000,
            base.cond_not_taken_ratio() * 100.0,
            opt.cond_not_taken_ratio() * 100.0,
            base.streams.mean_len(),
            opt.streams.mean_len(),
            base.mean_block_len(),
            opt.mean_block_len(),
            strong * 100.0,
        );
        agg_nt.0 += base.cond_not_taken_ratio();
        agg_nt.1 += opt.cond_not_taken_ratio();
        agg_stream.0 += base.streams.mean_len();
        agg_stream.1 += opt.streams.mean_len();
        n += 1.0;
    }
    println!(
        "\nsuite means: not-taken instances {:.1}% -> {:.1}% (paper: ~80% optimized); \
         mean stream {:.1} -> {:.1} insts (paper: 16+ / 20+ optimized)",
        100.0 * agg_nt.0 / n,
        100.0 * agg_nt.1 / n,
        agg_stream.0 / n,
        agg_stream.1 / n,
    );
}
