//! Ablation A (§3.2 design choices): the cascaded next stream predictor
//! versus a single-level, address-indexed table of the same total budget.
//!
//! The paper credits the path-indexed second level (plus hysteresis) with
//! holding *overlapping streams* — this ablation quantifies that choice.
//!
//! ```text
//! cargo run --release -p sfetch-bench --bin ablation_predictor [-- --inst N]
//! ```

use sfetch_bench::{run_custom, HarnessOpts, ABLATION_BENCHES};
use sfetch_core::metrics::harmonic_mean;
use sfetch_fetch::StreamEngine;
use sfetch_mem::MemoryConfig;
use sfetch_predictors::StreamPredictorConfig;
use sfetch_workloads::{suite, LayoutChoice};

fn main() {
    let opts = HarnessOpts::from_args();
    let width = 8usize;
    let workloads: Vec<_> = ABLATION_BENCHES
        .iter()
        .map(|n| suite::build(suite::by_name(n).expect("known bench")))
        .collect();

    println!("stream predictor organization, {width}-wide, optimized layout");
    println!("{:<22} {:>10} {:>12} {:>12}", "organization", "IPC(hm)", "mispred", "2nd-lvl hits");
    for (name, config) in [
        ("cascaded (Table 2)", StreamPredictorConfig::table2()),
        ("single-level", StreamPredictorConfig::single_level()),
    ] {
        let mut ipcs = Vec::new();
        let mut mis = Vec::new();
        let mut second = Vec::new();
        for w in &workloads {
            let engine = Box::new(StreamEngine::new(
                width,
                w.image(LayoutChoice::Optimized).entry(),
                config,
                4,
                8,
            ));
            let s = run_custom(
                w,
                LayoutChoice::Optimized,
                width,
                MemoryConfig::table2(width),
                engine,
                opts,
            );
            ipcs.push(s.ipc());
            mis.push(s.mispred_rate() * 100.0);
            second.push(s.engine.predictor_hits as f64);
        }
        println!(
            "{:<22} {:>10.3} {:>11.2}% {:>12.0}",
            name,
            harmonic_mean(&ipcs),
            mis.iter().sum::<f64>() / mis.len() as f64,
            second.iter().sum::<f64>() / second.len() as f64,
        );
    }
}
