//! Ablation A (§3.2 design choices): the cascaded next stream predictor
//! versus a single-level, address-indexed table of the same total budget.
//!
//! The paper credits the path-indexed second level (plus hysteresis) with
//! holding *overlapping streams* — this ablation quantifies that choice.
//!
//! ```text
//! cargo run --release -p sfetch-bench --bin ablation_predictor [-- --inst N --jobs N]
//! ```

use sfetch_bench::{ablation_workloads, run_custom_sweep, HarnessOpts};
use sfetch_core::metrics::harmonic_mean;
use sfetch_fetch::StreamEngine;
use sfetch_mem::MemoryConfig;
use sfetch_predictors::StreamPredictorConfig;
use sfetch_workloads::LayoutChoice;

fn main() {
    let opts = HarnessOpts::from_args();
    let width = 8usize;
    let workloads = ablation_workloads(opts);

    println!("stream predictor organization, {width}-wide, optimized layout");
    println!("{:<22} {:>10} {:>12} {:>12}", "organization", "IPC(hm)", "mispred", "2nd-lvl hits");
    for (name, config) in [
        ("cascaded (Table 2)", StreamPredictorConfig::table2()),
        ("single-level", StreamPredictorConfig::single_level()),
    ] {
        let stats = run_custom_sweep(&workloads, LayoutChoice::Optimized, width, opts, |w| {
            let engine = Box::new(StreamEngine::new(
                width,
                w.image(LayoutChoice::Optimized).entry(),
                config,
                4,
                8,
            ));
            (MemoryConfig::table2(width), engine as _)
        });
        let ipcs: Vec<f64> = stats.iter().map(|s| s.ipc()).collect();
        let mis: Vec<f64> = stats.iter().map(|s| s.mispred_rate() * 100.0).collect();
        let second: Vec<f64> = stats.iter().map(|s| s.engine.predictor_hits as f64).collect();
        println!(
            "{:<22} {:>10.3} {:>11.2}% {:>12.0}",
            name,
            harmonic_mean(&ipcs),
            mis.iter().sum::<f64>() / mis.len() as f64,
            second.iter().sum::<f64>() / second.len() as f64,
        );
    }
}
