//! Figure 8 at **paper-scale horizons**: the engines × widths grid on
//! the long-horizon phased workload, measured by SMARTS-style sampling
//! through the reusable checkpoint store.
//!
//! The classic `figure8` binary measures million-instruction windows on
//! the L1i-resident synthetic suite; this one runs the same grid (the
//! axes come from the shared `sfetch_bench::grid` definition, so the
//! two binaries can never drift apart) on the ~330KB-footprint phased
//! workload over tens of millions of instructions — the regime where
//! the paper's fetch-architecture spread actually opens up. Every
//! window resumes from the checkpoint store: the first run pays the
//! architectural fast-forward once, every later run (any engine or
//! width) starts directly at functional warming.
//!
//! ```text
//! cargo run --release -p sfetch-bench --bin figure8_sampled -- \
//!     [--bench phased] [--grid-total N] [--grid-sample U,Wf,Wd,D[,Wm]] \
//!     [--engines all|…] [--widths all|…] [--store DIR] \
//!     [--procs N] [--verify] [--chaos SEED] [--max-retries N] \
//!     [--cell-timeout SECS] [--no-fleet] [--spread-floor F] \
//!     [--jobs N] [--legacy-scan] [--prefetch K] \
//!     [--front-pipeline legacy|engine] [--grid-prefetch shared|natural] \
//!     [--obs-dir DIR] [--interval N] [--ptrace LO-HI]
//! ```
//!
//! With `--obs-dir DIR` the run additionally emits the observability
//! artifacts (see `sfetch_bench::obs`): a per-cell cycle-accounting
//! time series (`ts_<engine>_<width>.jsonl`, one row per `--interval N`
//! committed instructions; 0 = per window) and, with `--ptrace LO-HI`,
//! a Konata pipeline trace per engine. Sinks are side passes through
//! the warm checkpoint store — the measured grid stays bit-identical
//! with them on or off.
//!
//! With `--procs N` the grid — windows × engines × widths — fans out
//! across OS processes through the store under the **fleet supervisor**
//! (`sfetch_fleet`): cells are leased from a persistent ledger, crashed
//! or hung workers are retried with backoff, and a killed parent
//! resumes mid-grid on re-invocation. `--chaos SEED` injects
//! deterministic worker faults to prove the merged output stays
//! byte-identical; `--no-fleet` falls back to the plain one-shot
//! fan-out. `--verify` reruns every cell through a **storeless** live
//! sampler and asserts the merged result is bit-identical, so the store
//! machinery itself is under test. With `--store DIR` checkpoints
//! persist across invocations. Exit status: 0 complete, 2 degraded,
//! 1 error.
//!
//! Per-point output is the sampled IPC with its 95% confidence
//! interval; the closing lines report the 8-wide engine spread against
//! the paper's ~3.5× (Fig. 8c) and the store traffic (how much
//! fast-forward work was reused vs computed).
//!
//! By default each cell simulates its engine's **own** front-pipeline
//! model and natural prefetch policy (`--front-pipeline engine
//! --grid-prefetch natural`) — the Fig. 8 calibration this binary
//! exists to measure; `--front-pipeline legacy --grid-prefetch shared`
//! reproduces the historical shared-front grid bit-for-bit.
//! `--spread-floor F` makes the run fail (exit 1) when the 8-wide
//! engine spread falls below `F` — the CI calibration leg's guard.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use sfetch_bench::fleet_grid::{
    degradation_exit, maybe_run_fleet_child, run_fleet_grid, FleetGridSpec,
};
use sfetch_bench::grid::{
    cells, engine_key, merge_grid, parse_engines, parse_widths, print_grid_table,
    run_sampled_grid, shard_file_text, spawn_shards, spread_at_width, verify_merged, CellRun,
};
use sfetch_bench::obs::{write_sampled_obs, ObsOpts};
use sfetch_bench::{workload_by_name, HarnessOpts};
use sfetch_fetch::EngineKind;
use sfetch_sample::{CheckpointStore, ShardSpec, StoredSampler};
use sfetch_workloads::LayoutChoice;

/// Exits with a readable message instead of a panic backtrace.
fn or_die<T, E: std::fmt::Display>(r: Result<T, E>) -> T {
    r.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    })
}

struct Args {
    opts: HarnessOpts,
    bench: String,
    engines: Vec<EngineKind>,
    widths: Vec<usize>,
    procs: usize,
    verify: bool,
    shard: Option<ShardSpec>,
    out: Option<String>,
    store: Option<String>,
    chaos: Option<u64>,
    max_retries: u32,
    cell_timeout: Option<u64>,
    no_fleet: bool,
    spread_floor: Option<f64>,
    obs: ObsOpts,
}

fn parse_args() -> Args {
    let mut bench = "phased".to_owned();
    let mut engines = "all".to_owned();
    let mut widths = "all".to_owned();
    let mut procs = 1usize;
    let mut verify = false;
    let mut shard = None;
    let mut out = None;
    let mut store = None;
    let mut chaos = None;
    let mut max_retries = 3u32;
    let mut cell_timeout = None;
    let mut no_fleet = false;
    let mut spread_floor = None;
    let mut rest: Vec<String> = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let take = |i: usize, what: &str| -> String {
        args.get(i + 1).unwrap_or_else(|| panic!("{what} requires a value")).clone()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => {
                bench = take(i, "--bench");
                i += 2;
            }
            "--engines" => {
                engines = take(i, "--engines");
                i += 2;
            }
            "--widths" => {
                widths = take(i, "--widths");
                i += 2;
            }
            "--procs" => {
                procs = take(i, "--procs").parse().expect("--procs requires a number >= 1");
                i += 2;
            }
            "--verify" => {
                verify = true;
                i += 1;
            }
            "--shard" => {
                shard = Some(ShardSpec::parse(&take(i, "--shard")).expect("bad --shard"));
                i += 2;
            }
            "--out" => {
                out = Some(take(i, "--out"));
                i += 2;
            }
            "--store" => {
                store = Some(take(i, "--store"));
                i += 2;
            }
            "--chaos" => {
                chaos = Some(take(i, "--chaos").parse().expect("--chaos requires a seed"));
                i += 2;
            }
            "--max-retries" => {
                max_retries =
                    take(i, "--max-retries").parse().expect("--max-retries requires a number");
                i += 2;
            }
            "--cell-timeout" => {
                cell_timeout = Some(
                    take(i, "--cell-timeout").parse().expect("--cell-timeout requires seconds"),
                );
                i += 2;
            }
            "--no-fleet" => {
                no_fleet = true;
                i += 1;
            }
            "--spread-floor" => {
                spread_floor = Some(
                    take(i, "--spread-floor").parse().expect("--spread-floor requires a ratio"),
                );
                i += 2;
            }
            flag @ ("--legacy-scan" | "--long") => {
                rest.push(flag.to_owned());
                i += 1;
            }
            other => {
                rest.push(other.to_owned());
                rest.push(take(i, other));
                i += 2;
            }
        }
    }
    let obs = ObsOpts::extract(&mut rest);
    let opts = HarnessOpts::from_arg_list(&rest);
    assert!(procs >= 1, "--procs must be >= 1");
    Args {
        opts,
        bench,
        engines: or_die(parse_engines(&engines)),
        widths: or_die(parse_widths(&widths)),
        procs,
        verify,
        shard,
        out,
        store,
        chaos,
        max_retries,
        cell_timeout,
        no_fleet,
        spread_floor,
        obs,
    }
}

fn run_child(a: &Args, shard: ShardSpec) -> ExitCode {
    let w = workload_by_name(&a.bench);
    let grid = cells(&a.engines, &a.widths);
    let windows = a.opts.grid_sample.windows(a.opts.grid_total);
    let Some(store_path) = a.store.as_deref() else {
        eprintln!("error: shard child needs --store");
        return ExitCode::FAILURE;
    };
    let store = or_die(CheckpointStore::open(store_path));
    let text = shard_file_text(&w, &grid, windows, a.opts.grid_sample, &a.opts, &store, shard);
    match &a.out {
        Some(path) => {
            or_die(sfetch_bench::grid::write_shard_atomic(std::path::Path::new(path), &text))
        }
        None => print!("{}", sfetch_fleet::seal(&text)),
    }
    ExitCode::SUCCESS
}

fn print_panels(a: &Args, runs: &[CellRun]) {
    for (panel, &width) in a.widths.iter().enumerate() {
        println!(
            "\nFigure 8({}) sampled: {width}-wide, optimized layout, IPC [95% CI]",
            (b'a' + panel as u8) as char
        );
        for run in runs.iter().filter(|r| r.cell.width == width) {
            println!(
                "  {:<18} {:>7.3}  [{:.3}, {:.3}]  ±{:.2}%",
                run.cell.engine.to_string(),
                run.estimate.ipc,
                run.estimate.ipc_lo,
                run.estimate.ipc_hi,
                100.0 * run.estimate.rel_half_width
            );
        }
    }
    if let Some((min, max, ratio)) = spread_at_width(runs, 8) {
        println!(
            "\n8-wide engine spread: {max:.3} / {min:.3} = {ratio:.2}× (paper Fig. 8c: ~3.5× \
             across its engine set)"
        );
    }
}

fn run_parent(a: &Args) -> ExitCode {
    let w = workload_by_name(&a.bench);
    let grid = cells(&a.engines, &a.widths);
    let scfg = a.opts.grid_sample;
    let windows = scfg.windows(a.opts.grid_total);
    assert!(windows >= 1, "grid-total {} yields no windows", a.opts.grid_total);
    eprintln!(
        "{}: sampled Fig. 8 grid — {} cells × {} windows over {} insts",
        w.name(),
        grid.len(),
        windows,
        a.opts.grid_total
    );

    let tmp = std::env::temp_dir().join(format!("sfetch-fig8s-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create temp dir");
    let (store_dir, store_is_temp) = match &a.store {
        Some(dir) => (PathBuf::from(dir), false),
        None => (tmp.join("store"), true),
    };
    let store = or_die(CheckpointStore::open(&store_dir));

    let mut degraded = false;
    let runs = if a.procs > 1 {
        // Populate once, then fan the flattened grid across processes.
        let img = w.image(LayoutChoice::Optimized);
        let fp = w.fingerprint(LayoutChoice::Optimized);
        let mut populate = StoredSampler::new(img, fp, w.ref_seed(), scfg, &store);
        let computed = populate.populate(windows);
        eprintln!(
            "store {}: {windows} windows ready ({computed} computed, {} loaded warm)",
            store_dir.display(),
            populate.stats().hits
        );
        let procs = a.procs.min((grid.len() as u64 * windows) as usize).max(1);
        if a.no_fleet {
            let all = or_die(spawn_shards(procs, &tmp, |i, out| {
                let mut args: Vec<std::ffi::OsString> = vec![
                    "--bench".into(),
                    a.bench.clone().into(),
                    "--engines".into(),
                    a.engines.iter().map(|&k| engine_key(k)).collect::<Vec<_>>().join(",").into(),
                    "--widths".into(),
                    a.widths.iter().map(|w| w.to_string()).collect::<Vec<_>>().join(",").into(),
                    "--grid-total".into(),
                    a.opts.grid_total.to_string().into(),
                    "--grid-sample".into(),
                    a.opts.grid_sample.to_spec().into(),
                    "--jobs".into(),
                    a.opts.jobs.to_string().into(),
                    "--front-pipeline".into(),
                    a.opts.front.as_str().into(),
                    "--grid-prefetch".into(),
                    a.opts.grid_prefetch.as_str().into(),
                ];
                if a.opts.legacy_scan {
                    args.push("--legacy-scan".into());
                }
                if a.opts.prefetch.mshrs > 0 {
                    args.extend(["--prefetch".into(), a.opts.prefetch.kind.to_string().into()]);
                    args.extend(["--mshrs".into(), a.opts.prefetch.mshrs.to_string().into()]);
                }
                args.extend(["--no-fleet".into(), "--shard".into(), format!("{i}/{procs}").into()]);
                args.extend(["--store".into(), store_dir.clone().into()]);
                args.extend(["--out".into(), out.as_os_str().to_owned()]);
                args
            }));
            or_die(merge_grid(&grid, windows, &all, scfg.confidence))
        } else {
            let outcome = or_die(run_fleet_grid(&FleetGridSpec {
                bench: &a.bench,
                grid: &grid,
                scfg,
                total: a.opts.grid_total,
                opts: &a.opts,
                store_dir: &store_dir,
                procs,
                chaos: a.chaos,
                max_retries: a.max_retries,
                cell_timeout_s: a.cell_timeout,
            }));
            degraded = degradation_exit(&outcome) != 0;
            outcome.runs
        }
    } else {
        let (runs, traffic) =
            run_sampled_grid(&w, &grid, scfg, a.opts.grid_total, &a.opts, &store);
        eprintln!(
            "store traffic: {} hits, {} computed, {} rejected",
            traffic.hits, traffic.misses, traffic.rejected
        );
        runs
    };

    print_grid_table(&runs);
    print_panels(a, &runs);

    if a.obs.enabled() {
        or_die(write_sampled_obs(&w, &grid, scfg, windows, &a.opts, &a.obs, &store));
    }

    if a.verify && !degraded {
        eprintln!("\nverifying merged grid against a storeless in-process rerun…");
        verify_merged(&w, &runs, scfg, &a.opts, windows);
        println!(
            "verify OK: store-backed grid is bit-identical to a storeless single-process run"
        );
    } else if a.verify {
        eprintln!("verify skipped: degraded result has incomplete cells");
    }

    if store_is_temp {
        let _ = std::fs::remove_dir_all(&store_dir);
    } else {
        println!("store kept at {} ({} entries)", store_dir.display(), store.entries());
    }
    let _ = std::fs::remove_dir_all(&tmp);

    let mut floor_failed = false;
    if let Some(floor) = a.spread_floor {
        match spread_at_width(&runs, 8) {
            Some((_, _, ratio)) if ratio >= floor => {
                println!("spread floor OK: {ratio:.3}× >= {floor:.3}×");
            }
            Some((_, _, ratio)) => {
                eprintln!(
                    "error: 8-wide engine spread {ratio:.3}× is below the required floor \
                     {floor:.3}× — the per-engine calibration regressed"
                );
                floor_failed = true;
            }
            None => {
                eprintln!("error: --spread-floor needs >= 2 engines at width 8");
                floor_failed = true;
            }
        }
    }
    let _ = std::io::stdout().flush();
    if floor_failed {
        ExitCode::FAILURE
    } else if degraded {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    maybe_run_fleet_child();
    let a = parse_args();
    match a.shard {
        Some(spec) => run_child(&a, spec),
        None => run_parent(&a),
    }
}
