//! Figure 8 at **paper-scale horizons**: the engines × widths grid on
//! the long-horizon phased workload, measured by SMARTS-style sampling
//! through the reusable checkpoint store.
//!
//! The classic `figure8` binary measures million-instruction windows on
//! the L1i-resident synthetic suite; this one runs the same grid (the
//! axes come from the shared `sfetch_bench::grid` definition, so the
//! two binaries can never drift apart) on the ~330KB-footprint phased
//! workload over tens of millions of instructions — the regime where
//! the paper's fetch-architecture spread actually opens up. Every
//! window resumes from the checkpoint store: the first run pays the
//! architectural fast-forward once, every later run (any engine or
//! width) starts directly at functional warming.
//!
//! ```text
//! cargo run --release -p sfetch-bench --bin figure8_sampled -- \
//!     [--bench phased] [--grid-total N] [--grid-sample U,Wf,Wd,D[,Wm]] \
//!     [--engines all|…] [--widths all|…] [--store DIR] \
//!     [--procs N] [--verify] [--chaos SEED] [--max-retries N] \
//!     [--cell-timeout SECS] [--no-fleet] [--spread-floor F] \
//!     [--jobs N] [--batch N] [--store-cap-bytes N] \
//!     [--legacy-scan] [--prefetch K] [--warm-bank] \
//!     [--front-pipeline legacy|engine] [--grid-prefetch shared|natural] \
//!     [--serve SOCKET] [--req ID] \
//!     [--obs-dir DIR] [--interval N] [--ptrace LO-HI]
//! ```
//!
//! With `--obs-dir DIR` the run additionally emits the observability
//! artifacts (see `sfetch_bench::obs`): a per-cell cycle-accounting
//! time series (`ts_<engine>_<width>.jsonl`, one row per `--interval N`
//! committed instructions; 0 = per window) and, with `--ptrace LO-HI`,
//! a Konata pipeline trace per engine. Sinks are side passes through
//! the warm checkpoint store — the measured grid stays bit-identical
//! with them on or off.
//!
//! With `--procs N` the grid — windows × engines × widths — fans out
//! across OS processes through the store under the **fleet supervisor**
//! (`sfetch_fleet`): cells are leased from a persistent ledger, crashed
//! or hung workers are retried with backoff, and a killed parent
//! resumes mid-grid on re-invocation. `--chaos SEED` injects
//! deterministic worker faults to prove the merged output stays
//! byte-identical; `--no-fleet` falls back to the plain one-shot
//! fan-out. `--verify` reruns every cell through a **storeless** live
//! sampler and asserts the merged result is bit-identical, so the store
//! machinery itself is under test. With `--store DIR` checkpoints
//! persist across invocations. Exit status: 0 complete, 2 degraded,
//! 1 error.
//!
//! With `--serve SOCKET` the grid is not simulated locally at all: the
//! request is submitted to a resident `sfetch-serve` daemon, the
//! per-window points are collected from its result stream, and the
//! identical merge renders the identical table — byte-for-byte the
//! one-shot stdout, while the daemon's warm store and ledger dedupe the
//! work across every concurrent client. `--verify` still works (the
//! oracle is storeless), which puts the entire daemon path under test.
//!
//! Per-point output is the sampled IPC with its 95% confidence
//! interval; the closing lines report the 8-wide engine spread against
//! the paper's ~3.5× (Fig. 8c) and the store traffic (how much
//! fast-forward work was reused vs computed).
//!
//! By default each cell simulates its engine's **own** front-pipeline
//! model and natural prefetch policy (`--front-pipeline engine
//! --grid-prefetch natural`) — the Fig. 8 calibration this binary
//! exists to measure; `--front-pipeline legacy --grid-prefetch shared`
//! reproduces the historical shared-front grid bit-for-bit.
//! `--spread-floor F` makes the run fail (exit 1) when the 8-wide
//! engine spread falls below `F` — the CI calibration leg's guard.

use std::io::Write as _;
use std::path::Path;
use std::process::ExitCode;

use sfetch_bench::driver::{
    finish_store, or_die, populate_store, resolve_store, run_fleet_cells, run_no_fleet,
    run_shard_child, submit_and_collect, ArgDefaults, CommonArgs, ScheduleAxis, ServeEvent,
};
use sfetch_bench::fleet_grid::maybe_run_fleet_child;
use sfetch_bench::grid::{
    cells, merge_grid, print_grid_table, run_sampled_grid, spread_at_width, verify_merged, CellRun,
};
use sfetch_bench::obs::write_sampled_obs;
use sfetch_bench::workload_by_name;
use sfetch_sample::CheckpointStore;

const AXIS: ScheduleAxis = ScheduleAxis::Grid;

fn print_panels(a: &CommonArgs, runs: &[CellRun]) {
    for (panel, &width) in a.widths.iter().enumerate() {
        println!(
            "\nFigure 8({}) sampled: {width}-wide, optimized layout, IPC [95% CI]",
            (b'a' + panel as u8) as char
        );
        for run in runs.iter().filter(|r| r.cell.width == width) {
            println!(
                "  {:<18} {:>7.3}  [{:.3}, {:.3}]  ±{:.2}%",
                run.cell.engine.to_string(),
                run.estimate.ipc,
                run.estimate.ipc_lo,
                run.estimate.ipc_hi,
                100.0 * run.estimate.rel_half_width
            );
        }
    }
    if let Some((min, max, ratio)) = spread_at_width(runs, 8) {
        println!(
            "\n8-wide engine spread: {max:.3} / {min:.3} = {ratio:.2}× (paper Fig. 8c: ~3.5× \
             across its engine set)"
        );
    }
}

/// `--spread-floor` guard; returns whether the floor failed.
fn check_spread_floor(a: &CommonArgs, runs: &[CellRun]) -> bool {
    let Some(floor) = a.spread_floor else {
        return false;
    };
    match spread_at_width(runs, 8) {
        Some((_, _, ratio)) if ratio >= floor => {
            println!("spread floor OK: {ratio:.3}× >= {floor:.3}×");
            false
        }
        Some((_, _, ratio)) => {
            eprintln!(
                "error: 8-wide engine spread {ratio:.3}× is below the required floor \
                 {floor:.3}× — the per-engine calibration regressed"
            );
            true
        }
        None => {
            eprintln!("error: --spread-floor needs >= 2 engines at width 8");
            true
        }
    }
}

/// `--verify` leg — the oracle is **storeless**, so it validates the
/// local store path and the daemon stream path alike.
fn maybe_verify(a: &CommonArgs, runs: &[CellRun], windows: u64, degraded: bool) {
    if a.verify && !degraded {
        eprintln!("\nverifying merged grid against a storeless in-process rerun…");
        let w = workload_by_name(a.bench());
        verify_merged(&w, runs, AXIS.scfg(&a.opts), &a.opts, windows);
        println!("verify OK: store-backed grid is bit-identical to a storeless single-process run");
    } else if a.verify {
        eprintln!("verify skipped: degraded result has incomplete cells");
    }
}

fn exit_for(floor_failed: bool, degraded: bool) -> ExitCode {
    let _ = std::io::stdout().flush();
    if floor_failed {
        ExitCode::FAILURE
    } else if degraded {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

/// `--serve SOCKET`: submit to the resident daemon, merge the streamed
/// points client-side, render the identical table.
fn run_serve(a: &CommonArgs, sock: &Path) -> ExitCode {
    let req = a.request(a.bench(), AXIS);
    let grid = req.grid();
    let windows = req.windows();
    let id = a.req_id.clone().unwrap_or_else(|| format!("fig8-{}", std::process::id()));
    eprintln!(
        "serve: submitting {id} ({} cells × {windows} windows) to {}",
        grid.len(),
        sock.display()
    );
    let out = or_die(submit_and_collect(sock, &id, &req, |line| {
        if let Ok(ServeEvent::Cell { cell, resumed, .. }) = ServeEvent::parse(line) {
            eprintln!("  [{id}] cell {cell} {}", if resumed { "resumed" } else { "done" });
        }
    }));
    let degraded = out.status != "complete";
    let runs = or_die(merge_grid(&grid, windows, &out.points, req.scfg.confidence));
    print_grid_table(&runs);
    print_panels(a, &runs);
    eprintln!(
        "serve: {} cells computed, {} resumed, {} shared with concurrent requests",
        out.computed, out.resumed, out.shared
    );
    maybe_verify(a, &runs, windows, degraded);
    let floor_failed = check_spread_floor(a, &runs);
    exit_for(floor_failed, degraded)
}

fn run_parent(a: &CommonArgs) -> ExitCode {
    let w = workload_by_name(a.bench());
    let grid = cells(&a.engines, &a.widths);
    let scfg = AXIS.scfg(&a.opts);
    let windows = scfg.windows(a.opts.grid_total);
    assert!(windows >= 1, "grid-total {} yields no windows", a.opts.grid_total);
    eprintln!(
        "{}: sampled Fig. 8 grid — {} cells × {} windows over {} insts",
        w.name(),
        grid.len(),
        windows,
        a.opts.grid_total
    );

    let tmp = std::env::temp_dir().join(format!("sfetch-fig8s-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create temp dir");
    let (store_dir, store_is_temp) = resolve_store(a.store.as_deref(), tmp.join("store"));
    let store = or_die(CheckpointStore::open(&store_dir)).with_cap_bytes(a.opts.store_cap_bytes);

    let mut degraded = false;
    let runs = if a.procs > 1 {
        // Populate once, then fan the flattened grid across processes.
        populate_store(&w, scfg, windows, &store, &format!("store {}", store_dir.display()));
        let procs = a.procs.min((grid.len() as u64 * windows) as usize).max(1);
        if a.no_fleet {
            or_die(run_no_fleet(a, AXIS, a.bench(), &grid, windows, procs, &tmp, &store_dir))
        } else {
            let (runs, d) = or_die(run_fleet_cells(a, AXIS, a.bench(), &grid, &store_dir, procs));
            degraded = d;
            runs
        }
    } else {
        let (runs, traffic) = run_sampled_grid(&w, &grid, scfg, a.opts.grid_total, &a.opts, &store);
        eprintln!(
            "store traffic: {} hits, {} computed, {} rejected",
            traffic.hits, traffic.misses, traffic.rejected
        );
        runs
    };

    print_grid_table(&runs);
    print_panels(a, &runs);

    if a.obs.enabled() {
        or_die(write_sampled_obs(&w, &grid, scfg, windows, &a.opts, &a.obs, &store));
    }

    maybe_verify(a, &runs, windows, degraded);

    finish_store(store_is_temp, &store_dir, &store, true);
    let _ = std::fs::remove_dir_all(&tmp);

    let floor_failed = check_spread_floor(a, &runs);
    exit_for(floor_failed, degraded)
}

fn main() -> ExitCode {
    maybe_run_fleet_child();
    let a = CommonArgs::parse(&ArgDefaults {
        benches: "phased",
        engines: "all",
        widths: "all",
        procs: 1,
    });
    if let Some(sock) = a.serve.clone() {
        return run_serve(&a, &sock);
    }
    match a.shard {
        Some(spec) => run_shard_child(&a, AXIS, spec),
        None => run_parent(&a),
    }
}
