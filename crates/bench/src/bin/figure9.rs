//! Figure 9 reproduction: per-benchmark IPC for the 8-wide processor with
//! layout-optimized code, plus the harmonic mean ("Hmean" bar).
//!
//! ```text
//! cargo run --release -p sfetch-bench --bin figure9 [-- --inst N --warmup N]
//! ```

use sfetch_bench::grid::{grid_engines, FIG9_WIDTH};
use sfetch_bench::{run_grid, HarnessOpts, RunPoint};
use sfetch_core::metrics::harmonic_mean;
use sfetch_fetch::EngineKind;
use sfetch_workloads::{LayoutChoice, Suite};

fn main() {
    let opts = HarnessOpts::from_args();
    eprintln!("generating suite…");
    let suite = Suite::build_all();
    // Axes come from the shared grid definition (`sfetch_bench::grid`),
    // so this binary and `figure9_sampled` always sweep the same grid.
    let points =
        run_grid(&suite, &[FIG9_WIDTH], &[LayoutChoice::Optimized], &grid_engines(), opts);

    let ipc = |bench: &str, kind: EngineKind| -> f64 {
        points
            .iter()
            .find(|p: &&RunPoint| p.bench == bench && p.engine == kind)
            .map(|p| p.stats.ipc())
            .unwrap_or(0.0)
    };

    println!("\nFigure 9: per-benchmark IPC, 8-wide, optimized codes");
    println!(
        "{:<10} {:>14} {:>16} {:>9} {:>13}",
        "bench", "EV8+2bcgskew", "FTB+perceptron", "Streams", "Tcache+Tpred"
    );
    let mut per_engine: Vec<(EngineKind, Vec<f64>)> =
        EngineKind::ALL.iter().map(|&k| (k, Vec::new())).collect();
    for w in suite.workloads() {
        let row: Vec<f64> = EngineKind::ALL.iter().map(|&k| ipc(w.name(), k)).collect();
        for (slot, v) in per_engine.iter_mut().zip(&row) {
            slot.1.push(*v);
        }
        println!(
            "{:<10} {:>14.2} {:>16.2} {:>9.2} {:>13.2}",
            w.name(),
            row[0],
            row[1],
            row[2],
            row[3]
        );
    }
    let hmeans: Vec<f64> = per_engine.iter().map(|(_, v)| harmonic_mean(v)).collect();
    println!(
        "{:<10} {:>14.2} {:>16.2} {:>9.2} {:>13.2}",
        "Hmean", hmeans[0], hmeans[1], hmeans[2], hmeans[3]
    );

    // Paper observation: streams best-or-second-best in almost all
    // benchmarks (best in 5, at least second in all but one).
    let mut stream_rank_counts = [0usize; 4];
    for w in suite.workloads() {
        let mut row: Vec<(f64, usize)> = EngineKind::ALL
            .iter()
            .enumerate()
            .map(|(i, &k)| (ipc(w.name(), k), i))
            .collect();
        row.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite IPC"));
        let stream_idx = EngineKind::ALL
            .iter()
            .position(|&k| k == EngineKind::Stream)
            .expect("streams present");
        let rank = row.iter().position(|&(_, i)| i == stream_idx).expect("ranked");
        stream_rank_counts[rank] += 1;
    }
    println!(
        "\nstreams rank histogram over benchmarks (1st/2nd/3rd/4th): {:?} (paper: best in 5, \
         at least 2nd in all but one)",
        stream_rank_counts
    );
}
