//! Ablation B (§3.3): FTQ depth sweep for the stream front-end.
//!
//! The FTQ lets the predictor run ahead of the I-cache; the paper uses 4
//! entries (Table 2) and notes each stream entry covers many instructions,
//! so little depth is needed. We sweep 1–16 entries.
//!
//! ```text
//! cargo run --release -p sfetch-bench --bin ablation_ftq [-- --inst N --jobs N]
//! ```

use sfetch_bench::{ablation_workloads, run_custom_sweep, HarnessOpts};
use sfetch_core::metrics::harmonic_mean;
use sfetch_fetch::StreamEngine;
use sfetch_mem::MemoryConfig;
use sfetch_predictors::StreamPredictorConfig;
use sfetch_workloads::LayoutChoice;

fn main() {
    let opts = HarnessOpts::from_args();
    let width = 8usize;
    let workloads = ablation_workloads(opts);

    println!("FTQ depth sweep, stream engine, {width}-wide, optimized layout");
    println!("{:<10} {:>10} {:>10}", "entries", "IPC(hm)", "fetchIPC");
    for entries in [1usize, 2, 4, 8, 16] {
        let stats = run_custom_sweep(&workloads, LayoutChoice::Optimized, width, opts, |w| {
            let engine = Box::new(StreamEngine::new(
                width,
                w.image(LayoutChoice::Optimized).entry(),
                StreamPredictorConfig::table2(),
                entries,
                8,
            ));
            (MemoryConfig::table2(width), engine)
        });
        let ipcs: Vec<f64> = stats.iter().map(|s| s.ipc()).collect();
        let fipc: Vec<f64> = stats.iter().map(|s| s.fetch_ipc()).collect();
        println!(
            "{:<10} {:>10.3} {:>10.2}",
            entries,
            harmonic_mean(&ipcs),
            fipc.iter().sum::<f64>() / fipc.len() as f64
        );
    }
    println!("\npaper setting: 4 entries (Table 2).");
}
