//! Figure 7 motivation / §3.4 ablation: stream fetch performance as a
//! function of the I-cache line width.
//!
//! The paper argues long lines amortize the *stream misalignment* problem
//! (Fig. 7): a stream split across line boundaries costs extra cycles, and
//! the cost shrinks as lines widen. We sweep the line from 1× to 8× the
//! pipe width and report stream-engine fetch IPC and IPC (8-wide,
//! optimized layout; the paper's choice is 4×).
//!
//! ```text
//! cargo run --release -p sfetch-bench --bin ablation_linesize [-- --inst N --jobs N]
//! ```

use sfetch_bench::{ablation_workloads, run_custom_sweep, HarnessOpts};
use sfetch_core::metrics::harmonic_mean;
use sfetch_fetch::StreamEngine;
use sfetch_mem::MemoryConfig;
use sfetch_predictors::StreamPredictorConfig;
use sfetch_workloads::LayoutChoice;

fn main() {
    let opts = HarnessOpts::from_args();
    let width = 8usize;
    let workloads = ablation_workloads(opts);

    println!("line-size sweep, stream engine, {width}-wide, optimized layout");
    println!("{:<12} {:>10} {:>10} {:>12}", "line", "IPC(hm)", "fetchIPC", "i-stalls/ki");
    for mult in [1u64, 2, 4, 8] {
        let stats = run_custom_sweep(&workloads, LayoutChoice::Optimized, width, opts, |w| {
            let mut mem = MemoryConfig::table2(width);
            mem.l1i.line_bytes = mult * width as u64 * 4;
            let engine = Box::new(StreamEngine::new(
                width,
                w.image(LayoutChoice::Optimized).entry(),
                StreamPredictorConfig::table2(),
                4,
                8,
            ));
            (mem, engine as _)
        });
        let ipcs: Vec<f64> = stats.iter().map(|s| s.ipc()).collect();
        let fipc: Vec<f64> = stats.iter().map(|s| s.fetch_ipc()).collect();
        let stalls: Vec<f64> = stats
            .iter()
            .map(|s| s.engine.icache_stall_cycles as f64 / (s.committed as f64 / 1000.0))
            .collect();
        println!(
            "{:<12} {:>10.3} {:>10.2} {:>12.2}",
            format!("{}x ({}B)", mult, mult * width as u64 * 4),
            harmonic_mean(&ipcs),
            fipc.iter().sum::<f64>() / fipc.len() as f64,
            stalls.iter().sum::<f64>() / stalls.len() as f64,
        );
    }
    println!("\npaper setting: 4x width (Table 2); wider lines reduce stream misalignment.");
}
