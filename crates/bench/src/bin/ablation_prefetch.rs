//! Prefetch ablation: the non-blocking L1i miss pipeline and the three
//! prefetch policies, per engine.
//!
//! For every fetch engine and every `PrefetchKind` (including `none`,
//! the legacy blocking model) this sweeps the ablation subset (8-wide,
//! optimized layout) and reports harmonic-mean IPC, total fetch-stall
//! cycles (decomposed by serving level), and the prefetch
//! issued/useful/late/polluting counters. The stream engine with the
//! stream-directed policy is the paper's lookahead argument (§3.3) made
//! mechanical: the FTQ names future lines; prefetching them overlaps
//! their misses with useful fetch.
//!
//! ```text
//! cargo run --release -p sfetch-bench --bin ablation_prefetch \
//!     [-- --inst N --warmup N --jobs N --mshrs N --long]
//! ```
//!
//! `--mshrs N` resizes the MSHR file of every non-`none` row (default
//! 8); the `--prefetch` flag is ignored here — this binary sweeps all
//! policies by construction. `--long` appends the long-horizon phased
//! workload (`sfetch_workloads::phased`), whose rotating hot sets
//! overflow the L1i and give every policy real misses to chase.

use sfetch_bench::{ablation_workloads, HarnessOpts};
use sfetch_core::metrics::harmonic_mean;
use sfetch_core::{simulate, PrefetchConfig, PrefetchKind, ProcessorConfig, SimStats};
use sfetch_fetch::EngineKind;
use sfetch_workloads::{par_map, LayoutChoice, Workload};

fn sweep_cell(
    workloads: &[Workload],
    engine: EngineKind,
    kind: PrefetchKind,
    opts: HarnessOpts,
) -> Vec<SimStats> {
    par_map(workloads, opts.jobs, |_, w| {
        let mut pc = ProcessorConfig::table2(8);
        pc.legacy_scan = opts.legacy_scan;
        pc.prefetch = if kind == PrefetchKind::None {
            PrefetchConfig::none()
        } else {
            let mut pf = PrefetchConfig::enabled(kind);
            // `--mshrs N` resizes the swept pipeline (default 8).
            if opts.prefetch.mshrs > 0 {
                pf.mshrs = opts.prefetch.mshrs;
            }
            pf
        };
        simulate(
            w.cfg(),
            w.image(LayoutChoice::Optimized),
            engine,
            pc,
            w.ref_seed(),
            opts.warmup,
            opts.insts,
        )
    })
}

fn main() {
    let opts = HarnessOpts::from_args();
    let workloads = ablation_workloads(opts);

    let names: Vec<&str> = workloads.iter().map(Workload::name).collect();
    println!("prefetch ablation, 8-wide, optimized layout (suite: {})", names.join(" "));
    for engine in EngineKind::ALL {
        println!("\n{engine}");
        println!(
            "{:<12} {:>8} {:>12} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8}",
            "prefetch", "IPC(hm)", "stall cyc", "stallL2", "stallMem", "issued", "useful", "late",
            "pollut"
        );
        let mut none_stall = 0u64;
        for kind in PrefetchKind::ALL {
            let stats = sweep_cell(&workloads, engine, kind, opts);
            let ipcs: Vec<f64> = stats.iter().map(|s| s.ipc()).collect();
            let stall: u64 = stats.iter().map(|s| s.engine.icache_stall_cycles).sum();
            let l2: u64 = stats.iter().map(|s| s.engine.stall_l2_cycles).sum();
            let mem: u64 = stats.iter().map(|s| s.engine.stall_mem_cycles).sum();
            let pf: Vec<_> = stats.iter().map(|s| s.prefetch).collect();
            let issued: u64 = pf.iter().map(|p| p.issued).sum();
            let useful: u64 = pf.iter().map(|p| p.useful).sum();
            let late: u64 = pf.iter().map(|p| p.late).sum();
            let pollut: u64 = pf.iter().map(|p| p.polluting).sum();
            if kind == PrefetchKind::None {
                none_stall = stall;
            }
            let delta = if kind == PrefetchKind::None || none_stall == 0 {
                String::new()
            } else {
                format!("  ({:+.1}% stall)", 100.0 * (stall as f64 / none_stall as f64 - 1.0))
            };
            println!(
                "{:<12} {:>8.3} {:>12} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8}{delta}",
                kind.to_string(),
                harmonic_mean(&ipcs),
                stall,
                l2,
                mem,
                issued,
                useful,
                late,
                pollut
            );
        }
    }
    let mshrs = if opts.prefetch.mshrs > 0 { opts.prefetch.mshrs } else { 8 };
    println!(
        "\n`none` is the legacy blocking L1i; every other row runs {mshrs} MSHRs, 2 probes/cycle."
    );
}
