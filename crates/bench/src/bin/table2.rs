//! Table 2: prints the processor/front-end configuration this reproduction
//! actually simulates, mirroring the paper's table for auditability.

use sfetch_core::ProcessorConfig;
use sfetch_mem::MemoryConfig;
use sfetch_predictors::{StreamPredictorConfig, TracePredictorConfig};

fn main() {
    println!("Table 2: simulated configuration\n");

    println!("FTB architecture + perceptron");
    println!("  perceptrons        512 (40-bit global + 4096 x 14-bit local history)");
    println!("  FTB                2048-entry, 4-way");
    println!("  RAS                8-entry\n");

    println!("EV8 fetch architecture + 2bcgskew");
    println!("  tables             4 x 32K-entry (BIM/G0/G1/META)");
    println!("  history            15 bit");
    println!("  BTB                2048-entry, 4-way");
    println!("  RAS                8-entry\n");

    let sp = StreamPredictorConfig::table2();
    println!("Stream fetch architecture");
    println!("  first table        {}-entry, {}-way", sp.first.0, sp.first.1);
    println!("  second table       {}-entry, {}-way", sp.second.0, sp.second.1);
    println!(
        "  DOLC index         {}-{}-{}-{}",
        sp.dolc.depth, sp.dolc.older, sp.dolc.last, sp.dolc.current
    );
    println!("  max stream length  {} instructions", sp.max_len);
    println!("  RAS                8-entry\n");

    let tp = TracePredictorConfig::table2();
    println!("Trace cache architecture + trace predictor");
    println!("  first level        {}-entry, {}-way", tp.first.0, tp.first.1);
    println!("  second level       {}-entry, {}-way", tp.second.0, tp.second.1);
    println!(
        "  DOLC index         {}-{}-{}-{}",
        tp.dolc.depth, tp.dolc.older, tp.dolc.last, tp.dolc.current
    );
    println!("  RHS                {}-entry", tp.rhs_entries);
    println!("  backup BTB         1024-entry, 4-way (+16K-entry gshare, documented substitution)");
    println!("  trace cache        32KB, 2-way, selective trace storage, 16-inst/3-cond traces\n");

    println!("Common settings");
    for width in [2usize, 4, 8] {
        let pc = ProcessorConfig::table2(width);
        let mc = MemoryConfig::table2(width);
        println!(
            "  {width}-wide: depth {} stages, ROB {}, L1I {}KB/{}-way/{}B line, \
             L1D {}KB/{}-way/{}B, L2 {}MB/{}-way ({} cyc), mem {} cyc",
            pc.depth,
            pc.rob_entries,
            mc.l1i.size_bytes >> 10,
            mc.l1i.assoc,
            mc.l1i.line_bytes,
            mc.l1d.size_bytes >> 10,
            mc.l1d.assoc,
            mc.l1d.line_bytes,
            mc.l2.size_bytes >> 20,
            mc.l2.assoc,
            mc.l2_latency,
            mc.mem_latency,
        );
    }
    println!("  FTQ: 4 entries (stream and FTB front-ends)");
}
