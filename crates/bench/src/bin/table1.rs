//! Table 1 reproduction: the fetch-engine comparison — high-level-code
//! relation, measured fetch-unit size, storage cost, and performance.
//!
//! The paper's Table 1 is qualitative ("low/avg/high"); we print the
//! *measured* quantities behind it for our configurations: the mean fetch
//! unit size in instructions (basic block ≈ 5–6, trace ≈ 14, streams 20+ on
//! optimized code), the front-end storage budget in KB, and the 8-wide IPC.
//!
//! ```text
//! cargo run --release -p sfetch-bench --bin table1 [-- --inst N --warmup N]
//! ```

use sfetch_bench::{hmean_ipc, mean_metric, run_grid, HarnessOpts};
use sfetch_fetch::EngineKind;
use sfetch_mem::cost::fmt_kb;
use sfetch_workloads::{LayoutChoice, Suite};

fn main() {
    let opts = HarnessOpts::from_args();
    eprintln!("generating suite…");
    let suite = Suite::build_all();
    let layouts = [LayoutChoice::Base, LayoutChoice::Optimized];
    let points = run_grid(&suite, &[8], &layouts, &EngineKind::ALL, opts);

    println!("\nTable 1: fetch engines compared (8-wide, suite means)");
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "engine", "unit (base)", "unit (opt)", "storage", "IPC base", "IPC opt"
    );
    for kind in EngineKind::ALL {
        let unit_b =
            mean_metric(&points, kind, LayoutChoice::Base, 8, |s| s.engine.mean_unit_len());
        let unit_o =
            mean_metric(&points, kind, LayoutChoice::Optimized, 8, |s| s.engine.mean_unit_len());
        let bits = points
            .iter()
            .find(|p| p.engine == kind)
            .map(|p| p.stats.storage_bits)
            .unwrap_or(0);
        println!(
            "{:<18} {:>12.1} {:>12.1} {:>12} {:>10.2} {:>10.2}",
            kind.to_string(),
            unit_b,
            unit_o,
            fmt_kb(bits),
            hmean_ipc(&points, kind, LayoutChoice::Base, 8),
            hmean_ipc(&points, kind, LayoutChoice::Optimized, 8),
        );
    }
    println!(
        "\npaper's Table 1 rows for reference: basic block 5–6 insts (low cost), \
         trace 14 insts (high cost), streams 20+ insts (low cost)."
    );
    println!(
        "note: 'storage' counts prediction/fetch structures only; the trace cache \
         row additionally spends 32KB of instruction storage (included)."
    );
}
