//! Table 3 reproduction: branch misprediction rate and fetch IPC for the
//! 8-wide processor, base and optimized codes (suite means).
//!
//! ```text
//! cargo run --release -p sfetch-bench --bin table3 [-- --inst N --warmup N]
//! ```

use sfetch_bench::{hmean_ipc, mean_metric, run_grid, HarnessOpts};
use sfetch_fetch::EngineKind;
use sfetch_workloads::{LayoutChoice, Suite};

fn main() {
    let opts = HarnessOpts::from_args();
    eprintln!("generating suite…");
    let suite = Suite::build_all();
    let points = run_grid(
        &suite,
        &[8],
        &[LayoutChoice::Base, LayoutChoice::Optimized],
        &EngineKind::ALL,
        opts,
    );

    println!("\nTable 3: 8-wide processor (suite means; paper values in DESIGN.md)");
    println!(
        "{:<18} | {:>8} {:>7} {:>6} | {:>8} {:>7} {:>6}",
        "", "base", "", "", "optimized", "", ""
    );
    println!(
        "{:<18} | {:>8} {:>7} {:>6} | {:>8} {:>7} {:>6}",
        "engine", "Mispred.", "Fetch", "IPC", "Mispred.", "Fetch", "IPC"
    );
    for kind in EngineKind::ALL {
        let m = |l: LayoutChoice, f: &dyn Fn(&sfetch_core::SimStats) -> f64| {
            mean_metric(&points, kind, l, 8, f)
        };
        let mp = |s: &sfetch_core::SimStats| s.mispred_rate() * 100.0;
        let fw = |s: &sfetch_core::SimStats| s.fetch_ipc();
        println!(
            "{:<18} | {:>7.2}% {:>7.2} {:>6.2} | {:>7.2}% {:>7.2} {:>6.2}",
            kind.to_string(),
            m(LayoutChoice::Base, &mp),
            m(LayoutChoice::Base, &fw),
            hmean_ipc(&points, kind, LayoutChoice::Base, 8),
            m(LayoutChoice::Optimized, &mp),
            m(LayoutChoice::Optimized, &fw),
            hmean_ipc(&points, kind, LayoutChoice::Optimized, 8),
        );
    }

    println!("\nsupplementary (suite means, optimized):");
    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "engine", "mp-cond", "mp-ret", "mp-ind", "misfetch", "unit", "L1I-mr"
    );
    for kind in EngineKind::ALL {
        let m = |f: &dyn Fn(&sfetch_core::SimStats) -> f64| {
            mean_metric(&points, kind, LayoutChoice::Optimized, 8, f)
        };
        println!(
            "{:<18} {:>9.0} {:>9.0} {:>9.0} {:>9.0} {:>9.1} {:>7.2}%",
            kind.to_string(),
            m(&|s| s.mispred_cond as f64),
            m(&|s| s.mispred_return as f64),
            m(&|s| s.mispred_indirect as f64),
            m(&|s| s.misfetches as f64),
            m(&|s| s.engine.mean_unit_len()),
            m(&|s| s.l1i.miss_rate() * 100.0),
        );
    }
}
