//! Ablation C: selective trace storage on/off (the paper's ref. \[29\],
//! used in §4.1).
//!
//! With STS, sequential ("blue") traces are not stored in the trace cache —
//! the wide-line I-cache serves them just as fast — leaving capacity for
//! the non-sequential ("red") traces only the trace cache can deliver.
//!
//! ```text
//! cargo run --release -p sfetch-bench --bin ablation_sts [-- --inst N --jobs N]
//! ```

use sfetch_bench::{ablation_workloads, run_custom_sweep, HarnessOpts};
use sfetch_core::metrics::harmonic_mean;
use sfetch_fetch::TraceCacheEngine;
use sfetch_mem::MemoryConfig;
use sfetch_workloads::LayoutChoice;

fn main() {
    let opts = HarnessOpts::from_args();
    let width = 8usize;
    let workloads = ablation_workloads(opts);

    for layout in [LayoutChoice::Base, LayoutChoice::Optimized] {
        println!("\ntrace cache, {width}-wide, {layout} layout");
        println!("{:<20} {:>10} {:>10} {:>12}", "storage policy", "IPC(hm)", "fetchIPC", "tc hit rate");
        for (name, selective) in [("selective (paper)", true), ("store everything", false)] {
            let stats = run_custom_sweep(&workloads, layout, width, opts, |w| {
                let engine =
                    Box::new(TraceCacheEngine::new(width, w.image(layout).entry(), selective));
                (MemoryConfig::table2(width), engine as _)
            });
            let ipcs: Vec<f64> = stats.iter().map(|s| s.ipc()).collect();
            let fipc: Vec<f64> = stats.iter().map(|s| s.fetch_ipc()).collect();
            let hit: Vec<f64> = stats
                .iter()
                .map(|s| {
                    let total = s.engine.tc_hits + s.engine.tc_misses;
                    if total == 0 { 0.0 } else { s.engine.tc_hits as f64 / total as f64 }
                })
                .collect();
            println!(
                "{:<20} {:>10.3} {:>10.2} {:>11.1}%",
                name,
                harmonic_mean(&ipcs),
                fipc.iter().sum::<f64>() / fipc.len() as f64,
                100.0 * hit.iter().sum::<f64>() / hit.len() as f64,
            );
        }
    }
}
