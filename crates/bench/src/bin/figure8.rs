//! Figure 8 reproduction: harmonic-mean IPC of the four fetch
//! architectures at pipe widths 2, 4 and 8, with baseline and
//! layout-optimized code.
//!
//! ```text
//! cargo run --release -p sfetch-bench --bin figure8 [-- --inst N --warmup N]
//! ```

use sfetch_bench::grid::{grid_engines, FIG8_WIDTHS};
use sfetch_bench::{hmean_ipc, print_engine_table, run_grid, HarnessOpts};
use sfetch_fetch::EngineKind;
use sfetch_workloads::{LayoutChoice, Suite};

fn main() {
    let opts = HarnessOpts::from_args();
    eprintln!("generating suite…");
    let suite = Suite::build_all();
    // Axes come from the shared grid definition (`sfetch_bench::grid`),
    // so this binary and `figure8_sampled` always sweep the same grid.
    let widths = FIG8_WIDTHS;
    let layouts = [LayoutChoice::Base, LayoutChoice::Optimized];
    let points = run_grid(&suite, &widths, &layouts, &grid_engines(), opts);

    for &w in &widths {
        print_engine_table(
            &format!("Figure 8({}): {}-wide processor, harmonic-mean IPC", (b'a' + widths.iter().position(|&x| x == w).expect("known width") as u8) as char, w),
            &points,
            |pts, k, l| hmean_ipc(pts, k, l, w),
            "",
        );
    }

    // The paper's headline ratios, 8-wide:
    let s = |k, l| hmean_ipc(&points, k, l, 8);
    let streams_o = s(EngineKind::Stream, LayoutChoice::Optimized);
    let ev8_o = s(EngineKind::Ev8, LayoutChoice::Optimized);
    let ftb_o = s(EngineKind::Ftb, LayoutChoice::Optimized);
    let tc_o = s(EngineKind::TraceCache, LayoutChoice::Optimized);
    let streams_b = s(EngineKind::Stream, LayoutChoice::Base);
    let ev8_b = s(EngineKind::Ev8, LayoutChoice::Base);
    let tc_b = s(EngineKind::TraceCache, LayoutChoice::Base);
    println!("\n8-wide headline ratios (paper: +10% vs EV8, +4% vs FTB, -1.5% vs TC with optimized code;");
    println!("                        +10% vs EV8, -4..5% vs TC with base code)");
    println!("  optimized: streams/EV8 {:+.1}%  streams/FTB {:+.1}%  streams/TC {:+.1}%",
        (streams_o / ev8_o - 1.0) * 100.0,
        (streams_o / ftb_o - 1.0) * 100.0,
        (streams_o / tc_o - 1.0) * 100.0
    );
    println!("  base:      streams/EV8 {:+.1}%  streams/TC {:+.1}%",
        (streams_b / ev8_b - 1.0) * 100.0,
        (streams_b / tc_b - 1.0) * 100.0
    );
}
