//! Runs every experiment in sequence (figures 8 and 9, tables 1–3, all
//! ablations, perfstats) by re-invoking the sibling binaries, forwarding
//! `--inst` / `--warmup` / `--jobs`. Results go to stdout; EXPERIMENTS.md
//! records a reference run.
//!
//! ```text
//! cargo run --release -p sfetch-bench --bin all [-- --inst N --warmup N --jobs N]
//! ```

use std::process::Command;

fn main() {
    // Validate the flags before fanning out.
    let _ = sfetch_bench::HarnessOpts::from_args();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("target dir");
    for bin in [
        "table2",
        "figure8",
        "figure9",
        "figure8_sampled",
        "figure9_sampled",
        "table1",
        "table3",
        "ablation_linesize",
        "ablation_predictor",
        "ablation_ftq",
        "ablation_sts",
        "perfstats",
    ] {
        println!("\n===================== {bin} =====================");
        let status = Command::new(dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
