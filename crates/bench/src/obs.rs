//! Harness-side observability adapters: the glue between the
//! simulator-agnostic sinks in `sfetch-obs` and this crate's simulator
//! types.
//!
//! Three pieces live here, mirroring the dependency charter (`core` must
//! not depend on `obs`, and `obs` must stay std-only):
//!
//! * [`KonataObserver`] — implements [`sfetch_core::Observer`] over an
//!   [`sfetch_obs::KonataTrace`], turning pipeline events into
//!   Konata-format traces. [`capture_ptrace`] runs a dedicated short
//!   detailed simulation with one attached.
//! * [`ts_columns`] / [`ts_delta`] — the `SimStats` → named-column
//!   conversion feeding [`sfetch_obs::TimeSeriesSink`]: committed and
//!   total cycles first, then every [`CycleBuckets`] bucket, so summing
//!   any column across the emitted rows reproduces the aggregate.
//! * [`ObsOpts`] — the shared `--obs-dir DIR` / `--interval N` /
//!   `--ptrace LO-HI` command-line surface, extracted from the argument
//!   list *before* [`crate::HarnessOpts`] parsing (which rejects unknown
//!   flags). Observability options deliberately never enter the grid
//!   config fingerprint: attaching sinks must not invalidate a resumable
//!   ledger or checkpoint store.

use std::path::PathBuf;

use sfetch_core::{CycleBuckets, Observer, Processor, ProcessorConfig, SimStats};
use sfetch_fetch::EngineKind;
use sfetch_isa::Addr;
use sfetch_obs::jsonl::str_array;
use sfetch_obs::{JsonlFile, KonataTrace, Row, TimeSeriesSink};
use sfetch_sample::{BatchCell, BatchSampler, CheckpointStore, SampleConfig, StoredSampler};
use sfetch_workloads::{LayoutChoice, Workload};

use crate::grid::{cell_config, engine_key, GridCell};
use crate::HarnessOpts;

/// [`Observer`] adapter feeding a buffered [`KonataTrace`].
#[derive(Debug)]
pub struct KonataObserver(pub KonataTrace);

impl Observer for KonataObserver {
    const ENABLED: bool = true;

    #[inline]
    fn fetched(&mut self, now: u64, seq: u64, pc: Addr, wrong_path: bool) {
        self.0.fetched(now, seq, pc.get(), wrong_path);
    }

    #[inline]
    fn issued(&mut self, now: u64, seq: u64, done_at: u64) {
        self.0.issued(now, seq, done_at);
    }

    #[inline]
    fn committed(&mut self, now: u64, seq: u64) {
        self.0.committed(now, seq);
    }

    #[inline]
    fn squashed(&mut self, now: u64, seq: u64) {
        self.0.squashed(now, seq);
    }
}

/// Column names of the cycle-accounting time series: `committed` and
/// `cycles` first (so `cycles == sum of bucket columns` is checkable row
/// by row and in aggregate), then the [`CycleBuckets::NAMES`] buckets.
pub fn ts_columns() -> Vec<&'static str> {
    let mut cols = Vec::with_capacity(2 + CycleBuckets::NAMES.len());
    cols.push("committed");
    cols.push("cycles");
    cols.extend(CycleBuckets::NAMES);
    cols
}

/// Index of the committed-instructions column in [`ts_columns`] — the
/// key column driving [`sfetch_obs::TimeSeriesSink`] row boundaries.
pub const TS_KEY: usize = 0;

/// Converts one measurement window's [`SimStats`] delta into the
/// [`ts_columns`] vector.
pub fn ts_delta(s: &SimStats) -> Vec<u64> {
    let mut v = Vec::with_capacity(2 + CycleBuckets::NAMES.len());
    v.push(s.committed);
    v.push(s.cycles);
    v.extend(s.buckets.to_array());
    v
}

/// The shared observability command-line options.
#[derive(Debug, Clone, Default)]
pub struct ObsOpts {
    /// `--obs-dir DIR`: where time-series and pipeline-trace files land.
    /// `None` disables every sink (the bit-identical default).
    pub dir: Option<PathBuf>,
    /// `--interval N`: committed instructions per time-series row
    /// (0 = one row per measurement window/chunk, the default).
    pub interval: u64,
    /// `--ptrace LO-HI`: capture a Konata pipeline trace of fetch
    /// sequence numbers `[LO, HI)` via a dedicated detailed side-run.
    pub ptrace: Option<(u64, u64)>,
}

impl ObsOpts {
    /// Extracts (removes) the observability flags from `args`, leaving
    /// the remainder for [`HarnessOpts::from_arg_list`].
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed values, matching the
    /// harness-options parser's contract.
    pub fn extract(args: &mut Vec<String>) -> Self {
        let mut o = ObsOpts::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--obs-dir" => {
                    let v = args.get(i + 1).expect("--obs-dir requires a directory").clone();
                    o.dir = Some(PathBuf::from(v));
                    args.drain(i..i + 2);
                }
                "--interval" => {
                    o.interval = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .expect("--interval requires a number");
                    args.drain(i..i + 2);
                }
                "--ptrace" => {
                    let v = args.get(i + 1).expect("--ptrace requires LO-HI").clone();
                    o.ptrace = Some(parse_range(&v).expect("--ptrace requires LO-HI with LO < HI"));
                    args.drain(i..i + 2);
                }
                _ => i += 1,
            }
        }
        o
    }

    /// Whether any sink is enabled.
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }
}

/// Parses a `LO-HI` sequence range with `LO < HI`.
fn parse_range(s: &str) -> Option<(u64, u64)> {
    let (lo, hi) = s.split_once('-')?;
    let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
    (lo < hi).then_some((lo, hi))
}

/// Captures a Konata pipeline trace of fetch sequence numbers
/// `[range.0, range.1)` on one (workload, engine, width) point via a
/// dedicated detailed side-run (no sampling, no warmup exclusion — a
/// pipeline trace wants the pipeline exactly as it filled). The run is
/// *separate* from any measurement run, so attaching it cannot perturb
/// reported statistics; tracing-off measurement runs stay bit-identical.
pub fn capture_ptrace(
    w: &Workload,
    engine: EngineKind,
    width: usize,
    opts: &HarnessOpts,
    range: (u64, u64),
) -> KonataTrace {
    let image = w.image(LayoutChoice::Optimized);
    let mut pc = ProcessorConfig::table2(width);
    pc.legacy_scan = opts.legacy_scan;
    pc.prefetch = opts.prefetch;
    pc.front = opts.front.front_for(engine);
    let eng = engine.build_for(width, image.entry(), &pc.prefetch, &pc.front);
    let mem = sfetch_mem::MemoryHierarchy::new(sfetch_mem::MemoryConfig::table2(width));
    let oracle = sfetch_trace::Executor::from_image(image, w.ref_seed());
    let mut p = Processor::with_state_observed(
        pc,
        eng,
        image,
        oracle,
        mem,
        KonataObserver(KonataTrace::new(range.0, range.1)),
    );
    // Sequence numbers never trail commits: once `range.1` instructions
    // have committed, every traced sequence number has been fetched.
    // A short tail run lets in-flight traced instructions retire (any
    // stragglers are closed as flushed on serialization).
    p.run(range.1);
    p.run(2 * width as u64 + 64);
    p.into_observer().0
}

/// Emits the sampled runners' observability artifacts into
/// `obs.dir`: one `ts_<engine>_<width>.jsonl` cycle-accounting time
/// series per grid cell (windows re-simulated through the warm
/// checkpoint store — a pure side pass, so the measured run's
/// statistics are untouched) and, with `--ptrace`, one
/// `ptrace_<engine>.kanata` pipeline trace per engine at the widest
/// configuration. No-op when `--obs-dir` was not given.
///
/// The side pass honours `--batch N`: cells are swept in groups of `N`,
/// each group's windows driven by one [`BatchSampler`] over the shared
/// functional reference stream, and `batches.jsonl` records which time
/// series came out of which sweep (per-batch attribution). Because the
/// batched sweep is bit-identical to the per-window [`StoredSampler`]
/// path (the tier-1 differential oracle), the emitted rows are the same
/// bytes at any batch size — only the attribution manifest and the wall
/// time change.
///
/// Every sink is checked on the way out: the time-series totals must
/// equal the accumulated per-window [`SimStats`] exactly (the
/// sum-exactness contract the CI smoke leg re-derives from the files).
pub fn write_sampled_obs(
    w: &Workload,
    grid: &[GridCell],
    scfg: SampleConfig,
    windows: u64,
    opts: &HarnessOpts,
    obs: &ObsOpts,
    store: &CheckpointStore,
) -> std::io::Result<()> {
    let Some(dir) = obs.dir.as_deref() else { return Ok(()) };
    std::fs::create_dir_all(dir)?;
    let img = w.image(LayoutChoice::Optimized);
    let fp = w.fingerprint(LayoutChoice::Optimized);
    let cols = ts_columns();
    let batch = opts.batch.max(1);
    let mut manifest = JsonlFile::create(&dir.join("batches.jsonl"))?;
    for (group, chunk) in grid.chunks(batch).enumerate() {
        // A singleton group runs the historical per-cell path; larger
        // groups share one batched sweep. Either way the per-window
        // stats are identical — the grouping only decides how many
        // functional reference walks the side pass pays for.
        let results: Vec<Vec<(sfetch_sample::SamplePoint, SimStats)>> = if chunk.len() > 1 {
            let cells: Vec<BatchCell> = chunk
                .iter()
                .map(|&c| BatchCell { kind: c.engine, pcfg: cell_config(c, opts) })
                .collect();
            BatchSampler::new(img, fp, w.ref_seed(), scfg, store)
                .run_range(&cells, 0..windows, opts.jobs)
        } else {
            chunk
                .iter()
                .map(|&c| {
                    StoredSampler::new(img, fp, w.ref_seed(), scfg, store)
                        .run_range_stats(c.engine, cell_config(c, opts), 0..windows, opts.jobs)
                })
                .collect()
        };
        let names: Vec<String> = chunk
            .iter()
            .map(|c| format!("ts_{}_{}.jsonl", engine_key(c.engine), c.width))
            .collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        manifest.write_row(
            Row::new()
                .u("batch", group as u64)
                .u("size", chunk.len() as u64)
                .u("windows", windows)
                .raw("series", &str_array(&name_refs)),
        )?;
        for (name, per_window) in names.iter().zip(&results) {
            let path = dir.join(name);
            let file = std::io::BufWriter::new(std::fs::File::create(&path)?);
            let mut sink = TimeSeriesSink::new(file, &cols, TS_KEY, obs.interval)?;
            let mut agg = SimStats::default();
            for (_, s) in per_window {
                sink.record(&ts_delta(s))?;
                agg.accumulate(s);
            }
            let totals = sink.finish()?;
            assert_eq!(totals, ts_delta(&agg), "time-series totals must equal the aggregate");
            eprintln!(
                "obs: time series ({} windows, batch {group}) written to {}",
                per_window.len(),
                path.display()
            );
        }
    }
    if let Some(range) = obs.ptrace {
        let width = grid.iter().map(|c| c.width).max().unwrap_or(8);
        let mut seen: Vec<EngineKind> = Vec::new();
        for &cell in grid {
            if cell.width != width || seen.contains(&cell.engine) {
                continue;
            }
            seen.push(cell.engine);
            let trace = capture_ptrace(w, cell.engine, width, opts, range);
            let path = dir.join(format!("ptrace_{}.kanata", engine_key(cell.engine)));
            trace.save(&path)?;
            eprintln!(
                "obs: pipeline trace ({} insts) written to {}",
                trace.captured(),
                path.display()
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_flags_extract_and_leave_the_rest() {
        let mut args: Vec<String> =
            ["--inst", "5000", "--obs-dir", "/tmp/obs", "--interval", "250", "--ptrace", "10-90"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect();
        let o = ObsOpts::extract(&mut args);
        assert_eq!(o.dir.as_deref(), Some(std::path::Path::new("/tmp/obs")));
        assert_eq!(o.interval, 250);
        assert_eq!(o.ptrace, Some((10, 90)));
        assert!(o.enabled());
        assert_eq!(args, vec!["--inst".to_owned(), "5000".to_owned()]);
        let h = HarnessOpts::from_arg_list(&args);
        assert_eq!(h.insts, 5000);
    }

    #[test]
    fn ts_columns_cover_committed_cycles_and_every_bucket() {
        let cols = ts_columns();
        assert_eq!(cols[TS_KEY], "committed");
        assert_eq!(cols.len(), 2 + CycleBuckets::NAMES.len());
        let mut s = SimStats { committed: 7, cycles: 9, ..Default::default() };
        s.buckets.commit = 4;
        s.buckets.backend = 5;
        let d = ts_delta(&s);
        assert_eq!(d.len(), cols.len());
        assert_eq!(d[0], 7);
        assert_eq!(d[1], 9);
        assert_eq!(d[2..].iter().sum::<u64>(), 9, "bucket columns sum to cycles");
    }

    #[test]
    fn bad_ptrace_ranges_are_rejected() {
        assert_eq!(parse_range("10-90"), Some((10, 90)));
        assert_eq!(parse_range("90-10"), None);
        assert_eq!(parse_range("10"), None);
        assert_eq!(parse_range("a-b"), None);
    }
}
