//! The fleet-backed grid runner: `sfetch_fleet`'s leased-cell
//! supervisor specialized to the sampled engines × widths grid.
//!
//! This module owns both halves of the worker protocol:
//!
//! * **Parent** — [`run_fleet_grid`] decomposes the grid into
//!   *(engine, width, window-range)* cells, opens the cell ledger next
//!   to the checkpoint store (keyed by a config fingerprint, so a
//!   re-invocation with the same experiment resumes and anything else
//!   starts fresh), and drives [`sfetch_fleet::run_fleet`] over
//!   re-spawns of the current executable. Completed cells merge through
//!   [`crate::grid::merge_grid`] (strict) or
//!   [`crate::grid::merge_grid_partial`] (degraded, with an explicit
//!   incomplete-cell report) — never a panic.
//! * **Child** — [`maybe_run_fleet_child`], called first thing in every
//!   grid binary's `main`, recognizes the `--fleet-cell` protocol,
//!   runs exactly one cell's window range through the shared checkpoint
//!   store, writes the sealed shard file atomically, and exits. Under
//!   [`sfetch_fleet::chaos::CHAOS_ENV`] the child consults the
//!   deterministic fault schedule first and crashes / stalls / mangles
//!   its output accordingly — the parent is deliberately left unaware.
//!
//! Because each cell's windows resume from checkpoints that derive only
//! from the workload (never from which worker ran them or how often),
//! any interleaving of crashes, retries, and resumes converges to the
//! same merged bytes — the property the chaos tests and the CI leg
//! assert.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

use sfetch_fleet::{
    chaos, fnv64, now_ms, seal, CellId, FleetConfig, FleetError, FleetReport, HeartbeatGuard,
    Ledger, ProcessGroupLauncher,
};
use sfetch_sample::{window_range, SampleConfig, SamplePoint, ShardSpec};

use crate::grid::{
    engine_key, merge_grid, merge_grid_partial, parse_shard_file, CellRun, GridCell, GridError,
    GRID_SHARD_SCHEMA,
};
use crate::{workload_by_name, HarnessOpts};

/// How often fleet workers touch their heartbeat file.
const HEARTBEAT_EVERY: Duration = Duration::from_millis(200);

/// Everything [`run_fleet_grid`] needs beyond the harness options.
pub struct FleetGridSpec<'a> {
    /// Benchmark name (resolved via [`workload_by_name`] in children).
    pub bench: &'a str,
    /// The (engine, width) grid.
    pub grid: &'a [GridCell],
    /// Sampling schedule.
    pub scfg: SampleConfig,
    /// Total committed instructions (determines the window count).
    pub total: u64,
    /// Simulation-model options forwarded to workers.
    pub opts: &'a HarnessOpts,
    /// The (already populated) checkpoint store directory; the fleet's
    /// ledger and cell outputs live under `<store>/fleet/`.
    pub store_dir: &'a Path,
    /// Maximum concurrent workers.
    pub procs: usize,
    /// Chaos seed (`--chaos N`): exported to workers via
    /// [`chaos::CHAOS_ENV`]. Part of the ledger fingerprint, so chaos
    /// runs never resume a clean run's ledger or vice versa.
    pub chaos: Option<u64>,
    /// Per-cell retry budget (`--max-retries N`).
    pub max_retries: u32,
    /// Optional per-cell timeout override in seconds
    /// (`--cell-timeout SECS`): sets the timeout floor/initial guess
    /// and caps heartbeat staleness, for tests and smoke legs that
    /// need fast straggler detection.
    pub cell_timeout_s: Option<u64>,
}

/// What a fleet grid run produced.
pub struct FleetGridOutcome {
    /// Merged per-cell estimates. Complete runs carry every window;
    /// degraded runs carry the windows that exist (wider CIs).
    pub runs: Vec<CellRun>,
    /// Grid cells short of the full window count: `(cell, have, want)`.
    /// Empty on a fully successful run.
    pub incomplete: Vec<(GridCell, u64, u64)>,
    /// The supervisor's accounting (spawns, retries, kills, resume).
    pub report: FleetReport,
    /// The run's ledger directory (also holds `events.jsonl` and, after
    /// a degraded exit, `degraded.json`).
    pub work_dir: PathBuf,
}

/// Errors out of the parent orchestration: fleet infrastructure or grid
/// merge trouble.
#[derive(Debug)]
pub enum FleetGridError {
    /// The fleet layer failed (ledger, spawn).
    Fleet(FleetError),
    /// The grid layer failed (merge inconsistency, shard parse).
    Grid(GridError),
}

impl std::fmt::Display for FleetGridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetGridError::Fleet(e) => e.fmt(f),
            FleetGridError::Grid(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for FleetGridError {}

impl From<FleetError> for FleetGridError {
    fn from(e: FleetError) -> Self {
        FleetGridError::Fleet(e)
    }
}

impl From<GridError> for FleetGridError {
    fn from(e: GridError) -> Self {
        FleetGridError::Grid(e)
    }
}

/// Decomposes the grid into fleet cells: every (engine, width) pair
/// split into enough window chunks that the pool stays busy (≈ 2 cells
/// per worker), chunk sizes differing by at most one window.
pub fn decompose(grid: &[GridCell], windows: u64, procs: usize) -> Vec<CellId> {
    let pairs = grid.len().max(1);
    let target = (2 * procs.max(1)).div_ceil(pairs) as u64;
    let n_chunks = target.clamp(1, windows.max(1));
    let mut out = Vec::new();
    for cell in grid {
        for j in 0..n_chunks {
            let r = window_range(windows, ShardSpec { index: j, count: n_chunks });
            if r.start < r.end {
                out.push(CellId::new(engine_key(cell.engine), cell.width, r.start, r.end));
            }
        }
    }
    out
}

/// The experiment fingerprint keying the ledger: everything a cell's
/// output bytes depend on. Same fingerprint → safe to resume; anything
/// else → fresh ledger.
fn config_tag(spec: &FleetGridSpec<'_>) -> u64 {
    let engines: Vec<&str> =
        spec.grid.iter().map(|c| engine_key(c.engine)).collect::<Vec<_>>();
    let widths: Vec<String> = spec.grid.iter().map(|c| c.width.to_string()).collect();
    let key = format!(
        "{GRID_SHARD_SCHEMA}|{}|{}|{}|{}|{}|legacy={}|pf={}:{}|front={}|gridpf={}|chaos={:?}",
        spec.bench,
        spec.scfg.to_spec(),
        spec.total,
        engines.join(","),
        widths.join(","),
        spec.opts.legacy_scan,
        spec.opts.prefetch.kind,
        spec.opts.prefetch.mshrs,
        spec.opts.front.as_str(),
        spec.opts.grid_prefetch.as_str(),
        spec.chaos,
    );
    fnv64(key.as_bytes())
}

/// The shard-file validator shared by the ledger (resume verification)
/// and the supervisor (fresh-output verification): the trailer must
/// verify and every point line must parse. Returns the digest of the
/// full sealed text.
fn validate_shard(text: &str) -> Result<u64, String> {
    crate::driver::validate_shard_text(text)
}

/// Runs the grid under the fleet supervisor. The checkpoint store at
/// `spec.store_dir` must already be populated (one architectural walk —
/// the caller does this exactly as for `spawn_shards`).
///
/// # Errors
///
/// Infrastructure failures only; worker failures are retried and, past
/// the budget, reported via [`FleetGridOutcome::incomplete`].
pub fn run_fleet_grid(spec: &FleetGridSpec<'_>) -> Result<FleetGridOutcome, FleetGridError> {
    let windows = spec.scfg.windows(spec.total);
    let cell_ids = decompose(spec.grid, windows, spec.procs);
    let tag = config_tag(spec);
    let work_dir = spec.store_dir.join("fleet").join(format!("{tag:016x}"));
    std::fs::create_dir_all(&work_dir)
        .map_err(|e| FleetError::io("create fleet work dir", &work_dir, e))?;

    let (mut ledger, resume) = Ledger::open(
        work_dir.join("cells.ledger"),
        tag,
        &cell_ids,
        now_ms(),
        &validate_shard,
    )?;
    if resume.resumed_done > 0 || resume.expired_leases > 0 || resume.invalidated > 0 {
        eprintln!(
            "fleet: resumed ledger — {} done cells kept, {} expired leases re-offered, \
             {} invalidated outputs recomputed",
            resume.resumed_done, resume.expired_leases, resume.invalidated
        );
    }

    let mut cfg = FleetConfig::new(spec.procs.min(cell_ids.len()).max(1));
    cfg.max_retries = spec.max_retries;
    // `--batch N` composes with the fleet as group leasing: a worker
    // claims up to N same-range cells and drives them from one shared
    // sweep. Chaos runs stay singleton so the deterministic per-cell
    // fault schedule keeps its meaning.
    cfg.group = if spec.chaos.is_some() { 1 } else { spec.opts.batch.max(1) };
    if let Some(s) = spec.cell_timeout_s {
        let ms = s.max(1) * 1000;
        cfg.timeout_floor_ms = ms;
        cfg.timeout_initial_ms = ms;
        cfg.heartbeat_stale_ms = cfg.heartbeat_stale_ms.min(ms);
    }

    let exe = std::env::current_exe()
        .map_err(|e| FleetError::Spawn { cell: "<any>".into(), err: e.to_string() })?;
    let launcher = ProcessGroupLauncher::new(
        |cells: &[CellId], attempts: &[u32], outs: &[PathBuf], hb: &Path| {
            let mut cmd = Command::new(&exe);
            // Repeated `--fleet-cell`/`--fleet-out` pairs, in matching
            // order, carry the whole group; singleton groups produce
            // exactly the historical argument list.
            for (cell, out) in cells.iter().zip(outs) {
                cmd.arg("--fleet-cell").arg(cell.to_string());
                cmd.arg("--fleet-out").arg(out);
            }
            cmd.arg("--fleet-bench")
                .arg(spec.bench)
                .arg("--fleet-sample")
                .arg(spec.scfg.to_spec())
                .arg("--fleet-store")
                .arg(spec.store_dir)
                .arg("--fleet-jobs")
                .arg(spec.opts.jobs.to_string())
                // Chaos (the attempt's only consumer) runs singleton
                // groups, so the first attempt index is the group's.
                .arg("--fleet-attempt")
                .arg(attempts.first().copied().unwrap_or(0).to_string())
                .arg("--fleet-heartbeat")
                .arg(hb)
                // Always explicit: the child's defaults must never decide
                // the simulated front or prefetch model.
                .arg("--fleet-front")
                .arg(spec.opts.front.as_str())
                .arg("--fleet-grid-prefetch")
                .arg(spec.opts.grid_prefetch.as_str());
            if spec.opts.legacy_scan {
                cmd.arg("--fleet-legacy-scan");
            }
            if spec.opts.warm_bank {
                cmd.arg("--fleet-warm-bank");
            }
            if let Some(cap) = spec.opts.store_cap_bytes {
                cmd.arg("--fleet-store-cap-bytes").arg(cap.to_string());
            }
            if spec.opts.prefetch.mshrs > 0 {
                cmd.arg("--fleet-prefetch").arg(spec.opts.prefetch.kind.to_string());
                cmd.arg("--fleet-mshrs").arg(spec.opts.prefetch.mshrs.to_string());
            }
            if let Some(seed) = spec.chaos {
                cmd.env(chaos::CHAOS_ENV, seed.to_string());
            }
            // Workers own no part of the report: stdout must stay clean so
            // chaos and fault-free parent runs diff byte-identically.
            cmd.stdout(Stdio::null()).stderr(Stdio::inherit());
            cmd
        },
    );

    let report = sfetch_fleet::run_fleet(
        &cfg,
        &mut ledger,
        &launcher,
        &validate_shard,
        resume,
        &mut |msg| eprintln!("fleet: {msg}"),
    )?;

    // Merge the verified cell outputs.
    let mut all: Vec<(String, usize, SamplePoint)> = Vec::new();
    for d in &report.done {
        all.extend(parse_shard_file(&d.text)?);
    }
    let (runs, incomplete) = if report.incomplete.is_empty() {
        (merge_grid(spec.grid, windows, &all, spec.scfg.confidence)?, Vec::new())
    } else {
        let partial = merge_grid_partial(spec.grid, windows, &all, spec.scfg.confidence)?;
        (partial.runs, partial.incomplete)
    };

    // Merge summary: how long the cells computed this run actually took
    // (resumed cells carried no fresh work, so they are excluded).
    let mut hist = sfetch_obs::Histogram::new();
    for d in report.done.iter().filter(|d| !d.resumed) {
        hist.record(d.dur_ms);
    }
    if !hist.is_empty() {
        eprintln!("fleet: cell wall-time histogram ({} computed cells):", hist.len());
        eprint!("{}", hist.render("fleet:   "));
    }

    Ok(FleetGridOutcome { runs, incomplete, report, work_dir })
}

/// Prints the degradation report (stderr) for a partial outcome,
/// records it machine-readably as `degraded.json` in the ledger
/// directory, and returns the process exit code the binary should use:
/// 0 when complete, 2 when degraded.
pub fn degradation_exit(outcome: &FleetGridOutcome) -> u8 {
    if outcome.incomplete.is_empty() && outcome.report.incomplete.is_empty() {
        return 0;
    }
    eprintln!(
        "fleet: DEGRADED RESULT — {} fleet cells failed permanently; estimates below use \
         the completed windows only (wider confidence intervals)",
        outcome.report.incomplete.len()
    );
    for (cell, attempts, why) in &outcome.report.incomplete {
        eprintln!("fleet:   {cell} ({attempts} attempts): {why}");
    }
    eprintln!("incomplete_cells: {}", outcome.report.incomplete.len());
    for (cell, have, want) in &outcome.incomplete {
        eprintln!(
            "fleet:   {}/{}: {have}/{want} windows merged",
            engine_key(cell.engine),
            cell.width
        );
    }
    let path = outcome.work_dir.join("degraded.json");
    match std::fs::write(&path, degraded_json(outcome)) {
        Ok(()) => eprintln!("fleet: degradation record written to {}", path.display()),
        Err(e) => eprintln!("fleet: could not write {}: {e}", path.display()),
    }
    2
}

/// The machine-readable degradation record: every permanently failed
/// fleet cell with its final attempt count and last error, plus the
/// merged-grid window shortfall per (engine, width).
fn degraded_json(outcome: &FleetGridOutcome) -> String {
    use sfetch_obs::Row;
    let cells: Vec<String> = outcome
        .report
        .incomplete
        .iter()
        .map(|(cell, attempts, why)| {
            Row::new()
                .s("cell", &cell.to_string())
                .u("attempts", u64::from(*attempts))
                .s("last_error", why)
                .finish()
        })
        .collect();
    let shortfalls: Vec<String> = outcome
        .incomplete
        .iter()
        .map(|(cell, have, want)| {
            Row::new()
                .s("engine", engine_key(cell.engine))
                .u("width", cell.width as u64)
                .u("windows_merged", *have)
                .u("windows_wanted", *want)
                .finish()
        })
        .collect();
    let mut out = Row::new()
        .s("schema", "sfetch-fleet-degraded-v1")
        .u("t_ms", now_ms())
        .raw("failed_cells", &format!("[{}]", cells.join(",")))
        .raw("grid_shortfall", &format!("[{}]", shortfalls.join(",")))
        .finish();
    out.push('\n');
    out
}

// ---------------------------------------------------------------------
// Child protocol
// ---------------------------------------------------------------------

struct ChildArgs {
    /// The leased group: repeated `--fleet-cell` flags, one per cell
    /// (singleton in classic mode).
    cells: Vec<CellId>,
    bench: String,
    scfg: SampleConfig,
    store: PathBuf,
    /// Per-cell output paths, parallel to `cells` (repeated
    /// `--fleet-out`, in the same order).
    outs: Vec<PathBuf>,
    heartbeat: PathBuf,
    attempt: u32,
    opts: HarnessOpts,
}

fn parse_child_args(args: &[String]) -> Result<ChildArgs, String> {
    let mut cells = Vec::new();
    let mut bench = None;
    let mut scfg = None;
    let mut store = None;
    let mut outs = Vec::new();
    let mut heartbeat = None;
    let mut attempt = 0u32;
    let mut opts = HarnessOpts::default();
    let mut pf_kind: Option<String> = None;
    let mut mshrs: Option<usize> = None;
    let mut i = 0;
    let take = |i: usize| -> Result<&String, String> {
        args.get(i + 1).ok_or_else(|| format!("{} requires a value", args[i]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--fleet-cell" => cells.push(CellId::parse(take(i)?)?),
            "--fleet-bench" => bench = Some(take(i)?.clone()),
            "--fleet-sample" => {
                scfg = Some(SampleConfig::parse(take(i)?).map_err(|e| e.to_string())?)
            }
            "--fleet-store" => store = Some(PathBuf::from(take(i)?)),
            "--fleet-store-cap-bytes" => {
                opts.store_cap_bytes = Some(
                    take(i)?
                        .parse::<u64>()
                        .ok()
                        .filter(|&c| c >= 1)
                        .ok_or_else(|| {
                            format!("--fleet-store-cap-bytes must be >= 1 (got {:?})", args[i + 1])
                        })?,
                )
            }
            "--fleet-out" => outs.push(PathBuf::from(take(i)?)),
            "--fleet-heartbeat" => heartbeat = Some(PathBuf::from(take(i)?)),
            "--fleet-attempt" => {
                attempt = take(i)?.parse().map_err(|e| format!("--fleet-attempt: {e}"))?
            }
            "--fleet-jobs" => {
                opts.jobs = take(i)?.parse().map_err(|e| format!("--fleet-jobs: {e}"))?
            }
            "--fleet-legacy-scan" => {
                opts.legacy_scan = true;
                i += 1;
                continue;
            }
            // Note: deliberately absent from `config_tag` — banked warm
            // state changes host time only, never the output bytes, so a
            // banked rerun must resume the un-banked ledger (and vice
            // versa) with zero recomputation.
            "--fleet-warm-bank" => {
                opts.warm_bank = true;
                i += 1;
                continue;
            }
            "--fleet-prefetch" => pf_kind = Some(take(i)?.clone()),
            "--fleet-front" => {
                opts.front = crate::FrontMode::parse(take(i)?)
                    .ok_or_else(|| format!("bad --fleet-front {:?}", args[i + 1]))?
            }
            "--fleet-grid-prefetch" => {
                opts.grid_prefetch = crate::GridPrefetchMode::parse(take(i)?)
                    .ok_or_else(|| format!("bad --fleet-grid-prefetch {:?}", args[i + 1]))?
            }
            "--fleet-mshrs" => {
                mshrs = Some(take(i)?.parse().map_err(|e| format!("--fleet-mshrs: {e}"))?)
            }
            other => return Err(format!("unknown fleet child argument {other:?}")),
        }
        i += 2;
    }
    if let Some(kind) = pf_kind {
        let kind = sfetch_core::PrefetchKind::parse(&kind)
            .ok_or_else(|| format!("bad --fleet-prefetch {kind:?}"))?;
        opts.prefetch = sfetch_core::PrefetchConfig::enabled(kind);
        if let Some(m) = mshrs {
            opts.prefetch.mshrs = m;
        }
    }
    if cells.is_empty() {
        return Err("--fleet-cell is required".into());
    }
    if outs.len() != cells.len() {
        return Err(format!(
            "{} --fleet-cell flags but {} --fleet-out flags (must pair up)",
            cells.len(),
            outs.len()
        ));
    }
    Ok(ChildArgs {
        cells,
        bench: bench.ok_or("--fleet-bench is required")?,
        scfg: scfg.ok_or("--fleet-sample is required")?,
        store: store.ok_or("--fleet-store is required")?,
        outs,
        heartbeat: heartbeat.ok_or("--fleet-heartbeat is required")?,
        attempt,
        opts,
    })
}

fn run_fleet_child(a: &ChildArgs) -> Result<bool, String> {
    // Chaos first: the fault schedule is a pure function of
    // (seed, cell, attempt), consulted before any real work. The parent
    // forces singleton groups under chaos, so the first cell *is* the
    // group.
    let fault = match chaos::seed_from_env() {
        Some(seed) => chaos::fault_for(seed, &a.cells[0], a.attempt),
        None => chaos::Fault::None,
    };
    match fault {
        chaos::Fault::CrashEarly => {
            // Die the ugly way — no output, nonzero "signal" exit.
            std::process::abort();
        }
        chaos::Fault::Stall => {
            // Hang *without ever heartbeating*, so staleness detection
            // (not just the cell deadline) is what catches us.
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        _ => {}
    }

    let _hb = HeartbeatGuard::start(&a.heartbeat, HEARTBEAT_EVERY);
    let w = workload_by_name(&a.bench);
    let store = sfetch_sample::CheckpointStore::open(&a.store)
        .map_err(|e| format!("open store: {e}"))?
        .with_cap_bytes(a.opts.store_cap_bytes);
    // The single cell-execution path shared with the daemon's
    // in-process workers; a multi-cell group rides one batched sweep.
    let bodies = crate::driver::cell_group_bodies(&w, &a.cells, a.scfg, &a.opts, &store)?;

    let mut exit_nonzero = false;
    for (body, out) in bodies.iter().zip(&a.outs) {
        let sealed = seal(body);
        let (text, nonzero) = chaos::mangle_output(fault, &sealed);
        exit_nonzero |= nonzero;
        // Atomic even when chaos-mangled: the injected faults model
        // *logical* corruption; torn physical writes are prevented by the
        // temp + rename discipline itself.
        let tmp = out.with_extension("part");
        std::fs::write(&tmp, text.as_bytes()).map_err(|e| format!("write shard: {e}"))?;
        std::fs::rename(&tmp, out).map_err(|e| format!("rename shard: {e}"))?;
    }
    Ok(exit_nonzero)
}

/// Call **first** in every grid binary's `main`: when the process was
/// spawned as a fleet worker (`--fleet-cell …`), runs the cell and
/// exits; otherwise returns so the binary proceeds normally.
pub fn maybe_run_fleet_child() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if !args.iter().any(|a| a == "--fleet-cell") {
        return;
    }
    match parse_child_args(&args).and_then(|a| run_fleet_child(&a)) {
        Ok(false) => std::process::exit(0),
        Ok(true) => std::process::exit(3), // chaos: valid file, lying exit
        Err(msg) => {
            eprintln!("fleet worker: {msg}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{cells, point_line};
    use sfetch_fetch::EngineKind;

    #[test]
    fn decompose_partitions_every_pair() {
        let grid = cells(&[EngineKind::Stream, EngineKind::Ev8], &[4, 8]);
        for (windows, procs) in [(4u64, 2usize), (7, 3), (1, 8), (16, 1)] {
            let ids = decompose(&grid, windows, procs);
            for pair in &grid {
                let mut covered: Vec<bool> = vec![false; windows as usize];
                for id in ids.iter().filter(|c| {
                    c.engine == engine_key(pair.engine) && c.width == pair.width
                }) {
                    for w in id.lo..id.hi {
                        assert!(!covered[w as usize], "window {w} covered twice");
                        covered[w as usize] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "every window covered exactly once");
            }
        }
    }

    #[test]
    fn child_args_roundtrip() {
        let args: Vec<String> = [
            "--fleet-cell",
            "stream:8:0-4",
            "--fleet-bench",
            "phased",
            "--fleet-sample",
            "1000000,50000,5000,5000",
            "--fleet-store",
            "/tmp/store",
            "--fleet-jobs",
            "2",
            "--fleet-attempt",
            "1",
            "--fleet-out",
            "/tmp/out.json",
            "--fleet-heartbeat",
            "/tmp/out.hb",
            "--fleet-front",
            "legacy",
            "--fleet-grid-prefetch",
            "shared",
            "--fleet-legacy-scan",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let a = parse_child_args(&args).expect("parses");
        assert_eq!(a.cells, vec![CellId::new("stream", 8, 0, 4)]);
        assert_eq!(a.outs, vec![PathBuf::from("/tmp/out.json")]);
        assert_eq!(a.bench, "phased");
        assert_eq!(a.attempt, 1);
        assert_eq!(a.opts.jobs, 2);
        assert!(a.opts.legacy_scan);
        assert_eq!(a.opts.front, crate::FrontMode::Legacy);
        assert_eq!(a.opts.grid_prefetch, crate::GridPrefetchMode::Shared);
        assert!(parse_child_args(&args[2..]).is_err(), "missing --fleet-cell is an error");
    }

    #[test]
    fn child_args_carry_cell_groups_in_order() {
        let args: Vec<String> = [
            "--fleet-cell",
            "stream:8:0-4",
            "--fleet-out",
            "/tmp/a.json",
            "--fleet-cell",
            "ev8:8:0-4",
            "--fleet-out",
            "/tmp/b.json",
            "--fleet-bench",
            "phased",
            "--fleet-sample",
            "1000000,50000,5000,5000",
            "--fleet-store",
            "/tmp/store",
            "--fleet-store-cap-bytes",
            "4096",
            "--fleet-out-missing-guard",
        ]
        .iter()
        .take(16) // drop the trailing guard flag; it is not a real arg
        .map(|s| (*s).to_owned())
        .collect();
        let mut full = args.clone();
        full.extend(["--fleet-heartbeat".to_owned(), "/tmp/hb".to_owned()]);
        let a = parse_child_args(&full).expect("parses");
        assert_eq!(
            a.cells,
            vec![CellId::new("stream", 8, 0, 4), CellId::new("ev8", 8, 0, 4)],
            "cells keep their flag order"
        );
        assert_eq!(a.outs, vec![PathBuf::from("/tmp/a.json"), PathBuf::from("/tmp/b.json")]);
        assert_eq!(a.opts.store_cap_bytes, Some(4096));
        // A cell without its out file is a protocol error.
        let mut unbalanced = full.clone();
        unbalanced.extend(["--fleet-cell".to_owned(), "ftb:8:0-4".to_owned()]);
        assert!(parse_child_args(&unbalanced).is_err(), "cells and outs must pair up");
    }

    #[test]
    fn validator_accepts_sealed_and_rejects_mangled() {
        let cell = GridCell { engine: EngineKind::Stream, width: 8 };
        let p = SamplePoint {
            window: 0,
            start_inst: 1,
            committed: 2,
            cycles: 3,
            stall_cycles: 4,
            mispredictions: 5,
        };
        let body = format!("{}\n", point_line(cell, &p));
        let sealed = seal(&body);
        assert!(validate_shard(&sealed).is_ok());
        for fault in [chaos::Fault::WriteTruncated, chaos::Fault::WriteCorrupt] {
            let (mangled, _) = chaos::mangle_output(fault, &sealed);
            assert!(validate_shard(&mangled).is_err(), "{fault:?} must be rejected");
        }
    }
}
