//! Progress reporting — promoted to the shared observability layer.
//!
//! The mutex-guarded [`Reporter`] and the per-benchmark [`GridProgress`]
//! tracker used to live here; they now come from `sfetch-obs`, so the
//! grid runners, the fleet supervisor, and the sampled runners all
//! report through one implementation. This module remains as a
//! re-export for path stability (`sfetch_bench::progress::*`).

pub use sfetch_obs::{GridProgress, Reporter};
