//! Microbenchmark of the architectural executor's per-instruction hot loop.
//!
//! Compares the interned side-table oracle ([`sfetch_trace::Executor`], which
//! resolves control by index into `CodeImage::control()`) against a faithful
//! reimplementation of the old cloning walker, which re-matched the CFG
//! [`Terminator`] and cloned its `behavior`/`callees`/`targets` vectors on
//! every dynamic control instruction. The interned path must be ≥ 20% faster
//! per instruction.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sfetch_cfg::{Cfg, CodeImage, CondBehavior, IndirectSelect, Terminator, TripCount};
use sfetch_isa::{Addr, BranchKind};
use sfetch_trace::{DynControl, DynInst, Executor};
use sfetch_workloads::{suite, LayoutChoice, Workload};

const N: u64 = 200_000;

fn workload() -> Workload {
    suite::build(suite::by_name("twolf").expect("known benchmark"))
}

/// The pre-side-table oracle: identical control semantics, but resolves every
/// dynamic branch by matching the owner block's [`Terminator`] and cloning
/// its heap payloads — the baseline the interned executor is measured against.
struct CloningOracle<'a> {
    cfg: &'a Cfg,
    image: &'a CodeImage,
    rng: SmallRng,
    pc: Addr,
    seq: u64,
    loop_remaining: Vec<Option<u32>>,
    pattern_idx: Vec<u32>,
    indirect_idx: Vec<u32>,
    call_stack: Vec<Addr>,
    hist: std::collections::VecDeque<bool>,
    exec_count: Vec<u64>,
}

impl<'a> CloningOracle<'a> {
    fn new(cfg: &'a Cfg, image: &'a CodeImage, seed: u64) -> Self {
        CloningOracle {
            cfg,
            image,
            rng: SmallRng::seed_from_u64(seed),
            pc: image.entry(),
            seq: 0,
            loop_remaining: vec![None; cfg.num_blocks()],
            pattern_idx: vec![0; cfg.num_blocks()],
            indirect_idx: vec![0; cfg.num_blocks()],
            call_stack: Vec::with_capacity(64),
            hist: std::collections::VecDeque::with_capacity(16),
            exec_count: vec![0; image.len_insts()],
        }
    }

    fn eval_cond(&mut self, owner: usize, beh: &CondBehavior) -> bool {
        let logical = match beh {
            CondBehavior::Bernoulli { p_taken } => self.rng.random_bool(p_taken.clamp(0.0, 1.0)),
            CondBehavior::Pattern(pat) => {
                if pat.is_empty() {
                    false
                } else {
                    let v = pat[self.pattern_idx[owner] as usize % pat.len()];
                    self.pattern_idx[owner] = self.pattern_idx[owner].wrapping_add(1);
                    v
                }
            }
            CondBehavior::Loop { trip } => {
                let remaining = match self.loop_remaining[owner] {
                    Some(r) => r,
                    None => match *trip {
                        TripCount::Fixed(n) => n.max(1),
                        TripCount::Uniform { lo, hi } => {
                            self.rng.random_range(lo.max(1)..=hi.max(lo.max(1)))
                        }
                        TripCount::Geometric { mean } => {
                            let mean = f64::from(mean.max(1));
                            let u: f64 = self.rng.random();
                            let v: f64 = (1.0 - u).ln() / (1.0 - 1.0 / mean).ln();
                            (v as u32).clamp(1, 1_000_000)
                        }
                    },
                };
                if remaining > 1 {
                    self.loop_remaining[owner] = Some(remaining - 1);
                    true
                } else {
                    self.loop_remaining[owner] = None;
                    false
                }
            }
            CondBehavior::Correlated { dist, invert, noise } => {
                let noisy = self.rng.random_bool(noise.clamp(0.0, 1.0));
                let base = if noisy || (*dist as usize) > self.hist.len() {
                    self.rng.random_bool(0.5)
                } else {
                    self.hist[self.hist.len() - *dist as usize]
                };
                base ^ invert
            }
        };
        if self.hist.len() == 16 {
            self.hist.pop_front();
        }
        self.hist.push_back(logical);
        logical
    }

    fn pick_weighted<T: Copy>(&mut self, items: &[(T, u32)]) -> T {
        let total: u64 = items.iter().map(|&(_, w)| u64::from(w.max(1))).sum();
        let mut r = self.rng.random_range(0..total.max(1));
        for &(item, w) in items {
            let w = u64::from(w.max(1));
            if r < w {
                return item;
            }
            r -= w;
        }
        items.last().expect("non-empty").0
    }

    fn pick_indirect<T: Copy>(&mut self, owner: usize, items: &[(T, u32)], select: &IndirectSelect) -> T {
        match select {
            IndirectSelect::Weighted => self.pick_weighted(items),
            IndirectSelect::Cyclic(seq) => {
                if seq.is_empty() {
                    return self.pick_weighted(items);
                }
                let idx = &mut self.indirect_idx[owner];
                let slot = seq[*idx as usize % seq.len()] as usize % items.len();
                *idx = idx.wrapping_add(1);
                items[slot].0
            }
        }
    }

    /// Steps one instruction, producing the same `DynInst` record the real
    /// executor produces, but resolving control through terminator matching
    /// and payload cloning.
    fn step(&mut self) -> DynInst {
        let slot = self.image.slot_of(self.pc).expect("in image");
        let ii = *self.image.inst(slot);
        let pc = self.pc;

        let mem_addr = ii.inst.mem_pattern().map(|p| {
            let k = self.exec_count[slot];
            self.exec_count[slot] += 1;
            p.address(k)
        });

        let control = ii.control.map(|attr| {
            let owner = attr.owner;
            let oi = owner.index();
            let (taken, target) = if attr.is_fixup {
                (true, attr.target.expect("fixup"))
            } else {
                match attr.kind {
                    BranchKind::Jump => (true, attr.target.expect("direct")),
                    BranchKind::Cond => {
                        // The cloning baseline: clone the behaviour out of
                        // the terminator on every dynamic instance.
                        let beh = match self.cfg.block(owner).terminator() {
                            Terminator::Cond { behavior, .. } => behavior.clone(),
                            t => panic!("bad terminator {t:?}"),
                        };
                        let logical = self.eval_cond(oi, &beh);
                        (logical ^ attr.flipped, attr.target.expect("direct"))
                    }
                    BranchKind::Call => {
                        self.call_stack.push(attr.fallthrough);
                        (true, attr.target.expect("direct"))
                    }
                    BranchKind::IndirectCall => {
                        let (callees, select) = match self.cfg.block(owner).terminator() {
                            Terminator::IndirectCall { callees, select, .. } => {
                                (callees.clone(), select.clone())
                            }
                            t => panic!("bad terminator {t:?}"),
                        };
                        let callee = self.pick_indirect(oi, &callees, &select);
                        self.call_stack.push(attr.fallthrough);
                        let entry = self.cfg.func(callee).entry();
                        (true, self.image.block_addr(entry))
                    }
                    BranchKind::Return => {
                        (true, self.call_stack.pop().unwrap_or_else(|| self.image.entry()))
                    }
                    BranchKind::IndirectJump => {
                        let (targets, select) = match self.cfg.block(owner).terminator() {
                            Terminator::IndirectJump { targets, select } => {
                                (targets.clone(), select.clone())
                            }
                            t => panic!("bad terminator {t:?}"),
                        };
                        let tb = self.pick_indirect(oi, &targets, &select);
                        (true, self.image.block_addr(tb))
                    }
                }
            };
            let next_pc = if taken { target } else { attr.fallthrough };
            DynControl { kind: attr.kind, taken, target, next_pc, is_fixup: attr.is_fixup }
        });

        self.pc = match control {
            Some(c) => c.next_pc,
            None => pc.next_inst(),
        };
        let rec = DynInst { seq: self.seq, pc, inst: ii.inst, mem_addr, control };
        self.seq += 1;
        rec
    }
}

fn bench_oracle(c: &mut Criterion) {
    let w = workload();
    let img = w.image(LayoutChoice::Optimized);
    let mut g = c.benchmark_group("executor_hot_loop");
    g.throughput(Throughput::Elements(N));
    g.bench_function("interned_side_table", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for d in Executor::new(w.cfg(), img, w.ref_seed()).take(N as usize) {
                acc = acc.wrapping_add(d.pc.get());
            }
            black_box(acc)
        })
    });
    g.bench_function("cloning_baseline", |b| {
        b.iter(|| {
            let mut o = CloningOracle::new(w.cfg(), img, w.ref_seed());
            let mut acc = 0u64;
            for _ in 0..N {
                acc = acc.wrapping_add(o.step().pc.get());
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_oracle);
criterion_main!(benches);
