//! Microbenchmark of the cycle-level back-end: event-driven scheduler vs
//! the legacy per-cycle ROB scan, at the Table 2 flight depth and at the
//! large-window depth where the scan is quadratic in in-flight entries.
//!
//! Each iteration builds a fresh processor (so predictor/cache state does
//! not leak across iterations) and simulates a fixed committed-instruction
//! window; throughput is reported in simulated instructions per second.
//! The two back-ends retire bit-identical windows (see
//! `crates/core/tests/event_scheduler.rs`), so any throughput difference
//! is pure scheduler cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use sfetch_core::{Processor, ProcessorConfig};
use sfetch_fetch::EngineKind;
use sfetch_workloads::{suite, LayoutChoice, Workload};

const N: u64 = 50_000;

fn workload() -> Workload {
    suite::build(suite::by_name("gcc").expect("known benchmark"))
}

fn run(w: &Workload, rob_entries: usize, legacy_scan: bool) -> u64 {
    let image = w.image(LayoutChoice::Optimized);
    let mut pc = ProcessorConfig::table2(8);
    pc.rob_entries = rob_entries;
    pc.legacy_scan = legacy_scan;
    let engine = EngineKind::Stream.build(8, image.entry());
    let mut p = Processor::new(pc, engine, w.cfg(), image, w.ref_seed());
    p.run(N);
    p.stats().cycles
}

fn bench_backend(c: &mut Criterion) {
    let w = workload();
    for rob in [256usize, 1024] {
        let mut g = c.benchmark_group(format!("processor_backend_rob{rob}"));
        g.throughput(Throughput::Elements(N));
        g.sample_size(10);
        g.bench_function("event_driven", |b| {
            b.iter(|| black_box(run(&w, rob, false)))
        });
        g.bench_function("legacy_scan", |b| {
            b.iter(|| black_box(run(&w, rob, true)))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_backend);
criterion_main!(benches);
