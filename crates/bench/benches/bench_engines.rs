//! Criterion benchmarks of whole-processor simulation throughput, one per
//! fetch architecture (the cost of regenerating Figures 8/9 and Table 3),
//! plus the base-vs-optimized layout pair for the stream engine.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use sfetch_core::{Processor, ProcessorConfig};
use sfetch_fetch::EngineKind;
use sfetch_workloads::{suite, LayoutChoice, Workload};

const INSTS: u64 = 50_000;

fn workload() -> Workload {
    suite::build(suite::by_name("twolf").expect("known benchmark"))
}

fn bench_engines(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("simulate_8wide_optimized");
    g.throughput(Throughput::Elements(INSTS));
    for kind in EngineKind::ALL {
        g.bench_function(format!("{kind}"), |b| {
            b.iter(|| {
                let image = w.image(LayoutChoice::Optimized);
                let engine = kind.build(8, image.entry());
                let mut p = Processor::new(
                    ProcessorConfig::table2(8),
                    engine,
                    w.cfg(),
                    image,
                    w.ref_seed(),
                );
                p.run(INSTS);
                black_box(p.stats().committed)
            })
        });
    }
    g.finish();
}

fn bench_layouts(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("simulate_stream_by_layout");
    g.throughput(Throughput::Elements(INSTS));
    for layout in [LayoutChoice::Base, LayoutChoice::Optimized] {
        g.bench_function(format!("{layout}"), |b| {
            b.iter(|| {
                let image = w.image(layout);
                let engine = EngineKind::Stream.build(8, image.entry());
                let mut p = Processor::new(
                    ProcessorConfig::table2(8),
                    engine,
                    w.cfg(),
                    image,
                    w.ref_seed(),
                );
                p.run(INSTS);
                black_box(p.stats().committed)
            })
        });
    }
    g.finish();
}

fn bench_widths(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("simulate_stream_by_width");
    g.throughput(Throughput::Elements(INSTS));
    for width in [2usize, 4, 8] {
        g.bench_function(format!("{width}-wide"), |b| {
            b.iter(|| {
                let image = w.image(LayoutChoice::Optimized);
                let engine = EngineKind::Stream.build(width, image.entry());
                let mut p = Processor::new(
                    ProcessorConfig::table2(width),
                    engine,
                    w.cfg(),
                    image,
                    w.ref_seed(),
                );
                p.run(INSTS);
                black_box(p.stats().committed)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engines, bench_layouts, bench_widths
}
criterion_main!(benches);
