//! Criterion microbenchmarks of the prediction structures (the per-lookup
//! cost behind every figure): 2bcgskew, perceptron, gshare, BTB/FTB, and
//! the cascaded next-stream / next-trace predictors.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use sfetch_isa::{Addr, BranchKind};
use sfetch_predictors::{
    Btb, Ftb, FtbEntry, Gshare, NextStreamPredictor, NextTracePredictor, PerceptronPredictor,
    StreamPredictorConfig, StreamUpdate, TraceId, TracePredictorConfig, TwoBcGskew,
};

const N: u64 = 1024;

fn pcs() -> Vec<Addr> {
    (0..N).map(|i| Addr::new(0x40_0000 + (i * 36 % 8192) * 4)).collect()
}

fn bench_direction_predictors(c: &mut Criterion) {
    let pcs = pcs();
    let mut g = c.benchmark_group("direction_predictors");
    g.throughput(Throughput::Elements(N));

    g.bench_function("2bcgskew_predict_update", |b| {
        let mut p = TwoBcGskew::ev8();
        let mut hist = 0u64;
        b.iter(|| {
            for (i, &pc) in pcs.iter().enumerate() {
                let taken = i % 3 != 0;
                black_box(p.predict(pc, hist));
                p.update(pc, hist, taken);
                hist = (hist << 1) | u64::from(taken);
            }
        })
    });

    g.bench_function("perceptron_predict_update", |b| {
        let mut p = PerceptronPredictor::table2();
        let mut hist = 0u64;
        b.iter(|| {
            for (i, &pc) in pcs.iter().enumerate() {
                let taken = i % 3 != 0;
                black_box(p.predict(pc, hist));
                p.update(pc, hist, taken);
                hist = (hist << 1) | u64::from(taken);
            }
        })
    });

    g.bench_function("gshare_predict_update", |b| {
        let mut p = Gshare::new(16 * 1024, 12);
        let mut hist = 0u64;
        b.iter(|| {
            for (i, &pc) in pcs.iter().enumerate() {
                let taken = i % 3 != 0;
                black_box(p.predict(pc, hist));
                p.update(pc, hist, taken);
                hist = (hist << 1) | u64::from(taken);
            }
        })
    });
    g.finish();
}

fn bench_target_predictors(c: &mut Criterion) {
    let pcs = pcs();
    let mut g = c.benchmark_group("target_predictors");
    g.throughput(Throughput::Elements(N));

    g.bench_function("btb_lookup_update", |b| {
        let mut btb = Btb::new(2048, 4);
        b.iter(|| {
            for &pc in &pcs {
                black_box(btb.lookup(pc));
                btb.update(pc, Addr::new(pc.get() + 64), BranchKind::Cond);
            }
        })
    });

    g.bench_function("ftb_lookup_update", |b| {
        let mut ftb = Ftb::new(2048, 4);
        b.iter(|| {
            for &pc in &pcs {
                black_box(ftb.lookup(pc));
                ftb.update(
                    pc,
                    FtbEntry { len: 9, kind: BranchKind::Cond, target: Addr::new(pc.get() + 64) },
                );
            }
        })
    });
    g.finish();
}

fn bench_unit_predictors(c: &mut Criterion) {
    let pcs = pcs();
    let mut g = c.benchmark_group("unit_predictors");
    g.throughput(Throughput::Elements(N));

    g.bench_function("next_stream_predict_commit", |b| {
        let mut p = NextStreamPredictor::new(StreamPredictorConfig::table2());
        b.iter(|| {
            for &pc in &pcs {
                black_box(p.predict(pc));
                p.notify_fetch(pc);
                p.commit_stream(StreamUpdate {
                    start: pc,
                    len: 17,
                    kind: Some(BranchKind::Cond),
                    next: Addr::new(pc.get() + 68),
                    mispredicted: false,
                });
            }
        })
    });

    g.bench_function("next_trace_predict_commit", |b| {
        let mut p = NextTracePredictor::new(TracePredictorConfig::table2());
        b.iter(|| {
            for &pc in &pcs {
                black_box(p.predict(pc));
                let id = TraceId { start: pc, dirs: 0b101, n_cond: 3 };
                p.notify_fetch(id, Some(BranchKind::Cond));
                p.commit_trace(sfetch_predictors::trace_pred::TraceUpdate {
                    id,
                    len: 16,
                    term: Some(BranchKind::Cond),
                    next: Addr::new(pc.get() + 64),
                    mispredicted: false,
                });
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_direction_predictors,
    bench_target_predictors,
    bench_unit_predictors
);
criterion_main!(benches);
