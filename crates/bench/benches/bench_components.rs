//! Criterion benchmarks of the substrate components: program generation,
//! layout passes, the architectural executor, stream extraction, and the
//! cache model — the pieces every experiment binary composes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use sfetch_cfg::gen::{GenParams, ProgramGenerator};
use sfetch_cfg::{layout, CodeImage, EdgeProfile};
use sfetch_isa::Addr;
use sfetch_mem::{CacheConfig, SetAssocCache};
use sfetch_trace::{Executor, StreamExtractor};

fn bench_generation_and_layout(c: &mut Criterion) {
    let mut g = c.benchmark_group("program_construction");
    g.sample_size(10);
    g.bench_function("generate_default_int", |b| {
        b.iter(|| {
            black_box(ProgramGenerator::new(GenParams::default_int(), 42).generate().num_blocks())
        })
    });
    let cfg = ProgramGenerator::new(GenParams::default_int(), 42).generate();
    let profile = EdgeProfile::from_expected(&cfg);
    g.bench_function("pettis_hansen_layout", |b| {
        b.iter(|| black_box(layout::pettis_hansen(&cfg, &profile).order().len()))
    });
    g.bench_function("build_code_image", |b| {
        let lay = layout::natural(&cfg);
        b.iter(|| black_box(CodeImage::build(&cfg, &lay).len_insts()))
    });
    g.finish();
}

fn bench_executor(c: &mut Criterion) {
    let cfg = ProgramGenerator::new(GenParams::default_int(), 42).generate();
    let img = CodeImage::build(&cfg, &layout::natural(&cfg));
    const N: u64 = 100_000;
    let mut g = c.benchmark_group("architectural_execution");
    g.throughput(Throughput::Elements(N));
    g.bench_function("executor_100k", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for d in Executor::new(&cfg, &img, 7).take(N as usize) {
                sum = sum.wrapping_add(d.pc.get());
            }
            black_box(sum)
        })
    });
    g.bench_function("executor_plus_stream_extraction_100k", |b| {
        b.iter(|| {
            let mut ex = StreamExtractor::new();
            let mut count = 0u64;
            for d in Executor::new(&cfg, &img, 7).take(N as usize) {
                if ex.push(&d).is_some() {
                    count += 1;
                }
            }
            black_box(count)
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    const N: u64 = 64 * 1024;
    let mut g = c.benchmark_group("cache_model");
    g.throughput(Throughput::Elements(N));
    g.bench_function("l1i_64k_2way_accesses", |b| {
        let mut cache = SetAssocCache::new(CacheConfig {
            size_bytes: 64 << 10,
            assoc: 2,
            line_bytes: 128,
        });
        b.iter(|| {
            let mut hits = 0u64;
            for i in 0..N {
                // Strided walk with some reuse.
                let addr = Addr::new((i * 68) % (256 << 10));
                hits += u64::from(cache.access(addr));
            }
            black_box(hits)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_generation_and_layout, bench_executor, bench_cache);
criterion_main!(benches);
