//! Stream-directed prefetch — runs ahead of fetch along the predicted
//! stream path.

use sfetch_isa::Addr;

use crate::{Lookahead, Prefetcher};

/// Recently-emitted line ring: stops the policy from re-probing the same
/// lines every cycle while the FTQ contents are unchanged.
const RECENT: usize = 64;

/// Lines prefetched beyond the predicted next stream's start (its length
/// is unknown until the predictor is consulted there).
const NEXT_STREAM_LINES: u64 = 2;

/// Prefetches every L1i line covered by the engine's lookahead: the
/// unread tail of the FTQ head request, every queued request behind it,
/// and the first lines of the predicted next stream.
///
/// This is the paper's stream-lookahead argument (§3.3) turned into a
/// prefetcher: the FTQ names, in program-fetch order, more than a cache
/// line's worth of future addresses per entry, so by the time the
/// I-cache stage reaches a line the fill has been in flight for as long
/// as the FTQ was ahead — misses overlap with useful fetch instead of
/// serializing behind it.
#[derive(Debug)]
pub struct StreamDirected {
    recent: [u64; RECENT],
    pos: usize,
}

impl StreamDirected {
    /// Creates the policy.
    pub fn new() -> Self {
        StreamDirected { recent: [u64::MAX; RECENT], pos: 0 }
    }

    /// Emits `line` unless it was recently emitted; returns whether a
    /// probe was produced.
    fn emit(&mut self, line: u64, line_bytes: u64, out: &mut Vec<Addr>) -> bool {
        if self.recent.contains(&line) {
            return false;
        }
        self.recent[self.pos] = line;
        self.pos = (self.pos + 1) % RECENT;
        out.push(Addr::new(line * line_bytes));
        true
    }
}

impl Default for StreamDirected {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for StreamDirected {
    fn name(&self) -> &'static str {
        "stream-directed"
    }

    fn observe_demand(&mut self, _line: u64, _hit: bool) {}

    fn probes(&mut self, ctx: &Lookahead<'_>, budget: usize, out: &mut Vec<Addr>) {
        let lb = ctx.line_bytes;
        let mut left = budget;
        // The demand line itself is being fetched; start one line past it
        // so probes never compete with the demand access.
        let demand_line = ctx.demand.map(|d| d.line_index(lb));
        for &(start, insts) in ctx.queued {
            if left == 0 {
                return;
            }
            let first = start.line_index(lb);
            let last = start.offset_insts(u64::from(insts.max(1)) - 1).line_index(lb);
            for line in first..=last {
                if left == 0 {
                    return;
                }
                if Some(line) == demand_line {
                    continue;
                }
                if self.emit(line, lb, out) {
                    left -= 1;
                }
            }
        }
        if let Some(next) = ctx.predicted_next {
            let first = next.line_index(lb);
            for line in first..first + NEXT_STREAM_LINES {
                if left == 0 {
                    return;
                }
                if self.emit(line, lb, out) {
                    left -= 1;
                }
            }
        }
    }

    fn unissued(&mut self, line: u64) {
        // The fill never started: forget the line so the next cycle's
        // walk re-emits it instead of waiting ~RECENT emissions.
        for slot in &mut self.recent {
            if *slot == line {
                *slot = u64::MAX;
            }
        }
    }

    fn storage_bits(&self) -> u64 {
        (RECENT as u64) * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_queued_ranges_and_next_stream() {
        let mut p = StreamDirected::new();
        let mut out = Vec::new();
        // Head at 0x1000 (demand), 40 insts = 160 bytes: lines 0x1000,
        // 0x1080; queued request at 0x4000, 8 insts: line 0x4000; next
        // stream predicted at 0x8000.
        let queued = [(Addr::new(0x1000), 40u32), (Addr::new(0x4000), 8u32)];
        let ctx = Lookahead {
            demand: Some(Addr::new(0x1000)),
            queued: &queued,
            predicted_next: Some(Addr::new(0x8000)),
            line_bytes: 128,
        };
        p.probes(&ctx, 16, &mut out);
        assert_eq!(
            out,
            vec![Addr::new(0x1080), Addr::new(0x4000), Addr::new(0x8000), Addr::new(0x8080)],
            "demand line skipped, tails + queued + next stream covered"
        );
        // Re-probing with unchanged lookahead emits nothing new.
        out.clear();
        p.probes(&ctx, 16, &mut out);
        assert!(out.is_empty(), "recent ring suppresses re-probes");
    }

    #[test]
    fn unissued_lines_are_re_emitted() {
        let mut p = StreamDirected::new();
        let mut out = Vec::new();
        let queued = [(Addr::new(0x1000), 8u32)];
        let ctx =
            Lookahead { demand: None, queued: &queued, predicted_next: None, line_bytes: 128 };
        p.probes(&ctx, 4, &mut out);
        assert_eq!(out, vec![Addr::new(0x1000)]);
        out.clear();
        p.probes(&ctx, 4, &mut out);
        assert!(out.is_empty(), "suppressed while considered covered");
        // The memory system reported no free MSHR: forget and re-emit.
        p.unissued(0x1000 / 128);
        p.probes(&ctx, 4, &mut out);
        assert_eq!(out, vec![Addr::new(0x1000)]);
    }

    #[test]
    fn budget_bounds_probes_per_cycle() {
        let mut p = StreamDirected::new();
        let mut out = Vec::new();
        let queued = [(Addr::new(0x0), 256u32)]; // 1KB: 8 lines of 128B
        let ctx = Lookahead {
            demand: None,
            queued: &queued,
            predicted_next: None,
            line_bytes: 128,
        };
        p.probes(&ctx, 3, &mut out);
        assert_eq!(out.len(), 3);
        // The rest of the range arrives on later cycles.
        out.clear();
        p.probes(&ctx, 3, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], Addr::new(0x180));
    }
}
