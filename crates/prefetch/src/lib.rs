//! # sfetch-prefetch
//!
//! Instruction-prefetch policies for the non-blocking L1i miss pipeline
//! (`sfetch_mem`'s MSHR + fill queue).
//!
//! The paper's central observation is that streams are *long sequential
//! runs* the front-end can run ahead of: once the next stream predictor
//! has named a stream, every cache line it covers — and the start of the
//! stream after it — is known many cycles before the I-cache stage gets
//! there (§3.3). A blocking I-cache throws that lookahead away; with
//! MSHRs, a [`Prefetcher`] can turn it into overlapped fills. Three
//! policies are provided:
//!
//! * [`NextLine`] — classic next-N-line prefetch keyed on the demand line;
//!   the no-lookahead baseline every front-end can drive.
//! * [`StreamDirected`] — consumes the engine's *lookahead structure*
//!   (FTQ occupancy and the predicted next stream start) and prefetches
//!   whole streams ahead of the fetch cursor — the policy the stream
//!   front-end is architected for.
//! * [`Mana`] — a MANA-style *record* prefetcher (Ansari et al.,
//!   PAPERS.md): a table keyed on a miss line holds the miss lines that
//!   historically followed it, replayed on each re-miss.
//!
//! Policies are pure address generators: they observe demand accesses via
//! [`Prefetcher::observe_demand`] and emit candidate line addresses via
//! [`Prefetcher::probes`]; the fetch engine's I-cache port decides the
//! per-cycle probe bandwidth and the memory hierarchy drops redundant
//! probes (resident or already in flight).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mana;
pub mod next_line;
pub mod stream_directed;

use sfetch_isa::Addr;

pub use mana::Mana;
pub use next_line::NextLine;
pub use stream_directed::StreamDirected;

/// Prefetch-policy selector, carried by the processor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrefetchKind {
    /// No prefetching; with `mshrs == 0` this is the legacy blocking
    /// L1i model, bit-identical to the pre-prefetch simulator.
    #[default]
    None,
    /// Next-N-line prefetch keyed on the demand line.
    NextLine,
    /// Stream-directed prefetch from the FTQ and the predicted next
    /// stream (the lookahead-exploiting policy).
    StreamDirected,
    /// MANA-style record prefetcher keyed on miss history.
    Mana,
}

impl PrefetchKind {
    /// All selectable kinds, `None` first.
    pub const ALL: [PrefetchKind; 4] = [
        PrefetchKind::None,
        PrefetchKind::NextLine,
        PrefetchKind::StreamDirected,
        PrefetchKind::Mana,
    ];

    /// Builds the policy with its default geometry; `None` builds nothing.
    pub fn build(self) -> Option<Box<dyn Prefetcher>> {
        match self {
            PrefetchKind::None => None,
            PrefetchKind::NextLine => Some(Box::new(NextLine::new(2))),
            PrefetchKind::StreamDirected => Some(Box::new(StreamDirected::new())),
            PrefetchKind::Mana => Some(Box::new(Mana::table2())),
        }
    }

    /// Parses the CLI spelling (`none`, `next-line`, `stream`, `mana`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(PrefetchKind::None),
            "next-line" => Some(PrefetchKind::NextLine),
            "stream" => Some(PrefetchKind::StreamDirected),
            "mana" => Some(PrefetchKind::Mana),
            _ => None,
        }
    }
}

impl std::fmt::Display for PrefetchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrefetchKind::None => f.write_str("none"),
            PrefetchKind::NextLine => f.write_str("next-line"),
            PrefetchKind::StreamDirected => f.write_str("stream"),
            PrefetchKind::Mana => f.write_str("mana"),
        }
    }
}

/// Prefetch subsystem configuration (policy + miss-pipeline geometry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrefetchConfig {
    /// The prefetch policy.
    pub kind: PrefetchKind,
    /// L1i MSHR entries. `0` disables the non-blocking miss pipeline
    /// entirely (legacy blocking I-cache).
    pub mshrs: usize,
    /// Maximum prefetch probes issued to the memory system per cycle.
    pub degree: usize,
}

impl PrefetchConfig {
    /// The disabled configuration: blocking L1i, no prefetcher —
    /// bit-identical to the pre-prefetch simulator.
    pub fn none() -> Self {
        PrefetchConfig { kind: PrefetchKind::None, mshrs: 0, degree: 0 }
    }

    /// The default enabled configuration for a policy: 8 MSHRs, 2 probes
    /// per cycle (one L1i fill port's worth of tag bandwidth).
    pub fn enabled(kind: PrefetchKind) -> Self {
        PrefetchConfig { kind, mshrs: 8, degree: 2 }
    }

    /// Whether the non-blocking miss pipeline is active.
    pub fn pipelined(&self) -> bool {
        self.mshrs > 0
    }

    /// Validates the combination.
    ///
    /// # Panics
    ///
    /// Panics if a prefetch policy is selected without any MSHRs (the
    /// policy would have nowhere to put its fills).
    pub fn validate(&self) {
        assert!(
            self.kind == PrefetchKind::None || self.mshrs > 0,
            "prefetch policy {} requires mshrs > 0",
            self.kind
        );
    }
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// The engine's per-cycle lookahead, handed to [`Prefetcher::probes`].
///
/// Decoupled front-ends (stream, FTB) fill `queued` with every fetch
/// request sitting in the FTQ — the head's unread tail included — and
/// `predicted_next` with the prediction stage's next start address;
/// coupled front-ends (EV8) can only offer the demand address.
#[derive(Debug, Clone, Copy)]
pub struct Lookahead<'a> {
    /// The address the I-cache stage demands this cycle (fetch cursor).
    pub demand: Option<Addr>,
    /// Upcoming fetch ranges, oldest first: `(start, instructions)`.
    pub queued: &'a [(Addr, u32)],
    /// Predicted start of the unit beyond everything queued (next stream
    /// or next trace).
    pub predicted_next: Option<Addr>,
    /// L1 instruction-cache line size in bytes.
    pub line_bytes: u64,
}

/// An instruction-prefetch policy.
///
/// Implementations are deterministic address generators; they never touch
/// the memory system themselves. `observe_demand` is called once per
/// distinct demand access (at the hit, or when the miss is allocated);
/// `probes` is called once per cycle with the engine's lookahead and a
/// probe budget.
pub trait Prefetcher: std::fmt::Debug {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Observes one demand access to `line` (a line index) and whether it
    /// hit the L1i.
    fn observe_demand(&mut self, line: u64, hit: bool);

    /// Emits up to `budget` candidate prefetch addresses for this cycle.
    fn probes(&mut self, ctx: &Lookahead<'_>, budget: usize, out: &mut Vec<Addr>);

    /// Feedback that an emitted probe for `line` could not start its fill
    /// this cycle (no free MSHR) and may be worth re-emitting. Default:
    /// ignore (stateless policies re-derive their candidates anyway).
    fn unissued(&mut self, line: u64) {
        let _ = line;
    }

    /// Estimated storage cost of the policy's tables in bits.
    fn storage_bits(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parse_roundtrips() {
        for k in PrefetchKind::ALL {
            assert_eq!(PrefetchKind::parse(&k.to_string()), Some(k));
        }
        assert_eq!(PrefetchKind::parse("bogus"), None);
    }

    #[test]
    fn none_builds_nothing_and_everything_else_builds() {
        assert!(PrefetchKind::None.build().is_none());
        for k in [PrefetchKind::NextLine, PrefetchKind::StreamDirected, PrefetchKind::Mana] {
            let p = k.build().expect("policy");
            assert!(p.storage_bits() < 10_000_000, "{}: implausible storage", p.name());
        }
    }

    #[test]
    fn config_validation() {
        PrefetchConfig::none().validate();
        PrefetchConfig::enabled(PrefetchKind::StreamDirected).validate();
        assert!(!PrefetchConfig::none().pipelined());
        assert!(PrefetchConfig::enabled(PrefetchKind::None).pipelined());
    }

    #[test]
    #[should_panic(expected = "requires mshrs")]
    fn policy_without_mshrs_is_rejected() {
        PrefetchConfig { kind: PrefetchKind::NextLine, mshrs: 0, degree: 2 }.validate();
    }
}
