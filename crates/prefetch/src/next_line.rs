//! Next-N-line prefetch — the no-lookahead baseline.

use sfetch_isa::Addr;

use crate::{Lookahead, Prefetcher};

/// Prefetches the `degree` lines following each new demand line.
///
/// This is the policy any front-end can drive without lookahead
/// structures: it sees only the fetch cursor. On sequential code it
/// covers exactly what the stream-directed policy covers; at every taken
/// branch its guess is wasted, which is why the paper's lookahead
/// argument (§3.3) favors prefetching along the *predicted* path instead.
#[derive(Debug)]
pub struct NextLine {
    degree: u64,
    last_line: u64,
}

impl NextLine {
    /// Creates the policy prefetching `degree` lines ahead.
    ///
    /// # Panics
    ///
    /// Panics if `degree == 0`.
    pub fn new(degree: u64) -> Self {
        assert!(degree > 0, "next-line degree must be at least 1");
        NextLine { degree, last_line: u64::MAX }
    }
}

impl Prefetcher for NextLine {
    fn name(&self) -> &'static str {
        "next-line"
    }

    fn observe_demand(&mut self, _line: u64, _hit: bool) {}

    fn probes(&mut self, ctx: &Lookahead<'_>, budget: usize, out: &mut Vec<Addr>) {
        let Some(demand) = ctx.demand else { return };
        let line = demand.line_index(ctx.line_bytes);
        if line == self.last_line {
            return; // already covered this demand line
        }
        self.last_line = line;
        for i in 1..=self.degree.min(budget as u64) {
            out.push(Addr::new((line + i) * ctx.line_bytes));
        }
    }

    fn storage_bits(&self) -> u64 {
        64 // the last-line register
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(demand: u64) -> Lookahead<'static> {
        Lookahead {
            demand: Some(Addr::new(demand)),
            queued: &[],
            predicted_next: None,
            line_bytes: 128,
        }
    }

    #[test]
    fn emits_following_lines_once_per_demand_line() {
        let mut p = NextLine::new(2);
        let mut out = Vec::new();
        p.probes(&ctx(0x1000), 4, &mut out);
        assert_eq!(out, vec![Addr::new(0x1080), Addr::new(0x1100)]);
        out.clear();
        // Same line again (later insts of the same line): nothing new.
        p.probes(&ctx(0x1040), 4, &mut out);
        assert!(out.is_empty());
        // Next line: advances.
        p.probes(&ctx(0x1080), 4, &mut out);
        assert_eq!(out, vec![Addr::new(0x1100), Addr::new(0x1180)]);
    }

    #[test]
    fn budget_caps_emission() {
        let mut p = NextLine::new(4);
        let mut out = Vec::new();
        p.probes(&ctx(0x0), 1, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn no_demand_no_probes() {
        let mut p = NextLine::new(2);
        let mut out = Vec::new();
        let c = Lookahead { demand: None, queued: &[], predicted_next: None, line_bytes: 128 };
        p.probes(&c, 4, &mut out);
        assert!(out.is_empty());
    }
}
