//! MANA-style record prefetcher keyed on miss history.

use sfetch_isa::Addr;

use crate::{Lookahead, Prefetcher};

/// Successor miss lines recorded per trigger.
const RECORD_LEN: usize = 4;

/// Staged-probe buffer bound (records chained by back-to-back misses).
const PENDING_CAP: usize = 16;

/// One record: the miss lines that followed `tag` the last times it
/// missed.
#[derive(Debug, Clone, Copy)]
struct Record {
    tag: u64,
    succ: [u64; RECORD_LEN],
    n: u8,
}

const EMPTY: Record = Record { tag: u64::MAX, succ: [0; RECORD_LEN], n: 0 };

/// A record prefetcher in the spirit of MANA (Ansari et al., HPCA 2020,
/// see PAPERS.md): every L1i miss becomes a *trigger* whose table entry
/// accumulates the miss lines observed next; when the trigger misses
/// again, its recorded successors are replayed as prefetches. Unlike the
/// stream-directed policy it needs no lookahead structure — it learns
/// the miss stream itself — so it also covers front-ends without an FTQ
/// and miss sequences that cross predicted-stream boundaries.
#[derive(Debug)]
pub struct Mana {
    records: Vec<Record>,
    mask: u64,
    last_miss: u64,
    pending: Vec<u64>,
}

impl Mana {
    /// Builds the prefetcher with a direct-mapped record table of
    /// `entries` (a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "record table must be a power of two");
        Mana {
            records: vec![EMPTY; entries],
            mask: entries as u64 - 1,
            last_miss: u64::MAX,
            pending: Vec::with_capacity(PENDING_CAP),
        }
    }

    /// The default geometry: 1K records × 4 successors (≈13KB).
    pub fn table2() -> Self {
        Self::new(1024)
    }

    #[inline]
    fn index(&self, line: u64) -> usize {
        // Lines are sequential integers; spread them before masking.
        ((line.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 17) & self.mask) as usize
    }
}

impl Prefetcher for Mana {
    fn name(&self) -> &'static str {
        "mana"
    }

    fn observe_demand(&mut self, line: u64, hit: bool) {
        if hit {
            return;
        }
        // Train: append this miss to the previous trigger's record.
        if self.last_miss != u64::MAX && self.last_miss != line {
            let idx = self.index(self.last_miss);
            let r = &mut self.records[idx];
            if r.tag != self.last_miss {
                *r = Record { tag: self.last_miss, ..EMPTY };
            }
            let known = r.succ[..usize::from(r.n)].contains(&line);
            if !known {
                if usize::from(r.n) < RECORD_LEN {
                    r.succ[usize::from(r.n)] = line;
                    r.n += 1;
                } else {
                    // FIFO replacement inside the record.
                    r.succ.rotate_left(1);
                    r.succ[RECORD_LEN - 1] = line;
                }
            }
        }
        self.last_miss = line;
        // Replay: stage this trigger's recorded successors.
        let r = self.records[self.index(line)];
        if r.tag == line {
            for &s in &r.succ[..usize::from(r.n)] {
                if self.pending.len() < PENDING_CAP && !self.pending.contains(&s) {
                    self.pending.push(s);
                }
            }
        }
    }

    fn probes(&mut self, ctx: &Lookahead<'_>, budget: usize, out: &mut Vec<Addr>) {
        let n = self.pending.len().min(budget);
        for line in self.pending.drain(..n) {
            out.push(Addr::new(line * ctx.line_bytes));
        }
    }

    fn storage_bits(&self) -> u64 {
        // Tag (~26 bits of line index) + 4 successors + valid count.
        self.records.len() as u64 * (26 + RECORD_LEN as u64 * 26 + 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Lookahead<'static> {
        Lookahead { demand: None, queued: &[], predicted_next: None, line_bytes: 128 }
    }

    #[test]
    fn replays_recorded_miss_successors() {
        let mut p = Mana::new(64);
        // Teach the miss chain 10 -> 20 -> 30.
        p.observe_demand(10, false);
        p.observe_demand(20, false);
        p.observe_demand(30, false);
        let mut out = Vec::new();
        p.probes(&ctx(), 8, &mut out);
        out.clear();
        // Re-trigger at 10: its record holds 20.
        p.observe_demand(10, false);
        p.probes(&ctx(), 8, &mut out);
        assert_eq!(out, vec![Addr::new(20 * 128)]);
        // And 20's record holds 30 (triggered by the *observed* miss).
        out.clear();
        p.observe_demand(20, false);
        p.probes(&ctx(), 8, &mut out);
        assert_eq!(out, vec![Addr::new(30 * 128)]);
    }

    #[test]
    fn hits_do_not_train() {
        let mut p = Mana::new(64);
        p.observe_demand(10, false);
        p.observe_demand(20, true); // hit: not a successor
        p.observe_demand(30, false);
        let mut out = Vec::new();
        p.observe_demand(10, false);
        p.probes(&ctx(), 8, &mut out);
        assert_eq!(out, vec![Addr::new(30 * 128)], "only misses enter records");
    }

    #[test]
    fn record_replacement_is_bounded() {
        let mut p = Mana::new(64);
        for succ in 100..120 {
            p.observe_demand(10, false);
            p.observe_demand(succ, false);
        }
        p.pending.clear();
        p.observe_demand(10, false);
        let mut out = Vec::new();
        p.probes(&ctx(), 32, &mut out);
        assert!(out.len() <= RECORD_LEN, "record holds at most {RECORD_LEN} successors");
    }
}
