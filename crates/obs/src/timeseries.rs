//! Interval time-series of cycle-accounting deltas.
//!
//! A [`TimeSeriesSink`] turns a stream of *delta* column vectors (one per
//! simulated chunk or sampled window) into JSONL rows of roughly
//! `interval` committed instructions each. Deltas are accumulated whole —
//! a chunk is never split across rows — so **summing any column over all
//! emitted rows reproduces the end-of-run aggregate exactly**: no cycles
//! are dropped or double-counted at interval boundaries. (Row granularity
//! is therefore `interval` rounded up to the caller's chunk size; callers
//! that want exact interval boundaries drive the simulator in
//! `interval`-sized chunks.)
//!
//! The sink is simulator-agnostic: columns are declared by name at
//! construction and fed as plain `u64` slices. `sfetch-bench` supplies
//! the `SimStats`-to-columns conversion.

use std::io::{self, Write};

use crate::jsonl::{str_array, Row};

/// JSONL time-series writer; see the [module docs](self).
#[derive(Debug)]
pub struct TimeSeriesSink<W: Write> {
    out: W,
    columns: Vec<&'static str>,
    /// Index of the committed-instructions column that drives row
    /// boundaries.
    key: usize,
    interval: u64,
    acc: Vec<u64>,
    total: Vec<u64>,
    rows: u64,
}

impl<W: Write> TimeSeriesSink<W> {
    /// Creates a sink over `out`, writing a header row naming the
    /// `columns`. `key` is the index of the column that counts committed
    /// instructions; a row is emitted whenever the accumulated deltas
    /// reach `interval` in that column (`interval == 0` emits one row per
    /// recorded delta — the sampled runners' per-window mode).
    pub fn new(
        mut out: W,
        columns: &[&'static str],
        key: usize,
        interval: u64,
    ) -> io::Result<Self> {
        assert!(key < columns.len(), "key column out of range");
        let header = Row::new()
            .s("row", "header")
            .raw("columns", &str_array(columns))
            .s("key", columns[key])
            .u("interval", interval)
            .finish();
        writeln!(out, "{header}")?;
        Ok(TimeSeriesSink {
            out,
            columns: columns.to_vec(),
            key,
            interval,
            acc: vec![0; columns.len()],
            total: vec![0; columns.len()],
            rows: 0,
        })
    }

    /// Records one delta vector (same length and order as the declared
    /// columns), emitting a row if the interval is reached.
    pub fn record(&mut self, delta: &[u64]) -> io::Result<()> {
        assert_eq!(delta.len(), self.columns.len(), "delta arity mismatch");
        for (a, d) in self.acc.iter_mut().zip(delta) {
            *a += d;
        }
        for (t, d) in self.total.iter_mut().zip(delta) {
            *t += d;
        }
        if self.interval == 0 || self.acc[self.key] >= self.interval {
            self.flush_row()?;
        }
        Ok(())
    }

    fn flush_row(&mut self) -> io::Result<()> {
        if self.acc.iter().all(|&v| v == 0) {
            return Ok(());
        }
        let mut row = Row::new()
            .u("row", self.rows)
            .u("end", self.total[self.key]);
        for (c, v) in self.columns.iter().zip(&self.acc) {
            row = row.u(c, *v);
        }
        writeln!(self.out, "{}", row.finish())?;
        self.rows += 1;
        self.acc.iter_mut().for_each(|v| *v = 0);
        Ok(())
    }

    /// Emits any partial final row, flushes the writer, and returns the
    /// per-column totals (the exact sum of every recorded delta).
    pub fn finish(mut self) -> io::Result<Vec<u64>> {
        self.flush_row()?;
        self.out.flush()?;
        Ok(self.total)
    }

    /// Rows emitted so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_u64(line: &str, key: &str) -> Option<u64> {
        let pat = format!("\"{key}\":");
        let at = line.find(&pat)? + pat.len();
        let rest = &line[at..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        rest[..end].parse().ok()
    }

    #[test]
    fn rows_partition_the_deltas_exactly() {
        let mut buf = Vec::new();
        {
            let mut sink =
                TimeSeriesSink::new(&mut buf, &["committed", "cycles"], 0, 100).unwrap();
            // Chunks of 60 committed: rows land at 120, 240, ... plus a
            // 60-inst residual row from finish().
            for _ in 0..7 {
                sink.record(&[60, 31]).unwrap();
            }
            let totals = sink.finish().unwrap();
            assert_eq!(totals, vec![420, 217]);
        }
        let text = String::from_utf8(buf).unwrap();
        let mut committed = 0;
        let mut cycles = 0;
        let mut rows = 0;
        for line in text.lines().skip(1) {
            committed += parse_u64(line, "committed").unwrap();
            cycles += parse_u64(line, "cycles").unwrap();
            rows += 1;
        }
        assert_eq!((committed, cycles), (420, 217), "row sums must equal the aggregate");
        assert_eq!(rows, 4, "3 full rows + 1 residual");
    }

    #[test]
    fn per_window_mode_emits_every_delta() {
        let mut buf = Vec::new();
        let mut sink = TimeSeriesSink::new(&mut buf, &["committed"], 0, 0).unwrap();
        sink.record(&[5]).unwrap();
        sink.record(&[7]).unwrap();
        assert_eq!(sink.rows(), 2);
        assert_eq!(sink.finish().unwrap(), vec![12]);
    }
}
