//! Logarithmic wall-time histograms for fleet cell-duration reports.

/// A base-2 logarithmic histogram of millisecond durations: bucket `i`
/// holds samples in `[2^i, 2^(i+1))` ms (bucket 0 additionally holds 0).
/// Renders as a compact multi-line summary for the merge report, so
/// stragglers and retry-inflated cells stand out after a chaos run.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    samples: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration in milliseconds.
    pub fn record(&mut self, ms: u64) {
        let bucket = (64 - ms.leading_zeros()).saturating_sub(1) as usize;
        if self.counts.len() <= bucket {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
        self.samples.push(ms);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `q`-quantile (0.0 ..= 1.0) of the recorded durations, by
    /// nearest-rank on the sorted samples; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Renders the histogram: one line per occupied bucket with a scaled
    /// bar, then a quantile summary line. `indent` prefixes every line.
    pub fn render(&self, indent: &str) -> String {
        let mut out = String::new();
        if self.samples.is_empty() {
            out.push_str(indent);
            out.push_str("(no samples)\n");
            return out;
        }
        let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let lo = if i == 0 { 0 } else { 1u64 << i };
            let hi = (1u64 << (i + 1)) - 1;
            let bar = "#".repeat(((c * 40).div_ceil(max)) as usize);
            out.push_str(&format!("{indent}{lo:>7}-{hi:<7} ms |{bar} {c}\n"));
        }
        out.push_str(&format!(
            "{indent}n={} p50={}ms p95={}ms max={}ms\n",
            self.samples.len(),
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(1.0),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_and_quantiles() {
        let mut h = Histogram::new();
        for ms in [0, 1, 3, 4, 100, 1000] {
            h.record(ms);
        }
        assert_eq!(h.len(), 6);
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 1000);
        let text = h.render("  ");
        assert!(text.contains("n=6"), "{text}");
        assert!(text.contains("p95=1000ms"), "{text}");
        // 0 and 1 share bucket 0; 3 is bucket 1; 4 bucket 2.
        assert!(text.contains("      0-1       ms |"), "{text}");
    }

    #[test]
    fn empty_histogram_renders() {
        assert!(Histogram::new().render("").contains("no samples"));
        assert_eq!(Histogram::new().quantile(0.5), 0);
        assert!(Histogram::new().is_empty());
    }
}
