//! Mutex-guarded progress reporting for parallel runs.
//!
//! With `--jobs N` (worker threads) or `--procs N` (the fleet supervisor)
//! progress lines are emitted concurrently; writing them through a shared
//! [`Reporter`] keeps each line atomic on stderr instead of interleaving
//! characters from concurrent `eprintln!` calls. This is the one progress
//! implementation the grid, the fleet supervisor, and the sampled runners
//! all report through.

use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Serializes progress lines onto stderr: one lock per full line.
#[derive(Debug, Default)]
pub struct Reporter {
    lock: Mutex<()>,
}

impl Reporter {
    /// Creates a reporter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes one complete line to stderr under the lock.
    pub fn line(&self, args: std::fmt::Arguments<'_>) {
        let _guard = self.lock.lock().expect("reporter lock poisoned");
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "{args}");
    }
}

/// Tracks completion of a benchmark-major simulation grid: counts the
/// remaining points of each benchmark and reports when its last point
/// finishes, from whichever worker thread that happens on.
#[derive(Debug)]
pub struct GridProgress {
    reporter: Reporter,
    t0: Instant,
    remaining: Vec<AtomicUsize>,
    benches_done: AtomicUsize,
    n_benches: usize,
}

impl GridProgress {
    /// Sets up tracking for `n_benches` benchmarks of `points_per_bench`
    /// grid points each.
    pub fn new(n_benches: usize, points_per_bench: usize) -> Self {
        GridProgress {
            reporter: Reporter::new(),
            t0: Instant::now(),
            remaining: (0..n_benches).map(|_| AtomicUsize::new(points_per_bench)).collect(),
            benches_done: AtomicUsize::new(0),
            n_benches,
        }
    }

    /// Records one finished point of benchmark `w_idx`; prints the
    /// benchmark's completion line when its last point lands.
    pub fn point_done(&self, w_idx: usize, name: &str) {
        let left = self.remaining[w_idx].fetch_sub(1, Ordering::AcqRel);
        if left == 1 {
            let done = self.benches_done.fetch_add(1, Ordering::AcqRel) + 1;
            self.reporter.line(format_args!(
                "  [{name}] done ({done}/{} benchmarks, {:.1}s elapsed)",
                self.n_benches,
                self.t0.elapsed().as_secs_f64()
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_down_once_per_bench() {
        let g = GridProgress::new(2, 3);
        for _ in 0..3 {
            g.point_done(0, "a");
        }
        for _ in 0..3 {
            g.point_done(1, "b");
        }
        assert_eq!(g.benches_done.load(Ordering::Acquire), 2);
    }

    #[test]
    fn reporter_is_shareable_across_threads() {
        let r = Reporter::new();
        std::thread::scope(|s| {
            for i in 0..4 {
                let r = &r;
                s.spawn(move || r.line(format_args!("thread {i} reporting")));
            }
        });
    }
}
