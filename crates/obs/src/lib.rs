//! # sfetch-obs
//!
//! The observability layer of the `stream-fetch` reproduction: everything
//! the simulator, the sampled runners, and the fault-tolerant fleet use to
//! *report* rather than to *simulate*.
//!
//! * [`progress`] — the mutex-guarded progress [`Reporter`] and the
//!   benchmark-grid countdown [`GridProgress`] (promoted here from the
//!   bench harness so grid, fleet supervisor, and sampled runners share
//!   one implementation).
//! * [`jsonl`] — a minimal line-JSON row builder ([`jsonl::Row`]) and
//!   append-only file writer ([`jsonl::JsonlFile`]) shared by every sink.
//! * [`timeseries`] — [`TimeSeriesSink`]: interval snapshots of
//!   cycle-accounting deltas, column-sum-exact by construction (the rows
//!   partition the run; summing any column over all rows reproduces the
//!   end-of-run aggregate).
//! * [`konata`] — [`KonataTrace`]: per-instruction pipeline event traces
//!   in the Konata visualizer's log format, plus a [`konata::validate`]
//!   parser used by tests and CI.
//! * [`hist`] — [`Histogram`]: logarithmic wall-time histograms for the
//!   fleet's per-cell duration report.
//!
//! This crate is **deliberately dependency-free** (std only): the
//! simulator-agnostic `sfetch-fleet` crate depends on it, so nothing in
//! here may know about engines, processors, or statistics structs. Sinks
//! take plain column arrays and cycle-stamped events; the conversion from
//! simulator types lives with the callers (`sfetch-bench`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod jsonl;
pub mod konata;
pub mod progress;
pub mod timeseries;

pub use hist::Histogram;
pub use jsonl::{JsonlFile, Row};
pub use konata::KonataTrace;
pub use progress::{GridProgress, Reporter};
pub use timeseries::TimeSeriesSink;
