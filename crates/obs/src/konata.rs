//! Per-instruction pipeline event traces in the Konata log format.
//!
//! [Konata](https://github.com/shioyadan/Konata) is a pipeline visualizer
//! whose log format (`Kanata\t0004`) stamps per-instruction stage
//! occupancy cycle by cycle. A [`KonataTrace`] buffers the pipeline
//! events of a short, gated window of instructions (by fetch sequence
//! number) and serializes them on [`KonataTrace::write`]; [`validate`]
//! parses a trace back (used by tests and the CI smoke leg).
//!
//! The trace maps this simulator's lumped pipeline onto three lane-0
//! stages: `F` (front pipeline: fetch through rename, the
//! `FrontPipeline::depth` region), `X` (issue to completion), and `W`
//! (completed, waiting to commit). Squashed instructions close their open
//! stage at the squash cycle and retire with Konata's flush type.

use std::io::{self, Write};
use std::path::Path;

/// Event record of one traced instruction.
#[derive(Debug, Clone, Copy)]
struct TraceInst {
    seq: u64,
    pc: u64,
    wrong_path: bool,
    fetch_at: u64,
    issue_at: Option<u64>,
    done_at: Option<u64>,
    retire_at: Option<u64>,
    squashed: bool,
}

/// A buffered Konata pipeline trace of the fetch-sequence window
/// `[start, end)`; see the [module docs](self).
#[derive(Debug)]
pub struct KonataTrace {
    start: u64,
    end: u64,
    first: Option<u64>,
    insts: Vec<TraceInst>,
}

impl KonataTrace {
    /// Creates a trace capturing fetch sequence numbers in `[start, end)`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start < end, "empty trace range");
        KonataTrace { start, end, first: None, insts: Vec::new() }
    }

    /// Whether `seq` falls in the traced window.
    #[inline]
    pub fn in_range(&self, seq: u64) -> bool {
        seq >= self.start && seq < self.end
    }

    #[inline]
    fn idx(&self, seq: u64) -> Option<usize> {
        let first = self.first?;
        if seq < first {
            return None;
        }
        let i = (seq - first) as usize;
        (i < self.insts.len() && self.insts[i].seq == seq).then_some(i)
    }

    /// Records an instruction entering the front pipeline. Sequence
    /// numbers must arrive in increasing order (fetch order).
    #[inline]
    pub fn fetched(&mut self, now: u64, seq: u64, pc: u64, wrong_path: bool) {
        if !self.in_range(seq) {
            return;
        }
        if self.first.is_none() {
            self.first = Some(seq);
        }
        debug_assert_eq!(
            self.first.map(|f| f + self.insts.len() as u64),
            Some(seq),
            "fetch sequence numbers must be contiguous"
        );
        self.insts.push(TraceInst {
            seq,
            pc,
            wrong_path,
            fetch_at: now,
            issue_at: None,
            done_at: None,
            retire_at: None,
            squashed: false,
        });
    }

    /// Records an instruction issuing to execute, completing at `done_at`.
    #[inline]
    pub fn issued(&mut self, now: u64, seq: u64, done_at: u64) {
        if let Some(i) = self.idx(seq) {
            self.insts[i].issue_at = Some(now);
            self.insts[i].done_at = Some(done_at);
        }
    }

    /// Records an instruction committing.
    #[inline]
    pub fn committed(&mut self, now: u64, seq: u64) {
        if let Some(i) = self.idx(seq) {
            self.insts[i].retire_at = Some(now);
        }
    }

    /// Records an instruction squashed by a recovery.
    #[inline]
    pub fn squashed(&mut self, now: u64, seq: u64) {
        if let Some(i) = self.idx(seq) {
            self.insts[i].retire_at = Some(now);
            self.insts[i].squashed = true;
        }
    }

    /// Instructions captured so far.
    pub fn captured(&self) -> usize {
        self.insts.len()
    }

    /// Serializes the trace. Instructions still in flight (no retire
    /// event) are closed out at their last recorded event and flagged as
    /// flushed, so a trace cut off mid-run still parses.
    pub fn write<W: Write>(&self, mut w: W) -> io::Result<()> {
        // (cycle, id, order, command) — stable-sorted so all commands land
        // on their cycle with I/L/E before S before R within one id.
        let mut cmds: Vec<(u64, usize, u8, String)> = Vec::with_capacity(self.insts.len() * 8);
        for (id, t) in self.insts.iter().enumerate() {
            let path = if t.wrong_path { "wrong-path" } else { "correct-path" };
            cmds.push((t.fetch_at, id, 0, format!("I\t{id}\t{}\t0", t.seq)));
            cmds.push((t.fetch_at, id, 1, format!("L\t{id}\t0\tseq {} pc {:#x} {path}", t.seq, t.pc)));
            cmds.push((t.fetch_at, id, 2, format!("S\t{id}\t0\tF")));
            // The retire cycle caps every later stage edge: a squash can
            // land while execution is still in flight.
            let cap = t.retire_at;
            let clamp = |at: u64| cap.map_or(at, |c| at.min(c));
            let mut open = "F";
            if let Some(at) = t.issue_at {
                let at = clamp(at);
                cmds.push((at, id, 3, format!("E\t{id}\t0\tF")));
                cmds.push((at, id, 4, format!("S\t{id}\t0\tX")));
                open = "X";
                if let Some(done) = t.done_at {
                    let done = clamp(done);
                    if !t.squashed || done < cap.unwrap_or(u64::MAX) {
                        cmds.push((done, id, 5, format!("E\t{id}\t0\tX")));
                        cmds.push((done, id, 6, format!("S\t{id}\t0\tW")));
                        open = "W";
                    }
                }
            }
            let (retire_at, flushed) = match t.retire_at {
                Some(at) => (at, t.squashed),
                // In flight at end of trace: close at the last known edge.
                None => (t.done_at.unwrap_or(t.issue_at.unwrap_or(t.fetch_at)), true),
            };
            cmds.push((retire_at, id, 7, format!("E\t{id}\t0\t{open}")));
            cmds.push((
                retire_at,
                id,
                8,
                format!("R\t{id}\t{}\t{}", t.seq, u8::from(flushed)),
            ));
        }
        cmds.sort_by_key(|&(cycle, id, ord, _)| (cycle, id, ord));
        writeln!(w, "Kanata\t0004")?;
        let mut cursor = None;
        for (cycle, _, _, cmd) in cmds {
            match cursor {
                None => writeln!(w, "C=\t{cycle}")?,
                Some(c) if cycle > c => writeln!(w, "C\t{}", cycle - c)?,
                _ => {}
            }
            cursor = Some(cycle);
            writeln!(w, "{cmd}")?;
        }
        w.flush()
    }

    /// Writes the trace to a file, creating parent directories.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        self.write(io::BufWriter::new(std::fs::File::create(path)?))
    }
}

/// Summary returned by [`validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidateSummary {
    /// Instructions declared (`I` commands).
    pub insts: u64,
    /// Instructions retired normally.
    pub retired: u64,
    /// Instructions flushed (squashed or cut off).
    pub flushed: u64,
    /// Cycles spanned by the trace.
    pub cycles: u64,
}

/// Parses a Konata trace, checking structural invariants: the header, a
/// monotone cycle cursor, stage starts/ends that match per instruction,
/// and a retire command for every declared instruction. Returns counts on
/// success and a description of the first violation otherwise.
pub fn validate(text: &str) -> Result<ValidateSummary, String> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, "Kanata\t0004")) => {}
        other => return Err(format!("bad header: {:?}", other.map(|(_, l)| l))),
    }
    let mut cursor: Option<u64> = None;
    let mut first_cycle = None;
    // Per declared id: the currently open stage and whether it retired.
    let mut open: Vec<Option<String>> = Vec::new();
    let mut retired: Vec<bool> = Vec::new();
    let mut n_retired = 0u64;
    let mut n_flushed = 0u64;
    let err = |n: usize, msg: String| Err(format!("line {}: {msg}", n + 1));
    let parse_id = |f: &[&str], declared: usize| -> Result<usize, String> {
        f.get(1)
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&id| id < declared)
            .ok_or_else(|| format!("bad or undeclared id in {f:?}"))
    };
    for (n, line) in lines {
        if line.is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split('\t').collect();
        match f[0] {
            "C=" => {
                let c: u64 = f[1].parse().map_err(|_| format!("line {}: bad C=", n + 1))?;
                cursor = Some(c);
                first_cycle = Some(c);
            }
            "C" => {
                let d: u64 = f[1].parse().map_err(|_| format!("line {}: bad C", n + 1))?;
                match cursor.as_mut() {
                    Some(c) => *c += d,
                    None => return err(n, "C before C=".into()),
                }
            }
            "I" => {
                open.push(None);
                retired.push(false);
                if f.len() < 4 {
                    return err(n, format!("short I command {line:?}"));
                }
            }
            "L" => {
                if let Err(e) = parse_id(&f, open.len()) {
                    return err(n, e);
                }
            }
            "S" => {
                let id = match parse_id(&f, open.len()) {
                    Ok(id) => id,
                    Err(e) => return err(n, e),
                };
                if retired[id] {
                    return err(n, format!("stage start after retire for id {id}"));
                }
                if let Some(s) = &open[id] {
                    return err(n, format!("stage {s} still open for id {id}"));
                }
                open[id] = Some(f.get(3).unwrap_or(&"").to_string());
            }
            "E" => {
                let id = match parse_id(&f, open.len()) {
                    Ok(id) => id,
                    Err(e) => return err(n, e),
                };
                let stage = f.get(3).unwrap_or(&"").to_string();
                if open[id].as_deref() != Some(stage.as_str()) {
                    return err(
                        n,
                        format!("stage end {stage:?} does not match open {:?}", open[id]),
                    );
                }
                open[id] = None;
            }
            "R" => {
                let id = match parse_id(&f, open.len()) {
                    Ok(id) => id,
                    Err(e) => return err(n, e),
                };
                if retired[id] {
                    return err(n, format!("double retire for id {id}"));
                }
                if open[id].is_some() {
                    return err(n, format!("retire with open stage for id {id}"));
                }
                retired[id] = true;
                match f.get(3) {
                    Some(&"0") => n_retired += 1,
                    Some(&"1") => n_flushed += 1,
                    other => return err(n, format!("bad retire type {other:?}")),
                }
            }
            other => return err(n, format!("unknown command {other:?}")),
        }
    }
    if let Some(id) = retired.iter().position(|&r| !r) {
        return Err(format!("instruction id {id} never retired"));
    }
    Ok(ValidateSummary {
        insts: open.len() as u64,
        retired: n_retired,
        flushed: n_flushed,
        cycles: match (first_cycle, cursor) {
            (Some(a), Some(b)) => b - a + 1,
            _ => 0,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_round_trips_through_validate() {
        let mut t = KonataTrace::new(10, 14);
        t.fetched(100, 9, 0x40, false); // below range: ignored
        t.fetched(100, 10, 0x44, false);
        t.fetched(100, 11, 0x48, false);
        t.fetched(101, 12, 0x4c, true);
        t.fetched(101, 14, 0x50, false); // above range: ignored
        t.issued(112, 10, 113);
        t.issued(113, 11, 120);
        t.committed(114, 10);
        t.squashed(115, 11); // squash before its completion at 120
        t.squashed(115, 12); // squash before issue
        assert_eq!(t.captured(), 3);
        let mut buf = Vec::new();
        t.write(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let s = validate(&text).expect("trace must validate");
        assert_eq!(s.insts, 3);
        assert_eq!(s.retired, 1);
        assert_eq!(s.flushed, 2);
        assert_eq!(s.cycles, 16, "cycles 100..=115");
    }

    #[test]
    fn validate_rejects_malformed_traces() {
        assert!(validate("nonsense").is_err());
        assert!(validate("Kanata\t0004\nS\t0\t0\tF\n").is_err(), "undeclared id");
        assert!(
            validate("Kanata\t0004\nC=\t5\nI\t0\t0\t0\n").is_err(),
            "unretired instruction"
        );
        assert!(
            validate("Kanata\t0004\nC=\t5\nI\t0\t0\t0\nS\t0\t0\tF\nE\t0\t0\tX\n").is_err(),
            "mismatched stage end"
        );
    }
}
