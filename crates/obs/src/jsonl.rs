//! Minimal line-JSON (JSONL) building blocks shared by every sink.
//!
//! Nothing here knows about simulator types: a [`Row`] is built field by
//! field from plain scalars, and a [`JsonlFile`] appends finished rows to
//! a file, flushing each line so readers (and crash post-mortems) always
//! see whole records.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Escapes a string for inclusion in a JSON string literal.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One JSON object, built left to right. Keys are written in call order;
/// the caller is responsible for not repeating them.
#[derive(Debug)]
pub struct Row {
    buf: String,
}

impl Row {
    /// Starts an empty object.
    pub fn new() -> Self {
        Row { buf: String::from("{") }
    }

    fn key(&mut self, k: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&esc(k));
        self.buf.push_str("\":");
    }

    /// Appends an unsigned integer field.
    pub fn u(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Appends a float field (`null` for non-finite values, which JSON
    /// cannot represent).
    pub fn f(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        if v.is_finite() {
            self.buf.push_str(&format!("{v}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Appends a string field.
    pub fn s(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&esc(v));
        self.buf.push('"');
        self
    }

    /// Appends a boolean field.
    pub fn b(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Appends a pre-serialized JSON value verbatim (arrays, nested
    /// objects).
    pub fn raw(mut self, k: &str, json: &str) -> Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for Row {
    fn default() -> Self {
        Self::new()
    }
}

/// Serializes a string slice as a JSON array of strings (for [`Row::raw`]).
pub fn str_array(items: &[&str]) -> String {
    let mut out = String::from("[");
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&esc(s));
        out.push('"');
    }
    out.push(']');
    out
}

/// An append-only JSONL file: one [`Row`] per line, flushed per line.
#[derive(Debug)]
pub struct JsonlFile {
    path: PathBuf,
    w: BufWriter<File>,
}

impl JsonlFile {
    /// Creates (truncating) a JSONL file, creating parent directories.
    pub fn create(path: &Path) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let f = File::create(path)?;
        Ok(JsonlFile { path: path.to_path_buf(), w: BufWriter::new(f) })
    }

    /// Opens a JSONL file for appending (creating it if absent).
    pub fn append(path: &Path) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let f = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlFile { path: path.to_path_buf(), w: BufWriter::new(f) })
    }

    /// Writes one finished row as a line and flushes it.
    pub fn write_row(&mut self, row: Row) -> io::Result<()> {
        self.write_line(&row.finish())
    }

    /// Writes an already-serialized line (no trailing newline) and
    /// flushes it — for callers that need the text as well (size
    /// accounting, mirroring to a second sink).
    pub fn write_line(&mut self, line: &str) -> io::Result<()> {
        self.w.write_all(line.as_bytes())?;
        self.w.write_all(b"\n")?;
        self.w.flush()
    }

    /// The file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_builds_valid_json() {
        let r = Row::new()
            .s("event", "lease \"x\"\n")
            .u("cell", 3)
            .f("ipc", 2.5)
            .b("ok", true)
            .f("bad", f64::NAN)
            .raw("cols", &str_array(&["a", "b"]));
        assert_eq!(
            r.finish(),
            "{\"event\":\"lease \\\"x\\\"\\n\",\"cell\":3,\"ipc\":2.5,\"ok\":true,\
             \"bad\":null,\"cols\":[\"a\",\"b\"]}"
        );
    }

    #[test]
    fn jsonl_file_appends_lines() {
        let dir = std::env::temp_dir().join(format!("sfetch-obs-jsonl-{}", std::process::id()));
        let path = dir.join("t.jsonl");
        {
            let mut f = JsonlFile::create(&path).unwrap();
            f.write_row(Row::new().u("a", 1)).unwrap();
        }
        {
            let mut f = JsonlFile::append(&path).unwrap();
            f.write_row(Row::new().u("a", 2)).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"a\":2}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
