//! Open-addressed hash tables for the simulator's map-heavy hot paths.
//!
//! `std::collections::HashMap` is a chained SipHash table: every probe
//! pays a strong hash plus pointer-chasing through heap buckets, which
//! shows up hard in profile on paths that hit a map once per committed
//! instruction (stream working sets, edge profiles, ledger lookups).
//! [`OpenMap`] is the `hashbrown`-style alternative the riscv-sim
//! exemplar uses in its OoO core: a single flat allocation of
//! `Option<(K, V)>` slots, power-of-two capacity, FNV-1a hashing, and
//! linear probing with backward-shift deletion (no tombstones, so load
//! factor never degrades from churn).
//!
//! The crate is `std`-only by design — the build environment has no
//! registry access, so this is a vendored reimplementation of exactly
//! the surface the workspace needs, not a general-purpose collection.
//!
//! Determinism contract: iteration order is **probe order** (a pure
//! function of the inserted keys and the table's growth history), never
//! randomized — two tables built by the same insert sequence iterate
//! identically, which the bit-identical merge oracles rely on. Equality
//! ([`PartialEq`]) is order-independent, matching `HashMap` semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::borrow::Borrow;
use std::hash::{Hash, Hasher};

/// FNV-1a, the workspace's standard cheap hash (the shard trailer and
/// chaos harness already key on it). Strong enough for the simulator's
/// low-entropy keys (addresses, small tuples, cell ids); 3–4× cheaper
/// than SipHash per lookup on short keys.
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Hashes one value with [`FnvHasher`].
pub fn fnv_hash<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut h = FnvHasher::default();
    key.hash(&mut h);
    h.finish()
}

const INITIAL_CAP: usize = 16;

/// An open-addressed hash map: flat slot array, power-of-two capacity,
/// FNV-1a hashing, linear probing, backward-shift deletion.
///
/// Grows at 7/8 load factor (hashbrown's threshold). Iteration order is
/// deterministic probe order — see the crate docs for the contract.
///
/// ```
/// use sfetch_tab::OpenMap;
///
/// let mut m: OpenMap<u64, u64> = OpenMap::new();
/// *m.entry_or_insert(7, 0) += 1;
/// *m.entry_or_insert(7, 0) += 1;
/// assert_eq!(m.get(&7), Some(&2));
/// assert_eq!(m.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct OpenMap<K, V> {
    slots: Vec<Option<(K, V)>>,
    len: usize,
}

impl<K, V> Default for OpenMap<K, V> {
    fn default() -> Self {
        OpenMap { slots: Vec::new(), len: 0 }
    }
}

impl<K: Hash + Eq, V> OpenMap<K, V> {
    /// Creates an empty map (no allocation until the first insert).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a map pre-sized for `n` entries without rehashing.
    pub fn with_capacity(n: usize) -> Self {
        let cap = Self::cap_for(n);
        let mut slots = Vec::with_capacity(cap);
        slots.resize_with(cap, || None);
        OpenMap { slots, len: 0 }
    }

    fn cap_for(n: usize) -> usize {
        // 7/8 max load: capacity must exceed n * 8/7.
        let needed = n.saturating_mul(8) / 7 + 1;
        needed.next_power_of_two().max(INITIAL_CAP)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    /// Index of `key`'s slot if present.
    fn probe<Q>(&self, key: &Q) -> Option<usize>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.mask();
        let mut i = (fnv_hash(key) as usize) & mask;
        loop {
            match &self.slots[i] {
                None => return None,
                Some((k, _)) if k.borrow() == key => return Some(i),
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Looks up a value.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.probe(key).map(|i| &self.slots[i].as_ref().expect("probed slot occupied").1)
    }

    /// Looks up a value mutably.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let i = self.probe(key)?;
        Some(&mut self.slots[i].as_mut().expect("probed slot occupied").1)
    }

    /// Whether `key` is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.probe(key).is_some()
    }

    fn grow(&mut self) {
        let new_cap = if self.slots.is_empty() { INITIAL_CAP } else { self.slots.len() * 2 };
        let mut new_slots: Vec<Option<(K, V)>> = Vec::with_capacity(new_cap);
        new_slots.resize_with(new_cap, || None);
        let mask = new_cap - 1;
        for slot in self.slots.drain(..).flatten() {
            let mut i = (fnv_hash(&slot.0) as usize) & mask;
            while new_slots[i].is_some() {
                i = (i + 1) & mask;
            }
            new_slots[i] = Some(slot);
        }
        self.slots = new_slots;
    }

    /// Inserts `key → value`, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if self.slots.is_empty() || (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.mask();
        let mut i = (fnv_hash(&key) as usize) & mask;
        loop {
            match &mut self.slots[i] {
                slot @ None => {
                    *slot = Some((key, value));
                    self.len += 1;
                    return None;
                }
                Some((k, v)) if *k == key => {
                    return Some(std::mem::replace(v, value));
                }
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Returns a mutable reference to `key`'s value, inserting `default`
    /// first if absent — the `entry().or_insert()` idiom without the
    /// entry machinery.
    pub fn entry_or_insert(&mut self, key: K, default: V) -> &mut V {
        // Grow eagerly so the probe below always finds a free slot; an
        // update-in-place pays one early grow at worst.
        if self.slots.is_empty() || (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.mask();
        let mut i = (fnv_hash(&key) as usize) & mask;
        loop {
            match &self.slots[i] {
                None => {
                    self.slots[i] = Some((key, default));
                    self.len += 1;
                    break;
                }
                Some((k, _)) if *k == key => break,
                Some(_) => i = (i + 1) & mask,
            }
        }
        &mut self.slots[i].as_mut().expect("slot occupied").1
    }

    /// Removes `key`, returning its value. Backward-shift deletion keeps
    /// probe chains intact without tombstones.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let mut hole = self.probe(key)?;
        let (_, v) = self.slots[hole].take().expect("probed slot occupied");
        self.len -= 1;
        let mask = self.mask();
        // Shift back any displaced successors in the probe chain.
        let mut i = (hole + 1) & mask;
        while let Some((k, _)) = &self.slots[i] {
            let home = (fnv_hash(k) as usize) & mask;
            // The entry at `i` may move into `hole` only if its home
            // position lies outside the cyclic range (hole, i].
            let in_range = if hole <= i { home > hole && home <= i } else { home > hole || home <= i };
            if !in_range {
                self.slots[hole] = self.slots[i].take();
                hole = i;
            }
            i = (i + 1) & mask;
        }
        Some(v)
    }

    /// Iterates `(key, value)` in deterministic probe order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.slots.iter().filter_map(|s| s.as_ref().map(|(k, v)| (k, v)))
    }

    /// Iterates values mutably in deterministic probe order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.slots.iter_mut().filter_map(|s| s.as_mut().map(|(_, v)| v))
    }

    /// Iterates keys in deterministic probe order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates values in deterministic probe order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    /// Removes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.len = 0;
    }
}

/// Order-independent equality, matching `HashMap` semantics: same length
/// and every key maps to an equal value.
impl<K: Hash + Eq, V: PartialEq> PartialEq for OpenMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().all(|(k, v)| other.get(k) == Some(v))
    }
}

impl<K: Hash + Eq, V: Eq> Eq for OpenMap<K, V> {}

impl<K: Hash + Eq, V> FromIterator<(K, V)> for OpenMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let it = iter.into_iter();
        let mut m = OpenMap::with_capacity(it.size_hint().0);
        for (k, v) in it {
            m.insert(k, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_update() {
        let mut m: OpenMap<u64, String> = OpenMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, "a".into()), None);
        assert_eq!(m.insert(2, "b".into()), None);
        assert_eq!(m.insert(1, "c".into()), Some("a".into()));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&1).map(String::as_str), Some("c"));
        assert_eq!(m.get(&3), None);
        *m.get_mut(&2).expect("present") = "z".into();
        assert_eq!(m.get(&2).map(String::as_str), Some("z"));
    }

    #[test]
    fn growth_preserves_entries() {
        let mut m: OpenMap<u64, u64> = OpenMap::new();
        for i in 0..10_000 {
            m.insert(i * 2654435761 % 100_000, i);
        }
        for i in 0..10_000 {
            assert_eq!(m.get(&(i * 2654435761 % 100_000)), Some(&i), "key {i}");
        }
    }

    #[test]
    fn remove_backward_shift_keeps_chains() {
        // Force a dense table with colliding keys and remove from the
        // middle of probe chains.
        let mut m: OpenMap<u64, u64> = OpenMap::with_capacity(64);
        let keys: Vec<u64> = (0..48).collect();
        for &k in &keys {
            m.insert(k, k * 10);
        }
        for &k in keys.iter().step_by(3) {
            assert_eq!(m.remove(&k), Some(k * 10));
            assert_eq!(m.remove(&k), None, "double remove");
        }
        for &k in &keys {
            if k % 3 == 0 {
                assert_eq!(m.get(&k), None);
            } else {
                assert_eq!(m.get(&k), Some(&(k * 10)), "survivor {k} reachable after shifts");
            }
        }
        assert_eq!(m.len(), keys.len() - keys.iter().step_by(3).count());
    }

    #[test]
    fn equality_is_order_independent() {
        let mut a: OpenMap<u64, u64> = OpenMap::new();
        let mut b: OpenMap<u64, u64> = OpenMap::with_capacity(1000);
        for i in 0..100 {
            a.insert(i, i);
        }
        for i in (0..100).rev() {
            b.insert(i, i);
        }
        assert_eq!(a, b, "same entries, different history");
        b.insert(100, 100);
        assert_ne!(a, b);
    }

    #[test]
    fn iteration_is_deterministic() {
        let build = || {
            let mut m: OpenMap<u64, u64> = OpenMap::new();
            for i in 0..500 {
                m.insert(i * 7919, i);
            }
            m
        };
        let a: Vec<_> = build().iter().map(|(&k, &v)| (k, v)).collect();
        let b: Vec<_> = build().iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(a, b, "same insert sequence iterates identically");
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn borrowed_key_lookup() {
        let mut m: OpenMap<String, u64> = OpenMap::new();
        m.insert("alpha".into(), 1);
        assert_eq!(m.get("alpha"), Some(&1));
        assert!(m.contains_key("alpha"));
        assert_eq!(m.remove("alpha"), Some(1));
    }

    #[test]
    fn from_iterator_collects() {
        let m: OpenMap<u64, u64> = (0..64).map(|i| (i, i * 2)).collect();
        assert_eq!(m.len(), 64);
        assert_eq!(m.get(&63), Some(&126));
    }
}
