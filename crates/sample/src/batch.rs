//! **Batched multi-window execution**: one functional sweep drives N
//! detailed windows.
//!
//! The [`crate::StoredSampler`] already removed the fast-forward cost from
//! the configurations × windows grid, but every *cell* (engine × width)
//! still re-walks each window's functional-warming span with its own
//! [`sfetch_trace::Executor`] — once to feed the cache/predictor warming
//! loop, and implicitly again as the detailed phase's commit oracle. For
//! the paper's calibration schedule that is `Wf + Wd + D ≈ 910k`
//! architectural instructions *per cell per window*, and the grid runs 12
//! cells over the same 4 windows: ~92 % of grid host time is the same
//! functional walk repeated with different timing models attached.
//!
//! [`BatchSampler`] batches the cells that sample the *same* window: the
//! shared functional reference stream is advanced **once** per window,
//! and every in-flight detailed window consumes it in lockstep:
//!
//! * **engine warming** feeds each `WARM_BATCH`-sized chunk of committed
//!   records — converted once, while cache-hot — to every replaying
//!   cell's [`sfetch_fetch::FetchEngine::warm_block`], in the exact
//!   chunking the per-cell path uses;
//! * **memory warming** rides the same sweep, once per distinct pipe
//!   width (cache warming depends only on the width's line geometry,
//!   never on the engine), and is cloned into each same-width cell;
//! * the **detailed phase** runs a full per-window [`Processor`] whose
//!   commit oracle is [`OracleSource::Replay`] over the recorded
//!   detailed span (`Vec<DynInst>` — only `Wd + D` + the run-ahead
//!   margin is ever buffered) — no second executor walks the window.
//!
//! Bit-identity with the per-window [`crate::StoredSampler`] path is by
//! construction: the recorded buffer *is* the committed-path sequence a
//! live executor would produce (the executor is deterministic), the
//! warming loops consume it in the same order and chunking, and the
//! processor consumes oracle records identically whether they come from a
//! live walk or the buffer (asserted by the module tests and the
//! `tests/tests/batch_identity.rs` differential oracle, including a
//! proptest over random schedules and cell mixes).
//!
//! Warm-state banking composes: banked entries written by this module are
//! byte-identical to [`crate::StoredSampler`]'s (same post-warm
//! checkpoint, same serialized engine/memory state), so a bank populated
//! by either runner is a hit for the other. When *every* cell of a window
//! restores from the bank, the shared sweep shrinks to the detailed span
//! (`Wd + D` + oracle margin) — the batch and the bank multiply rather
//! than merely coexist.

use std::ops::Range;
use std::time::Instant;

use sfetch_cfg::CodeImage;
use sfetch_core::{Processor, ProcessorConfig, SimStats};
use sfetch_fetch::{Checkpoint, CommittedInst, EngineKind, ResolvedBranch};
use sfetch_isa::wire::{WireReader, WireWriter};
use sfetch_mem::{MemoryConfig, MemoryHierarchy};
use sfetch_trace::{DynInst, Executor, OracleSource};

use crate::config::SampleConfig;
use crate::runner::{committed_record, point_from_stats, SamplePoint, WARM_BATCH};
use crate::store::{
    warm_model_digest, CheckpointStore, StoreKey, StoreMiss, StoreStats, StoredSampler, WarmEntry,
    WarmTiming,
};

/// Committed-path records the recorder keeps beyond the detailed span:
/// the processor's oracle runs ahead of commit by at most the in-flight
/// window (bounded by the reorder buffer) plus the commit-width
/// overshoot; this pads generously on top of the per-cell ROB maximum.
const ORACLE_MARGIN: u64 = 1024;

/// One grid cell sharing a batched window sweep: an engine and the
/// processor configuration it runs under.
#[derive(Debug, Clone, Copy)]
pub struct BatchCell {
    /// Fetch engine under test.
    pub kind: EngineKind,
    /// Core configuration (width, ROB, prefetch, front pipeline).
    pub pcfg: ProcessorConfig,
}

/// How one cell of one window obtains its warm state.
enum CellSource {
    /// Restore from this verified banked entry.
    Banked(std::sync::Arc<WarmEntry>),
    /// Replay engine/memory warming from the shared buffer; bank the
    /// result under the key when one is present.
    Replay {
        /// Bank the warming result under this key (banking enabled).
        bank_to: Option<StoreKey>,
    },
}

/// One window's resolved execution plan: where the shared recorder
/// starts, how much of the sweep is warming, and each cell's source.
struct WindowPlan<'a> {
    w: u64,
    rec: Executor<'a>,
    /// Recorded instructions that belong to functional warming: `Wf`,
    /// or `0` when every cell restores from the warm bank (the sweep
    /// then starts at the post-warm checkpoint).
    warm_span: u64,
    sources: Vec<CellSource>,
}

/// The batched multi-window runner (see the module docs).
///
/// Owns a [`StoredSampler`] for architectural-checkpoint resolution, so
/// checkpoint-store traffic, reuse, and on-miss population behave
/// exactly as in the per-window path.
pub struct BatchSampler<'a> {
    image: &'a CodeImage,
    fingerprint: u64,
    seed: u64,
    scfg: SampleConfig,
    store: &'a CheckpointStore,
    inner: StoredSampler<'a>,
    warm_bank: bool,
    warm_stats: StoreStats,
    timing: WarmTiming,
}

impl<'a> BatchSampler<'a> {
    /// Creates a batched runner for the trace `(image, seed)` registered
    /// in the store under `fingerprint`.
    ///
    /// # Panics
    ///
    /// Panics if `scfg` fails [`SampleConfig::validate`].
    pub fn new(
        image: &'a CodeImage,
        fingerprint: u64,
        seed: u64,
        scfg: SampleConfig,
        store: &'a CheckpointStore,
    ) -> Self {
        scfg.validate();
        BatchSampler {
            image,
            fingerprint,
            seed,
            scfg,
            store,
            inner: StoredSampler::new(image, fingerprint, seed, scfg, store),
            warm_bank: false,
            warm_stats: StoreStats::default(),
            timing: WarmTiming::default(),
        }
    }

    /// Enables (or disables) warm-engine-state banking, exactly as
    /// [`StoredSampler::with_warm_bank`] — banked entries are
    /// interchangeable between the two runners.
    pub fn with_warm_bank(mut self, on: bool) -> Self {
        self.warm_bank = on;
        self
    }

    /// Checkpoint-store traffic accumulated so far.
    pub fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    /// Warm-state bank traffic accumulated so far (one probe per cell
    /// per window when banking is on).
    pub fn warm_bank_stats(&self) -> StoreStats {
        self.warm_stats
    }

    /// Host-time breakdown accumulated so far. `warm_ns` covers the
    /// shared recording sweep plus all per-cell warming/restores.
    pub fn timing(&self) -> WarmTiming {
        self.timing
    }

    /// Runs windows `range` for every cell with up to `jobs` in-flight
    /// window sweeps, returning `[cell][window]`-indexed results in the
    /// order of `cells` and of the range. Bit-identical to running each
    /// cell through [`StoredSampler::run_range_stats`], for any `jobs`
    /// and any banking state.
    ///
    /// # Panics
    ///
    /// Panics if `cells` is empty.
    pub fn run_range(
        &mut self,
        cells: &[BatchCell],
        range: Range<u64>,
        jobs: usize,
    ) -> Vec<Vec<(SamplePoint, SimStats)>> {
        assert!(!cells.is_empty(), "batch needs at least one cell");
        let jobs = jobs.max(1);
        let models: Vec<u64> =
            cells.iter().map(|c| warm_model_digest(c.kind, &c.pcfg, &self.scfg)).collect();
        let windows = (range.end.saturating_sub(range.start)) as usize;
        let mut out: Vec<Vec<(SamplePoint, SimStats)>> =
            cells.iter().map(|_| Vec::with_capacity(windows)).collect();
        let (image, scfg, store) = (self.image, self.scfg, self.store);
        let models_ref = &models;
        let mut w = range.start;
        while w < range.end {
            let chunk = (range.end - w).min(jobs as u64);
            let t0 = Instant::now();
            let plans: Vec<WindowPlan<'a>> =
                (w..w + chunk).map(|i| self.resolve_plan(i, models_ref)).collect();
            self.timing.ff_ns += t0.elapsed().as_nanos() as u64;
            if jobs == 1 {
                for plan in plans {
                    let (rows, ns) = run_batch_window(image, cells, &scfg, store, models_ref, plan);
                    self.timing.warm_ns += ns;
                    for (ci, row) in rows.into_iter().enumerate() {
                        out[ci].push(row);
                    }
                }
            } else {
                std::thread::scope(|s| {
                    let handles: Vec<_> = plans
                        .into_iter()
                        .map(|plan| {
                            s.spawn(move || {
                                run_batch_window(image, cells, &scfg, store, models_ref, plan)
                            })
                        })
                        .collect();
                    for h in handles {
                        let (rows, ns) = h.join().expect("batch window worker");
                        self.timing.warm_ns += ns;
                        for (ci, row) in rows.into_iter().enumerate() {
                            out[ci].push(row);
                        }
                    }
                });
            }
            self.timing.windows += chunk;
            w += chunk;
        }
        out
    }

    /// [`BatchSampler::run_range`] keeping only the sample points.
    pub fn run_range_points(
        &mut self,
        cells: &[BatchCell],
        range: Range<u64>,
        jobs: usize,
    ) -> Vec<Vec<SamplePoint>> {
        self.run_range(cells, range, jobs)
            .into_iter()
            .map(|rows| rows.into_iter().map(|(p, _)| p).collect())
            .collect()
    }

    /// Resolves one window's plan, serially: probe the warm bank per
    /// cell (when banking is on), then position the shared recorder —
    /// at the post-warm checkpoint when every cell restores, else at
    /// the warming start via the checkpoint store.
    fn resolve_plan(&mut self, w: u64, models: &[u64]) -> WindowPlan<'a> {
        let mut sources = Vec::with_capacity(models.len());
        if self.warm_bank {
            let key = StoreKey {
                fingerprint: self.fingerprint,
                seed: self.seed,
                at_inst: self.inner.warming_start(w),
            };
            for &model in models {
                match self.store.load_warm(&key, model) {
                    Ok(entry) => {
                        self.warm_stats.hits += 1;
                        sources.push(CellSource::Banked(entry));
                    }
                    Err(StoreMiss::Absent) => {
                        self.warm_stats.misses += 1;
                        sources.push(CellSource::Replay { bank_to: Some(key) });
                    }
                    Err(StoreMiss::Rejected(_)) => {
                        self.warm_stats.rejected += 1;
                        sources.push(CellSource::Replay { bank_to: Some(key) });
                    }
                }
            }
        } else {
            sources.extend(models.iter().map(|_| CellSource::Replay { bank_to: None }));
        }
        // All banked entries of one window carry the same architectural
        // checkpoint (the functional state after Wf does not depend on
        // the timing model), so any of them can seat the recorder.
        let all_banked = sources.iter().all(|s| matches!(s, CellSource::Banked(_)));
        if all_banked {
            let first = sources
                .iter()
                .find_map(|s| match s {
                    CellSource::Banked(e) => Some(e),
                    CellSource::Replay { .. } => None,
                })
                .expect("non-empty cell set");
            let rec = Executor::from_checkpoint(self.image, &first.ckpt);
            WindowPlan { w, rec, warm_span: 0, sources }
        } else {
            let rec = self.inner.snapshot(w);
            WindowPlan { w, rec, warm_span: self.scfg.warm_func, sources }
        }
    }
}

/// One window's batched sweep: record the shared committed-path buffer
/// once, warm memory once per width, then warm/restore + measure every
/// cell against the buffer. Returns per-cell results in cell order plus
/// the nanoseconds spent outside measurement (recording + warming).
fn run_batch_window<'a>(
    image: &'a CodeImage,
    cells: &[BatchCell],
    scfg: &SampleConfig,
    store: &CheckpointStore,
    models: &[u64],
    plan: WindowPlan<'a>,
) -> (Vec<(SamplePoint, SimStats)>, u64) {
    let WindowPlan { w, mut rec, warm_span, sources } = plan;
    let mut warm_ns = 0u64;
    let t0 = Instant::now();

    // Replay cells warm in lockstep with the single recording sweep:
    // every `WARM_BATCH` chunk of committed records is converted once
    // and fed to all replaying engines while it is still cache-hot. The
    // alternative — buffering the whole warming span and letting each
    // cell re-scan it — reads a window-sized record buffer from DRAM
    // once per cell, which costs more than the executor walks it saves.
    // Engines never share state, so the interleaving is bit-identical
    // to warming each cell to completion in turn.
    let warm_pc = rec.pc();
    let mut engines: Vec<Option<Box<dyn sfetch_fetch::FetchEngine>>> = cells
        .iter()
        .enumerate()
        .map(|(ci, cell)| {
            matches!(sources[ci], CellSource::Replay { .. }).then(|| {
                cell.kind.build_for(cell.pcfg.width, warm_pc, &cell.pcfg.prefetch, &cell.pcfg.front)
            })
        })
        .collect();
    // Functional memory warming rides the same sweep, once per distinct
    // width among the replay-warmed cells (cache warming depends only
    // on the width's line geometry, never on the engine), each with its
    // own line-dedup cursor. The per-cell loop in `warm_window`
    // interleaves engine and memory updates, but neither ever reads the
    // other, so this lands on bit-identical cache state.
    let mut mems: Vec<(usize, MemoryHierarchy, u64, u64)> = Vec::new();
    for (ci, cell) in cells.iter().enumerate() {
        if !matches!(sources[ci], CellSource::Replay { .. })
            || mems.iter().any(|&(width, ..)| width == cell.pcfg.width)
        {
            continue;
        }
        let mem = MemoryHierarchy::new(MemoryConfig::table2(cell.pcfg.width));
        let line_bytes = mem.l1i_line_bytes();
        mems.push((cell.pcfg.width, mem, line_bytes, u64::MAX));
    }
    let mem_from = scfg.warm_func - scfg.warm_mem;
    let mut chunk: Vec<CommittedInst> = Vec::with_capacity(WARM_BATCH);
    for i in 0..warm_span {
        let d = rec.next().expect("executor is infinite");
        if i >= mem_from {
            for (_, mem, line_bytes, last_line) in &mut mems {
                let line = d.pc.line_index(*line_bytes);
                if line != *last_line {
                    mem.warm_inst(d.pc);
                    *last_line = line;
                }
                if let Some(a) = d.mem_addr {
                    mem.warm_data(a);
                }
            }
        }
        chunk.push(committed_record(&d));
        if chunk.len() == WARM_BATCH {
            for e in engines.iter_mut().flatten() {
                e.warm_block(&chunk);
            }
            chunk.clear();
        }
    }
    if !chunk.is_empty() {
        for e in engines.iter_mut().flatten() {
            e.warm_block(&chunk);
        }
    }
    let needs_bank = sources
        .iter()
        .any(|s| matches!(s, CellSource::Replay { bank_to: Some(_) }));
    // The post-warm architectural checkpoint every banked entry of this
    // window shares — captured mid-sweep, exactly where the per-window
    // path's warming executor stops.
    let ckpt_post_warm = needs_bank.then(|| rec.checkpoint());

    // Only the detailed span + oracle run-ahead margin is recorded as
    // full committed-path records: it is what the replay oracle needs.
    let max_rob = cells.iter().map(|c| c.pcfg.rob_entries).max().unwrap_or(0) as u64;
    let detail_len = scfg.warm_detail + scfg.measure + max_rob + ORACLE_MARGIN;
    let mut buf: Vec<DynInst> = Vec::with_capacity(detail_len as usize);
    for _ in 0..detail_len {
        buf.push(rec.next().expect("executor is infinite"));
    }
    warm_ns += t0.elapsed().as_nanos() as u64;

    // Detailed-phase start: the pc of the first post-warm instruction.
    let start = buf[0].pc;
    let mut out = Vec::with_capacity(cells.len());
    for (ci, ((cell, src), &model)) in cells.iter().zip(sources).zip(models).enumerate() {
        let t1 = Instant::now();
        let (mut engine, mem) = match src {
            CellSource::Banked(entry) => {
                // Same reconstruction discipline as the per-window
                // path: the entry passed digest checks, so a failure
                // here is a format bug — fail loudly.
                let mut engine =
                    cell.kind.build_for(cell.pcfg.width, start, &cell.pcfg.prefetch, &cell.pcfg.front);
                engine
                    .load_warm_state(&entry.engine)
                    .expect("digest-verified engine warm state must load");
                let mut mem = MemoryHierarchy::new(MemoryConfig::table2(cell.pcfg.width));
                let mut r = WireReader::new(&entry.mem);
                mem.load_warm_wire(&mut r)
                    .and_then(|()| r.finish())
                    .expect("digest-verified memory warm state must load");
                (engine, mem)
            }
            CellSource::Replay { bank_to } => {
                let engine = engines[ci].take().expect("engine warmed for every replay cell");
                let mem = mems
                    .iter()
                    .find(|&&(width, ..)| width == cell.pcfg.width)
                    .map(|(_, m, ..)| m.clone())
                    .expect("memory warmed for every replay width");
                if let Some(key) = bank_to {
                    if let Some(engine_bytes) = engine.warm_state() {
                        let mut mw = WireWriter::new();
                        mem.save_warm_wire(&mut mw);
                        let entry = WarmEntry {
                            ckpt: ckpt_post_warm.clone().expect("checkpoint recorded for banking"),
                            engine: engine_bytes,
                            mem: mw.into_bytes(),
                        };
                        // Best-effort, like every store save.
                        let _ = store.save_warm(&key, model, &entry);
                    }
                }
                (engine, mem)
            }
        };
        warm_ns += t1.elapsed().as_nanos() as u64;
        // The detailed phase of `measure_window`, verbatim — except the
        // commit oracle replays the shared buffer from the post-warm
        // offset instead of walking a live executor.
        engine.redirect(
            0,
            start,
            &Checkpoint::default(),
            &ResolvedBranch { pc: start, kind: None, taken: false, target: start },
        );
        let oracle = OracleSource::Replay { buf: &buf, idx: 0 };
        let mut p = Processor::with_state_source(cell.pcfg, engine, image, oracle, mem);
        p.run(scfg.warm_detail);
        p.reset_stats();
        p.run(scfg.measure);
        let stats = p.stats();
        out.push((point_from_stats(w, scfg, &stats), stats));
    }
    (out, warm_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfetch_cfg::gen::{GenParams, ProgramGenerator};
    use sfetch_cfg::layout;

    fn image() -> CodeImage {
        let cfg = ProgramGenerator::new(GenParams::small(), 17).generate();
        let lay = layout::natural(&cfg);
        CodeImage::build(&cfg, &lay)
    }

    fn tmp_store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir()
            .join(format!("sfetch-batch-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::open(dir).expect("open store")
    }

    fn quick_cfg() -> SampleConfig {
        SampleConfig {
            interval: 40_000,
            warm_func: 6_000,
            warm_mem: 6_000,
            warm_detail: 1_000,
            measure: 2_000,
            ..Default::default()
        }
    }

    fn cells() -> Vec<BatchCell> {
        vec![
            BatchCell { kind: EngineKind::Stream, pcfg: ProcessorConfig::table2(4) },
            BatchCell { kind: EngineKind::Ev8, pcfg: ProcessorConfig::table2(4) },
            BatchCell { kind: EngineKind::Stream, pcfg: ProcessorConfig::table2(8) },
            BatchCell { kind: EngineKind::Ftb, pcfg: ProcessorConfig::table2(2) },
        ]
    }

    /// Per-window oracle: the same cells through `StoredSampler`.
    fn serial_oracle(
        img: &CodeImage,
        store: &CheckpointStore,
        cells: &[BatchCell],
        range: std::ops::Range<u64>,
        warm_bank: bool,
    ) -> Vec<Vec<(SamplePoint, SimStats)>> {
        cells
            .iter()
            .map(|c| {
                StoredSampler::new(img, 0xba7c, 7, quick_cfg(), store)
                    .with_warm_bank(warm_bank)
                    .run_range_stats(c.kind, c.pcfg, range.clone(), 1)
            })
            .collect()
    }

    #[test]
    fn batch_matches_per_window_sampler() {
        let img = image();
        let store = tmp_store("identity");
        let cells = cells();
        let mut b = BatchSampler::new(&img, 0xba7c, 7, quick_cfg(), &store);
        let got = b.run_range(&cells, 0..3, 2);
        let want = serial_oracle(&img, &store, &cells, 0..3, false);
        assert_eq!(got, want, "batched output must be bit-identical per cell per window");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn batch_with_warm_bank_is_identical_and_hits() {
        let img = image();
        let store = tmp_store("bank");
        let cells = cells();
        let baseline = serial_oracle(&img, &store, &cells, 0..2, false);

        // First banked run populates: every probe misses.
        let mut b1 = BatchSampler::new(&img, 0xba7c, 7, quick_cfg(), &store).with_warm_bank(true);
        let r1 = b1.run_range(&cells, 0..2, 1);
        assert_eq!(r1, baseline);
        assert_eq!(b1.warm_bank_stats().hits, 0);
        assert_eq!(b1.warm_bank_stats().misses, (cells.len() * 2) as u64);

        // Second run restores every cell from the bank (the sweep then
        // skips the warming span) — still bit-identical.
        let mut b2 = BatchSampler::new(&img, 0xba7c, 7, quick_cfg(), &store).with_warm_bank(true);
        let r2 = b2.run_range(&cells, 0..2, 2);
        assert_eq!(r2, baseline);
        assert_eq!(b2.warm_bank_stats().hits, (cells.len() * 2) as u64);
        assert_eq!(b2.warm_bank_stats().misses, 0);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn batch_banked_entries_interoperate_with_stored_sampler() {
        let img = image();
        let store = tmp_store("interop");
        let cells = cells();
        // Batch populates the bank …
        let mut b = BatchSampler::new(&img, 0xba7c, 7, quick_cfg(), &store).with_warm_bank(true);
        let batched = b.run_range(&cells, 0..2, 1);
        // … and the per-window runner hits it, bit-identically.
        let mut s =
            StoredSampler::new(&img, 0xba7c, 7, quick_cfg(), &store).with_warm_bank(true);
        let serial = s.run_range_stats(cells[0].kind, cells[0].pcfg, 0..2, 1);
        assert_eq!(batched[0], serial);
        assert_eq!(s.warm_bank_stats().hits, 2, "per-window runner must hit batch-banked entries");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn single_cell_batch_degenerates_cleanly() {
        let img = image();
        let store = tmp_store("single");
        let cells = vec![BatchCell { kind: EngineKind::TraceCache, pcfg: ProcessorConfig::table2(4) }];
        let mut b = BatchSampler::new(&img, 0xba7c, 7, quick_cfg(), &store);
        let got = b.run_range(&cells, 1..3, 1);
        let want = serial_oracle(&img, &store, &cells, 1..3, false);
        assert_eq!(got, want);
        let _ = std::fs::remove_dir_all(store.root());
    }
}
