//! The reusable **checkpoint store**: content-addressed, versioned
//! architectural checkpoints shared across experiments.
//!
//! PR 4's sampler made paper-scale horizons affordable, but every run
//! still recomputed the functional fast-forward pass: each sampled
//! experiment walked the whole trace architecturally just to reach its
//! windows' warming starts. Those warming-start states depend only on
//! the *trace* — the workload image and input seed — never on the
//! engine, pipe width, or any timing-model knob, so one experiment's
//! fast-forward work is every later experiment's too. SMARTS-lineage
//! systems (TurboSMARTS' live-points, SimPoint checkpoint libraries)
//! all converge on the same answer: bank the checkpoints once, key them
//! on everything the replay depends on, and let the whole
//! configurations × windows grid resume from disk.
//!
//! This module is that bank:
//!
//! * [`StoreKey`] — the content address: *(workload fingerprint, input
//!   seed, instruction offset)*. The fingerprint
//!   ([`sfetch_trace::trace_fingerprint`], wrapped by the workload
//!   crate's `Workload::fingerprint`) digests the image's
//!   shape plus a committed-trace prefix, so any change to the program,
//!   its behaviour models, the layout, or the seed re-keys — stale
//!   state is unreachable rather than merely discouraged. Keying on the
//!   raw instruction offset (not a window number) makes entries
//!   schedule-agnostic: two schedules whose warming starts coincide
//!   share entries.
//! * [`CheckpointStore`] — one file per entry, written atomically
//!   (temp + rename, safe under concurrent shard processes), carrying a
//!   versioned header and the checkpoint's **warm-state digest**
//!   ([`ArchCheckpoint::digest`]); a corrupt, version-mismatched, or
//!   mis-keyed entry is *rejected and recomputed*, never trusted
//!   ([`StoreMiss::Rejected`]).
//! * [`StoredSampler`] — the store-aware window runner: it resolves
//!   each window's warming-start state through the store (loading on
//!   hit, walking the trace and saving on miss) and then runs the same
//!   window simulation as [`crate::Sampler`], producing bit-identical
//!   [`SamplePoint`]s. On a warm store no run ever fast-forwards:
//!   windows — across any engine, width, process, or machine — start
//!   directly at functional warming.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use sfetch_cfg::CodeImage;
use sfetch_core::{ProcessorConfig, SimStats};
use sfetch_fetch::EngineKind;
use sfetch_trace::{ArchCheckpoint, Executor};

use crate::config::SampleConfig;
use crate::runner::{window_point, SamplePoint};

/// Magic word of a store entry ("SFCKSTOR").
const STORE_MAGIC: u64 = 0x5346_434b_5354_4f52;

/// Store entry format version. Bumped whenever the entry layout *or*
/// the semantics of checkpoint replay change; older entries are then
/// rejected and recomputed.
pub const STORE_VERSION: u64 = 1;

/// Content address of one stored checkpoint: the architectural state
/// after `at_inst` committed instructions of the trace `(fingerprint,
/// seed)` identifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreKey {
    /// Workload-trace fingerprint (see
    /// [`sfetch_trace::trace_fingerprint`]; the workload crate's
    /// `Workload::fingerprint` wraps it per layout flavour).
    pub fingerprint: u64,
    /// Input seed of the trace.
    pub seed: u64,
    /// Committed-instruction offset the checkpoint captures.
    pub at_inst: u64,
}

/// Why a [`CheckpointStore::load`] returned no checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreMiss {
    /// No entry exists under the key.
    Absent,
    /// An entry exists but failed verification (corruption, version or
    /// key mismatch, digest mismatch) and must be recomputed.
    Rejected(String),
}

impl std::fmt::Display for StoreMiss {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreMiss::Absent => f.write_str("absent"),
            StoreMiss::Rejected(why) => write!(f, "rejected: {why}"),
        }
    }
}

/// Hit/miss accounting of a [`StoredSampler`] (and of direct store
/// users), reported by the grid binaries so cold vs warm runs are
/// visible in the output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Checkpoints served from the store.
    pub hits: u64,
    /// Checkpoints computed (absent from the store) and saved.
    pub misses: u64,
    /// Entries present but rejected by verification, then recomputed.
    pub rejected: u64,
}

/// A directory of verified, content-addressed architectural checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    root: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates the directory-creation failure.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(CheckpointStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The entry file a key addresses.
    pub fn entry_path(&self, key: &StoreKey) -> PathBuf {
        self.root.join(format!(
            "ck-{:016x}-{:016x}-{:012}.sfckpt",
            key.fingerprint, key.seed, key.at_inst
        ))
    }

    /// Number of entry files currently in the store (any key).
    pub fn entries(&self) -> usize {
        std::fs::read_dir(&self.root)
            .map(|rd| {
                rd.filter(|e| {
                    e.as_ref().is_ok_and(|e| {
                        e.path().extension().is_some_and(|x| x == "sfckpt")
                    })
                })
                .count()
            })
            .unwrap_or(0)
    }

    /// Loads and fully verifies the checkpoint stored under `key`.
    ///
    /// # Errors
    ///
    /// [`StoreMiss::Absent`] when no entry exists;
    /// [`StoreMiss::Rejected`] when an entry exists but fails *any*
    /// verification step — wrong magic, format version, key fields,
    /// truncation, warm-state digest mismatch, or checkpoint
    /// deserialization. Rejected entries must be recomputed; their
    /// contents are never returned.
    pub fn load(&self, key: &StoreKey) -> Result<ArchCheckpoint, StoreMiss> {
        let path = self.entry_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(StoreMiss::Absent),
            Err(e) => return Err(StoreMiss::Rejected(format!("unreadable entry: {e}"))),
        };
        let reject = |why: String| Err(StoreMiss::Rejected(why));
        if bytes.len() < HEADER_WORDS * 8 {
            return reject(format!("header truncated ({} bytes)", bytes.len()));
        }
        let word = |i: usize| {
            u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().expect("8-byte slice"))
        };
        if word(0) != STORE_MAGIC {
            return reject("bad store magic".into());
        }
        if word(1) != STORE_VERSION {
            return reject(format!("format version {} != {STORE_VERSION}", word(1)));
        }
        if word(2) != key.fingerprint || word(3) != key.seed || word(4) != key.at_inst {
            return reject("entry key fields do not match the requested key".into());
        }
        let digest = word(5);
        let payload_len = word(6) as usize;
        let payload = &bytes[HEADER_WORDS * 8..];
        if payload.len() != payload_len {
            return reject(format!(
                "payload length {} != recorded {payload_len}",
                payload.len()
            ));
        }
        if sfetch_trace::digest_bytes(payload) != digest {
            return reject("warm-state digest mismatch (corrupt entry)".into());
        }
        let cp = match ArchCheckpoint::from_bytes(payload) {
            Ok(cp) => cp,
            Err(e) => return reject(format!("checkpoint payload: {e}")),
        };
        if cp.seq != key.at_inst {
            return reject(format!(
                "checkpoint is at instruction {}, key says {}",
                cp.seq, key.at_inst
            ));
        }
        Ok(cp)
    }

    /// Writes `cp` under `key`, atomically (a concurrent reader sees
    /// either the old entry or the new one, never a torn write).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    ///
    /// # Panics
    ///
    /// Panics if `cp.seq != key.at_inst` — storing a checkpoint under
    /// an offset it does not capture would poison every later replay.
    pub fn save(&self, key: &StoreKey, cp: &ArchCheckpoint) -> std::io::Result<()> {
        assert_eq!(cp.seq, key.at_inst, "checkpoint offset must match its key");
        let payload = cp.to_bytes();
        let mut out = Vec::with_capacity(HEADER_WORDS * 8 + payload.len());
        for w in [
            STORE_MAGIC,
            STORE_VERSION,
            key.fingerprint,
            key.seed,
            key.at_inst,
            sfetch_trace::digest_bytes(&payload),
            payload.len() as u64,
        ] {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&payload);
        let path = self.entry_path(key);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&out)?;
        }
        std::fs::rename(&tmp, &path)
    }
}

/// Words in a store-entry header (magic, version, fingerprint, seed,
/// at_inst, payload digest, payload length).
const HEADER_WORDS: usize = 7;

/// The store-aware sampled-window runner.
///
/// Where [`crate::Sampler`] owns a live master executor that must walk
/// the whole trace, a `StoredSampler` resolves each window's
/// warming-start state *by content*: load from the [`CheckpointStore`]
/// if present and valid, otherwise walk the trace from the nearest
/// earlier stored state (or the trace start) and save the result for
/// every later experiment. The window simulation itself is byte-for-
/// byte the one [`crate::Sampler`] runs, so the produced
/// [`SamplePoint`]s are **bit-identical** to a storeless run — asserted
/// by `tests/tests/checkpoint_store.rs` and by the grid binaries'
/// `--verify` legs.
pub struct StoredSampler<'a> {
    image: &'a CodeImage,
    fingerprint: u64,
    seed: u64,
    scfg: SampleConfig,
    store: &'a CheckpointStore,
    walker: Option<Executor<'a>>,
    stats: StoreStats,
}

impl<'a> StoredSampler<'a> {
    /// Creates a runner for the trace `(image, seed)` registered in the
    /// store under `fingerprint`.
    ///
    /// # Panics
    ///
    /// Panics if `scfg` fails [`SampleConfig::validate`].
    pub fn new(
        image: &'a CodeImage,
        fingerprint: u64,
        seed: u64,
        scfg: SampleConfig,
        store: &'a CheckpointStore,
    ) -> Self {
        scfg.validate();
        StoredSampler { image, fingerprint, seed, scfg, store, walker: None, stats: StoreStats::default() }
    }

    /// Store traffic accumulated so far.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Committed-instruction offset at which window `w`'s functional
    /// warming starts — the offset its stored checkpoint captures.
    pub fn warming_start(&self, w: u64) -> u64 {
        w * self.scfg.interval + self.scfg.fast_forward()
    }

    fn key_at(&self, at_inst: u64) -> StoreKey {
        StoreKey { fingerprint: self.fingerprint, seed: self.seed, at_inst }
    }

    /// The architectural state at window `w`'s warming start: from the
    /// store on a hit, otherwise computed (walking from the nearest
    /// earlier stored window, or the trace start) and saved.
    pub fn snapshot(&mut self, w: u64) -> Executor<'a> {
        let target = self.warming_start(w);
        match self.store.load(&self.key_at(target)) {
            Ok(cp) => {
                self.stats.hits += 1;
                return Executor::from_checkpoint(self.image, &cp);
            }
            Err(StoreMiss::Absent) => self.stats.misses += 1,
            Err(StoreMiss::Rejected(_)) => self.stats.rejected += 1,
        }
        // Recompute. Reuse the live walker when it has not overshot;
        // otherwise restart from the nearest earlier stored window (a
        // warm store with holes) or from the trace start.
        let need_restart =
            self.walker.as_ref().is_none_or(|e| e.committed() > target);
        if need_restart {
            self.walker = Some(self.nearest_start(w, target));
        }
        let walker = self.walker.as_mut().expect("walker installed above");
        for _ in walker.committed()..target {
            walker.next();
        }
        let snap = walker.clone();
        // Best-effort save: a read-only store directory degrades to
        // recomputing every run, it does not break correctness.
        let _ = self.store.save(&self.key_at(target), &snap.checkpoint());
        snap
    }

    /// An executor positioned at or before `target`: the closest earlier
    /// window's stored checkpoint if any verifies, else the trace start.
    fn nearest_start(&mut self, w: u64, target: u64) -> Executor<'a> {
        for earlier in (0..w).rev() {
            let at = self.warming_start(earlier);
            if at > target {
                continue;
            }
            if let Ok(cp) = self.store.load(&self.key_at(at)) {
                self.stats.hits += 1;
                return Executor::from_checkpoint(self.image, &cp);
            }
        }
        Executor::from_image(self.image, self.seed)
    }

    /// Runs window `w` for one engine/configuration, returning the
    /// sample point and the measured phase's full [`SimStats`].
    pub fn run_window(
        &mut self,
        kind: EngineKind,
        pcfg: ProcessorConfig,
        w: u64,
    ) -> (SamplePoint, SimStats) {
        let snap = self.snapshot(w);
        let (point, stats, _) =
            window_point(self.image, kind, pcfg, &self.scfg, w, snap, false);
        (point, stats)
    }

    /// Runs windows `range` for one engine/configuration with up to
    /// `jobs` worker threads. Snapshots are resolved serially through
    /// the store (cheap on a warm store); the window simulations — the
    /// expensive part — fan out. Bit-identical to a serial run for any
    /// `jobs`, like every parallel path in this repository.
    pub fn run_range(
        &mut self,
        kind: EngineKind,
        pcfg: ProcessorConfig,
        range: std::ops::Range<u64>,
        jobs: usize,
    ) -> Vec<SamplePoint> {
        let jobs = jobs.max(1);
        let (image, scfg) = (self.image, self.scfg);
        let mut out = Vec::with_capacity((range.end - range.start) as usize);
        let mut w = range.start;
        while w < range.end {
            let chunk = (range.end - w).min(jobs as u64);
            let snaps: Vec<(u64, Executor<'a>)> =
                (w..w + chunk).map(|i| (i, self.snapshot(i))).collect();
            if jobs == 1 {
                for (i, snap) in snaps {
                    out.push(window_point(image, kind, pcfg, &scfg, i, snap, false).0);
                }
            } else {
                std::thread::scope(|s| {
                    let handles: Vec<_> = snaps
                        .into_iter()
                        .map(|(i, snap)| {
                            s.spawn(move || {
                                window_point(image, kind, pcfg, &scfg, i, snap, false).0
                            })
                        })
                        .collect();
                    out.extend(handles.into_iter().map(|h| h.join().expect("window worker")));
                });
            }
            w += chunk;
        }
        out
    }

    /// [`StoredSampler::run_range`], but returning each window's full
    /// measured-phase [`SimStats`] alongside its [`SamplePoint`] — the
    /// sampled runners' time-series sinks consume the per-window stats
    /// while the grid aggregation keeps using the points. Same chunked
    /// serial/parallel structure, bit-identical for any `jobs`.
    pub fn run_range_stats(
        &mut self,
        kind: EngineKind,
        pcfg: ProcessorConfig,
        range: std::ops::Range<u64>,
        jobs: usize,
    ) -> Vec<(SamplePoint, SimStats)> {
        let jobs = jobs.max(1);
        let (image, scfg) = (self.image, self.scfg);
        let mut out = Vec::with_capacity((range.end - range.start) as usize);
        let mut w = range.start;
        while w < range.end {
            let chunk = (range.end - w).min(jobs as u64);
            let snaps: Vec<(u64, Executor<'a>)> =
                (w..w + chunk).map(|i| (i, self.snapshot(i))).collect();
            if jobs == 1 {
                for (i, snap) in snaps {
                    let (p, s, _) = window_point(image, kind, pcfg, &scfg, i, snap, false);
                    out.push((p, s));
                }
            } else {
                std::thread::scope(|s| {
                    let handles: Vec<_> = snaps
                        .into_iter()
                        .map(|(i, snap)| {
                            s.spawn(move || {
                                let (p, st, _) =
                                    window_point(image, kind, pcfg, &scfg, i, snap, false);
                                (p, st)
                            })
                        })
                        .collect();
                    out.extend(handles.into_iter().map(|h| h.join().expect("window worker")));
                });
            }
            w += chunk;
        }
        out
    }

    /// Ensures every window in `0..windows` has a stored checkpoint
    /// (the shard parent's one-pass populate), returning the number
    /// that had to be computed.
    pub fn populate(&mut self, windows: u64) -> u64 {
        let before = self.stats;
        for w in 0..windows {
            let _ = self.snapshot(w);
        }
        self.stats.misses + self.stats.rejected - before.misses - before.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfetch_cfg::gen::{GenParams, ProgramGenerator};
    use sfetch_cfg::layout;

    fn image() -> CodeImage {
        let cfg = ProgramGenerator::new(GenParams::small(), 17).generate();
        let lay = layout::natural(&cfg);
        CodeImage::build(&cfg, &lay)
    }

    fn tmp_store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir()
            .join(format!("sfetch-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::open(dir).expect("open store")
    }

    fn quick_cfg() -> SampleConfig {
        SampleConfig {
            interval: 40_000,
            warm_func: 6_000,
            warm_mem: 6_000,
            warm_detail: 1_000,
            measure: 2_000,
            ..Default::default()
        }
    }

    #[test]
    fn save_load_roundtrip_and_absent() {
        let img = image();
        let store = tmp_store("roundtrip");
        let key = StoreKey { fingerprint: 0xfeed, seed: 3, at_inst: 12_000 };
        assert_eq!(store.load(&key), Err(StoreMiss::Absent));
        let mut ex = Executor::from_image(&img, 3);
        ex.nth(11_999);
        let cp = ex.checkpoint();
        store.save(&key, &cp).expect("save");
        assert_eq!(store.entries(), 1);
        let back = store.load(&key).expect("verified load");
        assert_eq!(back, cp);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_and_mismatched_entries_are_rejected() {
        let img = image();
        let store = tmp_store("reject");
        let key = StoreKey { fingerprint: 1, seed: 9, at_inst: 5_000 };
        let mut ex = Executor::from_image(&img, 9);
        ex.nth(4_999);
        store.save(&key, &ex.checkpoint()).expect("save");
        let path = store.entry_path(&key);
        let pristine = std::fs::read(&path).expect("read entry");

        // Flip one payload byte: digest verification must reject.
        let mut bytes = pristine.clone();
        bytes[HEADER_WORDS * 8 + 40] ^= 0xff;
        std::fs::write(&path, &bytes).expect("rewrite");
        assert!(
            matches!(store.load(&key), Err(StoreMiss::Rejected(why)) if why.contains("digest")),
            "corruption must be rejected"
        );

        // Bump the recorded format version: version gate must reject.
        let mut bytes = pristine.clone();
        bytes[8..16].copy_from_slice(&(STORE_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &bytes).expect("rewrite");
        assert!(
            matches!(store.load(&key), Err(StoreMiss::Rejected(why)) if why.contains("version")),
            "version mismatch must be rejected"
        );

        // A key whose fields disagree with the entry (same file path
        // cannot happen through entry_path, so fake it by renaming).
        std::fs::write(&path, &pristine).expect("restore entry");
        let other = StoreKey { fingerprint: 2, ..key };
        std::fs::rename(&path, store.entry_path(&other)).expect("rename");
        assert!(
            matches!(store.load(&other), Err(StoreMiss::Rejected(why)) if why.contains("key")),
            "key mismatch must be rejected"
        );
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn stored_sampler_matches_plain_sampler_and_reuses_entries() {
        let img = image();
        let scfg = quick_cfg();
        let pcfg = ProcessorConfig::table2(4);
        let store = tmp_store("equiv");
        let fp = sfetch_trace::trace_fingerprint(&img, 7, 4096);

        let mut plain = crate::Sampler::new(&img, EngineKind::Stream, pcfg, scfg, 7);
        let want = plain.run(4);

        let mut cold = StoredSampler::new(&img, fp, 7, scfg, &store);
        let got = cold.run_range(EngineKind::Stream, pcfg, 0..4, 1);
        assert_eq!(want, got, "store-backed windows must be bit-identical");
        assert_eq!(cold.stats().misses, 4, "cold store computes every window");
        assert_eq!(store.entries(), 4);

        let mut warm = StoredSampler::new(&img, fp, 7, scfg, &store);
        let again = warm.run_range(EngineKind::Stream, pcfg, 0..4, 1);
        assert_eq!(want, again, "warm store replays bit-identically");
        assert_eq!(warm.stats().hits, 4, "warm store loads every window");
        assert_eq!(warm.stats().misses, 0);
        let _ = std::fs::remove_dir_all(store.root());
    }

    /// Checkpoints are content-addressed on the trace alone, never on
    /// the simulated configuration — so a store populated by one grid
    /// cell serves *every* other cell of the same benchmark warm. This
    /// is what makes calibration-grid axis sweeps (engine × width ×
    /// front model × prefetch policy) cheap: only the first cell pays
    /// the fast-forward cost.
    #[test]
    fn checkpoints_are_config_independent_across_grid_cells() {
        let img = image();
        let scfg = quick_cfg();
        let store = tmp_store("xconfig");
        let fp = sfetch_trace::trace_fingerprint(&img, 7, 4096);

        // Populate with one cell: Stream engine, 4-wide, legacy front,
        // no prefetch.
        let mut first = StoredSampler::new(&img, fp, 7, scfg, &store);
        let _ = first.run_range(EngineKind::Stream, ProcessorConfig::table2(4), 0..4, 1);
        assert_eq!(first.stats().misses, 4, "first cell computes every checkpoint");

        // A maximally different cell: EV8 engine, 8-wide, its own front
        // model, its natural prefetch policy enabled.
        let mut pcfg = ProcessorConfig::table2(8);
        pcfg.front = sfetch_core::FrontPipeline::for_engine(EngineKind::Ev8);
        pcfg.prefetch =
            sfetch_core::PrefetchConfig::enabled(EngineKind::Ev8.natural_prefetch());

        let mut warm = StoredSampler::new(&img, fp, 7, scfg, &store);
        let got = warm.run_range(EngineKind::Ev8, pcfg, 0..4, 1);
        assert_eq!(warm.stats().misses, 0, "cross-config cell must recompute nothing");
        assert_eq!(warm.stats().hits, 4, "cross-config cell resumes fully warm");

        // And the warm-store points are bit-identical to a live sampler
        // running the same cell with no store at all.
        let mut live = crate::Sampler::new(&img, EngineKind::Ev8, pcfg, scfg, 7);
        let want = live.run(4);
        assert_eq!(want, got, "warm-store windows must match the live sampler");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn out_of_order_windows_restart_from_nearest_stored_state() {
        let img = image();
        let scfg = quick_cfg();
        let pcfg = ProcessorConfig::table2(4);
        let store = tmp_store("ooo");
        let fp = sfetch_trace::trace_fingerprint(&img, 11, 4096);

        let mut fwd = StoredSampler::new(&img, fp, 11, scfg, &store);
        let in_order = fwd.run_range(EngineKind::Ftb, pcfg, 0..3, 1);

        // A second runner asks for window 2 first, then 0 — the walker
        // must rewind through the store, not panic or drift.
        let mut ooo = StoredSampler::new(&img, fp, 11, scfg, &store);
        let (p2, _) = ooo.run_window(EngineKind::Ftb, pcfg, 2);
        let (p0, _) = ooo.run_window(EngineKind::Ftb, pcfg, 0);
        assert_eq!(p2, in_order[2]);
        assert_eq!(p0, in_order[0]);
        assert_eq!(ooo.stats().hits, 2);
        let _ = std::fs::remove_dir_all(store.root());
    }
}
