//! The reusable **checkpoint store**: content-addressed, versioned
//! architectural checkpoints shared across experiments.
//!
//! PR 4's sampler made paper-scale horizons affordable, but every run
//! still recomputed the functional fast-forward pass: each sampled
//! experiment walked the whole trace architecturally just to reach its
//! windows' warming starts. Those warming-start states depend only on
//! the *trace* — the workload image and input seed — never on the
//! engine, pipe width, or any timing-model knob, so one experiment's
//! fast-forward work is every later experiment's too. SMARTS-lineage
//! systems (TurboSMARTS' live-points, SimPoint checkpoint libraries)
//! all converge on the same answer: bank the checkpoints once, key them
//! on everything the replay depends on, and let the whole
//! configurations × windows grid resume from disk.
//!
//! This module is that bank:
//!
//! * [`StoreKey`] — the content address: *(workload fingerprint, input
//!   seed, instruction offset)*. The fingerprint
//!   ([`sfetch_trace::trace_fingerprint`], wrapped by the workload
//!   crate's `Workload::fingerprint`) digests the image's
//!   shape plus a committed-trace prefix, so any change to the program,
//!   its behaviour models, the layout, or the seed re-keys — stale
//!   state is unreachable rather than merely discouraged. Keying on the
//!   raw instruction offset (not a window number) makes entries
//!   schedule-agnostic: two schedules whose warming starts coincide
//!   share entries.
//! * [`CheckpointStore`] — one file per entry, written atomically
//!   (temp + rename, safe under concurrent shard processes), carrying a
//!   versioned header and the checkpoint's **warm-state digest**
//!   ([`ArchCheckpoint::digest`]); a corrupt, version-mismatched, or
//!   mis-keyed entry is *rejected and recomputed*, never trusted
//!   ([`StoreMiss::Rejected`]).
//! * [`StoredSampler`] — the store-aware window runner: it resolves
//!   each window's warming-start state through the store (loading on
//!   hit, walking the trace and saving on miss) and then runs the same
//!   window simulation as [`crate::Sampler`], producing bit-identical
//!   [`SamplePoint`]s. On a warm store no run ever fast-forwards:
//!   windows — across any engine, width, process, or machine — start
//!   directly at functional warming.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use sfetch_cfg::CodeImage;
use sfetch_core::{ProcessorConfig, SimStats};
use sfetch_fetch::EngineKind;
use sfetch_isa::wire::{WireReader, WireWriter};
use sfetch_mem::{MemoryConfig, MemoryHierarchy};
use sfetch_trace::{ArchCheckpoint, Executor};

use crate::config::SampleConfig;
use crate::runner::{
    measure_window, point_from_stats, warm_window, window_point, SamplePoint, WarmedWindow,
};

/// Magic word of a store entry ("SFCKSTOR").
const STORE_MAGIC: u64 = 0x5346_434b_5354_4f52;

/// Store entry format version. Bumped whenever the entry layout *or*
/// the semantics of checkpoint replay change; older entries are then
/// rejected and recomputed.
pub const STORE_VERSION: u64 = 1;

/// Content address of one stored checkpoint: the architectural state
/// after `at_inst` committed instructions of the trace `(fingerprint,
/// seed)` identifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreKey {
    /// Workload-trace fingerprint (see
    /// [`sfetch_trace::trace_fingerprint`]; the workload crate's
    /// `Workload::fingerprint` wraps it per layout flavour).
    pub fingerprint: u64,
    /// Input seed of the trace.
    pub seed: u64,
    /// Committed-instruction offset the checkpoint captures.
    pub at_inst: u64,
}

/// Why a [`CheckpointStore::load`] returned no checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreMiss {
    /// No entry exists under the key.
    Absent,
    /// An entry exists but failed verification (corruption, version or
    /// key mismatch, digest mismatch) and must be recomputed.
    Rejected(String),
}

impl std::fmt::Display for StoreMiss {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreMiss::Absent => f.write_str("absent"),
            StoreMiss::Rejected(why) => write!(f, "rejected: {why}"),
        }
    }
}

/// Hit/miss accounting of a [`StoredSampler`] (and of direct store
/// users), reported by the grid binaries so cold vs warm runs are
/// visible in the output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Checkpoints served from the store.
    pub hits: u64,
    /// Checkpoints computed (absent from the store) and saved.
    pub misses: u64,
    /// Entries present but rejected by verification, then recomputed.
    pub rejected: u64,
}

/// Per-store capacity/eviction bookkeeping, shared across clones (one
/// store directory, one working set).
#[derive(Debug, Default)]
struct CapState {
    /// Entry files this process has read or written: its live working
    /// set, exempt from eviction by this process.
    leased: sfetch_tab::OpenMap<PathBuf, ()>,
    /// Entry files evicted by this process to stay under the cap.
    evicted: u64,
}

/// One resident copy of a digest-verified warm entry (see
/// [`WarmCache`]).
#[derive(Debug)]
struct CachedWarm {
    entry: Arc<WarmEntry>,
    /// Serialized payload size — the quantity the cache budget bounds.
    bytes: u64,
    /// Logical access stamp for least-recently-served eviction.
    stamp: u64,
}

/// In-memory read cache of warm entries this process has banked or
/// digest-verified, shared across clones (one store directory, one
/// resident working set). Warm entries are content-addressed and
/// deterministic, so a resident copy never goes stale; on-disk
/// verification still guards every *first* load and all cross-process
/// reuse. Keyed by entry path — the path encodes the full
/// `(key, model)` address.
#[derive(Debug, Default)]
struct WarmCache {
    map: sfetch_tab::OpenMap<PathBuf, CachedWarm>,
    bytes: u64,
    clock: u64,
    hits: u64,
    misses: u64,
}

/// Default byte budget of the warm-entry read cache: comfortably holds
/// a full calibration grid's warm set (12 cells × 4 windows ≈ 75 MB)
/// without letting a long-lived daemon grow unbounded.
const WARM_CACHE_DEFAULT_BYTES: u64 = 256 << 20;

/// A directory of verified, content-addressed architectural checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    root: PathBuf,
    /// Byte budget across all entry files; `None` (the default) never
    /// sheds — the pre-cap behaviour.
    cap_bytes: Option<u64>,
    cap: std::sync::Arc<std::sync::Mutex<CapState>>,
    /// Byte budget of the in-memory warm-entry read cache; `0` disables.
    warm_cache_bytes: u64,
    warm_cache: std::sync::Arc<std::sync::Mutex<WarmCache>>,
}

impl CheckpointStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates the directory-creation failure.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(CheckpointStore {
            root,
            cap_bytes: None,
            cap: Default::default(),
            warm_cache_bytes: WARM_CACHE_DEFAULT_BYTES,
            warm_cache: Default::default(),
        })
    }

    /// Caps the store's total entry bytes (checkpoints + warm state).
    /// Every save then evicts least-recently-accessed entries until the
    /// total fits, **never** evicting entries leased (read or written)
    /// by this store handle — a capped store sheds cold history, not its
    /// live working set. Evicted entries are recomputed transparently on
    /// their next use, byte-identically (all entries are deterministic
    /// functions of their key). `None` disables shedding.
    pub fn with_cap_bytes(mut self, cap: Option<u64>) -> Self {
        self.cap_bytes = cap;
        self
    }

    /// The configured byte cap, if any.
    pub fn cap_bytes(&self) -> Option<u64> {
        self.cap_bytes
    }

    /// Bounds the in-memory warm-entry read cache (`0` disables it).
    ///
    /// Warm entries enter the cache when this handle banks or
    /// digest-verifies them, so a resident process's resubmissions skip
    /// the disk read and re-verification entirely; least-recently-served
    /// entries are dropped first once `bytes` of payload are resident.
    /// The cache holds only content this handle produced or verified
    /// (entries are deterministic functions of their address, so a
    /// resident copy cannot go stale), and cap eviction drops the
    /// resident copy together with the file.
    pub fn with_warm_cache_bytes(mut self, bytes: u64) -> Self {
        self.warm_cache_bytes = bytes;
        self
    }

    /// Bytes of warm-entry payload currently resident in the read cache.
    pub fn warm_cache_resident_bytes(&self) -> u64 {
        self.warm_cache.lock().expect("warm cache lock").bytes
    }

    /// Serves the resident copy of the warm entry at `path` (a shared
    /// handle — no payload is copied), stamping it most-recently-served.
    fn warm_cache_get(&self, path: &Path) -> Option<Arc<WarmEntry>> {
        if self.warm_cache_bytes == 0 {
            return None;
        }
        let mut c = self.warm_cache.lock().expect("warm cache lock");
        c.clock += 1;
        let stamp = c.clock;
        let Some(hit) = c.map.get_mut(path) else {
            c.misses += 1;
            return None;
        };
        hit.stamp = stamp;
        let entry = Arc::clone(&hit.entry);
        c.hits += 1;
        Some(entry)
    }

    /// Read-cache traffic accumulated so far: `(hits, misses)`.
    pub fn warm_cache_traffic(&self) -> (u64, u64) {
        let c = self.warm_cache.lock().expect("warm cache lock");
        (c.hits, c.misses)
    }

    /// Admits a banked or freshly verified warm entry (`bytes` of
    /// serialized payload), shedding least-recently-served entries to
    /// stay under the budget.
    fn warm_cache_put(&self, path: &Path, entry: &Arc<WarmEntry>, bytes: u64) {
        if self.warm_cache_bytes == 0 || bytes > self.warm_cache_bytes {
            return;
        }
        let mut c = self.warm_cache.lock().expect("warm cache lock");
        c.clock += 1;
        let stamp = c.clock;
        let fresh = CachedWarm { entry: Arc::clone(entry), bytes, stamp };
        if let Some(old) = c.map.insert(path.to_path_buf(), fresh) {
            c.bytes -= old.bytes;
        }
        c.bytes += bytes;
        while c.bytes > self.warm_cache_bytes {
            let victim = c.map.iter().min_by_key(|(_, v)| v.stamp).map(|(k, _)| k.clone());
            let Some(k) = victim else { break };
            if let Some(v) = c.map.remove(&k) {
                c.bytes -= v.bytes;
            }
        }
    }

    /// Drops the resident copy of `path`, if any (cap eviction).
    fn warm_cache_drop(&self, path: &Path) {
        let mut c = self.warm_cache.lock().expect("warm cache lock");
        if let Some(v) = c.map.remove(path) {
            c.bytes -= v.bytes;
        }
    }

    /// Entry files this handle evicted to stay under the cap.
    pub fn evicted(&self) -> u64 {
        self.cap.lock().expect("cap state lock").evicted
    }

    /// Total bytes of all entry files (checkpoints + warm state)
    /// currently in the store — the quantity the cap bounds.
    pub fn total_bytes(&self) -> u64 {
        self.scan_entries().iter().map(|e| e.len).sum()
    }

    /// Marks an entry file as part of this handle's working set.
    fn lease(&self, path: &Path) {
        let mut st = self.cap.lock().expect("cap state lock");
        st.leased.insert(path.to_path_buf(), ());
    }

    /// Best-effort LRU access stamp: bumps the entry's mtime so cap
    /// enforcement sees it as recently used. Failure is harmless (the
    /// entry just keeps its older stamp).
    fn touch(path: &Path) {
        if let Ok(f) = std::fs::File::options().append(true).open(path) {
            let now = std::time::SystemTime::now();
            let _ = f.set_times(
                std::fs::FileTimes::new().set_accessed(now).set_modified(now),
            );
        }
    }

    /// All entry files with their sizes and access stamps.
    fn scan_entries(&self) -> Vec<EntryFile> {
        let Ok(rd) = std::fs::read_dir(&self.root) else { return Vec::new() };
        let mut out = Vec::new();
        for e in rd.flatten() {
            let path = e.path();
            let is_entry = path
                .extension()
                .is_some_and(|x| x == "sfckpt" || x == "sfwarm");
            if !is_entry {
                continue;
            }
            let Ok(md) = e.metadata() else { continue };
            let mtime = md.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            out.push(EntryFile { path, len: md.len(), mtime });
        }
        out
    }

    /// Evicts least-recently-accessed, unleased entry files until the
    /// store fits its cap. Called after every save; a no-op without one.
    fn enforce_cap(&self) {
        let Some(cap) = self.cap_bytes else { return };
        let mut entries = self.scan_entries();
        let mut total: u64 = entries.iter().map(|e| e.len).sum();
        if total <= cap {
            return;
        }
        // Oldest access first; file name breaks stamp ties so eviction
        // order is deterministic within one mtime granule.
        entries.sort_by(|a, b| a.mtime.cmp(&b.mtime).then_with(|| a.path.cmp(&b.path)));
        let mut st = self.cap.lock().expect("cap state lock");
        for e in entries {
            if total <= cap {
                break;
            }
            if st.leased.contains_key(&e.path) {
                continue;
            }
            if std::fs::remove_file(&e.path).is_ok() {
                total -= e.len;
                st.evicted += 1;
                // An evicted entry is gone for good: drop the resident
                // copy too, so the next use recomputes like any other
                // process would.
                self.warm_cache_drop(&e.path);
            }
        }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The entry file a key addresses.
    pub fn entry_path(&self, key: &StoreKey) -> PathBuf {
        self.root.join(format!(
            "ck-{:016x}-{:016x}-{:012}.sfckpt",
            key.fingerprint, key.seed, key.at_inst
        ))
    }

    /// Number of entry files currently in the store (any key).
    pub fn entries(&self) -> usize {
        std::fs::read_dir(&self.root)
            .map(|rd| {
                rd.filter(|e| {
                    e.as_ref().is_ok_and(|e| {
                        e.path().extension().is_some_and(|x| x == "sfckpt")
                    })
                })
                .count()
            })
            .unwrap_or(0)
    }

    /// Loads and fully verifies the checkpoint stored under `key`.
    ///
    /// # Errors
    ///
    /// [`StoreMiss::Absent`] when no entry exists;
    /// [`StoreMiss::Rejected`] when an entry exists but fails *any*
    /// verification step — wrong magic, format version, key fields,
    /// truncation, warm-state digest mismatch, or checkpoint
    /// deserialization. Rejected entries must be recomputed; their
    /// contents are never returned.
    pub fn load(&self, key: &StoreKey) -> Result<ArchCheckpoint, StoreMiss> {
        let path = self.entry_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(StoreMiss::Absent),
            Err(e) => return Err(StoreMiss::Rejected(format!("unreadable entry: {e}"))),
        };
        let reject = |why: String| Err(StoreMiss::Rejected(why));
        if bytes.len() < HEADER_WORDS * 8 {
            return reject(format!("header truncated ({} bytes)", bytes.len()));
        }
        let word = |i: usize| {
            u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().expect("8-byte slice"))
        };
        if word(0) != STORE_MAGIC {
            return reject("bad store magic".into());
        }
        if word(1) != STORE_VERSION {
            return reject(format!("format version {} != {STORE_VERSION}", word(1)));
        }
        if word(2) != key.fingerprint || word(3) != key.seed || word(4) != key.at_inst {
            return reject("entry key fields do not match the requested key".into());
        }
        let digest = word(5);
        let payload_len = word(6) as usize;
        let payload = &bytes[HEADER_WORDS * 8..];
        if payload.len() != payload_len {
            return reject(format!(
                "payload length {} != recorded {payload_len}",
                payload.len()
            ));
        }
        if sfetch_trace::digest_bytes(payload) != digest {
            return reject("warm-state digest mismatch (corrupt entry)".into());
        }
        let cp = match ArchCheckpoint::from_bytes(payload) {
            Ok(cp) => cp,
            Err(e) => return reject(format!("checkpoint payload: {e}")),
        };
        if cp.seq != key.at_inst {
            return reject(format!(
                "checkpoint is at instruction {}, key says {}",
                cp.seq, key.at_inst
            ));
        }
        self.lease(&path);
        Self::touch(&path);
        Ok(cp)
    }

    /// Writes `cp` under `key`, atomically (a concurrent reader sees
    /// either the old entry or the new one, never a torn write).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    ///
    /// # Panics
    ///
    /// Panics if `cp.seq != key.at_inst` — storing a checkpoint under
    /// an offset it does not capture would poison every later replay.
    pub fn save(&self, key: &StoreKey, cp: &ArchCheckpoint) -> std::io::Result<()> {
        assert_eq!(cp.seq, key.at_inst, "checkpoint offset must match its key");
        let payload = cp.to_bytes();
        let mut out = Vec::with_capacity(HEADER_WORDS * 8 + payload.len());
        for w in [
            STORE_MAGIC,
            STORE_VERSION,
            key.fingerprint,
            key.seed,
            key.at_inst,
            sfetch_trace::digest_bytes(&payload),
            payload.len() as u64,
        ] {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&payload);
        let path = self.entry_path(key);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&out)?;
        }
        std::fs::rename(&tmp, &path)?;
        self.lease(&path);
        self.enforce_cap();
        Ok(())
    }

    /// The warm-state entry file a `(key, model digest)` pair addresses.
    pub fn warm_entry_path(&self, key: &StoreKey, model: u64) -> PathBuf {
        self.root.join(format!(
            "wm-{:016x}-{:016x}-{:012}-{model:016x}.sfwarm",
            key.fingerprint, key.seed, key.at_inst
        ))
    }

    /// Number of warm-state entry files currently in the store (any key).
    pub fn warm_entries(&self) -> usize {
        std::fs::read_dir(&self.root)
            .map(|rd| {
                rd.filter(|e| {
                    e.as_ref().is_ok_and(|e| {
                        e.path().extension().is_some_and(|x| x == "sfwarm")
                    })
                })
                .count()
            })
            .unwrap_or(0)
    }

    /// Loads and fully verifies the warm-state entry stored under
    /// `(key, model)`. Same discipline as [`CheckpointStore::load`]:
    /// *any* verification failure — magic, version, key or model fields,
    /// truncation, payload digest, segment structure, or embedded
    /// checkpoint offset — rejects the entry for recomputation.
    ///
    /// # Errors
    ///
    /// [`StoreMiss::Absent`] when no entry exists; [`StoreMiss::Rejected`]
    /// when one exists but fails verification.
    pub fn load_warm(&self, key: &StoreKey, model: u64) -> Result<Arc<WarmEntry>, StoreMiss> {
        let path = self.warm_entry_path(key, model);
        // A resident copy was verified (or produced) by this process;
        // serve it without touching the disk.
        if let Some(entry) = self.warm_cache_get(&path) {
            self.lease(&path);
            Self::touch(&path);
            return Ok(entry);
        }
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(StoreMiss::Absent),
            Err(e) => return Err(StoreMiss::Rejected(format!("unreadable entry: {e}"))),
        };
        let reject = |why: String| Err(StoreMiss::Rejected(why));
        if bytes.len() < WARM_HEADER_WORDS * 8 {
            return reject(format!("header truncated ({} bytes)", bytes.len()));
        }
        let word = |i: usize| {
            u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().expect("8-byte slice"))
        };
        if word(0) != WARM_MAGIC {
            return reject("bad warm-entry magic".into());
        }
        if word(1) != WARM_VERSION {
            return reject(format!("warm format version {} != {WARM_VERSION}", word(1)));
        }
        if word(2) != key.fingerprint || word(3) != key.seed || word(4) != key.at_inst {
            return reject("entry key fields do not match the requested key".into());
        }
        if word(5) != model {
            return reject("entry model digest does not match the requested model".into());
        }
        let digest = word(6);
        let payload_len = word(7) as usize;
        let payload = &bytes[WARM_HEADER_WORDS * 8..];
        if payload.len() != payload_len {
            return reject(format!("payload length {} != recorded {payload_len}", payload.len()));
        }
        if sfetch_trace::digest_bytes(payload) != digest {
            return reject("warm-entry digest mismatch (corrupt entry)".into());
        }
        let mut r = WireReader::new(payload);
        let parse = (|| -> Result<WarmEntry, String> {
            let ckpt = ArchCheckpoint::from_bytes(r.bytes()?)?;
            let engine = r.bytes()?.to_vec();
            let mem = r.bytes()?.to_vec();
            r.finish()?;
            Ok(WarmEntry { ckpt, engine, mem })
        })();
        let entry = match parse {
            Ok(e) => e,
            Err(e) => return reject(format!("warm-entry payload: {e}")),
        };
        // The embedded checkpoint sits at the *end* of functional warming;
        // its exact offset is model-dependent (warm_func lives in the
        // model digest), so only the lower bound is checkable here.
        if entry.ckpt.seq < key.at_inst {
            return reject(format!(
                "embedded checkpoint at instruction {} precedes warming start {}",
                entry.ckpt.seq, key.at_inst
            ));
        }
        let entry = Arc::new(entry);
        self.warm_cache_put(&path, &entry, payload_len as u64);
        self.lease(&path);
        Self::touch(&path);
        Ok(entry)
    }

    /// Writes a warm-state entry under `(key, model)`, atomically.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    ///
    /// # Panics
    ///
    /// Panics if the embedded checkpoint precedes the warming start the
    /// key names — banking state from before the warming walk would
    /// poison every resident rerun.
    pub fn save_warm(&self, key: &StoreKey, model: u64, entry: &WarmEntry) -> std::io::Result<()> {
        assert!(
            entry.ckpt.seq >= key.at_inst,
            "warm-state checkpoint must not precede its warming start"
        );
        let mut pw = WireWriter::new();
        pw.bytes(&entry.ckpt.to_bytes());
        pw.bytes(&entry.engine);
        pw.bytes(&entry.mem);
        let payload = pw.into_bytes();
        let mut out = Vec::with_capacity(WARM_HEADER_WORDS * 8 + payload.len());
        for w in [
            WARM_MAGIC,
            WARM_VERSION,
            key.fingerprint,
            key.seed,
            key.at_inst,
            model,
            sfetch_trace::digest_bytes(&payload),
            payload.len() as u64,
        ] {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&payload);
        let path = self.warm_entry_path(key, model);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&out)?;
        }
        std::fs::rename(&tmp, &path)?;
        // Write-through: what this process just banked stays resident,
        // so its own resubmissions never re-read what they wrote.
        self.warm_cache_put(&path, &Arc::new(entry.clone()), payload.len() as u64);
        self.lease(&path);
        self.enforce_cap();
        Ok(())
    }
}

/// One entry file as seen by cap enforcement.
struct EntryFile {
    path: PathBuf,
    len: u64,
    mtime: std::time::SystemTime,
}

/// Words in a store-entry header (magic, version, fingerprint, seed,
/// at_inst, payload digest, payload length).
const HEADER_WORDS: usize = 7;

/// Magic word of a warm-state entry ("SFWMBANK").
const WARM_MAGIC: u64 = 0x5346_574d_4241_4e4b;

/// Warm-state entry format version. Bumped whenever the entry layout
/// changes; older entries are then rejected and recomputed. Engine-level
/// wire-format evolution is carried by the *model digest* instead
/// ([`warm_model_digest`] folds in
/// [`sfetch_fetch::WARM_FORMAT_VERSION`]), so an engine format bump
/// re-keys entries rather than rejecting them one by one.
pub const WARM_VERSION: u64 = 1;

/// Words in a warm-state entry header (magic, version, fingerprint,
/// seed, at_inst, model digest, payload digest, payload length).
const WARM_HEADER_WORDS: usize = 8;

/// One banked warm-state entry: everything a resident rerun needs to
/// start a window directly at its detailed phase, skipping the warming
/// walk — the post-warming architectural checkpoint, the fetch engine's
/// commit-side warm state ([`sfetch_fetch::FetchEngine::warm_state`]),
/// and the memory hierarchy's cache tag/LRU state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmEntry {
    /// Architectural state at the *end* of functional warming (= the
    /// window's detailed-warmup start).
    pub ckpt: ArchCheckpoint,
    /// Engine warm-state wire bytes.
    pub engine: Vec<u8>,
    /// Memory-hierarchy warm-state wire bytes
    /// ([`sfetch_mem::MemoryHierarchy::save_warm_wire`]).
    pub mem: Vec<u8>,
}

/// Digest of everything a warm-state entry depends on *beyond* the
/// trace: the engine kind and wire-format version, the pipe width (cache
/// geometry and engine tables), the front-pipeline and prefetch
/// configurations, and the warming spans. Two cells agreeing on all of
/// these may share warm entries; any difference re-keys.
pub fn warm_model_digest(kind: EngineKind, pcfg: &ProcessorConfig, scfg: &SampleConfig) -> u64 {
    let desc = format!(
        "warmfmt={}|engine={kind:?}|width={}|front={:?}|prefetch={:?}|warm_func={}|warm_mem={}",
        sfetch_fetch::WARM_FORMAT_VERSION,
        pcfg.width,
        pcfg.front,
        pcfg.prefetch,
        scfg.warm_func,
        scfg.warm_mem,
    );
    sfetch_trace::digest_bytes(desc.as_bytes())
}

/// The store-aware sampled-window runner.
///
/// Where [`crate::Sampler`] owns a live master executor that must walk
/// the whole trace, a `StoredSampler` resolves each window's
/// warming-start state *by content*: load from the [`CheckpointStore`]
/// if present and valid, otherwise walk the trace from the nearest
/// earlier stored state (or the trace start) and save the result for
/// every later experiment. The window simulation itself is byte-for-
/// byte the one [`crate::Sampler`] runs, so the produced
/// [`SamplePoint`]s are **bit-identical** to a storeless run — asserted
/// by `tests/tests/checkpoint_store.rs` and by the grid binaries'
/// `--verify` legs.
pub struct StoredSampler<'a> {
    image: &'a CodeImage,
    fingerprint: u64,
    seed: u64,
    scfg: SampleConfig,
    store: &'a CheckpointStore,
    walker: Option<Executor<'a>>,
    stats: StoreStats,
    warm_bank: bool,
    warm_stats: StoreStats,
    timing: WarmTiming,
}

/// Wall-clock breakdown of where a [`StoredSampler`] run's host time
/// went, per phase. `warm_ns` is the per-window functional-warming (or,
/// on a banked hit, warm-state-restore) cost — the quantity warm-engine-
/// state banking exists to shrink; `ff_ns` is the serial snapshot
/// resolution (fast-forward walking and store IO).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmTiming {
    /// Nanoseconds resolving warming-start snapshots (serial).
    pub ff_ns: u64,
    /// Nanoseconds warming windows live, or restoring banked warm state.
    pub warm_ns: u64,
    /// Windows covered by the above.
    pub windows: u64,
}

impl WarmTiming {
    /// Mean per-window warming cost in nanoseconds.
    pub fn warm_ns_per_window(&self) -> u64 {
        self.warm_ns.checked_div(self.windows).unwrap_or(0)
    }
}

/// How one window's warm state will be obtained.
// One value per window in flight; the size gap vs the `Arc`'d banked
// variant is irrelevant at that count.
#[allow(clippy::large_enum_variant)]
enum WarmSource<'a> {
    /// Warm live from this snapshot; bank the result under the key when
    /// one is present.
    Snapshot(Executor<'a>, Option<StoreKey>),
    /// Restore from this verified banked entry.
    Banked(Arc<WarmEntry>),
}

impl<'a> StoredSampler<'a> {
    /// Creates a runner for the trace `(image, seed)` registered in the
    /// store under `fingerprint`.
    ///
    /// # Panics
    ///
    /// Panics if `scfg` fails [`SampleConfig::validate`].
    pub fn new(
        image: &'a CodeImage,
        fingerprint: u64,
        seed: u64,
        scfg: SampleConfig,
        store: &'a CheckpointStore,
    ) -> Self {
        scfg.validate();
        StoredSampler {
            image,
            fingerprint,
            seed,
            scfg,
            store,
            walker: None,
            stats: StoreStats::default(),
            warm_bank: false,
            warm_stats: StoreStats::default(),
            timing: WarmTiming::default(),
        }
    }

    /// Enables (or disables) warm-engine-state banking: windows whose
    /// warm state is banked restore it and skip the warming walk;
    /// windows warmed live bank their result for the next run. Output is
    /// bit-identical either way — banking only moves host time.
    pub fn with_warm_bank(mut self, on: bool) -> Self {
        self.warm_bank = on;
        self
    }

    /// Store traffic accumulated so far.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Warm-state bank traffic accumulated so far (all zero unless
    /// [`StoredSampler::with_warm_bank`] enabled banking).
    pub fn warm_bank_stats(&self) -> StoreStats {
        self.warm_stats
    }

    /// Host-time breakdown accumulated so far.
    pub fn timing(&self) -> WarmTiming {
        self.timing
    }

    /// Committed-instruction offset at which window `w`'s functional
    /// warming starts — the offset its stored checkpoint captures.
    pub fn warming_start(&self, w: u64) -> u64 {
        w * self.scfg.interval + self.scfg.fast_forward()
    }

    fn key_at(&self, at_inst: u64) -> StoreKey {
        StoreKey { fingerprint: self.fingerprint, seed: self.seed, at_inst }
    }

    /// The architectural state at window `w`'s warming start: from the
    /// store on a hit, otherwise computed (walking from the nearest
    /// earlier stored window, or the trace start) and saved.
    pub fn snapshot(&mut self, w: u64) -> Executor<'a> {
        let target = self.warming_start(w);
        match self.store.load(&self.key_at(target)) {
            Ok(cp) => {
                self.stats.hits += 1;
                return Executor::from_checkpoint(self.image, &cp);
            }
            Err(StoreMiss::Absent) => self.stats.misses += 1,
            Err(StoreMiss::Rejected(_)) => self.stats.rejected += 1,
        }
        // Recompute. Reuse the live walker when it has not overshot;
        // otherwise restart from the nearest earlier stored window (a
        // warm store with holes) or from the trace start.
        let need_restart =
            self.walker.as_ref().is_none_or(|e| e.committed() > target);
        if need_restart {
            self.walker = Some(self.nearest_start(w, target));
        }
        let walker = self.walker.as_mut().expect("walker installed above");
        for _ in walker.committed()..target {
            walker.next();
        }
        let snap = walker.clone();
        // Best-effort save: a read-only store directory degrades to
        // recomputing every run, it does not break correctness.
        let _ = self.store.save(&self.key_at(target), &snap.checkpoint());
        snap
    }

    /// An executor positioned at or before `target`: the closest earlier
    /// window's stored checkpoint if any verifies, else the trace start.
    fn nearest_start(&mut self, w: u64, target: u64) -> Executor<'a> {
        for earlier in (0..w).rev() {
            let at = self.warming_start(earlier);
            if at > target {
                continue;
            }
            if let Ok(cp) = self.store.load(&self.key_at(at)) {
                self.stats.hits += 1;
                return Executor::from_checkpoint(self.image, &cp);
            }
        }
        Executor::from_image(self.image, self.seed)
    }

    /// Runs window `w` for one engine/configuration, returning the
    /// sample point and the measured phase's full [`SimStats`].
    pub fn run_window(
        &mut self,
        kind: EngineKind,
        pcfg: ProcessorConfig,
        w: u64,
    ) -> (SamplePoint, SimStats) {
        let snap = self.snapshot(w);
        let (point, stats, _) =
            window_point(self.image, kind, pcfg, &self.scfg, w, snap, false);
        (point, stats)
    }

    /// Runs windows `range` for one engine/configuration with up to
    /// `jobs` worker threads. Snapshots are resolved serially through
    /// the store (cheap on a warm store); the window simulations — the
    /// expensive part — fan out. Bit-identical to a serial run for any
    /// `jobs`, like every parallel path in this repository — and
    /// bit-identical with warm-state banking on or off.
    pub fn run_range(
        &mut self,
        kind: EngineKind,
        pcfg: ProcessorConfig,
        range: std::ops::Range<u64>,
        jobs: usize,
    ) -> Vec<SamplePoint> {
        self.run_range_core(kind, pcfg, range, jobs).into_iter().map(|(p, _)| p).collect()
    }

    /// [`StoredSampler::run_range`], but returning each window's full
    /// measured-phase [`SimStats`] alongside its [`SamplePoint`] — the
    /// sampled runners' time-series sinks consume the per-window stats
    /// while the grid aggregation keeps using the points.
    pub fn run_range_stats(
        &mut self,
        kind: EngineKind,
        pcfg: ProcessorConfig,
        range: std::ops::Range<u64>,
        jobs: usize,
    ) -> Vec<(SamplePoint, SimStats)> {
        self.run_range_core(kind, pcfg, range, jobs)
    }

    /// Resolves one window's warm source, serially: a verified banked
    /// warm-state entry when banking is on and one exists, else the
    /// architectural snapshot at the warming start (tagged with the key
    /// to bank the warming result under, when banking is on).
    fn resolve_warm_source(&mut self, w: u64, model: u64) -> WarmSource<'a> {
        if self.warm_bank {
            let key = self.key_at(self.warming_start(w));
            match self.store.load_warm(&key, model) {
                Ok(entry) => {
                    self.warm_stats.hits += 1;
                    return WarmSource::Banked(entry);
                }
                Err(StoreMiss::Absent) => self.warm_stats.misses += 1,
                Err(StoreMiss::Rejected(_)) => self.warm_stats.rejected += 1,
            }
            WarmSource::Snapshot(self.snapshot(w), Some(key))
        } else {
            WarmSource::Snapshot(self.snapshot(w), None)
        }
    }

    /// The chunked serial-resolve / parallel-simulate loop shared by the
    /// range runners.
    fn run_range_core(
        &mut self,
        kind: EngineKind,
        pcfg: ProcessorConfig,
        range: std::ops::Range<u64>,
        jobs: usize,
    ) -> Vec<(SamplePoint, SimStats)> {
        let jobs = jobs.max(1);
        let (image, scfg, store) = (self.image, self.scfg, self.store);
        let model = warm_model_digest(kind, &pcfg, &scfg);
        let mut out = Vec::with_capacity((range.end - range.start) as usize);
        let mut w = range.start;
        while w < range.end {
            let chunk = (range.end - w).min(jobs as u64);
            let t0 = Instant::now();
            let sources: Vec<(u64, WarmSource<'a>)> =
                (w..w + chunk).map(|i| (i, self.resolve_warm_source(i, model))).collect();
            self.timing.ff_ns += t0.elapsed().as_nanos() as u64;
            if jobs == 1 {
                for (i, src) in sources {
                    let (p, s, ns) = run_one(image, kind, pcfg, &scfg, store, model, i, src);
                    self.timing.warm_ns += ns;
                    out.push((p, s));
                }
            } else {
                std::thread::scope(|s| {
                    let handles: Vec<_> = sources
                        .into_iter()
                        .map(|(i, src)| {
                            s.spawn(move || {
                                run_one(image, kind, pcfg, &scfg, store, model, i, src)
                            })
                        })
                        .collect();
                    for h in handles {
                        let (p, st, ns) = h.join().expect("window worker");
                        self.timing.warm_ns += ns;
                        out.push((p, st));
                    }
                });
            }
            self.timing.windows += chunk;
            w += chunk;
        }
        out
    }

    /// Ensures every window in `0..windows` has a stored checkpoint
    /// (the shard parent's one-pass populate), returning the number
    /// that had to be computed.
    pub fn populate(&mut self, windows: u64) -> u64 {
        let before = self.stats;
        for w in 0..windows {
            let _ = self.snapshot(w);
        }
        self.stats.misses + self.stats.rejected - before.misses - before.rejected
    }
}

/// One window end-to-end from its resolved warm source: restore or warm
/// (banking a live-warmed result when asked to), then measure. Returns
/// the point, the measured stats, and the nanoseconds the warm phase
/// took. Runs on worker threads; every output is deterministic except
/// the timing.
#[allow(clippy::too_many_arguments)]
fn run_one<'a>(
    image: &'a CodeImage,
    kind: EngineKind,
    pcfg: ProcessorConfig,
    scfg: &SampleConfig,
    store: &CheckpointStore,
    model: u64,
    w: u64,
    src: WarmSource<'a>,
) -> (SamplePoint, SimStats, u64) {
    let t0 = Instant::now();
    let ww = match src {
        WarmSource::Banked(entry) => {
            // The entry passed magic/version/key/model/digest checks, so
            // a reconstruction failure here is a format bug, not data
            // corruption — surface it loudly rather than quietly
            // recomputing what a test should have caught.
            let exec = Executor::from_checkpoint(image, &entry.ckpt);
            let mut engine = kind.build_for(pcfg.width, exec.pc(), &pcfg.prefetch, &pcfg.front);
            engine
                .load_warm_state(&entry.engine)
                .expect("digest-verified engine warm state must load");
            let mut mem = MemoryHierarchy::new(MemoryConfig::table2(pcfg.width));
            let mut r = WireReader::new(&entry.mem);
            mem.load_warm_wire(&mut r)
                .and_then(|()| r.finish())
                .expect("digest-verified memory warm state must load");
            WarmedWindow { exec, engine, mem }
        }
        WarmSource::Snapshot(exec, bank_to) => {
            let ww = warm_window(kind, pcfg, scfg, exec);
            if let Some(key) = bank_to {
                if let Some(engine_bytes) = ww.engine.warm_state() {
                    let mut mw = WireWriter::new();
                    ww.mem.save_warm_wire(&mut mw);
                    let entry = WarmEntry {
                        ckpt: ww.exec.checkpoint(),
                        engine: engine_bytes,
                        mem: mw.into_bytes(),
                    };
                    // Best-effort, like checkpoint saves: a read-only
                    // store degrades to warming every run.
                    let _ = store.save_warm(&key, model, &entry);
                }
            }
            ww
        }
    };
    let warm_ns = t0.elapsed().as_nanos() as u64;
    let (stats, _) = measure_window(image, pcfg, scfg, ww, false);
    (point_from_stats(w, scfg, &stats), stats, warm_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfetch_cfg::gen::{GenParams, ProgramGenerator};
    use sfetch_cfg::layout;

    fn image() -> CodeImage {
        let cfg = ProgramGenerator::new(GenParams::small(), 17).generate();
        let lay = layout::natural(&cfg);
        CodeImage::build(&cfg, &lay)
    }

    fn tmp_store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir()
            .join(format!("sfetch-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::open(dir).expect("open store")
    }

    fn quick_cfg() -> SampleConfig {
        SampleConfig {
            interval: 40_000,
            warm_func: 6_000,
            warm_mem: 6_000,
            warm_detail: 1_000,
            measure: 2_000,
            ..Default::default()
        }
    }

    #[test]
    fn save_load_roundtrip_and_absent() {
        let img = image();
        let store = tmp_store("roundtrip");
        let key = StoreKey { fingerprint: 0xfeed, seed: 3, at_inst: 12_000 };
        assert_eq!(store.load(&key), Err(StoreMiss::Absent));
        let mut ex = Executor::from_image(&img, 3);
        ex.nth(11_999);
        let cp = ex.checkpoint();
        store.save(&key, &cp).expect("save");
        assert_eq!(store.entries(), 1);
        let back = store.load(&key).expect("verified load");
        assert_eq!(back, cp);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_and_mismatched_entries_are_rejected() {
        let img = image();
        let store = tmp_store("reject");
        let key = StoreKey { fingerprint: 1, seed: 9, at_inst: 5_000 };
        let mut ex = Executor::from_image(&img, 9);
        ex.nth(4_999);
        store.save(&key, &ex.checkpoint()).expect("save");
        let path = store.entry_path(&key);
        let pristine = std::fs::read(&path).expect("read entry");

        // Flip one payload byte: digest verification must reject.
        let mut bytes = pristine.clone();
        bytes[HEADER_WORDS * 8 + 40] ^= 0xff;
        std::fs::write(&path, &bytes).expect("rewrite");
        assert!(
            matches!(store.load(&key), Err(StoreMiss::Rejected(why)) if why.contains("digest")),
            "corruption must be rejected"
        );

        // Bump the recorded format version: version gate must reject.
        let mut bytes = pristine.clone();
        bytes[8..16].copy_from_slice(&(STORE_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &bytes).expect("rewrite");
        assert!(
            matches!(store.load(&key), Err(StoreMiss::Rejected(why)) if why.contains("version")),
            "version mismatch must be rejected"
        );

        // A key whose fields disagree with the entry (same file path
        // cannot happen through entry_path, so fake it by renaming).
        std::fs::write(&path, &pristine).expect("restore entry");
        let other = StoreKey { fingerprint: 2, ..key };
        std::fs::rename(&path, store.entry_path(&other)).expect("rename");
        assert!(
            matches!(store.load(&other), Err(StoreMiss::Rejected(why)) if why.contains("key")),
            "key mismatch must be rejected"
        );
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn stored_sampler_matches_plain_sampler_and_reuses_entries() {
        let img = image();
        let scfg = quick_cfg();
        let pcfg = ProcessorConfig::table2(4);
        let store = tmp_store("equiv");
        let fp = sfetch_trace::trace_fingerprint(&img, 7, 4096);

        let mut plain = crate::Sampler::new(&img, EngineKind::Stream, pcfg, scfg, 7);
        let want = plain.run(4);

        let mut cold = StoredSampler::new(&img, fp, 7, scfg, &store);
        let got = cold.run_range(EngineKind::Stream, pcfg, 0..4, 1);
        assert_eq!(want, got, "store-backed windows must be bit-identical");
        assert_eq!(cold.stats().misses, 4, "cold store computes every window");
        assert_eq!(store.entries(), 4);

        let mut warm = StoredSampler::new(&img, fp, 7, scfg, &store);
        let again = warm.run_range(EngineKind::Stream, pcfg, 0..4, 1);
        assert_eq!(want, again, "warm store replays bit-identically");
        assert_eq!(warm.stats().hits, 4, "warm store loads every window");
        assert_eq!(warm.stats().misses, 0);
        let _ = std::fs::remove_dir_all(store.root());
    }

    /// Checkpoints are content-addressed on the trace alone, never on
    /// the simulated configuration — so a store populated by one grid
    /// cell serves *every* other cell of the same benchmark warm. This
    /// is what makes calibration-grid axis sweeps (engine × width ×
    /// front model × prefetch policy) cheap: only the first cell pays
    /// the fast-forward cost.
    #[test]
    fn checkpoints_are_config_independent_across_grid_cells() {
        let img = image();
        let scfg = quick_cfg();
        let store = tmp_store("xconfig");
        let fp = sfetch_trace::trace_fingerprint(&img, 7, 4096);

        // Populate with one cell: Stream engine, 4-wide, legacy front,
        // no prefetch.
        let mut first = StoredSampler::new(&img, fp, 7, scfg, &store);
        let _ = first.run_range(EngineKind::Stream, ProcessorConfig::table2(4), 0..4, 1);
        assert_eq!(first.stats().misses, 4, "first cell computes every checkpoint");

        // A maximally different cell: EV8 engine, 8-wide, its own front
        // model, its natural prefetch policy enabled.
        let mut pcfg = ProcessorConfig::table2(8);
        pcfg.front = sfetch_core::FrontPipeline::for_engine(EngineKind::Ev8);
        pcfg.prefetch =
            sfetch_core::PrefetchConfig::enabled(EngineKind::Ev8.natural_prefetch());

        let mut warm = StoredSampler::new(&img, fp, 7, scfg, &store);
        let got = warm.run_range(EngineKind::Ev8, pcfg, 0..4, 1);
        assert_eq!(warm.stats().misses, 0, "cross-config cell must recompute nothing");
        assert_eq!(warm.stats().hits, 4, "cross-config cell resumes fully warm");

        // And the warm-store points are bit-identical to a live sampler
        // running the same cell with no store at all.
        let mut live = crate::Sampler::new(&img, EngineKind::Ev8, pcfg, scfg, 7);
        let want = live.run(4);
        assert_eq!(want, got, "warm-store windows must match the live sampler");
        let _ = std::fs::remove_dir_all(store.root());
    }

    /// The banking oracle: for every engine, a warm-bank run must be
    /// bit-identical to the storeless live sampler — on the banking
    /// (cold) pass *and* on the resident (banked) rerun, which must
    /// serve every window from the bank.
    #[test]
    fn warm_bank_is_bit_identical_to_live_for_every_engine() {
        let img = image();
        let scfg = quick_cfg();
        let pcfg = ProcessorConfig::table2(4);
        for kind in EngineKind::ALL {
            let store = tmp_store(&format!("bank-{kind:?}"));
            let fp = sfetch_trace::trace_fingerprint(&img, 7, 4096);

            let mut live = crate::Sampler::new(&img, kind, pcfg, scfg, 7);
            let want = live.run(3);

            let mut cold = StoredSampler::new(&img, fp, 7, scfg, &store).with_warm_bank(true);
            let got = cold.run_range(kind, pcfg, 0..3, 1);
            assert_eq!(want, got, "{kind:?}: banking pass must match live");
            assert_eq!(cold.warm_bank_stats().misses, 3, "{kind:?}: cold bank misses all");
            assert_eq!(store.warm_entries(), 3, "{kind:?}: warming results banked");

            let mut resident = StoredSampler::new(&img, fp, 7, scfg, &store).with_warm_bank(true);
            let again = resident.run_range(kind, pcfg, 0..3, 1);
            assert_eq!(want, again, "{kind:?}: banked rerun must match live");
            assert_eq!(resident.warm_bank_stats().hits, 3, "{kind:?}: rerun fully banked");
            assert_eq!(resident.warm_bank_stats().misses, 0);
            assert_eq!(
                resident.stats(),
                StoreStats::default(),
                "{kind:?}: banked windows never touch the checkpoint path"
            );
            let _ = std::fs::remove_dir_all(store.root());
        }
    }

    /// Banked parallel runs stay bit-identical to serial banked runs.
    #[test]
    fn warm_bank_parallel_matches_serial() {
        let img = image();
        let scfg = quick_cfg();
        let pcfg = ProcessorConfig::table2(4);
        let store = tmp_store("bank-par");
        let fp = sfetch_trace::trace_fingerprint(&img, 7, 4096);

        let mut serial = StoredSampler::new(&img, fp, 7, scfg, &store).with_warm_bank(true);
        let want = serial.run_range(EngineKind::Stream, pcfg, 0..4, 1);
        for jobs in [2, 4] {
            let mut par = StoredSampler::new(&img, fp, 7, scfg, &store).with_warm_bank(true);
            let got = par.run_range(EngineKind::Stream, pcfg, 0..4, jobs);
            assert_eq!(want, got, "jobs = {jobs}");
            assert_eq!(par.warm_bank_stats().hits, 4, "jobs = {jobs}");
        }
        let _ = std::fs::remove_dir_all(store.root());
    }

    /// Warm entries are keyed on the model digest: a different engine,
    /// width, or warming span must not see another cell's entries.
    #[test]
    fn warm_entries_are_model_keyed() {
        let img = image();
        let scfg = quick_cfg();
        let store = tmp_store("bank-model");
        let fp = sfetch_trace::trace_fingerprint(&img, 7, 4096);

        let mut a = StoredSampler::new(&img, fp, 7, scfg, &store).with_warm_bank(true);
        let _ = a.run_range(EngineKind::Stream, ProcessorConfig::table2(4), 0..2, 1);
        assert_eq!(store.warm_entries(), 2);

        // Different engine: banked entries must miss, not collide.
        let mut b = StoredSampler::new(&img, fp, 7, scfg, &store).with_warm_bank(true);
        let _ = b.run_range(EngineKind::Ev8, ProcessorConfig::table2(4), 0..2, 1);
        assert_eq!(b.warm_bank_stats().hits, 0, "cross-engine entries must not be shared");
        assert_eq!(b.warm_bank_stats().misses, 2);
        assert_eq!(store.warm_entries(), 4);

        // Same engine, different width: also re-keyed (cache geometry).
        let d8 = warm_model_digest(EngineKind::Stream, &ProcessorConfig::table2(8), &scfg);
        let d4 = warm_model_digest(EngineKind::Stream, &ProcessorConfig::table2(4), &scfg);
        assert_ne!(d8, d4);
        let _ = std::fs::remove_dir_all(store.root());
    }

    /// Corrupt or version-mismatched warm entries are rejected and the
    /// window silently recomputes — and re-banks a good entry.
    #[test]
    fn corrupt_warm_entries_are_rejected_and_recomputed() {
        let img = image();
        let scfg = quick_cfg();
        let pcfg = ProcessorConfig::table2(4);
        let store = tmp_store("bank-reject");
        let fp = sfetch_trace::trace_fingerprint(&img, 7, 4096);
        let model = warm_model_digest(EngineKind::Ftb, &pcfg, &scfg);

        let mut cold = StoredSampler::new(&img, fp, 7, scfg, &store).with_warm_bank(true);
        let want = cold.run_range(EngineKind::Ftb, pcfg, 0..2, 1);

        // Corrupt window 0's entry payload; bump window 1's version.
        let key0 = StoreKey { fingerprint: fp, seed: 7, at_inst: cold.warming_start(0) };
        let key1 = StoreKey { fingerprint: fp, seed: 7, at_inst: cold.warming_start(1) };
        let p0 = store.warm_entry_path(&key0, model);
        let mut bytes = std::fs::read(&p0).expect("entry 0");
        let n = bytes.len();
        bytes[n - 9] ^= 0xff;
        std::fs::write(&p0, &bytes).expect("rewrite");
        let p1 = store.warm_entry_path(&key1, model);
        let mut bytes = std::fs::read(&p1).expect("entry 1");
        bytes[8..16].copy_from_slice(&(WARM_VERSION + 1).to_le_bytes());
        std::fs::write(&p1, &bytes).expect("rewrite");

        // On-disk corruption is seen by *other* processes (the handle
        // that banked the entries rightly keeps serving its verified
        // resident copies); a fresh handle models that.
        let seen = CheckpointStore::open(store.root()).expect("reopen store");
        assert!(matches!(seen.load_warm(&key0, model), Err(StoreMiss::Rejected(why)) if why.contains("digest")));
        assert!(matches!(seen.load_warm(&key1, model), Err(StoreMiss::Rejected(why)) if why.contains("version")));

        let mut again = StoredSampler::new(&img, fp, 7, scfg, &seen).with_warm_bank(true);
        let got = again.run_range(EngineKind::Ftb, pcfg, 0..2, 1);
        assert_eq!(want, got, "rejected entries must recompute bit-identically");
        assert_eq!(again.warm_bank_stats().rejected, 2);
        assert_eq!(again.warm_bank_stats().hits, 0);

        // The recompute re-banked verified entries.
        let repaired = CheckpointStore::open(store.root()).expect("reopen store");
        assert!(repaired.load_warm(&key0, model).is_ok());
        assert!(repaired.load_warm(&key1, model).is_ok());
        let mut third = StoredSampler::new(&img, fp, 7, scfg, &repaired).with_warm_bank(true);
        let _ = third.run_range(EngineKind::Ftb, pcfg, 0..2, 1);
        assert_eq!(third.warm_bank_stats().hits, 2, "repaired bank serves the next run");
        let _ = std::fs::remove_dir_all(store.root());
    }

    /// The write-through read cache serves the banking process's own
    /// entries without disk reads, stays byte-identical, respects its
    /// budget LRU, and never outlives cap eviction.
    #[test]
    fn warm_cache_serves_resident_entries_and_respects_budget() {
        let img = image();
        let scfg = quick_cfg();
        let pcfg = ProcessorConfig::table2(4);
        let store = tmp_store("warm-cache");
        let fp = sfetch_trace::trace_fingerprint(&img, 7, 4096);
        let model = warm_model_digest(EngineKind::Stream, &pcfg, &scfg);

        let mut cold = StoredSampler::new(&img, fp, 7, scfg, &store).with_warm_bank(true);
        let want = cold.run_range(EngineKind::Stream, pcfg, 0..2, 1);
        assert!(store.warm_cache_resident_bytes() > 0, "banking must populate the cache");

        // Delete the files: the banking handle still serves resident
        // copies (bit-identically); a fresh handle sees the absence.
        let key0 = StoreKey { fingerprint: fp, seed: 7, at_inst: cold.warming_start(0) };
        let p0 = store.warm_entry_path(&key0, model);
        std::fs::remove_file(&p0).expect("remove warm entry");
        assert!(store.load_warm(&key0, model).is_ok(), "resident copy survives the file");
        let fresh = CheckpointStore::open(store.root()).expect("reopen store");
        assert!(matches!(fresh.load_warm(&key0, model), Err(StoreMiss::Absent)));
        let mut warm = StoredSampler::new(&img, fp, 7, scfg, &store).with_warm_bank(true);
        let got = warm.run_range(EngineKind::Stream, pcfg, 0..2, 1);
        assert_eq!(want, got, "cache-served rerun must stay bit-identical");
        assert_eq!(warm.warm_bank_stats().hits, 2);

        // A one-byte budget caches nothing; zero disables outright.
        let tiny = CheckpointStore::open(store.root()).expect("reopen").with_warm_cache_bytes(1);
        let mut t = StoredSampler::new(&img, fp, 7, scfg, &tiny).with_warm_bank(true);
        let _ = t.run_range(EngineKind::Stream, pcfg, 1..2, 1);
        assert_eq!(tiny.warm_cache_resident_bytes(), 0, "over-budget entries are not admitted");

        // LRU: with room for roughly one entry, the second admission
        // sheds the first.
        let one = fresh.load_warm(
            &StoreKey { fingerprint: fp, seed: 7, at_inst: cold.warming_start(1) },
            model,
        );
        assert!(one.is_ok(), "window 1 entry still on disk");
        let lru = CheckpointStore::open(store.root())
            .expect("reopen")
            .with_warm_cache_bytes(fresh.warm_cache_resident_bytes() + 8);
        let mut l = StoredSampler::new(&img, fp, 7, scfg, &lru).with_warm_bank(true);
        let _ = l.run_range(EngineKind::Stream, pcfg, 0..2, 1);
        assert!(
            lru.warm_cache_resident_bytes() <= fresh.warm_cache_resident_bytes() + 8,
            "cache must stay within its budget"
        );
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn warm_timing_accounts_every_window() {
        let img = image();
        let scfg = quick_cfg();
        let pcfg = ProcessorConfig::table2(4);
        let store = tmp_store("bank-timing");
        let fp = sfetch_trace::trace_fingerprint(&img, 7, 4096);
        let mut s = StoredSampler::new(&img, fp, 7, scfg, &store).with_warm_bank(true);
        let _ = s.run_range(EngineKind::Stream, pcfg, 0..3, 1);
        let t = s.timing();
        assert_eq!(t.windows, 3);
        assert!(t.warm_ns > 0, "live warming takes measurable time");
        assert!(t.ff_ns > 0, "snapshot resolution takes measurable time");
        assert_eq!(t.warm_ns_per_window(), t.warm_ns / 3);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn out_of_order_windows_restart_from_nearest_stored_state() {
        let img = image();
        let scfg = quick_cfg();
        let pcfg = ProcessorConfig::table2(4);
        let store = tmp_store("ooo");
        let fp = sfetch_trace::trace_fingerprint(&img, 11, 4096);

        let mut fwd = StoredSampler::new(&img, fp, 11, scfg, &store);
        let in_order = fwd.run_range(EngineKind::Ftb, pcfg, 0..3, 1);

        // A second runner asks for window 2 first, then 0 — the walker
        // must rewind through the store, not panic or drift.
        let mut ooo = StoredSampler::new(&img, fp, 11, scfg, &store);
        let (p2, _) = ooo.run_window(EngineKind::Ftb, pcfg, 2);
        let (p0, _) = ooo.run_window(EngineKind::Ftb, pcfg, 0);
        assert_eq!(p2, in_order[2]);
        assert_eq!(p0, in_order[0]);
        assert_eq!(ooo.stats().hits, 2);
        let _ = std::fs::remove_dir_all(store.root());
    }

    /// A capped store sheds least-recently-accessed entries on save —
    /// and a rerun transparently recomputes the evicted state, healing
    /// the store byte-identically.
    #[test]
    fn cap_evicts_lru_and_rerun_heals_byte_identical() {
        let img = image();
        let scfg = quick_cfg();
        let pcfg = ProcessorConfig::table2(4);
        let fp = sfetch_trace::trace_fingerprint(&img, 7, 4096);

        // Uncapped populate: 4 checkpoints, record their bytes.
        let store = tmp_store("cap");
        let mut s = StoredSampler::new(&img, fp, 7, scfg, &store);
        let want = s.run_range(EngineKind::Stream, pcfg, 0..4, 1);
        assert_eq!(store.entries(), 4);
        assert_eq!(store.evicted(), 0, "no cap, no shedding");
        let keys: Vec<StoreKey> = (0..4)
            .map(|w| StoreKey { fingerprint: fp, seed: 7, at_inst: s.warming_start(w) })
            .collect();
        let pristine: Vec<Vec<u8>> = keys
            .iter()
            .map(|k| std::fs::read(store.entry_path(k)).expect("entry bytes"))
            .collect();
        let full = store.total_bytes();
        let one = pristine[0].len() as u64;

        // A fresh handle (empty lease set) with a cap that holds about
        // half the entries: its first save must evict the oldest.
        let capped = CheckpointStore::open(store.root())
            .expect("reopen")
            .with_cap_bytes(Some(full - one));
        let extra = StoreKey { fingerprint: fp, seed: 7, at_inst: 999 };
        let mut ex = Executor::from_image(&img, 7);
        ex.nth(998);
        capped.save(&extra, &ex.checkpoint()).expect("save over cap");
        assert!(capped.evicted() > 0, "cap must force eviction");
        assert!(capped.total_bytes() <= full - one + pristine[0].len() as u64);
        assert!(
            capped.load(&extra).is_ok(),
            "the just-saved (leased) entry must survive its own eviction pass"
        );
        assert!(store.entries() < 5, "some old entry was shed");

        // Heal: an uncapped rerun recomputes the evicted checkpoints and
        // lands on byte-identical entry files and bit-identical points.
        let heal_store = CheckpointStore::open(store.root()).expect("reopen");
        let mut heal = StoredSampler::new(&img, fp, 7, scfg, &heal_store);
        let got = heal.run_range(EngineKind::Stream, pcfg, 0..4, 1);
        assert_eq!(want, got, "evicted windows recompute bit-identically");
        assert!(heal.stats().misses > 0, "healing recomputed evicted entries");
        for (k, bytes) in keys.iter().zip(&pristine) {
            let healed = std::fs::read(store.entry_path(k)).expect("healed entry");
            assert_eq!(&healed, bytes, "healed entry must be byte-identical");
        }
        let _ = std::fs::remove_dir_all(store.root());
    }

    /// Leased (recently used by this handle) entries are exempt from
    /// eviction: the cap sheds cold history, not the live working set.
    #[test]
    fn cap_never_evicts_leased_entries() {
        let img = image();
        let scfg = quick_cfg();
        let pcfg = ProcessorConfig::table2(4);
        let fp = sfetch_trace::trace_fingerprint(&img, 13, 4096);

        let store = tmp_store("cap-lease");
        let mut s = StoredSampler::new(&img, fp, 13, scfg, &store);
        let _ = s.run_range(EngineKind::Stream, pcfg, 0..3, 1);
        let keys: Vec<StoreKey> = (0..3)
            .map(|w| StoreKey { fingerprint: fp, seed: 13, at_inst: s.warming_start(w) })
            .collect();

        // Tiny cap: every save would shed everything unleased. Loading
        // window 1 first leases it; saving a new entry must then evict
        // the *other* old entries but keep window 1 and the new entry.
        let capped =
            CheckpointStore::open(store.root()).expect("reopen").with_cap_bytes(Some(1));
        capped.load(&keys[1]).expect("lease window 1");
        let extra = StoreKey { fingerprint: fp, seed: 13, at_inst: 777 };
        let mut ex = Executor::from_image(&img, 13);
        ex.nth(776);
        capped.save(&extra, &ex.checkpoint()).expect("save over cap");

        assert!(capped.load(&keys[1]).is_ok(), "leased entry survives");
        assert!(capped.load(&extra).is_ok(), "fresh save survives");
        assert_eq!(
            capped.load(&keys[0]),
            Err(StoreMiss::Absent),
            "unleased entry was shed"
        );
        assert_eq!(
            capped.load(&keys[2]),
            Err(StoreMiss::Absent),
            "unleased entry was shed"
        );
        assert_eq!(capped.evicted(), 2);
        let _ = std::fs::remove_dir_all(store.root());
    }
}
