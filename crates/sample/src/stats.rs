//! Student-t aggregation of per-window measurements.

use crate::config::Confidence;
use crate::runner::SamplePoint;

/// The aggregate estimate over a set of sample windows.
///
/// Windows are equal-sized in *instructions*, so the unweighted mean of
/// per-window CPIs estimates whole-run CPI (total cycles / total
/// instructions); IPC is its reciprocal. The confidence interval is the
/// Student-t interval on the CPI mean ([`Confidence::quantile`] at
/// `windows - 1` degrees of freedom — indistinguishable from the CLT
/// normal interval at SMARTS-dense window counts, honestly wider for
/// the sparse checkpoint-grid schedules), transformed to IPC bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Number of windows aggregated.
    pub windows: u64,
    /// Mean per-window CPI.
    pub mean_cpi: f64,
    /// Sample standard deviation of per-window CPI.
    pub cpi_stddev: f64,
    /// Half-width of the CPI confidence interval
    /// (`t(n-1) * s / sqrt(n)`).
    pub cpi_half_width: f64,
    /// Point estimate of IPC (`1 / mean_cpi`).
    pub ipc: f64,
    /// Lower IPC confidence bound.
    pub ipc_lo: f64,
    /// Upper IPC confidence bound.
    pub ipc_hi: f64,
    /// Relative half-width (`cpi_half_width / mean_cpi`) — the error bound
    /// SMARTS reports (e.g. "±3% at 95% confidence").
    pub rel_half_width: f64,
    /// Confidence level used.
    pub confidence: Confidence,
}

/// Aggregates sample windows into an [`Estimate`]. With zero windows the
/// estimate is all-zero; with one window the interval degenerates to a
/// point (no variance information).
pub fn estimate(points: &[SamplePoint], confidence: Confidence) -> Estimate {
    let n = points.len() as u64;
    if n == 0 {
        return Estimate {
            windows: 0,
            mean_cpi: 0.0,
            cpi_stddev: 0.0,
            cpi_half_width: 0.0,
            ipc: 0.0,
            ipc_lo: 0.0,
            ipc_hi: 0.0,
            rel_half_width: 0.0,
            confidence,
        };
    }
    let cpis: Vec<f64> = points.iter().map(SamplePoint::cpi).collect();
    let mean = cpis.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        cpis.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let stddev = var.sqrt();
    let half = confidence.quantile(n.saturating_sub(1)) * stddev / (n as f64).sqrt();
    let ipc = if mean > 0.0 { 1.0 / mean } else { 0.0 };
    let lo_cpi = (mean - half).max(f64::MIN_POSITIVE);
    let ipc_hi = 1.0 / lo_cpi;
    let ipc_lo = if mean + half > 0.0 { 1.0 / (mean + half) } else { 0.0 };
    Estimate {
        windows: n,
        mean_cpi: mean,
        cpi_stddev: stddev,
        cpi_half_width: half,
        ipc,
        ipc_lo,
        ipc_hi,
        rel_half_width: if mean > 0.0 { half / mean } else { 0.0 },
        confidence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(window: u64, committed: u64, cycles: u64) -> SamplePoint {
        SamplePoint {
            window,
            start_inst: window * 1000,
            committed,
            cycles,
            stall_cycles: 0,
            mispredictions: 0,
        }
    }

    #[test]
    fn empty_and_single_window_edge_cases() {
        let e = estimate(&[], Confidence::C95);
        assert_eq!(e.windows, 0);
        assert_eq!(e.ipc, 0.0);
        let e = estimate(&[point(0, 1000, 500)], Confidence::C95);
        assert_eq!(e.windows, 1);
        assert!((e.ipc - 2.0).abs() < 1e-12);
        assert_eq!(e.cpi_half_width, 0.0, "no variance info from one window");
        assert_eq!(e.ipc_lo, e.ipc_hi);
    }

    #[test]
    fn identical_windows_have_zero_width_interval() {
        let pts: Vec<_> = (0..20).map(|w| point(w, 1000, 800)).collect();
        let e = estimate(&pts, Confidence::C95);
        assert!((e.ipc - 1.25).abs() < 1e-12);
        assert!(e.cpi_half_width < 1e-12);
        assert!((e.ipc_lo - e.ipc).abs() < 1e-9);
    }

    #[test]
    fn interval_brackets_the_mean_and_shrinks_with_n() {
        // Alternating 1.0 / 3.0 CPI windows: mean CPI 2.0, IPC 0.5.
        let mk = |n: u64| -> Vec<SamplePoint> {
            (0..n).map(|w| point(w, 1000, if w % 2 == 0 { 1000 } else { 3000 })).collect()
        };
        let small = estimate(&mk(10), Confidence::C95);
        let large = estimate(&mk(1000), Confidence::C95);
        for e in [&small, &large] {
            assert!((e.mean_cpi - 2.0).abs() < 1e-12);
            assert!((e.ipc - 0.5).abs() < 1e-12);
            assert!(e.ipc_lo < e.ipc && e.ipc < e.ipc_hi);
        }
        assert!(large.cpi_half_width < small.cpi_half_width / 5.0, "width ~ 1/sqrt(n)");
        assert!(large.rel_half_width < 0.05);
    }

    #[test]
    fn wider_confidence_widens_the_interval() {
        let pts: Vec<_> =
            (0..50).map(|w| point(w, 1000, 900 + (w % 7) * 40)).collect();
        let c90 = estimate(&pts, Confidence::C90);
        let c99 = estimate(&pts, Confidence::C99);
        assert!(c99.cpi_half_width > c90.cpi_half_width);
        assert_eq!(c90.ipc, c99.ipc, "point estimate is level-independent");
    }
}
