//! Shard math: splitting a sampled run's windows across processes and
//! merging their results.
//!
//! Windows are assigned in **contiguous chunks** (not round-robin) so a
//! shard needs exactly one architectural checkpoint — the unit boundary
//! of its first window — instead of one per window. Because every window
//! simulates on fresh warmed structures derived only from the master
//! executor's state at its own boundary, the merged result of any shard
//! split is bit-identical to the single-process run.

use std::fmt;
use std::ops::Range;

use crate::runner::SamplePoint;

/// One shard's identity within a run: `index` of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Zero-based shard index.
    pub index: u64,
    /// Total shards.
    pub count: u64,
}

impl ShardSpec {
    /// Parses the CLI form `i/N` (e.g. `--shard 1/4`).
    ///
    /// # Errors
    ///
    /// Rejects malformed text, `N == 0`, and `i >= N`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (i, n) = s.split_once('/').ok_or_else(|| format!("expected i/N, got {s:?}"))?;
        let index: u64 = i.trim().parse().map_err(|e| format!("bad shard index {i:?}: {e}"))?;
        let count: u64 = n.trim().parse().map_err(|e| format!("bad shard count {n:?}: {e}"))?;
        if count == 0 {
            return Err("shard count must be >= 1".into());
        }
        if index >= count {
            return Err(format!("shard index {index} out of range for {count} shards"));
        }
        Ok(ShardSpec { index, count })
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// The contiguous window range shard `spec` owns out of `total_windows`.
/// Ranges partition `0..total_windows`; the first `total % count` shards
/// take one extra window.
pub fn window_range(total_windows: u64, spec: ShardSpec) -> Range<u64> {
    let base = total_windows / spec.count;
    let extra = total_windows % spec.count;
    let lo = spec.index * base + spec.index.min(extra);
    let hi = lo + base + u64::from(spec.index < extra);
    lo..hi
}

/// Merges per-shard window results back into one run: sorts by window
/// index and verifies the set is exactly `0..n` with no duplicates or
/// holes.
///
/// # Errors
///
/// Reports the first duplicate or missing window index.
pub fn merge_points(mut all: Vec<SamplePoint>) -> Result<Vec<SamplePoint>, String> {
    all.sort_by_key(|p| p.window);
    for (i, p) in all.iter().enumerate() {
        let expect = i as u64;
        if p.window != expect {
            return Err(if p.window < expect || (i > 0 && all[i - 1].window == p.window) {
                format!("duplicate window {} in merged shard output", p.window)
            } else {
                format!("missing window {expect} in merged shard output")
            });
        }
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let s = ShardSpec::parse("1/4").expect("valid");
        assert_eq!(s, ShardSpec { index: 1, count: 4 });
        assert_eq!(s.to_string(), "1/4");
        assert!(ShardSpec::parse("4/4").is_err(), "index out of range");
        assert!(ShardSpec::parse("0/0").is_err(), "zero shards");
        assert!(ShardSpec::parse("nope").is_err());
    }

    #[test]
    fn ranges_partition_the_windows() {
        for total in [0u64, 1, 7, 100, 101, 103] {
            for count in [1u64, 2, 3, 8] {
                let mut covered = Vec::new();
                let mut last_hi = 0;
                for index in 0..count {
                    let r = window_range(total, ShardSpec { index, count });
                    assert_eq!(r.start, last_hi, "contiguous chunks");
                    last_hi = r.end;
                    covered.extend(r);
                }
                assert_eq!(covered, (0..total).collect::<Vec<_>>(), "total {total} count {count}");
            }
        }
    }

    #[test]
    fn chunk_sizes_differ_by_at_most_one() {
        for index in 0..8 {
            let r = window_range(100, ShardSpec { index, count: 8 });
            let len = r.end - r.start;
            assert!((12..=13).contains(&len));
        }
    }

    fn point(window: u64) -> SamplePoint {
        SamplePoint {
            window,
            start_inst: 0,
            committed: 1,
            cycles: 1,
            stall_cycles: 0,
            mispredictions: 0,
        }
    }

    #[test]
    fn merge_detects_holes_and_duplicates() {
        let merged = merge_points(vec![point(2), point(0), point(1)]).expect("complete");
        assert_eq!(merged.iter().map(|p| p.window).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(merge_points(vec![point(0), point(2)]).expect_err("hole").contains("missing"));
        assert!(merge_points(vec![point(0), point(0)]).expect_err("dup").contains("duplicate"));
        assert!(merge_points(Vec::new()).expect("empty ok").is_empty());
    }
}
