//! The sampled-simulation driver: fast-forward, functional warming,
//! per-window detailed simulation.

use sfetch_cfg::CodeImage;
use sfetch_core::{Processor, ProcessorConfig, SimStats};
use sfetch_fetch::{
    Checkpoint, CommittedControl, CommittedInst, EngineKind, FetchEngine, ResolvedBranch,
};
use sfetch_mem::{MemoryConfig, MemoryHierarchy};
use sfetch_trace::{ArchCheckpoint, DynInst, Executor};

use crate::config::SampleConfig;
use crate::stats::{estimate, Estimate};

/// Committed records handed to [`sfetch_fetch::FetchEngine::warm_block`]
/// per call during functional warming.
pub(crate) const WARM_BATCH: usize = 512;

/// One measured sample window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplePoint {
    /// Window index (= sampling-unit index within the run).
    pub window: u64,
    /// Committed-instruction offset at which the *measured* phase starts.
    pub start_inst: u64,
    /// Instructions committed in the measured phase (may overshoot the
    /// nominal `D` by up to `width - 1`, as the full sim loop does).
    pub committed: u64,
    /// Cycles the measured phase took.
    pub cycles: u64,
    /// Fetch-stall cycles (I-cache miss stalls) in the measured phase —
    /// the per-sample stall capture that shows where IPC went.
    pub stall_cycles: u64,
    /// Execute-time misprediction recoveries in the measured phase.
    pub mispredictions: u64,
}

impl SamplePoint {
    /// Instructions per cycle of this window.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Cycles per instruction of this window (the quantity the t-interval
    /// estimate averages: windows are equal-sized in instructions, so the
    /// mean of per-window CPIs estimates whole-run CPI without weighting).
    pub fn cpi(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.cycles as f64 / self.committed as f64
        }
    }
}

/// A finished sampled run: every window plus the aggregate estimate.
#[derive(Debug, Clone)]
pub struct SampledRun {
    /// Per-window measurements, in window order.
    pub points: Vec<SamplePoint>,
    /// Student-t aggregate over the windows.
    pub estimate: Estimate,
}

/// The systematic sampler: owns the *master* architectural executor that
/// walks the whole run, and spawns one independent detailed simulation
/// per sampling unit.
///
/// The master only ever stops at sampling-unit boundaries, where its
/// state is checkpointable ([`Sampler::checkpoint`]) — a shard process
/// resumes from such a checkpoint ([`Sampler::resume`]) and produces
/// bit-identical windows, because each window's simulation derives only
/// from the master state at its own unit boundary.
pub struct Sampler<'a> {
    image: &'a CodeImage,
    kind: EngineKind,
    pcfg: ProcessorConfig,
    scfg: SampleConfig,
    master: Executor<'a>,
    window: u64,
}

impl<'a> Sampler<'a> {
    /// Creates a sampler at the start of the trace.
    ///
    /// # Panics
    ///
    /// Panics if `scfg` fails [`SampleConfig::validate`].
    pub fn new(
        image: &'a CodeImage,
        kind: EngineKind,
        pcfg: ProcessorConfig,
        scfg: SampleConfig,
        seed: u64,
    ) -> Self {
        scfg.validate();
        Sampler { image, kind, pcfg, scfg, master: Executor::from_image(image, seed), window: 0 }
    }

    /// Resumes a sampler from an architectural checkpoint captured at a
    /// sampling-unit boundary (see [`Sampler::checkpoint`]).
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint is not at a unit boundary or was captured
    /// on a different image.
    pub fn resume(
        image: &'a CodeImage,
        kind: EngineKind,
        pcfg: ProcessorConfig,
        scfg: SampleConfig,
        cp: &ArchCheckpoint,
    ) -> Self {
        scfg.validate();
        assert!(
            cp.seq.is_multiple_of(scfg.interval),
            "checkpoint at instruction {} is not a sampling-unit boundary (U = {})",
            cp.seq,
            scfg.interval
        );
        let window = cp.seq / scfg.interval;
        Sampler { image, kind, pcfg, scfg, master: Executor::from_checkpoint(image, cp), window }
    }

    /// Index of the next window this sampler will measure.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Captures the master executor's state at the current sampling-unit
    /// boundary. Handing this to [`Sampler::resume`] in another process
    /// continues the run bit-identically.
    pub fn checkpoint(&self) -> ArchCheckpoint {
        let cp = self.master.checkpoint();
        debug_assert!(cp.seq.is_multiple_of(self.scfg.interval));
        cp
    }

    /// Fast-forwards past `n` whole sampling units without measuring them
    /// (pure architectural execution — no warming, no detail).
    pub fn skip(&mut self, n: u64) {
        advance(&mut self.master, n * self.scfg.interval);
        self.window += n;
    }

    /// Advances the master through one sampling unit, returning the
    /// window index and the architectural snapshot at the unit's warming
    /// start — everything a window simulation derives from.
    fn take_snapshot(&mut self) -> (u64, Executor<'a>) {
        advance(&mut self.master, self.scfg.fast_forward());
        let snap = self.master.clone();
        // The master proceeds straight to the next unit boundary; the
        // window simulation runs on the clone.
        advance(
            &mut self.master,
            self.scfg.warm_func + self.scfg.warm_detail + self.scfg.measure,
        );
        let w = self.window;
        self.window += 1;
        (w, snap)
    }

    /// Runs the next sampling unit: fast-forward, then an independent
    /// warmed detailed simulation of the unit's measured window.
    pub fn next_window(&mut self) -> SamplePoint {
        self.next_window_full().0
    }

    /// Like [`Sampler::next_window`], also returning the measured phase's
    /// complete [`SimStats`] (for stall decomposition and diagnostics).
    ///
    /// On the serial path the master *adopts* the window simulation's
    /// post-warming executor instead of re-walking the warming span —
    /// both walked exactly the same instructions, so the state is
    /// bit-identical and the horizon is traversed once, not twice.
    pub fn next_window_full(&mut self) -> (SamplePoint, SimStats) {
        let scfg = self.scfg;
        advance(&mut self.master, scfg.fast_forward());
        let snap = self.master.clone();
        let w = self.window;
        self.window += 1;
        let (point, stats, post_warm) =
            window_point(self.image, self.kind, self.pcfg, &scfg, w, snap, true);
        self.master = post_warm.expect("capture requested");
        advance(&mut self.master, scfg.warm_detail + scfg.measure);
        (point, stats)
    }

    /// Measures the next `n` windows serially.
    pub fn run(&mut self, n: u64) -> Vec<SamplePoint> {
        (0..n).map(|_| self.next_window()).collect()
    }

    /// Measures the next `n` windows with up to `jobs` worker threads.
    ///
    /// Windows are mutually independent — each derives only from the
    /// master's architectural snapshot at its own unit boundary — so the
    /// master walks the trace serially (cheap) while window simulations
    /// (warming + detail, the expensive part) fan out across threads.
    /// Results are **bit-identical** to [`Sampler::run`] for any `jobs`,
    /// mirroring the repository's parallel-grid guarantee.
    pub fn run_parallel(&mut self, n: u64, jobs: usize) -> Vec<SamplePoint> {
        let jobs = jobs.max(1);
        if jobs == 1 {
            return self.run(n);
        }
        let (image, kind, pcfg, scfg) = (self.image, self.kind, self.pcfg, self.scfg);
        let mut out = Vec::with_capacity(n as usize);
        let mut remaining = n;
        while remaining > 0 {
            // One chunk of snapshots at a time bounds the resident
            // executor clones (each carries per-slot execution counts).
            let chunk = remaining.min(jobs as u64);
            let snaps: Vec<(u64, Executor<'a>)> =
                (0..chunk).map(|_| self.take_snapshot()).collect();
            std::thread::scope(|s| {
                let handles: Vec<_> = snaps
                    .into_iter()
                    .map(|(w, snap)| {
                        // No post-warm capture: the master advanced
                        // through the span itself.
                        s.spawn(move || window_point(image, kind, pcfg, &scfg, w, snap, false).0)
                    })
                    .collect();
                out.extend(handles.into_iter().map(|h| h.join().expect("window worker")));
            });
            remaining -= chunk;
        }
        out
    }
}

fn advance(e: &mut Executor<'_>, n: u64) {
    for _ in 0..n {
        e.next();
    }
}

pub(crate) fn committed_record(d: &DynInst) -> CommittedInst {
    CommittedInst {
        pc: d.pc,
        control: d.control.map(|c| CommittedControl {
            kind: c.kind,
            taken: c.taken,
            target: c.target,
            next_pc: c.next_pc,
            is_fixup: c.is_fixup,
        }),
        // No front-end ran during warming, so no redirect was observed;
        // hysteresis trained by this bit catches up in detailed warmup.
        mispredicted: false,
    }
}

/// Runs one window simulation and folds the result into a [`SamplePoint`].
/// With `capture_post` the third element is the executor state right
/// after functional warming (= the snapshot advanced `Wf` instructions),
/// which the serial sampler adopts as its master to avoid re-walking the
/// horizon; the parallel path skips the clone (it would be discarded).
/// Crate-visible so the checkpoint store's [`crate::StoredSampler`] runs
/// byte-for-byte the same window simulation as the live [`Sampler`].
pub(crate) fn window_point<'a>(
    image: &'a CodeImage,
    kind: EngineKind,
    pcfg: ProcessorConfig,
    scfg: &SampleConfig,
    window: u64,
    snap: Executor<'a>,
    capture_post: bool,
) -> (SamplePoint, SimStats, Option<Executor<'a>>) {
    let (stats, post_warm) = simulate_window(image, kind, pcfg, scfg, snap, capture_post);
    (point_from_stats(window, scfg, &stats), stats, post_warm)
}

/// Folds one window's measured-phase statistics into its [`SamplePoint`].
pub(crate) fn point_from_stats(window: u64, scfg: &SampleConfig, stats: &SimStats) -> SamplePoint {
    SamplePoint {
        window,
        start_inst: window * scfg.interval
            + scfg.fast_forward()
            + scfg.warm_func
            + scfg.warm_detail,
        committed: stats.committed,
        cycles: stats.cycles,
        stall_cycles: stats.engine.icache_stall_cycles,
        mispredictions: stats.mispredictions,
    }
}

/// The product of one window's functional-warming phase: the executor at
/// the window start (= warming start advanced `Wf` instructions), the
/// warmed fetch engine, and the warmed (pre-pipeline) memory hierarchy.
/// Everything [`measure_window`] needs — and exactly the state the
/// checkpoint store's warm bank serializes.
pub(crate) struct WarmedWindow<'a> {
    /// Executor positioned at the window's detailed-warmup start.
    pub exec: Executor<'a>,
    /// Fetch engine with warmed commit-side structures.
    pub engine: Box<dyn FetchEngine>,
    /// Memory hierarchy with warmed cache tag/LRU state.
    pub mem: MemoryHierarchy,
}

/// Functional warming over `Wf` architectural instructions into fresh
/// caches/predictors (the memory hierarchy only over the last `warm_mem`
/// — cache state converges far faster than predictor tables).
pub(crate) fn warm_window<'a>(
    kind: EngineKind,
    pcfg: ProcessorConfig,
    scfg: &SampleConfig,
    mut exec: Executor<'a>,
) -> WarmedWindow<'a> {
    let mut mem = MemoryHierarchy::new(MemoryConfig::table2(pcfg.width));
    let mut engine = kind.build_for(pcfg.width, exec.pc(), &pcfg.prefetch, &pcfg.front);
    let line_bytes = mem.l1i_line_bytes();
    let mem_from = scfg.warm_func - scfg.warm_mem;
    let mut last_line = u64::MAX;
    let mut batch: Vec<CommittedInst> = Vec::with_capacity(WARM_BATCH);
    for i in 0..scfg.warm_func {
        let d = exec.next().expect("executor is infinite");
        if i >= mem_from {
            let line = d.pc.line_index(line_bytes);
            if line != last_line {
                mem.warm_inst(d.pc);
                last_line = line;
            }
            if let Some(a) = d.mem_addr {
                mem.warm_data(a);
            }
        }
        batch.push(committed_record(&d));
        if batch.len() == WARM_BATCH {
            engine.warm_block(&batch);
            batch.clear();
        }
    }
    if !batch.is_empty() {
        engine.warm_block(&batch);
    }
    WarmedWindow { exec, engine, mem }
}

/// The detailed phase of one window: resync the warmed engine's fetch
/// cursor to the window start (the watchdog-style redirect: no branch
/// kind, clean checkpoint), then run `Wd` discarded + `D` measured
/// instructions. With `capture_post`, also returns the pre-detail
/// executor state. Warm state restored from the bank enters here on the
/// exact same footing as state warmed live — the redirect rebuilds every
/// fetch-side cursor either way.
pub(crate) fn measure_window<'a>(
    image: &'a CodeImage,
    pcfg: ProcessorConfig,
    scfg: &SampleConfig,
    ww: WarmedWindow<'a>,
    capture_post: bool,
) -> (SimStats, Option<Executor<'a>>) {
    let WarmedWindow { exec, mut engine, mem } = ww;
    let start = exec.pc();
    engine.redirect(
        0,
        start,
        &Checkpoint::default(),
        &ResolvedBranch { pc: start, kind: None, taken: false, target: start },
    );
    let post_warm = capture_post.then(|| exec.clone());
    let mut p = Processor::with_state(pcfg, engine, image, exec, mem);
    p.run(scfg.warm_detail);
    p.reset_stats();
    p.run(scfg.measure);
    (p.stats(), post_warm)
}

/// One independent window simulation ([`warm_window`] + [`measure_window`]).
fn simulate_window<'a>(
    image: &'a CodeImage,
    kind: EngineKind,
    pcfg: ProcessorConfig,
    scfg: &SampleConfig,
    exec: Executor<'a>,
    capture_post: bool,
) -> (SimStats, Option<Executor<'a>>) {
    let ww = warm_window(kind, pcfg, scfg, exec);
    measure_window(image, pcfg, scfg, ww, capture_post)
}

/// Runs a whole sampled simulation over `total_insts` committed
/// instructions and aggregates the estimate (serial windows).
pub fn run_sampled(
    image: &CodeImage,
    kind: EngineKind,
    pcfg: ProcessorConfig,
    seed: u64,
    total_insts: u64,
    scfg: &SampleConfig,
) -> SampledRun {
    run_sampled_jobs(image, kind, pcfg, seed, total_insts, scfg, 1)
}

/// [`run_sampled`] with up to `jobs` window-simulation worker threads;
/// bit-identical to the serial run for any `jobs`.
pub fn run_sampled_jobs(
    image: &CodeImage,
    kind: EngineKind,
    pcfg: ProcessorConfig,
    seed: u64,
    total_insts: u64,
    scfg: &SampleConfig,
    jobs: usize,
) -> SampledRun {
    let mut s = Sampler::new(image, kind, pcfg, *scfg, seed);
    let points = s.run_parallel(scfg.windows(total_insts), jobs);
    let estimate = estimate(&points, scfg.confidence);
    SampledRun { points, estimate }
}

/// The sampling-**disabled** mode: one straight-through detailed
/// simulation, constructed exactly as [`sfetch_core::simulate`]
/// constructs it (the lockstep tests assert bit-identical statistics) —
/// but without needing the `Cfg`, so it also serves the full-run leg of
/// the sampling A/B.
pub fn run_full_detailed(
    image: &CodeImage,
    kind: EngineKind,
    pcfg: ProcessorConfig,
    seed: u64,
    warmup: u64,
    insts: u64,
) -> SimStats {
    let engine = kind.build_for(pcfg.width, image.entry(), &pcfg.prefetch, &pcfg.front);
    let mem = MemoryHierarchy::new(MemoryConfig::table2(pcfg.width));
    let mut p = Processor::with_state(pcfg, engine, image, Executor::from_image(image, seed), mem);
    p.run(warmup);
    p.reset_stats();
    p.run(insts);
    p.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfetch_cfg::gen::{GenParams, ProgramGenerator};
    use sfetch_cfg::layout;

    fn image() -> CodeImage {
        let cfg = ProgramGenerator::new(GenParams::small(), 21).generate();
        let lay = layout::natural(&cfg);
        CodeImage::build(&cfg, &lay)
    }

    fn quick_cfg() -> SampleConfig {
        SampleConfig {
            interval: 40_000,
            warm_func: 6_000,
            warm_mem: 6_000,
            warm_detail: 1_000,
            measure: 2_000,
            ..Default::default()
        }
    }

    #[test]
    fn windows_commit_the_measured_length() {
        let img = image();
        let scfg = quick_cfg();
        let pcfg = ProcessorConfig::table2(4);
        let mut s = Sampler::new(&img, EngineKind::Stream, pcfg, scfg, 7);
        for p in s.run(4) {
            assert!(p.committed >= scfg.measure && p.committed < scfg.measure + 4);
            assert!(p.cycles > 0);
            assert!(p.ipc() > 0.0 && p.ipc() <= 4.0);
            assert!((p.cpi() - 1.0 / p.ipc()).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let img = image();
        let scfg = quick_cfg();
        let pcfg = ProcessorConfig::table2(4);
        let a = run_sampled(&img, EngineKind::Ftb, pcfg, 3, 200_000, &scfg);
        let b = run_sampled(&img, EngineKind::Ftb, pcfg, 3, 200_000, &scfg);
        assert_eq!(a.points, b.points);
        assert_eq!(a.points.len(), 5);
    }

    #[test]
    fn resume_from_checkpoint_reproduces_windows() {
        let img = image();
        let scfg = quick_cfg();
        let pcfg = ProcessorConfig::table2(4);
        // Straight run of 6 windows.
        let mut straight = Sampler::new(&img, EngineKind::Stream, pcfg, scfg, 9);
        let all = straight.run(6);
        // Shard B: skip 3 windows, checkpoint, resume elsewhere.
        let mut head = Sampler::new(&img, EngineKind::Stream, pcfg, scfg, 9);
        head.skip(3);
        let cp = head.checkpoint();
        assert_eq!(cp.seq, 3 * scfg.interval);
        let mut tail = Sampler::resume(&img, EngineKind::Stream, pcfg, scfg, &cp);
        assert_eq!(tail.window(), 3);
        let tail_points = tail.run(3);
        assert_eq!(&all[3..], &tail_points[..], "resumed shard must be bit-identical");
    }

    #[test]
    fn parallel_windows_are_bit_identical_to_serial() {
        let img = image();
        let scfg = quick_cfg();
        let pcfg = ProcessorConfig::table2(4);
        let serial = run_sampled(&img, EngineKind::Stream, pcfg, 11, 320_000, &scfg);
        for jobs in [2, 3, 8] {
            let par = run_sampled_jobs(&img, EngineKind::Stream, pcfg, 11, 320_000, &scfg, jobs);
            assert_eq!(serial.points, par.points, "jobs = {jobs}");
            assert_eq!(serial.estimate, par.estimate, "jobs = {jobs}");
        }
    }

    #[test]
    fn full_detailed_run_is_deterministic_and_window_free() {
        let img = image();
        let pcfg = ProcessorConfig::table2(4);
        let a = run_full_detailed(&img, EngineKind::Ev8, pcfg, 5, 2_000, 20_000);
        let b = run_full_detailed(&img, EngineKind::Ev8, pcfg, 5, 2_000, 20_000);
        assert_eq!(a, b);
        assert!(a.committed >= 20_000);
    }

    #[test]
    #[should_panic(expected = "not a sampling-unit boundary")]
    fn resume_rejects_misaligned_checkpoints() {
        let img = image();
        let scfg = quick_cfg();
        let mut ex = Executor::from_image(&img, 1);
        ex.next();
        let cp = ex.checkpoint();
        let _ = Sampler::resume(&img, EngineKind::Stream, ProcessorConfig::table2(4), scfg, &cp);
    }
}
