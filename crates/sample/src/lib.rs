//! # sfetch-sample
//!
//! SMARTS-style **sampled simulation** for the `stream-fetch` reproduction.
//!
//! The paper evaluates 300M-instruction windows per benchmark; cycle-level
//! simulation of the full suite at that horizon is what sampling exists
//! for. This crate implements the standard recipe (Wunderlich et al.,
//! *SMARTS: Accelerating Microarchitecture Simulation via Rigorous
//! Statistical Sampling*, ISCA 2003): systematic sampling of short
//! detailed windows over a cheap functional fast-forward, with Student-t
//! confidence intervals on the aggregate estimate.
//!
//! Each sampling unit of `U` instructions ([`SampleConfig::interval`]) is
//! split into four phases:
//!
//! ```text
//! |---- fast-forward ----|-- functional warm --|- detailed warm -|- measure -|
//!    U - (Wf + Wd + D)            Wf                  Wd               D
//! ```
//!
//! * **fast-forward** — the architectural [`sfetch_trace::Executor`] alone
//!   (~25× faster than detailed simulation here);
//! * **functional warming** (`Wf`) — the executor drives the *warmup-only*
//!   update paths: cache state via [`sfetch_mem::MemoryHierarchy::warm_inst`]
//!   / [`warm_data`](sfetch_mem::MemoryHierarchy::warm_data) and predictor
//!   tables via [`sfetch_fetch::FetchEngine::warm_block`], with no timing
//!   model;
//! * **detailed warmup** (`Wd`) — the full cycle-level pipeline runs but
//!   its statistics are discarded;
//! * **measure** (`D`) — per-window IPC/CPI is captured into a
//!   [`SamplePoint`].
//!
//! Each window simulates on **fresh** structures warmed from the window's
//! own history, so windows are mutually independent — which is exactly
//! what lets a long run be split into shards: a shard resumes the
//! executor from an [`sfetch_trace::ArchCheckpoint`] at its first window
//! and produces *bit-identical* [`SamplePoint`]s to the single-process
//! run (asserted in CI by the `shard_runner --verify` smoke leg).
//!
//! Window independence also makes the fast-forward pass *reusable*: the
//! state at each window's warming start depends only on the trace, never
//! on the engine or width under test. The [`store`] module banks those
//! states in a content-addressed, versioned [`CheckpointStore`] so that
//! one experiment's fast-forward work is every later experiment's too —
//! a warm store turns the whole configurations × windows grid into jobs
//! that start directly at functional warming ([`StoredSampler`]).
//!
//! With sampling disabled, [`run_full_detailed`] is today's sim loop —
//! bit-identical to [`sfetch_core::simulate`], locksteped in tests.
//!
//! ```
//! use sfetch_cfg::{gen::{GenParams, ProgramGenerator}, layout, CodeImage};
//! use sfetch_core::ProcessorConfig;
//! use sfetch_fetch::EngineKind;
//! use sfetch_sample::{run_sampled, SampleConfig};
//!
//! let cfg = ProgramGenerator::new(GenParams::small(), 1).generate();
//! let image = CodeImage::build(&cfg, &layout::natural(&cfg));
//! let mut scfg = SampleConfig::default();
//! scfg.interval = 50_000;
//! scfg.warm_func = 5_000;
//! scfg.warm_mem = 5_000;
//! scfg.warm_detail = 1_000;
//! scfg.measure = 2_000;
//! let run = run_sampled(
//!     &image, EngineKind::Stream, ProcessorConfig::table2(4), 7, 500_000, &scfg,
//! );
//! assert_eq!(run.points.len(), 10);
//! assert!(run.estimate.ipc > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod config;
pub mod runner;
pub mod shard;
pub mod stats;
pub mod store;

pub use batch::{BatchCell, BatchSampler};
pub use config::{Confidence, SampleConfig};
pub use runner::{
    run_full_detailed, run_sampled, run_sampled_jobs, SamplePoint, SampledRun, Sampler,
};
pub use shard::{merge_points, window_range, ShardSpec};
pub use stats::{estimate, Estimate};
pub use store::{
    warm_model_digest, CheckpointStore, StoreKey, StoreMiss, StoreStats, StoredSampler,
    WarmEntry, WarmTiming, STORE_VERSION, WARM_VERSION,
};
