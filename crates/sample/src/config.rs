//! Sampling parameters: the U/W/D interval schedule.

use std::fmt;

/// Confidence level for the Student-t interval on the aggregate estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Confidence {
    /// 90% two-sided confidence.
    C90,
    /// 95% two-sided confidence (the SMARTS default).
    #[default]
    C95,
    /// 99% two-sided confidence.
    C99,
}

/// Two-sided Student-t quantiles for 1..=30 degrees of freedom, per
/// confidence level (beyond 30, [`Confidence::quantile`] switches to a
/// Cornish–Fisher tail that decays smoothly to the normal quantile).
const T90: [f64; 30] = [
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782, 1.771,
    1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706,
    1.703, 1.701, 1.699, 1.697,
];
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];
const T99: [f64; 30] = [
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169, 3.106, 3.055, 3.012,
    2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779,
    2.771, 2.763, 2.756, 2.750,
];

impl Confidence {
    /// The two-sided normal quantile `z` for this level.
    pub fn z(self) -> f64 {
        match self {
            Confidence::C90 => 1.6449,
            Confidence::C95 => 1.9600,
            Confidence::C99 => 2.5758,
        }
    }

    /// The two-sided Student-t quantile for `df` degrees of freedom —
    /// what the interval on a sample mean with estimated variance
    /// actually calls for. Sparse checkpoint-grid schedules measure
    /// only a handful of windows, where the normal quantile undersizes
    /// the interval badly (df = 3 needs 3.18σ, not 1.96σ). Tabulated
    /// through df = 30; beyond that the first-order Cornish–Fisher
    /// expansion `z + (z³ + z)/(4·df)` carries the quantile smoothly
    /// down to [`Confidence::z`] (within 0.2% of the true t quantile at
    /// df = 31, converging as df grows — no jump at the table edge).
    pub fn quantile(self, df: u64) -> f64 {
        if df == 0 {
            // One window: no variance information; the interval
            // degenerates to a point regardless of the quantile.
            return self.z();
        }
        if df > 30 {
            let z = self.z();
            return z + (z * z * z + z) / (4.0 * df as f64);
        }
        let table = match self {
            Confidence::C90 => &T90,
            Confidence::C95 => &T95,
            Confidence::C99 => &T99,
        };
        table[df as usize - 1]
    }

    /// The level as a fraction (0.95 for [`Confidence::C95`]).
    pub fn level(self) -> f64 {
        match self {
            Confidence::C90 => 0.90,
            Confidence::C95 => 0.95,
            Confidence::C99 => 0.99,
        }
    }
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}%", (self.level() * 100.0).round())
    }
}

/// The systematic-sampling schedule. One *sampling unit* spans
/// [`SampleConfig::interval`] committed instructions and ends with a
/// functionally-warmed, detail-warmed, measured window; everything before
/// it is architectural fast-forward.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleConfig {
    /// `U`: committed instructions per sampling unit (one measured window
    /// per unit).
    pub interval: u64,
    /// `Wf`: functional-warming instructions before the detailed window
    /// (cache + predictor state only, no timing).
    pub warm_func: u64,
    /// Cache-warming tail: the last `warm_mem` instructions of `Wf` also
    /// drive the memory hierarchy's warm paths. Predictor tables need the
    /// whole `Wf` horizon to converge; cache state converges within a few
    /// hundred thousand instructions, so warming it over the full horizon
    /// would only slow the fast-forward.
    pub warm_mem: u64,
    /// `Wd`: detailed-warmup instructions (full pipeline, statistics
    /// discarded).
    pub warm_detail: u64,
    /// `D`: measured instructions per window.
    pub measure: u64,
    /// Confidence level of the aggregate estimate's interval.
    pub confidence: Confidence,
}

impl Default for SampleConfig {
    /// U = 2.75M, Wf = 900k (caches warmed over the whole horizon), Wd =
    /// 25k, D = 20k at 95% confidence. The warming horizon is the
    /// accuracy lever: per-window state is built fresh (that is what
    /// makes windows independent and shard merges exact), so warming
    /// must span roughly one phase residency of the long-horizon
    /// workloads (~1M instructions) for predictor tables to converge —
    /// shorter horizons under-train the stream predictor and bias IPC
    /// low (measured: Wf = 30k → −58%, 300k → −5%, ~1M → −1% on the
    /// phased workload, with the stream engine's self-checking warm path
    /// supplying the partial-stream entries plain commit training cannot)
    /// — and the L2's data working set needs the same depth (a 200k
    /// cache-warming tail re-introduced a −8% bias). At this schedule
    /// the 50M-instruction sampling A/B lands within ~1% of the full run
    /// at ≥10× wall-clock speedup on one core.
    fn default() -> Self {
        SampleConfig {
            interval: 2_750_000,
            warm_func: 900_000,
            warm_mem: 900_000,
            warm_detail: 25_000,
            measure: 20_000,
            confidence: Confidence::C95,
        }
    }
}

impl SampleConfig {
    /// Validates the schedule.
    ///
    /// # Panics
    ///
    /// Panics if the warm + measure phases do not fit inside the interval
    /// or the measured window is empty.
    pub fn validate(&self) {
        assert!(self.measure >= 1, "measured window must be non-empty");
        assert!(
            self.warm_mem <= self.warm_func,
            "cache-warming tail {} exceeds the warming horizon {}",
            self.warm_mem,
            self.warm_func
        );
        assert!(
            self.warm_func + self.warm_detail + self.measure <= self.interval,
            "warm_func {} + warm_detail {} + measure {} exceed the interval {}",
            self.warm_func,
            self.warm_detail,
            self.measure,
            self.interval
        );
    }

    /// Number of whole sampling units (= measured windows) in a run of
    /// `total_insts` committed instructions.
    pub fn windows(&self, total_insts: u64) -> u64 {
        total_insts / self.interval
    }

    /// Fast-forward length at the head of each unit.
    pub fn fast_forward(&self) -> u64 {
        self.interval - self.warm_func - self.warm_detail - self.measure
    }

    /// Parses a `U,Wf,Wd,D[,Wm]` comma-separated schedule (the `--sample`
    /// CLI flag), keeping the default confidence. The optional fifth
    /// field is the cache-warming tail (default: the whole horizon `Wf`).
    ///
    /// # Errors
    ///
    /// Reports malformed fields or a schedule that fails validation.
    pub fn parse(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split(',').collect();
        if parts.len() != 4 && parts.len() != 5 {
            return Err(format!("expected U,Wf,Wd,D[,Wm] (4-5 comma-separated numbers), got {s:?}"));
        }
        let mut nums = vec![0u64; parts.len()];
        for (slot, p) in nums.iter_mut().zip(&parts) {
            *slot = p.trim().parse().map_err(|e| format!("bad number {p:?}: {e}"))?;
        }
        let cfg = SampleConfig {
            interval: nums[0],
            warm_func: nums[1],
            warm_mem: nums.get(4).copied().unwrap_or(nums[1]),
            warm_detail: nums[2],
            measure: nums[3],
            confidence: Confidence::default(),
        };
        if cfg.measure == 0
            || cfg.warm_mem > cfg.warm_func
            || cfg.warm_func + cfg.warm_detail + cfg.measure > cfg.interval
        {
            return Err(format!(
                "schedule {s:?} does not fit: need Wm <= Wf, Wf+Wd+D <= U and D >= 1"
            ));
        }
        Ok(cfg)
    }

    /// Renders the schedule in the `U,Wf,Wd,D,Wm` form
    /// [`SampleConfig::parse`] accepts — the one way shard parents hand
    /// their schedule to child processes, so the field order can never
    /// drift between a binary's formatter and the parser.
    pub fn to_spec(&self) -> String {
        format!(
            "{},{},{},{},{}",
            self.interval, self.warm_func, self.warm_detail, self.measure, self.warm_mem
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_schedule_is_valid() {
        let c = SampleConfig::default();
        c.validate();
        assert_eq!(c.windows(50_000_000), 18);
        assert_eq!(c.fast_forward() + c.warm_func + c.warm_detail + c.measure, c.interval);
        assert!(c.warm_mem <= c.warm_func);
    }

    #[test]
    fn parse_round_trips() {
        let c = SampleConfig::parse("100000, 10000, 1000, 5000").expect("valid");
        assert_eq!(c.interval, 100_000);
        assert_eq!(c.warm_func, 10_000);
        assert_eq!(c.warm_mem, 10_000, "cache tail defaults to the whole horizon");
        assert_eq!(c.warm_detail, 1_000);
        assert_eq!(c.measure, 5_000);
        let c5 = SampleConfig::parse("100000,10000,1000,5000,4000").expect("valid with Wm");
        assert_eq!(c5.warm_mem, 4_000);
        assert_eq!(
            SampleConfig::parse(&c5.to_spec()).expect("spec round-trips"),
            c5,
            "to_spec must stay parseable by parse"
        );
        assert!(SampleConfig::parse("1,2,3").is_err(), "wrong arity");
        assert!(SampleConfig::parse("10,20,30,x").is_err(), "bad number");
        assert!(SampleConfig::parse("10,20,30,40").is_err(), "does not fit");
        assert!(SampleConfig::parse("100,20,30,0").is_err(), "empty window");
        assert!(SampleConfig::parse("100,20,30,5,25").is_err(), "tail beyond horizon");
    }

    #[test]
    #[should_panic(expected = "exceed the interval")]
    fn validate_rejects_oversized_phases() {
        SampleConfig {
            interval: 10,
            warm_func: 5,
            warm_mem: 5,
            warm_detail: 5,
            measure: 5,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn confidence_quantiles() {
        assert!((Confidence::C95.z() - 1.96).abs() < 1e-6);
        assert!(Confidence::C99.z() > Confidence::C95.z());
        assert_eq!(Confidence::C95.to_string(), "95%");
    }

    #[test]
    fn t_quantiles_widen_small_samples_and_converge_to_z() {
        // df = 3 (a 4-window sparse grid) needs 3.18σ at 95%.
        assert!((Confidence::C95.quantile(3) - 3.182).abs() < 1e-9);
        // The Cornish–Fisher tail tracks the true t quantile closely
        // (t(40) at 95% is 2.021, at 99% 2.704).
        assert!((Confidence::C95.quantile(40) - 2.021).abs() < 5e-3);
        assert!((Confidence::C99.quantile(40) - 2.704).abs() < 2e-2);
        // Monotone nonincreasing in df — no jump at the table edge —
        // always at least z, converging to z for large df.
        for c in [Confidence::C90, Confidence::C95, Confidence::C99] {
            let mut prev = f64::INFINITY;
            for df in 1..=200 {
                let q = c.quantile(df);
                assert!(q <= prev + 1e-12, "{c} df {df}");
                assert!(q >= c.z() - 1e-12, "{c} df {df}");
                prev = q;
            }
            assert!((c.quantile(100_000) - c.z()).abs() < 1e-4, "{c} converges to z");
        }
    }
}
