//! Sampling parameters: the U/W/D interval schedule.

use std::fmt;

/// Confidence level for the CLT interval on the aggregate estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Confidence {
    /// 90% two-sided confidence.
    C90,
    /// 95% two-sided confidence (the SMARTS default).
    #[default]
    C95,
    /// 99% two-sided confidence.
    C99,
}

impl Confidence {
    /// The two-sided normal quantile `z` for this level.
    pub fn z(self) -> f64 {
        match self {
            Confidence::C90 => 1.6449,
            Confidence::C95 => 1.9600,
            Confidence::C99 => 2.5758,
        }
    }

    /// The level as a fraction (0.95 for [`Confidence::C95`]).
    pub fn level(self) -> f64 {
        match self {
            Confidence::C90 => 0.90,
            Confidence::C95 => 0.95,
            Confidence::C99 => 0.99,
        }
    }
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}%", (self.level() * 100.0).round())
    }
}

/// The systematic-sampling schedule. One *sampling unit* spans
/// [`SampleConfig::interval`] committed instructions and ends with a
/// functionally-warmed, detail-warmed, measured window; everything before
/// it is architectural fast-forward.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleConfig {
    /// `U`: committed instructions per sampling unit (one measured window
    /// per unit).
    pub interval: u64,
    /// `Wf`: functional-warming instructions before the detailed window
    /// (cache + predictor state only, no timing).
    pub warm_func: u64,
    /// Cache-warming tail: the last `warm_mem` instructions of `Wf` also
    /// drive the memory hierarchy's warm paths. Predictor tables need the
    /// whole `Wf` horizon to converge; cache state converges within a few
    /// hundred thousand instructions, so warming it over the full horizon
    /// would only slow the fast-forward.
    pub warm_mem: u64,
    /// `Wd`: detailed-warmup instructions (full pipeline, statistics
    /// discarded).
    pub warm_detail: u64,
    /// `D`: measured instructions per window.
    pub measure: u64,
    /// Confidence level of the aggregate estimate's interval.
    pub confidence: Confidence,
}

impl Default for SampleConfig {
    /// U = 2.75M, Wf = 900k (caches warmed over the whole horizon), Wd =
    /// 25k, D = 20k at 95% confidence. The warming horizon is the
    /// accuracy lever: per-window state is built fresh (that is what
    /// makes windows independent and shard merges exact), so warming
    /// must span roughly one phase residency of the long-horizon
    /// workloads (~1M instructions) for predictor tables to converge —
    /// shorter horizons under-train the stream predictor and bias IPC
    /// low (measured: Wf = 30k → −58%, 300k → −5%, ~1M → −1% on the
    /// phased workload, with the stream engine's self-checking warm path
    /// supplying the partial-stream entries plain commit training cannot)
    /// — and the L2's data working set needs the same depth (a 200k
    /// cache-warming tail re-introduced a −8% bias). At this schedule
    /// the 50M-instruction sampling A/B lands within ~1% of the full run
    /// at ≥10× wall-clock speedup on one core.
    fn default() -> Self {
        SampleConfig {
            interval: 2_750_000,
            warm_func: 900_000,
            warm_mem: 900_000,
            warm_detail: 25_000,
            measure: 20_000,
            confidence: Confidence::C95,
        }
    }
}

impl SampleConfig {
    /// Validates the schedule.
    ///
    /// # Panics
    ///
    /// Panics if the warm + measure phases do not fit inside the interval
    /// or the measured window is empty.
    pub fn validate(&self) {
        assert!(self.measure >= 1, "measured window must be non-empty");
        assert!(
            self.warm_mem <= self.warm_func,
            "cache-warming tail {} exceeds the warming horizon {}",
            self.warm_mem,
            self.warm_func
        );
        assert!(
            self.warm_func + self.warm_detail + self.measure <= self.interval,
            "warm_func {} + warm_detail {} + measure {} exceed the interval {}",
            self.warm_func,
            self.warm_detail,
            self.measure,
            self.interval
        );
    }

    /// Number of whole sampling units (= measured windows) in a run of
    /// `total_insts` committed instructions.
    pub fn windows(&self, total_insts: u64) -> u64 {
        total_insts / self.interval
    }

    /// Fast-forward length at the head of each unit.
    pub fn fast_forward(&self) -> u64 {
        self.interval - self.warm_func - self.warm_detail - self.measure
    }

    /// Parses a `U,Wf,Wd,D[,Wm]` comma-separated schedule (the `--sample`
    /// CLI flag), keeping the default confidence. The optional fifth
    /// field is the cache-warming tail (default: the whole horizon `Wf`).
    ///
    /// # Errors
    ///
    /// Reports malformed fields or a schedule that fails validation.
    pub fn parse(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split(',').collect();
        if parts.len() != 4 && parts.len() != 5 {
            return Err(format!("expected U,Wf,Wd,D[,Wm] (4-5 comma-separated numbers), got {s:?}"));
        }
        let mut nums = vec![0u64; parts.len()];
        for (slot, p) in nums.iter_mut().zip(&parts) {
            *slot = p.trim().parse().map_err(|e| format!("bad number {p:?}: {e}"))?;
        }
        let cfg = SampleConfig {
            interval: nums[0],
            warm_func: nums[1],
            warm_mem: nums.get(4).copied().unwrap_or(nums[1]),
            warm_detail: nums[2],
            measure: nums[3],
            confidence: Confidence::default(),
        };
        if cfg.measure == 0
            || cfg.warm_mem > cfg.warm_func
            || cfg.warm_func + cfg.warm_detail + cfg.measure > cfg.interval
        {
            return Err(format!(
                "schedule {s:?} does not fit: need Wm <= Wf, Wf+Wd+D <= U and D >= 1"
            ));
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_schedule_is_valid() {
        let c = SampleConfig::default();
        c.validate();
        assert_eq!(c.windows(50_000_000), 18);
        assert_eq!(c.fast_forward() + c.warm_func + c.warm_detail + c.measure, c.interval);
        assert!(c.warm_mem <= c.warm_func);
    }

    #[test]
    fn parse_round_trips() {
        let c = SampleConfig::parse("100000, 10000, 1000, 5000").expect("valid");
        assert_eq!(c.interval, 100_000);
        assert_eq!(c.warm_func, 10_000);
        assert_eq!(c.warm_mem, 10_000, "cache tail defaults to the whole horizon");
        assert_eq!(c.warm_detail, 1_000);
        assert_eq!(c.measure, 5_000);
        let c5 = SampleConfig::parse("100000,10000,1000,5000,4000").expect("valid with Wm");
        assert_eq!(c5.warm_mem, 4_000);
        assert!(SampleConfig::parse("1,2,3").is_err(), "wrong arity");
        assert!(SampleConfig::parse("10,20,30,x").is_err(), "bad number");
        assert!(SampleConfig::parse("10,20,30,40").is_err(), "does not fit");
        assert!(SampleConfig::parse("100,20,30,0").is_err(), "empty window");
        assert!(SampleConfig::parse("100,20,30,5,25").is_err(), "tail beyond horizon");
    }

    #[test]
    #[should_panic(expected = "exceed the interval")]
    fn validate_rejects_oversized_phases() {
        SampleConfig {
            interval: 10,
            warm_func: 5,
            warm_mem: 5,
            warm_detail: 5,
            measure: 5,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn confidence_quantiles() {
        assert!((Confidence::C95.z() - 1.96).abs() < 1e-6);
        assert!(Confidence::C99.z() > Confidence::C95.z());
        assert_eq!(Confidence::C95.to_string(), "95%");
    }
}
