//! The persistent **cell ledger**: one line-JSON event per state
//! transition, replayed on open.
//!
//! The ledger is the fleet's single source of truth for which work is
//! done. Each cell walks the state machine
//!
//! ```text
//! Pending ──lease──▶ Leased(worker, deadline)
//!    ▲                   │ complete        │ fail (attempts ≤ budget)
//!    │                   ▼                 ▼
//!    │                 Done(digest)     Pending(attempts, backoff)
//!    │                                     │ fail (budget exhausted)
//!    └── lease expiry ◀── crash ──┘        ▼
//!                                       Failed(attempts)
//! ```
//!
//! and every transition is **appended** to the ledger file before it
//! takes effect in memory, so the on-disk event log replayed from the
//! top always reproduces the in-memory state (asserted by proptest in
//! `tests/tests/fleet_ledger.rs`). Crash recovery falls out of replay:
//!
//! * a lease whose deadline has passed is re-offered (the worker — or
//!   the whole parent — died mid-cell; attempts are *not* charged for
//!   an interrupted lease);
//! * a `Done` cell's recorded output file is re-read and re-verified
//!   against its recorded digest on open; if it still verifies the cell
//!   is skipped entirely (zero recompute on resume), otherwise it is
//!   demoted to `Pending` and recomputed.
//!
//! The ledger is keyed by a caller-supplied `config` fingerprint
//! (workload, schedule, axes, chaos seed…). Opening a ledger written
//! under a different fingerprint rotates it aside and starts fresh —
//! stale cells are unreachable rather than merely discouraged, the same
//! policy the checkpoint store applies to its entries.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use sfetch_tab::OpenMap;

use crate::cell::CellId;
use crate::error::FleetError;

/// Schema tag of the ledger's header line.
pub const LEDGER_SCHEMA: &str = "sfetch-fleet-ledger-v1";

/// The per-cell state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellState {
    /// Not yet run (or re-offered after a failure/expired lease).
    Pending {
        /// Failures charged so far.
        attempts: u32,
        /// Earliest wall-clock ms the cell may be leased again
        /// (retry backoff; 0 = immediately).
        not_before_ms: u64,
    },
    /// A worker holds the cell until `deadline_ms`.
    Leased {
        /// Worker identity (process id).
        worker: u64,
        /// Attempt index this lease runs (= failures so far).
        attempt: u32,
        /// Wall-clock ms at which the lease expires and the cell is
        /// re-offered.
        deadline_ms: u64,
    },
    /// Verified output exists. Terminal (skipped on resume).
    Done {
        /// FNV digest of the verified output text.
        digest: u64,
        /// Failures charged before the successful attempt.
        attempts: u32,
        /// Wall-clock duration of the successful attempt.
        dur_ms: u64,
    },
    /// Retry budget exhausted. Terminal for this run; a fresh ledger
    /// (or a higher budget) re-offers it.
    Failed {
        /// Failures charged.
        attempts: u32,
        /// The last failure's description.
        last_error: String,
    },
}

impl CellState {
    /// Whether the cell needs no further work (`Done` or `Failed`).
    pub fn is_terminal(&self) -> bool {
        matches!(self, CellState::Done { .. } | CellState::Failed { .. })
    }
}

/// What [`Ledger::open`] recovered from an existing ledger file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResumeSummary {
    /// `Done` cells whose recorded output re-verified — skipped this run.
    pub resumed_done: u64,
    /// `Done` cells whose output was missing/corrupt — demoted to
    /// `Pending` and recomputed.
    pub invalidated: u64,
    /// Leases that had expired (worker or parent died mid-cell) and
    /// were re-offered.
    pub expired_leases: u64,
    /// Events replayed from the file.
    pub replayed_events: u64,
}

struct CellRecord {
    state: CellState,
    /// Output path recorded by the `done` event (needed to re-verify on
    /// resume) and the verified output text once loaded.
    out: Option<PathBuf>,
    text: Option<String>,
}

/// The file-backed cell ledger. See the module docs for semantics.
pub struct Ledger {
    path: PathBuf,
    file: File,
    /// Open-addressed record table — `state`/`record_mut` lookups land
    /// once per supervisor poll per cell. Iteration-order determinism
    /// lives in `order`, not the table.
    cells: OpenMap<CellId, CellRecord>,
    /// The opened cell set in sorted order: `cells()`, `next_claimable`
    /// and the final report all walk this, so claiming stays
    /// reproducible run to run.
    order: Vec<CellId>,
}

/// Minimal JSON string escaping for the few free-text fields (error
/// messages, paths) the ledger records.
fn esc(s: &str) -> String {
    s.chars()
        .map(|c| match c {
            '"' => "\\\"".to_owned(),
            '\\' => "\\\\".to_owned(),
            '\n' | '\r' | '\t' => " ".to_owned(),
            c => c.to_string(),
        })
        .collect()
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\": ");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": \"");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    // Scan for the closing quote, honouring escapes.
    let bytes = rest.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(&rest[..i]),
            _ => i += 1,
        }
    }
    None
}

fn field_bool(line: &str, key: &str) -> Option<bool> {
    let tag = format!("\"{key}\": ");
    let at = line.find(&tag)? + tag.len();
    line[at..].starts_with("true").then_some(true).or_else(|| {
        line[at..].starts_with("false").then_some(false)
    })
}

impl Ledger {
    /// Opens (or creates) the ledger at `path` for the given cell set,
    /// replaying any existing events. `config` fingerprints everything
    /// the cells' outputs depend on; a ledger written under a different
    /// fingerprint is rotated aside (`<path>.stale`) and a fresh one
    /// started. `validate` re-verifies each recorded `Done` output
    /// (returning its digest) so resume never trusts a file that rotted
    /// on disk.
    ///
    /// # Errors
    ///
    /// Filesystem failures and unparseable ledger lines.
    pub fn open(
        path: impl Into<PathBuf>,
        config: u64,
        cells: &[CellId],
        now_ms: u64,
        validate: &dyn Fn(&str) -> Result<u64, String>,
    ) -> Result<(Self, ResumeSummary), FleetError> {
        let path = path.into();
        let mut summary = ResumeSummary::default();
        let mut replayed: OpenMap<CellId, CellRecord> = OpenMap::new();

        let existing = match std::fs::read_to_string(&path) {
            Ok(text) => Some(text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(FleetError::io("read ledger", &path, e)),
        };
        let mut fresh = true;
        if let Some(text) = existing {
            let header_ok = text
                .lines()
                .next()
                .is_some_and(|l| l.contains(LEDGER_SCHEMA) && field_u64(l, "config") == Some(config));
            if header_ok {
                fresh = false;
                for (i, line) in text.lines().enumerate().skip(1) {
                    if line.trim().is_empty() {
                        continue;
                    }
                    Self::replay_line(line, &mut replayed).map_err(|err| {
                        FleetError::LedgerParse { path: path.clone(), line: i + 1, err }
                    })?;
                    summary.replayed_events += 1;
                }
            } else {
                // Different experiment (or unreadable header): rotate the
                // old ledger aside rather than mixing state.
                let stale = path.with_extension("ledger.stale");
                std::fs::rename(&path, &stale)
                    .map_err(|e| FleetError::io("rotate stale ledger", &path, e))?;
            }
        }

        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| FleetError::io("open ledger", &path, e))?;
        if fresh {
            let header = format!(
                "{{\"ev\": \"open\", \"schema\": \"{LEDGER_SCHEMA}\", \"config\": {config}, \
                 \"cells\": {}}}\n",
                cells.len()
            );
            file.write_all(header.as_bytes())
                .and_then(|()| file.flush())
                .map_err(|e| FleetError::io("write ledger header", &path, e))?;
        }

        // Resolve the requested cell set against the replayed state.
        let mut order: Vec<CellId> = cells.to_vec();
        order.sort();
        order.dedup();
        let mut resolved: OpenMap<CellId, CellRecord> = OpenMap::with_capacity(order.len());
        for cell in &order {
            let mut rec = replayed.remove(cell).unwrap_or(CellRecord {
                state: CellState::Pending { attempts: 0, not_before_ms: 0 },
                out: None,
                text: None,
            });
            match &rec.state {
                CellState::Leased { attempt, deadline_ms, .. } if *deadline_ms <= now_ms => {
                    // Worker (or parent) died mid-cell: re-offer without
                    // charging the interrupted attempt.
                    summary.expired_leases += 1;
                    rec.state = CellState::Pending { attempts: *attempt, not_before_ms: 0 };
                }
                CellState::Done { digest, attempts, .. } => {
                    let verified = rec.out.as_ref().and_then(|out| {
                        let text = std::fs::read_to_string(out).ok()?;
                        (validate(&text) == Ok(*digest)).then_some(text)
                    });
                    match verified {
                        Some(text) => {
                            summary.resumed_done += 1;
                            rec.text = Some(text);
                        }
                        None => {
                            summary.invalidated += 1;
                            rec.state =
                                CellState::Pending { attempts: *attempts, not_before_ms: 0 };
                            rec.out = None;
                        }
                    }
                }
                _ => {}
            }
            resolved.insert(cell.clone(), rec);
        }

        Ok((Ledger { path, file, cells: resolved, order }, summary))
    }

    fn replay_line(line: &str, map: &mut OpenMap<CellId, CellRecord>) -> Result<(), String> {
        let ev = field_str(line, "ev").ok_or("missing \"ev\" field")?;
        if ev == "open" {
            return Ok(()); // A re-opened ledger re-appends nothing; ignore.
        }
        let cell_s = field_str(line, "cell").ok_or("missing \"cell\" field")?;
        let cell = CellId::parse(cell_s)?;
        let need = |k: &str| field_u64(line, k).ok_or_else(|| format!("missing \"{k}\" field"));
        let rec = map.entry_or_insert(
            cell,
            CellRecord {
                state: CellState::Pending { attempts: 0, not_before_ms: 0 },
                out: None,
                text: None,
            },
        );
        match ev {
            "lease" => {
                rec.state = CellState::Leased {
                    worker: need("worker")?,
                    attempt: need("attempt")? as u32,
                    deadline_ms: need("deadline_ms")?,
                };
            }
            "done" => {
                let attempts = match rec.state {
                    CellState::Leased { attempt, .. } => attempt,
                    _ => 0,
                };
                rec.state = CellState::Done {
                    digest: need("digest")?,
                    attempts,
                    dur_ms: need("dur_ms")?,
                };
                rec.out = field_str(line, "out").map(|p| PathBuf::from(unesc(p)));
            }
            "fail" => {
                let attempts = need("attempts")? as u32;
                let why = unesc(field_str(line, "why").unwrap_or(""));
                if field_bool(line, "permanent").unwrap_or(false) {
                    rec.state = CellState::Failed { attempts, last_error: why };
                } else {
                    rec.state = CellState::Pending {
                        attempts,
                        not_before_ms: need("not_before_ms")?,
                    };
                }
            }
            other => return Err(format!("unknown event {other:?}")),
        }
        Ok(())
    }

    fn append(&mut self, line: String) -> Result<(), FleetError> {
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| FleetError::io("append to ledger", &self.path, e))
    }

    fn record_mut(&mut self, cell: &CellId) -> Result<&mut CellRecord, FleetError> {
        // Split borrow dance: look up existence first for a clean error.
        if !self.cells.contains_key(cell) {
            return Err(FleetError::UnknownCell(cell.to_string()));
        }
        Ok(self.cells.get_mut(cell).expect("checked above"))
    }

    /// The ledger file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current state of `cell`.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownCell`] for cells outside the opened set.
    pub fn state(&self, cell: &CellId) -> Result<&CellState, FleetError> {
        self.cells
            .get(cell)
            .map(|r| &r.state)
            .ok_or_else(|| FleetError::UnknownCell(cell.to_string()))
    }

    /// All cells in the opened set, in deterministic (sorted) order.
    pub fn cells(&self) -> impl Iterator<Item = &CellId> {
        self.order.iter()
    }

    /// The verified output text of a `Done` cell (available for cells
    /// completed this run or successfully resumed).
    pub fn done_text(&self, cell: &CellId) -> Option<&str> {
        self.cells.get(cell).and_then(|r| r.text.as_deref())
    }

    /// The next cell a worker may claim at `now_ms`: `Pending` past its
    /// backoff, or a lease that expired in-run. Deterministic
    /// (cell order) so runs are reproducible.
    pub fn next_claimable(&self, now_ms: u64) -> Option<CellId> {
        self.order
            .iter()
            .find(|c| {
                match self.cells.get(*c).map(|r| &r.state) {
                    Some(CellState::Pending { not_before_ms, .. }) => *not_before_ms <= now_ms,
                    Some(CellState::Leased { deadline_ms, .. }) => *deadline_ms <= now_ms,
                    _ => false,
                }
            })
            .cloned()
    }

    /// The earliest future wall-clock ms at which a currently
    /// unclaimable, non-terminal cell becomes claimable (backoff expiry
    /// or lease deadline). `None` when nothing is waiting on time.
    pub fn next_wakeup_ms(&self, now_ms: u64) -> Option<u64> {
        self.cells
            .values()
            .filter_map(|r| match r.state {
                CellState::Pending { not_before_ms, .. } if not_before_ms > now_ms => {
                    Some(not_before_ms)
                }
                CellState::Leased { deadline_ms, .. } if deadline_ms > now_ms => Some(deadline_ms),
                _ => None,
            })
            .min()
    }

    /// Leases `cell` to `worker` until `deadline_ms`, returning the
    /// attempt index the worker should run.
    ///
    /// # Errors
    ///
    /// [`FleetError::BadTransition`] when the cell is terminal, still
    /// inside its retry backoff, or validly leased to another worker
    /// (**double-lease exclusion** — only an *expired* lease may be
    /// re-leased).
    pub fn lease(
        &mut self,
        cell: &CellId,
        worker: u64,
        deadline_ms: u64,
        now_ms: u64,
    ) -> Result<u32, FleetError> {
        let rec = self.record_mut(cell)?;
        let attempt = match &rec.state {
            CellState::Pending { attempts, not_before_ms } => {
                if *not_before_ms > now_ms {
                    return Err(FleetError::BadTransition {
                        cell: cell.to_string(),
                        err: format!(
                            "in retry backoff for another {}ms",
                            *not_before_ms - now_ms
                        ),
                    });
                }
                *attempts
            }
            CellState::Leased { worker: w, deadline_ms: d, attempt } => {
                if *d > now_ms {
                    return Err(FleetError::BadTransition {
                        cell: cell.to_string(),
                        err: format!("already leased to worker {w} until {d}ms"),
                    });
                }
                *attempt // expired: re-offer without charging the attempt
            }
            CellState::Done { .. } => {
                return Err(FleetError::BadTransition {
                    cell: cell.to_string(),
                    err: "already done".into(),
                })
            }
            CellState::Failed { .. } => {
                return Err(FleetError::BadTransition {
                    cell: cell.to_string(),
                    err: "permanently failed".into(),
                })
            }
        };
        let line = format!(
            "{{\"ev\": \"lease\", \"cell\": \"{cell}\", \"worker\": {worker}, \
             \"attempt\": {attempt}, \"deadline_ms\": {deadline_ms}}}\n"
        );
        self.append(line)?;
        self.record_mut(cell)?.state = CellState::Leased { worker, attempt, deadline_ms };
        Ok(attempt)
    }

    /// Marks a leased cell `Done` with its verified output.
    ///
    /// # Errors
    ///
    /// [`FleetError::BadTransition`] unless the cell is `Leased` (a
    /// completion may land slightly after its deadline — the work is
    /// valid either way, so expiry is not checked here).
    pub fn complete(
        &mut self,
        cell: &CellId,
        digest: u64,
        out: &Path,
        dur_ms: u64,
        text: String,
    ) -> Result<(), FleetError> {
        let rec = self.record_mut(cell)?;
        let attempts = match &rec.state {
            CellState::Leased { attempt, .. } => *attempt,
            other => {
                return Err(FleetError::BadTransition {
                    cell: cell.to_string(),
                    err: format!("complete() requires a lease, state is {other:?}"),
                })
            }
        };
        let line = format!(
            "{{\"ev\": \"done\", \"cell\": \"{cell}\", \"digest\": {digest}, \
             \"dur_ms\": {dur_ms}, \"out\": \"{}\"}}\n",
            esc(&out.display().to_string())
        );
        self.append(line)?;
        let rec = self.record_mut(cell)?;
        rec.state = CellState::Done { digest, attempts, dur_ms };
        rec.out = Some(out.to_path_buf());
        rec.text = Some(text);
        Ok(())
    }

    /// Charges a failure against a leased cell: back to `Pending` with
    /// `not_before_ms` backoff, or `Failed` once more than
    /// `max_retries` failures accrue. Returns whether the failure was
    /// permanent.
    ///
    /// # Errors
    ///
    /// [`FleetError::BadTransition`] unless the cell is `Leased`.
    pub fn fail(
        &mut self,
        cell: &CellId,
        why: &str,
        not_before_ms: u64,
        max_retries: u32,
    ) -> Result<bool, FleetError> {
        let rec = self.record_mut(cell)?;
        let attempts = match &rec.state {
            CellState::Leased { attempt, .. } => *attempt + 1,
            other => {
                return Err(FleetError::BadTransition {
                    cell: cell.to_string(),
                    err: format!("fail() requires a lease, state is {other:?}"),
                })
            }
        };
        let permanent = attempts > max_retries;
        let line = format!(
            "{{\"ev\": \"fail\", \"cell\": \"{cell}\", \"attempts\": {attempts}, \
             \"not_before_ms\": {not_before_ms}, \"permanent\": {permanent}, \"why\": \"{}\"}}\n",
            esc(why)
        );
        self.append(line)?;
        self.record_mut(cell)?.state = if permanent {
            CellState::Failed { attempts, last_error: why.to_owned() }
        } else {
            CellState::Pending { attempts, not_before_ms }
        };
        Ok(permanent)
    }

    /// (pending, leased, done, failed) cell counts.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for r in self.cells.values() {
            match r.state {
                CellState::Pending { .. } => c.0 += 1,
                CellState::Leased { .. } => c.1 += 1,
                CellState::Done { .. } => c.2 += 1,
                CellState::Failed { .. } => c.3 += 1,
            }
        }
        c
    }

    /// Whether every cell is terminal (`Done` or `Failed`).
    pub fn all_terminal(&self) -> bool {
        self.cells.values().all(|r| r.state.is_terminal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sfetch-ledger-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mk tmp");
        dir
    }

    fn cells2() -> Vec<CellId> {
        vec![CellId::new("ev8", 4, 0, 2), CellId::new("stream", 8, 0, 2)]
    }

    fn no_validate(_: &str) -> Result<u64, String> {
        Err("no outputs in this test".into())
    }

    #[test]
    fn fresh_ledger_walks_the_happy_path() {
        let dir = tmp("happy");
        let cells = cells2();
        let (mut led, summary) =
            Ledger::open(dir.join("l.ledger"), 7, &cells, 1000, &no_validate).expect("open");
        assert_eq!(summary, ResumeSummary::default());
        assert_eq!(led.next_claimable(1000), Some(cells[0].clone()));

        let attempt = led.lease(&cells[0], 42, 5000, 1000).expect("lease");
        assert_eq!(attempt, 0);
        // Double-lease exclusion while the lease is live.
        assert!(matches!(
            led.lease(&cells[0], 43, 5000, 2000),
            Err(FleetError::BadTransition { .. })
        ));
        // The other cell is still claimable.
        assert_eq!(led.next_claimable(1000), Some(cells[1].clone()));

        let out = dir.join("c0.json");
        std::fs::write(&out, "body").expect("write out");
        led.complete(&cells[0], 99, &out, 123, "body".into()).expect("complete");
        assert!(matches!(led.state(&cells[0]), Ok(CellState::Done { digest: 99, .. })));
        assert_eq!(led.done_text(&cells[0]), Some("body"));
        // Terminal cells cannot be leased again.
        assert!(led.lease(&cells[0], 44, 9000, 6000).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn expired_lease_is_reoffered_and_failures_accrue() {
        let dir = tmp("expiry");
        let cells = cells2();
        let (mut led, _) =
            Ledger::open(dir.join("l.ledger"), 7, &cells, 0, &no_validate).expect("open");
        led.lease(&cells[0], 1, 100, 0).expect("lease");
        // Deadline passed: claimable again, attempt not charged.
        assert_eq!(led.next_claimable(100), Some(cells[0].clone()));
        assert_eq!(led.lease(&cells[0], 2, 300, 150).expect("re-lease"), 0);

        // Two failures with backoff, third is permanent at max_retries=2.
        led.fail(&cells[0], "boom", 500, 2).expect("fail 1");
        assert!(matches!(
            led.state(&cells[0]),
            Ok(CellState::Pending { attempts: 1, not_before_ms: 500 })
        ));
        // Backoff respected.
        assert!(led.lease(&cells[0], 3, 900, 400).is_err());
        led.lease(&cells[0], 3, 900, 500).expect("after backoff");
        led.fail(&cells[0], "boom again", 1200, 2).expect("fail 2");
        led.lease(&cells[0], 4, 2000, 1200).expect("lease 3");
        let permanent = led.fail(&cells[0], "final boom", 3000, 2).expect("fail 3");
        assert!(permanent);
        assert!(matches!(
            led.state(&cells[0]),
            Ok(CellState::Failed { attempts: 3, .. })
        ));
        assert_eq!(led.next_claimable(10_000), Some(cells[1].clone()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_replays_to_the_same_state_and_resumes_done() {
        let dir = tmp("reopen");
        let cells = cells2();
        let path = dir.join("l.ledger");
        let out = dir.join("c.json");
        let body = "points…";
        std::fs::write(&out, body).expect("write out");
        let validate =
            |text: &str| -> Result<u64, String> { Ok(crate::trailer::fnv64(text.as_bytes())) };
        let digest = crate::trailer::fnv64(body.as_bytes());
        {
            let (mut led, _) = Ledger::open(&path, 7, &cells, 0, &validate).expect("open");
            led.lease(&cells[0], 1, 10_000, 0).expect("lease");
            led.complete(&cells[0], digest, &out, 5, body.into()).expect("complete");
            led.lease(&cells[1], 2, 50, 0).expect("lease 2");
            // Parent "crashes" here: cells[1]'s lease will have expired.
        }
        let (led, summary) = Ledger::open(&path, 7, &cells, 1_000, &validate).expect("reopen");
        assert_eq!(summary.resumed_done, 1);
        assert_eq!(summary.expired_leases, 1);
        assert_eq!(summary.invalidated, 0);
        assert_eq!(led.done_text(&cells[0]), Some(body));
        assert!(matches!(led.state(&cells[1]), Ok(CellState::Pending { attempts: 0, .. })));

        // Corrupt the recorded output: resume must demote to Pending.
        std::fs::write(&out, "rotted").expect("corrupt out");
        let (led, summary) = Ledger::open(&path, 7, &cells, 2_000, &validate).expect("reopen 2");
        assert_eq!(summary.invalidated, 1);
        assert!(matches!(led.state(&cells[0]), Ok(CellState::Pending { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_mismatch_rotates_the_ledger() {
        let dir = tmp("rotate");
        let cells = cells2();
        let path = dir.join("l.ledger");
        {
            let (mut led, _) = Ledger::open(&path, 7, &cells, 0, &no_validate).expect("open");
            led.lease(&cells[0], 1, 100, 0).expect("lease");
        }
        let (led, summary) = Ledger::open(&path, 8, &cells, 0, &no_validate).expect("reopen");
        assert_eq!(summary.replayed_events, 0, "different config starts fresh");
        assert!(matches!(led.state(&cells[0]), Ok(CellState::Pending { attempts: 0, .. })));
        assert!(path.with_extension("ledger.stale").exists(), "old ledger rotated aside");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn escaped_error_text_survives_replay() {
        let dir = tmp("esc");
        let cells = cells2();
        let path = dir.join("l.ledger");
        let why = "child said \"no\"\nand \\ dumped a stack";
        {
            let (mut led, _) = Ledger::open(&path, 7, &cells, 0, &no_validate).expect("open");
            led.lease(&cells[0], 1, 100, 0).expect("lease");
            led.fail(&cells[0], why, 0, 0).expect("fail permanently");
        }
        let (led, _) = Ledger::open(&path, 7, &cells, 0, &no_validate).expect("reopen");
        match led.state(&cells[0]).expect("state") {
            CellState::Failed { last_error, .. } => {
                assert!(last_error.contains("said \"no\""), "got {last_error:?}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
