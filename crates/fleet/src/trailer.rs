//! The end-of-file checksum trailer worker outputs carry.
//!
//! A worker that dies mid-write, a full disk, or an injected chaos
//! fault can all leave a shard file that *looks* plausible but is
//! short or mangled. Before this module the merge path would happily
//! parse whatever point lines survived and merge the cell short. The
//! trailer closes that hole: [`seal`] appends a final line recording
//! the body's byte length and FNV-1a digest, and [`unseal`] refuses any
//! file whose trailer is missing, malformed, or disagrees with the
//! bytes — the supervisor then fails the cell and re-runs it.

use std::fmt;

/// Schema tag of the trailer line.
pub const TRAILER_SCHEMA: &str = "sfetch-shard-trailer-v1";

/// 64-bit FNV-1a over `bytes` — the fleet's output digest. Matches the
/// classic parameters (offset basis `0xcbf29ce484222325`, prime
/// `0x100000001b3`); self-contained so the crate stays std-only.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why [`unseal`] rejected a worker output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrailerError {
    /// No trailer line at all — the classic truncation signature.
    Missing,
    /// A trailer line exists but cannot be parsed.
    Malformed(String),
    /// The trailer's recorded body length disagrees with the bytes.
    LengthMismatch {
        /// Bytes the trailer claims the body has.
        recorded: u64,
        /// Bytes actually present before the trailer line.
        actual: u64,
    },
    /// The body's digest disagrees with the trailer (corruption).
    DigestMismatch,
}

impl fmt::Display for TrailerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrailerError::Missing => f.write_str("no checksum trailer (truncated file?)"),
            TrailerError::Malformed(why) => write!(f, "malformed checksum trailer: {why}"),
            TrailerError::LengthMismatch { recorded, actual } => write!(
                f,
                "trailer records a {recorded}-byte body but {actual} bytes are present \
                 (truncated file)"
            ),
            TrailerError::DigestMismatch => {
                f.write_str("body digest does not match the checksum trailer (corrupt file)")
            }
        }
    }
}

impl std::error::Error for TrailerError {}

/// Appends the checksum trailer line to `body`, returning the complete
/// file text a worker should write. The trailer is line-oriented:
/// `body` must be empty or newline-terminated (every line-JSON shard
/// body is), otherwise its last line and the trailer would fuse.
pub fn seal(body: &str) -> String {
    debug_assert!(
        body.is_empty() || body.ends_with('\n'),
        "seal() requires an empty or newline-terminated body"
    );
    format!(
        "{body}{{\"trailer\": \"{TRAILER_SCHEMA}\", \"bytes\": {}, \"fnv\": {}}}\n",
        body.len(),
        fnv64(body.as_bytes())
    )
}

/// Verifies `text`'s checksum trailer and returns the body (everything
/// before the trailer line).
///
/// # Errors
///
/// Any missing, malformed, or disagreeing trailer — see
/// [`TrailerError`]. Callers treat every variant the same way: the
/// output is untrustworthy and the cell must be re-run.
pub fn unseal(text: &str) -> Result<&str, TrailerError> {
    // The trailer is the last newline-terminated line.
    let stripped = text.strip_suffix('\n').ok_or(TrailerError::Missing)?;
    let line_start = stripped.rfind('\n').map_or(0, |i| i + 1);
    let line = &stripped[line_start..];
    if !line.contains(TRAILER_SCHEMA) {
        return Err(TrailerError::Missing);
    }
    let field = |key: &str| -> Result<u64, TrailerError> {
        let tag = format!("\"{key}\": ");
        let at = line
            .find(&tag)
            .ok_or_else(|| TrailerError::Malformed(format!("missing field {key:?}")))?
            + tag.len();
        let rest = &line[at..];
        let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
        rest[..end]
            .parse()
            .map_err(|e| TrailerError::Malformed(format!("field {key:?}: {e}")))
    };
    let recorded = field("bytes")?;
    let digest = field("fnv")?;
    let body = &text[..line_start];
    if body.len() as u64 != recorded {
        return Err(TrailerError::LengthMismatch { recorded, actual: body.len() as u64 });
    }
    if fnv64(body.as_bytes()) != digest {
        return Err(TrailerError::DigestMismatch);
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_unseal_roundtrip() {
        for body in ["", "one line\n", "{\"a\": 1}\n{\"b\": 2}\n"] {
            let sealed = seal(body);
            assert_eq!(unseal(&sealed).expect("roundtrip"), body);
        }
    }

    #[test]
    fn truncation_is_detected() {
        let sealed = seal("{\"w\": 0}\n{\"w\": 1}\n{\"w\": 2}\n");
        // Any strict prefix must be rejected: either the trailer line is
        // gone entirely or its recorded length no longer matches.
        for cut in 1..sealed.len() {
            assert!(
                unseal(&sealed[..cut]).is_err(),
                "prefix of {cut} bytes must not verify"
            );
        }
    }

    #[test]
    fn corruption_is_detected() {
        let sealed = seal("{\"w\": 0, \"cycles\": 123}\n");
        let mut bytes = sealed.clone().into_bytes();
        // Flip one digit in the body, keeping the length unchanged.
        let at = sealed.find("123").expect("payload digit");
        bytes[at] = b'9';
        let corrupt = String::from_utf8(bytes).expect("still utf-8");
        assert_eq!(unseal(&corrupt), Err(TrailerError::DigestMismatch));
    }

    #[test]
    fn fnv_is_stable() {
        // Pin the digest function: ledger digests persist across runs,
        // so the algorithm must never drift silently.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
