//! Deterministic fault injection — the harness that *proves* the fleet
//! tolerates faults instead of merely claiming to.
//!
//! Chaos mode is armed by setting [`CHAOS_ENV`] (`SFETCH_CHAOS`) to a
//! seed; the parent sets it on worker environments only, so the
//! supervisor itself always runs clean. Each worker asks
//! [`fault_for`]`(seed, cell, attempt)` what to do and the answer is a
//! **pure function** of those three values:
//!
//! * the same seed replays the same fault schedule, byte for byte, so a
//!   failing chaos run is reproducible from its command line;
//! * a *retry* of a cell (higher attempt) draws a *different* fault —
//!   faults don't stick to cells;
//! * no fault ever fires at attempt ≥ 2, so with a retry budget of ≥ 2
//!   every chaos run provably converges to the fault-free output.
//!
//! The fault menu covers the distinct failure surfaces the supervisor
//! defends: dying before writing ([`Fault::CrashEarly`]), hanging
//! ([`Fault::Stall`] — caught by heartbeat staleness), writing a short
//! file ([`Fault::WriteTruncated`] — caught by the checksum trailer),
//! writing a plausible-but-wrong file ([`Fault::WriteCorrupt`] — caught
//! by the digest), and reporting failure despite a valid file
//! ([`Fault::ExitNonzeroAfterWrite`] — exit status must win).

use crate::cell::CellId;
use crate::trailer::fnv64;

/// Environment variable that arms chaos mode in workers. Its value is
/// the decimal seed.
pub const CHAOS_ENV: &str = "SFETCH_CHAOS";

/// What a chaos-armed worker does to itself for one (cell, attempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Run cleanly.
    None,
    /// Abort before computing or writing anything — a segfault-shaped
    /// death the supervisor sees as a nonzero exit with no output.
    CrashEarly,
    /// Hang without ever heartbeating — caught by heartbeat staleness
    /// (or the cell deadline), killed, and re-leased.
    Stall,
    /// Write only a prefix of the sealed output — caught by the
    /// checksum trailer on the parent side.
    WriteTruncated,
    /// Write a full-length output with a flipped body byte — caught by
    /// the trailer digest.
    WriteCorrupt,
    /// Write a perfectly valid output but exit nonzero — exit status
    /// must override the parseable file (the process may know something
    /// the file doesn't).
    ExitNonzeroAfterWrite,
}

/// The fault (if any) a worker injects for `cell` at `attempt`, as a
/// pure function of the seed. Attempt 0 faults with probability ~70%,
/// attempt 1 with ~30%, attempt ≥ 2 never — so `max_retries ≥ 2`
/// guarantees convergence.
pub fn fault_for(seed: u64, cell: &CellId, attempt: u32) -> Fault {
    if attempt >= 2 {
        return Fault::None;
    }
    let key = format!("{seed}\u{1f}{cell}\u{1f}{attempt}");
    let h = fnv64(key.as_bytes());
    let threshold = if attempt == 0 { 70 } else { 30 };
    if h % 100 >= threshold {
        return Fault::None;
    }
    match (h / 100) % 5 {
        0 => Fault::CrashEarly,
        1 => Fault::Stall,
        2 => Fault::WriteTruncated,
        3 => Fault::WriteCorrupt,
        _ => Fault::ExitNonzeroAfterWrite,
    }
}

/// Reads the chaos seed from [`CHAOS_ENV`], if armed. A present but
/// non-numeric value is treated as seed 0 rather than ignored — a typo
/// should fail loudly in chaos tests, not silently run clean.
pub fn seed_from_env() -> Option<u64> {
    std::env::var(CHAOS_ENV).ok().map(|v| v.trim().parse().unwrap_or(0))
}

/// Mangles a sealed output according to `fault`, returning what the
/// worker should actually write (and whether it should then exit
/// nonzero). [`Fault::CrashEarly`] and [`Fault::Stall`] act *before*
/// output exists and are handled by the worker directly, not here.
pub fn mangle_output(fault: Fault, sealed: &str) -> (String, bool) {
    match fault {
        Fault::WriteTruncated => {
            // Keep roughly half the bytes — enough to look plausible,
            // short enough that the trailer (or its absence) trips.
            let cut = sealed.len() / 2;
            (sealed[..cut].to_owned(), false)
        }
        Fault::WriteCorrupt => {
            // Flip one digit somewhere in the body, keeping length (so
            // only the digest can catch it). Fall back to truncation if
            // no digit exists to flip.
            let body_end = sealed.rfind("{\"trailer\"").unwrap_or(sealed.len());
            match sealed[..body_end].bytes().position(|b| b.is_ascii_digit()) {
                Some(at) => {
                    let mut bytes = sealed.as_bytes().to_vec();
                    bytes[at] = if bytes[at] == b'9' { b'0' } else { bytes[at] + 1 };
                    (String::from_utf8(bytes).expect("digit flip keeps utf-8"), false)
                }
                None => (sealed[..sealed.len() / 2].to_owned(), false),
            }
        }
        Fault::ExitNonzeroAfterWrite => (sealed.to_owned(), true),
        Fault::None | Fault::CrashEarly | Fault::Stall => (sealed.to_owned(), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_cells() -> Vec<CellId> {
        let mut v = Vec::new();
        for engine in ["stream", "ev8", "ftb"] {
            for width in [4usize, 8, 16] {
                for lo in (0..12u64).step_by(3) {
                    v.push(CellId::new(engine, width, lo, lo + 3));
                }
            }
        }
        v
    }

    #[test]
    fn faults_are_deterministic_and_attempt_dependent() {
        for cell in grid_cells() {
            for attempt in 0..4 {
                assert_eq!(
                    fault_for(42, &cell, attempt),
                    fault_for(42, &cell, attempt),
                    "fault must be a pure function of (seed, cell, attempt)"
                );
            }
        }
    }

    #[test]
    fn no_faults_at_attempt_two_or_later() {
        for seed in [0u64, 1, 42, 0xdead_beef] {
            for cell in grid_cells() {
                for attempt in 2..6 {
                    assert_eq!(fault_for(seed, &cell, attempt), Fault::None);
                }
            }
        }
    }

    #[test]
    fn seeds_actually_inject_and_vary() {
        // With 36 cells at ~70% attempt-0 probability, a seed that
        // injects nothing (or everything) would be a generator bug.
        let cells = grid_cells();
        for seed in [7u64, 42, 1234] {
            let faulty =
                cells.iter().filter(|c| fault_for(seed, c, 0) != Fault::None).count();
            assert!(faulty > cells.len() / 4, "seed {seed} injected only {faulty}");
            assert!(faulty < cells.len(), "seed {seed} left no clean cell");
        }
        // Different seeds produce different schedules.
        let a: Vec<_> = cells.iter().map(|c| fault_for(7, c, 0)).collect();
        let b: Vec<_> = cells.iter().map(|c| fault_for(1234, c, 0)).collect();
        assert_ne!(a, b, "distinct seeds must differ somewhere");
    }

    #[test]
    fn mangle_truncation_and_corruption_are_caught_by_the_trailer() {
        let sealed = crate::trailer::seal("{\"w\": 0, \"cycles\": 123}\n{\"w\": 1}\n");
        let (trunc, bad_exit) = mangle_output(Fault::WriteTruncated, &sealed);
        assert!(!bad_exit);
        assert!(crate::trailer::unseal(&trunc).is_err(), "truncation must not verify");

        let (corrupt, bad_exit) = mangle_output(Fault::WriteCorrupt, &sealed);
        assert!(!bad_exit);
        assert_eq!(corrupt.len(), sealed.len(), "corruption keeps length");
        assert!(crate::trailer::unseal(&corrupt).is_err(), "corruption must not verify");

        let (valid, bad_exit) = mangle_output(Fault::ExitNonzeroAfterWrite, &sealed);
        assert!(bad_exit, "file is valid but the exit status must be nonzero");
        assert!(crate::trailer::unseal(&valid).is_ok());
    }
}
