//! The fleet's typed error hierarchy.

use std::fmt;
use std::path::PathBuf;

/// Anything that can go wrong in the fleet layer itself — as opposed to
/// a *cell failure*, which is an expected event the supervisor retries
/// and accounts for in its report. A `FleetError` means the run cannot
/// proceed at all (the ledger is unwritable, a worker cannot even be
/// spawned, an API was misused).
#[derive(Debug)]
pub enum FleetError {
    /// Filesystem failure on a fleet-owned path (ledger, cell outputs).
    Io {
        /// What the fleet was doing.
        what: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying error, stringified.
        err: String,
    },
    /// A worker process could not be spawned at all.
    Spawn {
        /// The cell the worker was meant to run.
        cell: String,
        /// The underlying error, stringified.
        err: String,
    },
    /// A ledger line could not be parsed during replay.
    LedgerParse {
        /// The ledger file.
        path: PathBuf,
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        err: String,
    },
    /// An illegal state-machine transition was requested (e.g. leasing
    /// a `Done` cell, completing a cell that holds no lease, a second
    /// live lease on the same cell).
    BadTransition {
        /// The cell involved.
        cell: String,
        /// The transition that was refused and why.
        err: String,
    },
    /// A cell referenced by the caller or the ledger is unknown.
    UnknownCell(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Io { what, path, err } => {
                write!(f, "{what} {}: {err}", path.display())
            }
            FleetError::Spawn { cell, err } => write!(f, "spawn worker for cell {cell}: {err}"),
            FleetError::LedgerParse { path, line, err } => {
                write!(f, "ledger {} line {line}: {err}", path.display())
            }
            FleetError::BadTransition { cell, err } => write!(f, "cell {cell}: {err}"),
            FleetError::UnknownCell(cell) => write!(f, "unknown cell {cell}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl FleetError {
    /// Convenience constructor for [`FleetError::Io`].
    pub fn io(what: &'static str, path: impl Into<PathBuf>, err: impl fmt::Display) -> Self {
        FleetError::Io { what, path: path.into(), err: err.to_string() }
    }
}
