//! Worker-side liveness: a background thread that touches a heartbeat
//! file, whose mtime the supervisor health-checks.
//!
//! Exit status only reports death; it cannot report a *hang*. The
//! heartbeat closes that gap with the cheapest possible channel — file
//! mtimes on a path the supervisor already owns — so a stalled worker
//! (deadlock, runaway loop, chaos [`Stall`](crate::chaos::Fault::Stall))
//! goes quiet, its mtime ages past the staleness bound, and the
//! supervisor kills and re-leases the cell *before* the full cell
//! deadline would fire.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// RAII heartbeat: spawns a thread on construction that rewrites the
/// heartbeat file every `interval`, and stops it on drop. Dropping the
/// guard (including via panic unwind) ends the heartbeat, so a worker
/// that stops making progress stops looking alive.
pub struct HeartbeatGuard {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl HeartbeatGuard {
    /// Starts heartbeating `path` every `interval`. The first beat is
    /// written synchronously so the supervisor sees a fresh mtime from
    /// the moment the guard exists; later beats best-effort (a missed
    /// write only ages the mtime, which is exactly the signal).
    pub fn start(path: impl Into<PathBuf>, interval: Duration) -> Self {
        let path = path.into();
        beat(&path);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                beat(&path);
            }
        });
        HeartbeatGuard { stop, thread: Some(thread) }
    }
}

fn beat(path: &Path) {
    let _ = std::fs::write(path, b"beat\n");
}

impl Drop for HeartbeatGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_writes_and_stops() {
        let dir = std::env::temp_dir().join(format!("sfetch-hb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mk tmp");
        let hb = dir.join("worker.hb");
        {
            let _guard = HeartbeatGuard::start(&hb, Duration::from_millis(10));
            assert!(hb.exists(), "first beat is synchronous");
            std::thread::sleep(Duration::from_millis(35));
        }
        // After drop, the file stops being refreshed.
        let mtime = std::fs::metadata(&hb).and_then(|m| m.modified()).expect("mtime");
        std::thread::sleep(Duration::from_millis(30));
        let mtime2 = std::fs::metadata(&hb).and_then(|m| m.modified()).expect("mtime");
        assert_eq!(mtime, mtime2, "no beats after the guard is dropped");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
