//! # sfetch-fleet
//!
//! The **fault-tolerant execution layer** between an experiment grid
//! and the operating system.
//!
//! PR 5's shard runner fans the sampled windows × engines × widths grid
//! across OS processes through the checkpoint store, but its
//! orchestration was brittle: one lost worker — a crash, a hang, a
//! truncated output file — killed a multi-hour paper-scale run. The
//! fix is the same move the paper makes for instruction fetch (a
//! squashed stream is *re-fetchable* because streams derive only from
//! the program) and MANA makes for prefetch records (a mispredicted
//! record is *re-derivable*): make every unit of work **idempotent and
//! re-offerable**, then survive any individual failure by simply
//! re-running the cell.
//!
//! The pieces:
//!
//! * [`CellId`] — one idempotent work cell: an *(engine, width,
//!   window-range)* slice of the grid. Cells derive only from the
//!   workload and the checkpoint store, so running a cell twice
//!   produces byte-identical output.
//! * [`Ledger`] — the persistent cell state machine, one line-JSON
//!   event per transition: `Pending → Leased(worker, deadline) →
//!   Done(digest) | Failed(attempts)`. Leases expire on deadline, so a
//!   crashed or hung worker's cells are re-offered; `Done` cells are
//!   skipped on restart (their verified output is reloaded from disk),
//!   so a `SIGKILL`ed parent resumes mid-grid for free.
//! * [`Supervisor`](supervisor::run_fleet) — the worker pool: spawns up
//!   to `procs` workers, health-checks them through shard-file
//!   heartbeat mtimes, enforces per-cell timeouts derived from observed
//!   cell durations (p95 × k with a floor), kills and re-leases
//!   stragglers, retries failed cells with capped exponential backoff +
//!   deterministic jitter, and degrades gracefully: after the retry
//!   budget, a cell is marked `Failed` and the run completes over the
//!   remaining cells with an explicit incomplete count instead of
//!   panicking.
//! * [`trailer`] — the end-of-file checksum trailer every worker output
//!   carries, so a truncated or corrupt shard file is *detected and the
//!   cell re-run* rather than silently merged short.
//! * [`chaos`] — the deterministic fault-injection harness
//!   (`--chaos <seed>` / [`chaos::CHAOS_ENV`]): workers randomly crash
//!   mid-cell, stall past their deadline, write truncated or corrupt
//!   shard files, or exit nonzero. Faults are a pure function of
//!   *(seed, cell, attempt)* and never fire past attempt 1, so every
//!   chaos run provably converges — and is asserted (in tests and a CI
//!   leg) to merge **bit-identically** to a fault-free run.
//!
//! The crate is deliberately simulator-agnostic (its only dependency is
//! the std-only `sfetch-obs` observability layer, through which the
//! supervisor writes a structured `events.jsonl` decision log next to
//! the ledger): workers are launched through the
//! [`supervisor::Launcher`] trait, and output validation is a
//! caller-supplied closure. `sfetch-bench` supplies the grid semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod chaos;
pub mod error;
pub mod heartbeat;
pub mod ledger;
pub mod supervisor;
pub mod trailer;

pub use cell::CellId;
pub use chaos::{Fault, CHAOS_ENV};
pub use error::FleetError;
pub use heartbeat::HeartbeatGuard;
pub use ledger::{CellState, Ledger, ResumeSummary, LEDGER_SCHEMA};
pub use supervisor::{
    run_fleet, run_fleet_notify, CellDone, FleetConfig, FleetReport, Launcher, PollResult,
    ProcessGroupLauncher, ProcessLauncher, WorkerHandle,
};
pub use trailer::{fnv64, seal, unseal, TrailerError};

/// Milliseconds since the Unix epoch — the wall-clock the ledger
/// persists (leases must stay meaningful across process restarts, so
/// a monotonic in-process clock is not enough).
pub fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}
