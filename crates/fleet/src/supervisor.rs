//! The supervisor loop: a self-healing worker pool over the ledger.
//!
//! Where PR 5's `spawn_shards` spawned N children and blocked on each
//! in order — so one crashed, hung, or lying worker wedged or killed
//! the whole run — the supervisor treats workers as cattle:
//!
//! * keeps up to `procs` workers alive, leasing each the next claimable
//!   cell from the [`Ledger`];
//! * health-checks workers two ways: a hard per-cell deadline (adapted
//!   from observed cell durations: p95 × `timeout_mult`, floored) and a
//!   soft heartbeat-staleness bound (a hung worker goes quiet long
//!   before its deadline);
//! * on any failure — nonzero exit, missing/truncated/corrupt output,
//!   timeout, stale heartbeat — kills the worker if needed and charges
//!   the cell a failure, re-offering it after capped exponential
//!   backoff with deterministic jitter;
//! * **trusts exit status over file contents**: a worker that exits
//!   nonzero fails its cell even if it left a parseable output behind
//!   (the process may know something the file doesn't);
//! * degrades gracefully: once a cell exhausts its retry budget it is
//!   `Failed` and the run completes over the remaining cells, reporting
//!   an explicit incomplete list instead of panicking.
//!
//! Workers are abstract ([`Launcher`] / [`WorkerHandle`]) so tests can
//! drive the loop with scripted in-process workers; production uses
//! [`ProcessLauncher`] over `std::process::Command`.

use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::Duration;

use sfetch_obs::{JsonlFile, Row};

use crate::cell::CellId;
use crate::error::FleetError;
use crate::ledger::{CellState, Ledger, ResumeSummary};
use crate::now_ms;
use crate::trailer::fnv64;

/// Tuning for [`run_fleet`]. [`FleetConfig::new`]`(procs)` gives the
/// production defaults; tests shrink the time constants.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Maximum concurrent workers.
    pub procs: usize,
    /// Failures a cell may accrue beyond its first attempt before it is
    /// marked `Failed` (so a cell is attempted at most
    /// `max_retries + 1` times).
    pub max_retries: u32,
    /// Lower bound on any per-cell timeout, ms.
    pub timeout_floor_ms: u64,
    /// Per-cell timeout before enough durations are observed, ms.
    pub timeout_initial_ms: u64,
    /// Multiplier over the observed p95 cell duration.
    pub timeout_mult: f64,
    /// Base of the exponential retry backoff, ms.
    pub backoff_base_ms: u64,
    /// Cap on the exponential retry backoff, ms.
    pub backoff_cap_ms: u64,
    /// A worker whose heartbeat mtime is older than this is presumed
    /// hung and killed, ms.
    pub heartbeat_stale_ms: u64,
    /// Supervisor poll interval, ms.
    pub poll_ms: u64,
    /// Request tag stamped (as `"req"`) on every event this run writes
    /// to `events.jsonl`, so a resident daemon's interleaved requests
    /// can be teased apart from one shared log. Empty = untagged
    /// (standalone runs).
    pub req: String,
    /// Size cap on `events.jsonl`, bytes. When an append would push the
    /// log past the cap it is rotated to `events.jsonl.1` (replacing
    /// any previous rotation) and a fresh log started — a resident
    /// daemon's event history stays bounded at ~2× the cap. `0`
    /// disables rotation.
    pub events_cap_bytes: u64,
    /// Maximum **compatible** cells leased to one worker as a group
    /// (`1` = classic per-cell leasing). Cells are compatible when they
    /// cover the same window range, so one worker can drive them all
    /// from a single shared sweep (`--batch`). Each cell of a group
    /// still completes or fails individually on the ledger; a worker
    /// crash/timeout charges every cell it was leased.
    pub group: usize,
}

impl FleetConfig {
    /// Production defaults for a pool of `procs` workers.
    pub fn new(procs: usize) -> Self {
        FleetConfig {
            procs: procs.max(1),
            max_retries: 3,
            timeout_floor_ms: 20_000,
            timeout_initial_ms: 600_000,
            timeout_mult: 4.0,
            backoff_base_ms: 200,
            backoff_cap_ms: 10_000,
            heartbeat_stale_ms: 15_000,
            poll_ms: 25,
            req: String::new(),
            events_cap_bytes: 8 << 20,
            group: 1,
        }
    }
}

/// What [`WorkerHandle::poll`] observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PollResult {
    /// Still running.
    Running,
    /// Exited.
    Exited {
        /// Whether the exit status was zero.
        success: bool,
        /// Human-readable exit detail (code or signal).
        detail: String,
    },
}

/// A live worker the supervisor can poll and kill.
pub trait WorkerHandle {
    /// Non-blocking status check.
    fn poll(&mut self) -> PollResult;
    /// Terminates the worker (idempotent; reaps what it can).
    fn kill(&mut self);
    /// Stable worker identity for the ledger (e.g. the OS pid).
    fn worker_id(&self) -> u64;
}

/// Launches a worker for one (cell, attempt). The worker must write its
/// sealed output to `out` (atomically — temp + rename) and touch
/// `heartbeat` while it makes progress.
pub trait Launcher {
    /// The handle type for launched workers.
    type Handle: WorkerHandle;
    /// Starts a worker.
    ///
    /// # Errors
    ///
    /// [`FleetError::Spawn`] when the worker cannot be started at all
    /// (this aborts the run — distinct from the worker *failing*, which
    /// is an expected, retried event).
    fn launch(
        &self,
        cell: &CellId,
        attempt: u32,
        out: &Path,
        heartbeat: &Path,
    ) -> Result<Self::Handle, FleetError>;

    /// Starts **one** worker covering a whole compatible cell group
    /// (same window range), writing one sealed output file per cell.
    /// The default delegates singleton groups to [`Launcher::launch`]
    /// and rejects larger ones — a launcher must opt in to group
    /// execution before [`FleetConfig::group`] may exceed 1.
    ///
    /// # Errors
    ///
    /// [`FleetError::Spawn`] when the worker cannot be started (or the
    /// launcher does not support groups).
    fn launch_group(
        &self,
        cells: &[CellId],
        attempts: &[u32],
        outs: &[PathBuf],
        heartbeat: &Path,
    ) -> Result<Self::Handle, FleetError> {
        if let ([cell], [attempt], [out]) = (cells, attempts, outs) {
            self.launch(cell, *attempt, out, heartbeat)
        } else {
            Err(FleetError::Spawn {
                cell: cells.first().map(CellId::to_string).unwrap_or_default(),
                err: format!(
                    "launcher cannot run a {}-cell group (needs FleetConfig::group = 1)",
                    cells.len()
                ),
            })
        }
    }
}

/// [`Launcher`] over real OS processes: a closure builds the
/// `Command` for each (cell, attempt, out, heartbeat).
pub struct ProcessLauncher<F: Fn(&CellId, u32, &Path, &Path) -> Command> {
    build: F,
}

impl<F: Fn(&CellId, u32, &Path, &Path) -> Command> ProcessLauncher<F> {
    /// Wraps the command builder.
    pub fn new(build: F) -> Self {
        ProcessLauncher { build }
    }
}

/// Handle to a spawned OS worker process.
pub struct ProcessHandle {
    child: Child,
}

impl WorkerHandle for ProcessHandle {
    fn poll(&mut self) -> PollResult {
        match self.child.try_wait() {
            Ok(None) => PollResult::Running,
            Ok(Some(status)) => {
                PollResult::Exited { success: status.success(), detail: status.to_string() }
            }
            Err(e) => PollResult::Exited { success: false, detail: format!("wait failed: {e}") },
        }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    fn worker_id(&self) -> u64 {
        u64::from(self.child.id())
    }
}

impl<F: Fn(&CellId, u32, &Path, &Path) -> Command> Launcher for ProcessLauncher<F> {
    type Handle = ProcessHandle;

    fn launch(
        &self,
        cell: &CellId,
        attempt: u32,
        out: &Path,
        heartbeat: &Path,
    ) -> Result<ProcessHandle, FleetError> {
        let mut cmd = (self.build)(cell, attempt, out, heartbeat);
        let child = cmd
            .spawn()
            .map_err(|e| FleetError::Spawn { cell: cell.to_string(), err: e.to_string() })?;
        Ok(ProcessHandle { child })
    }
}

/// [`Launcher`] over real OS processes with **group** support: a
/// closure builds the `Command` for each (cell group, attempts, out
/// files, heartbeat). Singleton groups go through the same closure, so
/// the per-cell and grouped paths can never drift.
pub struct ProcessGroupLauncher<F: Fn(&[CellId], &[u32], &[PathBuf], &Path) -> Command> {
    build: F,
}

impl<F: Fn(&[CellId], &[u32], &[PathBuf], &Path) -> Command> ProcessGroupLauncher<F> {
    /// Wraps the group command builder.
    pub fn new(build: F) -> Self {
        ProcessGroupLauncher { build }
    }
}

impl<F: Fn(&[CellId], &[u32], &[PathBuf], &Path) -> Command> Launcher for ProcessGroupLauncher<F> {
    type Handle = ProcessHandle;

    fn launch(
        &self,
        cell: &CellId,
        attempt: u32,
        out: &Path,
        heartbeat: &Path,
    ) -> Result<ProcessHandle, FleetError> {
        self.launch_group(
            std::slice::from_ref(cell),
            &[attempt],
            std::slice::from_ref(&out.to_path_buf()),
            heartbeat,
        )
    }

    fn launch_group(
        &self,
        cells: &[CellId],
        attempts: &[u32],
        outs: &[PathBuf],
        heartbeat: &Path,
    ) -> Result<ProcessHandle, FleetError> {
        let mut cmd = (self.build)(cells, attempts, outs, heartbeat);
        let child = cmd.spawn().map_err(|e| FleetError::Spawn {
            cell: cells.first().map(CellId::to_string).unwrap_or_default(),
            err: e.to_string(),
        })?;
        Ok(ProcessHandle { child })
    }
}

/// One completed cell in a [`FleetReport`].
#[derive(Debug, Clone)]
pub struct CellDone {
    /// The cell.
    pub cell: CellId,
    /// Its verified output body (trailer already stripped by the
    /// caller's validator contract — the text is exactly what was
    /// validated).
    pub text: String,
    /// Failures charged before the successful attempt (0 = first try).
    pub attempts: u32,
    /// Whether the cell was resumed from a previous run's ledger rather
    /// than computed in this one.
    pub resumed: bool,
    /// Duration of the successful attempt, ms (0 for resumed cells).
    pub dur_ms: u64,
}

/// What [`run_fleet`] achieved.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Completed cells, in deterministic (cell-order) sequence.
    pub done: Vec<CellDone>,
    /// Cells that exhausted their retry budget: `(cell, attempts
    /// charged, last error)`. Non-empty means the run **degraded**:
    /// merge what completed, widen the confidence intervals, and say so.
    pub incomplete: Vec<(CellId, u32, String)>,
    /// Workers spawned this run.
    pub spawned: u64,
    /// Failures charged this run (each implies a retry or a permanent
    /// failure).
    pub retries: u64,
    /// Workers killed (deadline or stale heartbeat).
    pub kills: u64,
    /// `Done` cells resumed from a previous run without recomputation.
    pub resumed_done: u64,
    /// Previously-`Done` cells whose recorded output no longer
    /// verified and had to be recomputed.
    pub invalidated: u64,
}

impl FleetReport {
    /// The one-line machine-greppable summary (CI asserts on
    /// `recomputed=0` after a resume).
    pub fn summary_line(&self) -> String {
        let recomputed = self.done.iter().filter(|d| !d.resumed).count();
        format!(
            "fleet-summary: done={} incomplete={} resumed_done={} recomputed={} retries={} \
             kills={} spawned={}",
            self.done.len(),
            self.incomplete.len(),
            self.resumed_done,
            recomputed,
            self.retries,
            self.kills,
            self.spawned,
        )
    }
}

/// Per-cell timeout from observed durations: `p95 × mult` once at least
/// three cells have completed, floored; the generous initial guess
/// before that.
fn cell_timeout_ms(cfg: &FleetConfig, durations: &[u64]) -> u64 {
    if durations.len() < 3 {
        return cfg.timeout_initial_ms.max(cfg.timeout_floor_ms);
    }
    let mut sorted = durations.to_vec();
    sorted.sort_unstable();
    let idx = ((sorted.len() as f64 * 0.95).ceil() as usize).clamp(1, sorted.len()) - 1;
    let p95 = sorted[idx];
    ((p95 as f64 * cfg.timeout_mult) as u64).max(cfg.timeout_floor_ms)
}

/// Capped exponential backoff with deterministic jitter: the jitter is
/// hashed from (cell, attempt), so reruns reproduce their schedule and
/// simultaneous failers do not re-arrive in lockstep.
fn backoff_ms(cfg: &FleetConfig, cell: &CellId, attempts: u32) -> u64 {
    let exp = cfg
        .backoff_base_ms
        .saturating_mul(1u64 << (attempts.saturating_sub(1)).min(20))
        .min(cfg.backoff_cap_ms);
    let jitter_span = cfg.backoff_base_ms / 2 + 1;
    let jitter = fnv64(format!("{cell}\u{1f}{attempts}").as_bytes()) % jitter_span;
    exp + jitter
}

fn mtime_ms(path: &Path) -> Option<u64> {
    let modified = std::fs::metadata(path).ok()?.modified().ok()?;
    modified
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .ok()
        .map(|d| d.as_millis() as u64)
}

/// The supervisor's structured decision log: `events.jsonl` next to the
/// ledger, one line-JSON event per lease/completion/kill/retry/degrade
/// decision plus a run-start and run-summary record. Opened in append
/// mode so a resumed run extends the same history; every event carries
/// the run's request tag ([`FleetConfig::req`], when set) so a resident
/// daemon's interleaved requests stay attributable, and the file
/// rotates to `events.jsonl.1` at [`FleetConfig::events_cap_bytes`] so
/// a long-lived daemon's log stays bounded. Best-effort by design: an
/// unwritable log never fails the run (the ledger, not the event log,
/// is the source of truth).
struct EventLog {
    file: Option<JsonlFile>,
    path: PathBuf,
    req: String,
    cap_bytes: u64,
    written: u64,
}

impl EventLog {
    fn open(dir: &Path, req: &str, cap_bytes: u64) -> Self {
        let path = dir.join("events.jsonl");
        let written = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        EventLog {
            file: JsonlFile::append(&path).ok(),
            path,
            req: req.to_owned(),
            cap_bytes,
            written,
        }
    }

    /// Starts an event row stamped with the wall clock and event kind.
    fn at(kind: &str) -> Row {
        Row::new().u("t_ms", now_ms()).s("event", kind)
    }

    fn emit(&mut self, mut row: Row) {
        if !self.req.is_empty() {
            row = row.s("req", &self.req);
        }
        // Rotate before the line that would breach the cap: the closed
        // log replaces any previous `.1` so total history is bounded.
        if self.cap_bytes > 0 && self.written >= self.cap_bytes {
            self.file = None; // flush + close before the rename
            let rotated = self.path.with_extension("jsonl.1");
            if std::fs::rename(&self.path, &rotated).is_ok() {
                self.file = JsonlFile::create(&self.path).ok();
                self.written = 0;
            } else {
                self.file = JsonlFile::append(&self.path).ok();
            }
        }
        if let Some(f) = self.file.as_mut() {
            let line = row.finish();
            if f.write_line(&line).is_ok() {
                self.written += line.len() as u64 + 1; // + the newline
            }
        }
    }
}

struct Active<H> {
    /// The leased group: one cell in classic mode, up to
    /// [`FleetConfig::group`] compatible cells under group leasing.
    cells: Vec<CellId>,
    /// Per-cell sealed output paths, parallel to `cells`.
    outs: Vec<PathBuf>,
    /// Per-cell attempt indices, parallel to `cells`.
    attempts: Vec<u32>,
    handle: H,
    heartbeat: PathBuf,
    started_ms: u64,
    deadline_ms: u64,
}

/// The next compatible claimable group at `now`: the first claimable
/// cell plus up to `max - 1` further claimable cells covering the same
/// window range (the compatibility a shared batched sweep requires).
/// Deterministic (ledger cell order).
fn claim_group(ledger: &Ledger, now: u64, max: usize) -> Vec<CellId> {
    let Some(first) = ledger.next_claimable(now) else { return Vec::new() };
    let mut group = vec![first.clone()];
    for c in ledger.cells() {
        if group.len() >= max.max(1) {
            break;
        }
        if *c == first || c.lo != first.lo || c.hi != first.hi {
            continue;
        }
        let claimable = match ledger.state(c) {
            Ok(CellState::Pending { not_before_ms, .. }) => *not_before_ms <= now,
            Ok(CellState::Leased { deadline_ms, .. }) => *deadline_ms <= now,
            _ => false,
        };
        if claimable {
            group.push(c.clone());
        }
    }
    group
}

/// Runs the fleet to quiescence: every cell `Done` or `Failed`.
///
/// `validate` receives a candidate output text and returns its digest
/// when (and only when) the text is complete and well-formed — the same
/// closure the [`Ledger`] used to re-verify resumed cells, so "done"
/// means the same thing on every path. `resume` is the summary that
/// `Ledger::open` returned, folded into the report. `log` receives
/// human-readable progress lines (callers route it to stderr so stdout
/// stays byte-comparable across chaos and clean runs).
///
/// # Errors
///
/// Infrastructure failures only ([`FleetError`]): an unwritable ledger,
/// an unspawnable worker. Cell failures are *not* errors — they are
/// retried and, past the budget, reported in
/// [`FleetReport::incomplete`].
pub fn run_fleet<L: Launcher>(
    cfg: &FleetConfig,
    ledger: &mut Ledger,
    launcher: &L,
    validate: &dyn Fn(&str) -> Result<u64, String>,
    resume: ResumeSummary,
    log: &mut dyn FnMut(&str),
) -> Result<FleetReport, FleetError> {
    run_fleet_notify(cfg, ledger, launcher, validate, resume, log, &mut |_done| {})
}

/// [`run_fleet`] with an incremental-results hook: `notify` receives
/// each `Done` cell **as it becomes available** — first every cell
/// resumed verified from the ledger (in deterministic cell order,
/// before any worker is spawned), then each in-run completion the
/// moment its output validates. Every `Done` cell in the final
/// [`FleetReport`] was notified exactly once; `Failed` cells are never
/// notified. This is what lets a resident server stream merged points
/// to a client while the grid is still running.
///
/// # Errors
///
/// As [`run_fleet`].
#[allow(clippy::too_many_lines)]
pub fn run_fleet_notify<L: Launcher>(
    cfg: &FleetConfig,
    ledger: &mut Ledger,
    launcher: &L,
    validate: &dyn Fn(&str) -> Result<u64, String>,
    resume: ResumeSummary,
    log: &mut dyn FnMut(&str),
    notify: &mut dyn FnMut(&CellDone),
) -> Result<FleetReport, FleetError> {
    let work_dir = ledger.path().parent().map(Path::to_path_buf).unwrap_or_default();
    let mut events = EventLog::open(&work_dir, &cfg.req, cfg.events_cap_bytes);
    events.emit(
        EventLog::at("run_start")
            .u("cells", ledger.cells().count() as u64)
            .u("procs", cfg.procs as u64)
            .u("max_retries", u64::from(cfg.max_retries))
            .u("resumed_done", resume.resumed_done)
            .u("invalidated", resume.invalidated),
    );
    let mut active: Vec<Active<L::Handle>> = Vec::new();
    let mut durations: Vec<u64> = Vec::new();
    let mut completed_in_run: Vec<CellId> = Vec::new();
    let mut spawned = 0u64;
    let mut retries = 0u64;
    let mut kills = 0u64;

    // Cells resumed verified from the ledger are available *now*:
    // stream them before spawning anything.
    for cell in ledger.cells().cloned().collect::<Vec<_>>() {
        if let CellState::Done { attempts, .. } = ledger.state(&cell)? {
            notify(&CellDone {
                cell: cell.clone(),
                text: ledger.done_text(&cell).unwrap_or_default().to_owned(),
                attempts: *attempts,
                resumed: true,
                dur_ms: 0,
            });
        }
    }

    // One failure path for every way a worker can disappoint us.
    let charge = |ledger: &mut Ledger,
                      cell: &CellId,
                      attempt: u32,
                      why: &str,
                      retries: &mut u64,
                      events: &mut EventLog,
                      log: &mut dyn FnMut(&str)|
     -> Result<(), FleetError> {
        let attempts_after = attempt + 1;
        let now = now_ms();
        let not_before = now + backoff_ms(cfg, cell, attempts_after);
        let permanent = ledger.fail(cell, why, not_before, cfg.max_retries)?;
        *retries += 1;
        if permanent {
            events.emit(
                EventLog::at("degrade")
                    .s("cell", &cell.to_string())
                    .u("attempt", u64::from(attempt))
                    .s("why", why),
            );
            log(&format!("cell {cell}: attempt {attempt} failed permanently: {why}"));
        } else {
            events.emit(
                EventLog::at("retry")
                    .s("cell", &cell.to_string())
                    .u("attempt", u64::from(attempt))
                    .u("backoff_ms", not_before - now)
                    .s("why", why),
            );
            log(&format!(
                "cell {cell}: attempt {attempt} failed ({why}); retry in {}ms",
                not_before - now
            ));
        }
        Ok(())
    };

    loop {
        let now = now_ms();

        // ---- Reap: exits, deadlines, stale heartbeats. -------------
        let mut i = 0;
        while i < active.len() {
            let a = &mut active[i];
            match a.handle.poll() {
                PollResult::Exited { success: true, .. } => {
                    let a = active.swap_remove(i);
                    let finished = now_ms();
                    let dur = finished.saturating_sub(a.started_ms);
                    // One wall-clock observation per worker (the group
                    // shares a sweep; its cells did not take `dur` each).
                    durations.push(dur);
                    // Each cell of the group stands on its own output:
                    // a bad file charges that cell only.
                    for ((cell, out), attempt) in
                        a.cells.iter().zip(&a.outs).zip(a.attempts.iter().copied())
                    {
                        match std::fs::read_to_string(out) {
                            Ok(text) => match validate(&text) {
                                Ok(digest) => {
                                    let done = CellDone {
                                        cell: cell.clone(),
                                        text: text.clone(),
                                        attempts: attempt,
                                        resumed: false,
                                        dur_ms: dur,
                                    };
                                    ledger.complete(cell, digest, out, dur, text)?;
                                    completed_in_run.push(cell.clone());
                                    events.emit(
                                        EventLog::at("done")
                                            .s("cell", &cell.to_string())
                                            .u("attempt", u64::from(attempt))
                                            .u("dur_ms", dur),
                                    );
                                    log(&format!(
                                        "cell {cell} done in {dur}ms (attempt {attempt})"
                                    ));
                                    notify(&done);
                                }
                                Err(why) => charge(
                                    ledger,
                                    cell,
                                    attempt,
                                    &format!("output rejected: {why}"),
                                    &mut retries,
                                    &mut events,
                                    log,
                                )?,
                            },
                            Err(e) => charge(
                                ledger,
                                cell,
                                attempt,
                                &format!("no output file: {e}"),
                                &mut retries,
                                &mut events,
                                log,
                            )?,
                        }
                    }
                    continue;
                }
                PollResult::Exited { success: false, detail } => {
                    // Exit status wins even if a parseable file exists:
                    // the worker itself reported failure. A group worker
                    // failing charges **every** cell it was leased.
                    let a = active.swap_remove(i);
                    for (cell, attempt) in a.cells.iter().zip(a.attempts.iter().copied()) {
                        charge(
                            ledger,
                            cell,
                            attempt,
                            &format!("worker exited abnormally ({detail})"),
                            &mut retries,
                            &mut events,
                            log,
                        )?;
                    }
                    continue;
                }
                PollResult::Running => {
                    let hb_baseline = mtime_ms(&a.heartbeat).unwrap_or(0).max(a.started_ms);
                    let stale = now.saturating_sub(hb_baseline) > cfg.heartbeat_stale_ms;
                    if now >= a.deadline_ms || stale {
                        let why = if stale {
                            format!(
                                "heartbeat stale for {}ms — presumed hung",
                                now.saturating_sub(hb_baseline)
                            )
                        } else {
                            format!(
                                "cell deadline exceeded ({}ms)",
                                a.deadline_ms.saturating_sub(a.started_ms)
                            )
                        };
                        let mut a = active.swap_remove(i);
                        a.handle.kill();
                        kills += 1;
                        for (cell, attempt) in a.cells.iter().zip(a.attempts.iter().copied()) {
                            events.emit(
                                EventLog::at("kill")
                                    .s("cell", &cell.to_string())
                                    .u("attempt", u64::from(attempt))
                                    .b("heartbeat_stale", stale)
                                    .s("why", &why),
                            );
                            charge(ledger, cell, attempt, &why, &mut retries, &mut events, log)?;
                        }
                        continue;
                    }
                }
            }
            i += 1;
        }

        // ---- Launch: fill the pool from the ledger. ----------------
        while active.len() < cfg.procs {
            let group = claim_group(ledger, now, cfg.group);
            if group.is_empty() {
                break;
            }
            let timeout = cell_timeout_ms(cfg, &durations);
            let mut attempt_hints = Vec::with_capacity(group.len());
            let mut outs = Vec::with_capacity(group.len());
            for cell in &group {
                attempt_hints.push(match ledger.state(cell)? {
                    CellState::Pending { attempts, .. } => *attempts,
                    CellState::Leased { attempt, .. } => *attempt,
                    _ => 0,
                });
                outs.push(work_dir.join(format!("{}.cell.json", cell.file_stem())));
            }
            let heartbeat = work_dir.join(format!("{}.hb", group[0].file_stem()));
            // A fresh attempt must not inherit a stale heartbeat mtime
            // or a previous attempt's output.
            let _ = std::fs::remove_file(&heartbeat);
            for out in &outs {
                let _ = std::fs::remove_file(out);
            }
            let handle = launcher.launch_group(&group, &attempt_hints, &outs, &heartbeat)?;
            let deadline = now + timeout;
            let mut attempts = Vec::with_capacity(group.len());
            for cell in &group {
                let attempt = ledger.lease(cell, handle.worker_id(), deadline, now)?;
                events.emit(
                    EventLog::at("lease")
                        .s("cell", &cell.to_string())
                        .u("worker", handle.worker_id())
                        .u("attempt", u64::from(attempt))
                        .u("timeout_ms", timeout)
                        .u("group", group.len() as u64),
                );
                log(&format!(
                    "cell {cell}: leased to worker {} (attempt {attempt}, timeout {timeout}ms\
                     {})",
                    handle.worker_id(),
                    if group.len() > 1 { format!(", group of {}", group.len()) } else { String::new() }
                ));
                attempts.push(attempt);
            }
            spawned += 1;
            active.push(Active {
                cells: group,
                outs,
                attempts,
                handle,
                heartbeat,
                started_ms: now,
                deadline_ms: deadline,
            });
        }

        // ---- Quiesce or sleep. -------------------------------------
        if active.is_empty() {
            if ledger.all_terminal() {
                break;
            }
            // Nothing running and nothing claimable: cells are waiting
            // out their retry backoff. Sleep until the earliest wakes.
            match ledger.next_wakeup_ms(now) {
                Some(at) => {
                    std::thread::sleep(Duration::from_millis((at - now).clamp(1, 1000)))
                }
                None => break, // defensive: nothing can ever progress
            }
        } else {
            std::thread::sleep(Duration::from_millis(cfg.poll_ms));
        }
    }

    // ---- Report. ---------------------------------------------------
    let mut done = Vec::new();
    let mut incomplete = Vec::new();
    for cell in ledger.cells().cloned().collect::<Vec<_>>() {
        match ledger.state(&cell)? {
            CellState::Done { attempts, dur_ms, .. } => {
                let resumed = !completed_in_run.contains(&cell);
                done.push(CellDone {
                    cell: cell.clone(),
                    text: ledger.done_text(&cell).unwrap_or_default().to_owned(),
                    attempts: *attempts,
                    resumed,
                    dur_ms: if resumed { 0 } else { *dur_ms },
                });
            }
            CellState::Failed { attempts, last_error, .. } => {
                incomplete.push((cell.clone(), *attempts, last_error.clone()));
            }
            other => {
                return Err(FleetError::BadTransition {
                    cell: cell.to_string(),
                    err: format!("non-terminal state {other:?} after quiescence"),
                })
            }
        }
    }
    let report = FleetReport {
        done,
        incomplete,
        spawned,
        retries,
        kills,
        resumed_done: resume.resumed_done,
        invalidated: resume.invalidated,
    };
    events.emit(
        EventLog::at("summary")
            .u("done", report.done.len() as u64)
            .u("incomplete", report.incomplete.len() as u64)
            .u("retries", report.retries)
            .u("kills", report.kills)
            .u("spawned", report.spawned)
            .u("resumed_done", report.resumed_done)
            .u("invalidated", report.invalidated),
    );
    log(&report.summary_line());
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::collections::HashMap;

    /// Scripted in-process "worker": decides per (cell, attempt) what to
    /// leave on disk and how to exit, all instantly.
    enum Script {
        /// Write `validate`-passing output and exit 0.
        Ok,
        /// Exit nonzero (optionally leaving a valid file behind).
        FailExit { leave_valid_file: bool },
        /// Never exit, never heartbeat.
        Hang,
    }

    struct TestLauncher {
        scripts: RefCell<HashMap<(String, u32), Script>>,
    }

    struct TestHandle {
        result: Option<PollResult>,
        id: u64,
    }

    impl WorkerHandle for TestHandle {
        fn poll(&mut self) -> PollResult {
            self.result.clone().unwrap_or(PollResult::Running)
        }
        fn kill(&mut self) {
            self.result =
                Some(PollResult::Exited { success: false, detail: "killed".into() });
        }
        fn worker_id(&self) -> u64 {
            self.id
        }
    }

    impl Launcher for TestLauncher {
        type Handle = TestHandle;
        fn launch(
            &self,
            cell: &CellId,
            attempt: u32,
            out: &Path,
            _hb: &Path,
        ) -> Result<TestHandle, FleetError> {
            let mut scripts = self.scripts.borrow_mut();
            let script =
                scripts.remove(&(cell.to_string(), attempt)).unwrap_or(Script::Ok);
            let result = match script {
                Script::Ok => {
                    std::fs::write(out, format!("OUT {cell}\n")).expect("write out");
                    Some(PollResult::Exited { success: true, detail: "ok".into() })
                }
                Script::FailExit { leave_valid_file } => {
                    if leave_valid_file {
                        std::fs::write(out, format!("OUT {cell}\n")).expect("write out");
                    }
                    Some(PollResult::Exited { success: false, detail: "exit 3".into() })
                }
                Script::Hang => None,
            };
            Ok(TestHandle { result, id: 1000 + u64::from(attempt) })
        }
    }

    fn validate_out(text: &str) -> Result<u64, String> {
        if text.starts_with("OUT ") {
            Ok(fnv64(text.as_bytes()))
        } else {
            Err("not a worker output".into())
        }
    }

    fn fast_cfg() -> FleetConfig {
        FleetConfig {
            procs: 2,
            max_retries: 2,
            timeout_floor_ms: 40,
            timeout_initial_ms: 40,
            timeout_mult: 4.0,
            backoff_base_ms: 2,
            backoff_cap_ms: 8,
            heartbeat_stale_ms: 30,
            poll_ms: 1,
            ..FleetConfig::new(2)
        }
    }

    fn setup(tag: &str, cells: &[CellId]) -> (Ledger, ResumeSummary, PathBuf) {
        let dir = std::env::temp_dir().join(format!("sfetch-sup-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mk tmp");
        let (ledger, resume) =
            Ledger::open(dir.join("l.ledger"), 1, cells, now_ms(), &validate_out).expect("open");
        (ledger, resume, dir)
    }

    fn run(
        cfg: &FleetConfig,
        ledger: &mut Ledger,
        resume: ResumeSummary,
        scripts: Vec<((&CellId, u32), Script)>,
    ) -> FleetReport {
        let launcher = TestLauncher {
            scripts: RefCell::new(
                scripts.into_iter().map(|((c, a), s)| ((c.to_string(), a), s)).collect(),
            ),
        };
        run_fleet(cfg, ledger, &launcher, &validate_out, resume, &mut |_msg| {})
            .expect("run_fleet")
    }

    #[test]
    fn clean_run_completes_every_cell() {
        let cells =
            vec![CellId::new("a", 4, 0, 2), CellId::new("a", 8, 0, 2), CellId::new("b", 4, 0, 2)];
        let (mut ledger, resume, dir) = setup("clean", &cells);
        let report = run(&fast_cfg(), &mut ledger, resume, vec![]);
        assert_eq!(report.done.len(), 3);
        assert!(report.incomplete.is_empty());
        assert_eq!(report.retries, 0);
        assert!(report.done.iter().all(|d| !d.resumed && d.attempts == 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_attempt_is_retried_and_succeeds() {
        let cells = vec![CellId::new("a", 4, 0, 2)];
        let (mut ledger, resume, dir) = setup("retry", &cells);
        let report = run(
            &fast_cfg(),
            &mut ledger,
            resume,
            vec![((&cells[0], 0), Script::FailExit { leave_valid_file: true })],
        );
        // Satellite: the valid file left by the failing exit must NOT
        // have been trusted — the cell was retried.
        assert_eq!(report.done.len(), 1);
        assert_eq!(report.done[0].attempts, 1, "succeeded on the retry");
        assert_eq!(report.retries, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_exhaustion_degrades_gracefully() {
        let cells = vec![CellId::new("bad", 4, 0, 2), CellId::new("good", 4, 0, 2)];
        let (mut ledger, resume, dir) = setup("degrade", &cells);
        let report = run(
            &fast_cfg(), // max_retries = 2 → 3 attempts
            &mut ledger,
            resume,
            vec![
                ((&cells[0], 0), Script::FailExit { leave_valid_file: false }),
                ((&cells[0], 1), Script::FailExit { leave_valid_file: false }),
                ((&cells[0], 2), Script::FailExit { leave_valid_file: false }),
            ],
        );
        assert_eq!(report.done.len(), 1, "the healthy cell still completes");
        assert_eq!(report.done[0].cell, cells[1]);
        assert_eq!(report.incomplete.len(), 1);
        assert_eq!(report.incomplete[0].0, cells[0]);
        assert_eq!(report.incomplete[0].1, 3, "attempt count surfaces in the report");
        assert!(report.summary_line().contains("incomplete=1"));
        // The supervisor's decisions land in the structured event log.
        let events = std::fs::read_to_string(dir.join("events.jsonl")).expect("events.jsonl");
        for kind in ["run_start", "lease", "retry", "degrade", "done", "summary"] {
            assert!(events.contains(&format!("\"event\":\"{kind}\"")), "missing {kind}: {events}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hung_worker_is_killed_and_cell_recovered() {
        let cells = vec![CellId::new("slow", 4, 0, 2)];
        let (mut ledger, resume, dir) = setup("hang", &cells);
        let report =
            run(&fast_cfg(), &mut ledger, resume, vec![((&cells[0], 0), Script::Hang)]);
        assert_eq!(report.done.len(), 1, "recovered after the kill");
        assert!(report.kills >= 1);
        assert!(report.done[0].attempts >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn notify_streams_each_done_cell_exactly_once() {
        let cells =
            vec![CellId::new("a", 4, 0, 2), CellId::new("a", 8, 0, 2), CellId::new("bad", 4, 0, 2)];
        let (mut ledger, resume, dir) = setup("notify", &cells);
        let launcher = TestLauncher {
            scripts: RefCell::new(
                (0..3)
                    .map(|a| {
                        ((cells[2].to_string(), a), Script::FailExit { leave_valid_file: false })
                    })
                    .collect(),
            ),
        };
        let mut streamed: Vec<(CellId, bool)> = Vec::new();
        let report = run_fleet_notify(
            &fast_cfg(),
            &mut ledger,
            &launcher,
            &validate_out,
            resume,
            &mut |_msg| {},
            &mut |d| streamed.push((d.cell.clone(), d.resumed)),
        )
        .expect("run");
        assert_eq!(report.done.len(), 2);
        assert_eq!(streamed.len(), 2, "one notification per done cell, none for the failed one");
        assert!(streamed.iter().all(|(_, resumed)| !resumed));

        // A resumed rerun streams the done cells up front, still exactly
        // once each, flagged resumed.
        drop(ledger);
        let (mut ledger, resume) =
            Ledger::open(dir.join("l.ledger"), 1, &cells[..2], now_ms(), &validate_out)
                .expect("reopen");
        assert_eq!(resume.resumed_done, 2);
        let mut streamed: Vec<(CellId, bool)> = Vec::new();
        let launcher = TestLauncher { scripts: RefCell::new(HashMap::new()) };
        let report = run_fleet_notify(
            &fast_cfg(),
            &mut ledger,
            &launcher,
            &validate_out,
            resume,
            &mut |_msg| {},
            &mut |d| streamed.push((d.cell.clone(), d.resumed)),
        )
        .expect("rerun");
        assert_eq!(report.spawned, 0, "nothing recomputed");
        assert_eq!(
            streamed,
            vec![(cells[0].clone(), true), (cells[1].clone(), true)],
            "resumed cells streamed in cell order"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Group-capable scripted launcher: one "worker" writes every out
    /// file of its group; a scripted group index fails instead.
    struct TestGroupLauncher {
        fail_spawn_index: Option<u64>,
        launches: RefCell<Vec<usize>>,
    }

    impl Launcher for TestGroupLauncher {
        type Handle = TestHandle;
        fn launch(
            &self,
            cell: &CellId,
            attempt: u32,
            out: &Path,
            hb: &Path,
        ) -> Result<TestHandle, FleetError> {
            self.launch_group(
                std::slice::from_ref(cell),
                &[attempt],
                std::slice::from_ref(&out.to_path_buf()),
                hb,
            )
        }
        fn launch_group(
            &self,
            cells: &[CellId],
            _attempts: &[u32],
            outs: &[PathBuf],
            _hb: &Path,
        ) -> Result<TestHandle, FleetError> {
            let n = {
                let mut l = self.launches.borrow_mut();
                l.push(cells.len());
                l.len() as u64
            };
            if self.fail_spawn_index == Some(n) {
                // Worker dies without writing anything.
                return Ok(TestHandle {
                    result: Some(PollResult::Exited { success: false, detail: "exit 9".into() }),
                    id: 2000 + n,
                });
            }
            for (cell, out) in cells.iter().zip(outs) {
                std::fs::write(out, format!("OUT {cell}\n")).expect("write out");
            }
            Ok(TestHandle {
                result: Some(PollResult::Exited { success: true, detail: "ok".into() }),
                id: 2000 + n,
            })
        }
    }

    #[test]
    fn group_leasing_runs_compatible_cells_on_one_worker() {
        // Four cells over the same window range: with group = 2 they
        // ride two workers, not four, and all complete individually.
        let cells = vec![
            CellId::new("a", 2, 0, 4),
            CellId::new("a", 4, 0, 4),
            CellId::new("a", 8, 0, 4),
            CellId::new("b", 4, 0, 4),
        ];
        let (mut ledger, resume, dir) = setup("group", &cells);
        let mut cfg = fast_cfg();
        cfg.procs = 1;
        cfg.group = 2;
        let launcher = TestGroupLauncher { fail_spawn_index: None, launches: RefCell::new(vec![]) };
        let report =
            run_fleet(&cfg, &mut ledger, &launcher, &validate_out, resume, &mut |_msg| {})
                .expect("run_fleet");
        assert_eq!(report.done.len(), 4);
        assert!(report.incomplete.is_empty());
        assert_eq!(report.spawned, 2, "two 2-cell groups, not four singleton workers");
        assert_eq!(*launcher.launches.borrow(), vec![2, 2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn incompatible_ranges_never_share_a_group() {
        // Different window ranges cannot share one sweep: each cell
        // must ride its own worker even under group leasing.
        let cells = vec![CellId::new("a", 4, 0, 2), CellId::new("a", 4, 2, 4)];
        let (mut ledger, resume, dir) = setup("group-incompat", &cells);
        let mut cfg = fast_cfg();
        cfg.procs = 1;
        cfg.group = 4;
        let launcher = TestGroupLauncher { fail_spawn_index: None, launches: RefCell::new(vec![]) };
        let report =
            run_fleet(&cfg, &mut ledger, &launcher, &validate_out, resume, &mut |_msg| {})
                .expect("run_fleet");
        assert_eq!(report.done.len(), 2);
        assert_eq!(report.spawned, 2);
        assert_eq!(*launcher.launches.borrow(), vec![1, 1]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_worker_failure_charges_every_leased_cell() {
        let cells = vec![CellId::new("a", 4, 0, 4), CellId::new("a", 8, 0, 4)];
        let (mut ledger, resume, dir) = setup("group-fail", &cells);
        let mut cfg = fast_cfg();
        cfg.procs = 1;
        cfg.group = 2;
        // First (grouped) worker dies; the retries succeed.
        let launcher =
            TestGroupLauncher { fail_spawn_index: Some(1), launches: RefCell::new(vec![]) };
        let report =
            run_fleet(&cfg, &mut ledger, &launcher, &validate_out, resume, &mut |_msg| {})
                .expect("run_fleet");
        assert_eq!(report.done.len(), 2, "both cells recovered on retry");
        assert_eq!(report.retries, 2, "the group failure charged both cells");
        assert!(report.done.iter().all(|d| d.attempts == 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn default_launcher_rejects_groups_beyond_one() {
        let cells = vec![CellId::new("a", 4, 0, 2), CellId::new("a", 8, 0, 2)];
        let (mut ledger, resume, dir) = setup("group-reject", &cells);
        let mut cfg = fast_cfg();
        cfg.group = 2;
        // TestLauncher only implements the per-cell hook; asking it for
        // a 2-cell group is a spawn (infrastructure) error, not a retry.
        let launcher = TestLauncher { scripts: RefCell::new(HashMap::new()) };
        let err = run_fleet(&cfg, &mut ledger, &launcher, &validate_out, resume, &mut |_msg| {})
            .expect_err("group on a non-group launcher must fail loudly");
        assert!(matches!(err, FleetError::Spawn { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn events_carry_the_request_tag() {
        let cells = vec![CellId::new("a", 4, 0, 2)];
        let (mut ledger, resume, dir) = setup("reqtag", &cells);
        let mut cfg = fast_cfg();
        cfg.req = "req-0042".into();
        let report = run(&cfg, &mut ledger, resume, vec![]);
        assert_eq!(report.done.len(), 1);
        let events = std::fs::read_to_string(dir.join("events.jsonl")).expect("events.jsonl");
        for line in events.lines() {
            assert!(
                line.contains("\"req\":\"req-0042\""),
                "event missing request tag: {line}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn event_log_rotates_at_the_size_cap() {
        let dir = std::env::temp_dir()
            .join(format!("sfetch-sup-rotate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mk tmp");
        let mut log = EventLog::open(&dir, "r", 400);
        for i in 0..64 {
            log.emit(EventLog::at("tick").u("i", i));
        }
        drop(log);
        let live = std::fs::metadata(dir.join("events.jsonl")).expect("live log").len();
        let rotated =
            std::fs::metadata(dir.join("events.jsonl.1")).expect("rotated log").len();
        assert!(live > 0 && live < 600, "live log stays near the cap, got {live}");
        assert!(rotated >= 400, "rotation happens at the cap, got {rotated}");
        // Re-opening picks up the live log's size, so the cap keeps
        // binding across daemon restarts.
        let mut log = EventLog::open(&dir, "r", 400);
        assert!(log.written > 0, "existing size recovered on open");
        for i in 0..64 {
            log.emit(EventLog::at("tick").u("i", i));
        }
        drop(log);
        let live2 = std::fs::metadata(dir.join("events.jsonl")).expect("live log").len();
        assert!(live2 < 600, "cap still binds after reopen, got {live2}");
        // Cap 0 disables rotation entirely.
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mk tmp");
        let mut log = EventLog::open(&dir, "", 0);
        for i in 0..64 {
            log.emit(EventLog::at("tick").u("i", i));
        }
        drop(log);
        assert!(!dir.join("events.jsonl.1").exists(), "cap 0 never rotates");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timeout_adapts_to_observed_durations() {
        let cfg = FleetConfig::new(2);
        assert_eq!(cell_timeout_ms(&cfg, &[]), 600_000, "initial guess before data");
        assert_eq!(cell_timeout_ms(&cfg, &[100, 200]), 600_000, "needs ≥ 3 samples");
        // p95 of 20 samples 100..2000 is 1900; × 4 = 7600 < floor 20s.
        let d: Vec<u64> = (1..=20).map(|i| i * 100).collect();
        assert_eq!(cell_timeout_ms(&cfg, &d), cfg.timeout_floor_ms, "floor binds");
        let d: Vec<u64> = (1..=20).map(|i| i * 10_000).collect();
        assert_eq!(cell_timeout_ms(&cfg, &d), 190_000 * 4, "p95 × mult above the floor");
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let cfg = FleetConfig::new(2);
        let cell = CellId::new("a", 4, 0, 2);
        let b1 = backoff_ms(&cfg, &cell, 1);
        let b2 = backoff_ms(&cfg, &cell, 2);
        let b3 = backoff_ms(&cfg, &cell, 3);
        assert!(b1 >= cfg.backoff_base_ms && b1 < 2 * cfg.backoff_base_ms);
        assert!(b2 >= 2 * cfg.backoff_base_ms, "exponential growth");
        assert!(b3 > b2);
        let huge = backoff_ms(&cfg, &cell, 30);
        assert!(huge <= cfg.backoff_cap_ms + cfg.backoff_base_ms / 2 + 1, "cap binds");
        assert_eq!(b1, backoff_ms(&cfg, &cell, 1), "jitter is deterministic");
        let other = CellId::new("b", 8, 0, 2);
        // Not guaranteed distinct, but these two particular cells are.
        assert_ne!(backoff_ms(&cfg, &cell, 1), backoff_ms(&cfg, &other, 1));
    }
}
