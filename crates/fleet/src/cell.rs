//! The identity of one idempotent work cell.

use std::fmt;

/// One cell of the decomposed grid: an *(engine, width, window-range)*
/// slice. The engine is an opaque key string (this crate carries no
/// simulator types); the range is half-open `[lo, hi)` in window
/// indices.
///
/// A cell's output must derive only from the cell identity plus state
/// the whole fleet shares (the workload, the checkpoint store), never
/// from which worker ran it or how many times it was attempted — that
/// idempotence is what makes retry, re-lease, and resume free.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId {
    /// Engine key (e.g. `stream`).
    pub engine: String,
    /// Pipe width.
    pub width: usize,
    /// First window (inclusive).
    pub lo: u64,
    /// Past-the-end window (exclusive).
    pub hi: u64,
}

impl CellId {
    /// Builds a cell id.
    pub fn new(engine: impl Into<String>, width: usize, lo: u64, hi: u64) -> Self {
        CellId { engine: engine.into(), width, lo, hi }
    }

    /// Number of windows the cell covers.
    pub fn windows(&self) -> u64 {
        self.hi.saturating_sub(self.lo)
    }

    /// Parses the canonical `engine:width:lo-hi` form ([`fmt::Display`]
    /// renders it), the spelling used on worker command lines and in
    /// ledger events.
    ///
    /// # Errors
    ///
    /// Reports malformed text (wrong arity, non-numeric fields, an
    /// empty or inverted window range).
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut parts = s.splitn(3, ':');
        let engine = parts.next().filter(|e| !e.is_empty()).ok_or("empty engine key")?;
        let width: usize = parts
            .next()
            .ok_or_else(|| format!("cell {s:?}: missing width"))?
            .parse()
            .map_err(|e| format!("cell {s:?}: bad width: {e}"))?;
        let range = parts.next().ok_or_else(|| format!("cell {s:?}: missing window range"))?;
        let (lo, hi) = range
            .split_once('-')
            .ok_or_else(|| format!("cell {s:?}: window range must be lo-hi"))?;
        let lo: u64 = lo.parse().map_err(|e| format!("cell {s:?}: bad lo: {e}"))?;
        let hi: u64 = hi.parse().map_err(|e| format!("cell {s:?}: bad hi: {e}"))?;
        if lo >= hi {
            return Err(format!("cell {s:?}: empty window range"));
        }
        Ok(CellId { engine: engine.to_owned(), width, lo, hi })
    }

    /// A filesystem-safe stem for the cell's output files
    /// (`engine-width-lo-hi`).
    pub fn file_stem(&self) -> String {
        format!("{}-{}-{}-{}", self.engine, self.width, self.lo, self.hi)
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}-{}", self.engine, self.width, self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_roundtrip() {
        let c = CellId::new("stream", 8, 2, 6);
        assert_eq!(c.to_string(), "stream:8:2-6");
        assert_eq!(CellId::parse("stream:8:2-6").expect("parses"), c);
        assert_eq!(c.windows(), 4);
        assert_eq!(c.file_stem(), "stream-8-2-6");
    }

    #[test]
    fn parse_rejects_malformed_cells() {
        for bad in ["", "stream", "stream:8", "stream:8:6-2", "stream:8:1-1", "stream:x:0-1",
                    ":8:0-1", "stream:8:0..1"] {
            assert!(CellId::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }
}
