//! Set-associative cache model.

use sfetch_isa::wire::{WireReader, WireWriter};
use sfetch_isa::Addr;

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub assoc: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible into
    /// `assoc` ways of power-of-two sets).
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / self.line_bytes;
        let sets = lines as usize / self.assoc;
        assert!(sets.is_power_of_two(), "sets must be a power of two, got {sets}");
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        sets
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses.
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u64,
    lru: u64,
    /// Filled by a prefetch and not yet demand-touched (cleared — and
    /// reported as *useful* — on the first demand hit).
    prefetched: bool,
}

/// Outcome of a [`SetAssocCache::demand_access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemandOutcome {
    /// Line resident; `first_use_of_prefetch` is `true` on the first
    /// demand touch of a prefetched line (the prefetch was *useful*).
    Hit {
        /// First demand touch of a prefetch-filled line.
        first_use_of_prefetch: bool,
    },
    /// Line not resident. Unlike [`SetAssocCache::access`], the miss does
    /// **not** fill — the fill arrives later through
    /// [`SetAssocCache::fill_line`] when the miss pipeline completes it.
    Miss,
}

/// A blocking set-associative cache with true-LRU replacement.
///
/// ```
/// use sfetch_mem::{CacheConfig, SetAssocCache};
/// use sfetch_isa::Addr;
///
/// let mut c = SetAssocCache::new(CacheConfig { size_bytes: 1024, assoc: 2, line_bytes: 64 });
/// assert!(!c.access(Addr::new(0x1000)));  // cold miss (fills)
/// assert!(c.access(Addr::new(0x1004)));   // same line: hit
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    lines: Vec<Line>,
    sets: usize,
    tick: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Builds a cache from its geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        SetAssocCache {
            config,
            lines: vec![Line::default(); sets * config.assoc],
            sets,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    #[inline]
    fn locate(&self, addr: Addr) -> (usize, u64) {
        let line = addr.get() / self.config.line_bytes;
        let set = (line as usize) & (self.sets - 1);
        let tag = line >> self.sets.trailing_zeros();
        (set, tag)
    }

    /// The shared touch-or-fill state transition: hit refreshes LRU, miss
    /// installs the line over the LRU victim. `access` and `warm_access`
    /// are this transition with and without statistics — one
    /// implementation, so the functional-warming path can never drift
    /// from the timed path's residency/LRU decisions.
    fn touch_fill(&mut self, addr: Addr) -> bool {
        self.tick += 1;
        let (set, tag) = self.locate(addr);
        let base = set * self.config.assoc;
        let ways = &mut self.lines[base..base + self.config.assoc];
        if let Some(l) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            l.lru = self.tick;
            return true;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("assoc >= 1");
        victim.valid = true;
        victim.tag = tag;
        victim.lru = self.tick;
        victim.prefetched = false;
        false
    }

    /// Accesses the line containing `addr`; returns `true` on hit. A miss
    /// fills the line (LRU victim).
    pub fn access(&mut self, addr: Addr) -> bool {
        self.stats.accesses += 1;
        let hit = self.touch_fill(addr);
        if !hit {
            self.stats.misses += 1;
        }
        hit
    }

    /// A demand access for the non-blocking miss pipeline: hits update LRU
    /// and report first-use of prefetched lines; misses count but do
    /// **not** fill (the MSHR fill installs the line later via
    /// [`SetAssocCache::fill_line`]).
    pub fn demand_access(&mut self, addr: Addr) -> DemandOutcome {
        self.tick += 1;
        self.stats.accesses += 1;
        let (set, tag) = self.locate(addr);
        let base = set * self.config.assoc;
        let ways = &mut self.lines[base..base + self.config.assoc];
        if let Some(l) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            l.lru = self.tick;
            let first = l.prefetched;
            l.prefetched = false;
            return DemandOutcome::Hit { first_use_of_prefetch: first };
        }
        self.stats.misses += 1;
        DemandOutcome::Miss
    }

    /// Installs the line containing `addr` (LRU victim), marking it as
    /// prefetch-filled when `prefetched`. Counts no access; returns `true`
    /// when the evicted line was a prefetched line that was never
    /// demand-touched (a *polluting* prefetch).
    pub fn fill_line(&mut self, addr: Addr, prefetched: bool) -> bool {
        self.tick += 1;
        let (set, tag) = self.locate(addr);
        let base = set * self.config.assoc;
        let ways = &mut self.lines[base..base + self.config.assoc];
        if let Some(l) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            // Already resident (e.g. a racing wrong-path fill): refresh.
            l.lru = self.tick;
            l.prefetched = l.prefetched && prefetched;
            return false;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("assoc >= 1");
        let polluted = victim.valid && victim.prefetched;
        victim.valid = true;
        victim.tag = tag;
        victim.lru = self.tick;
        victim.prefetched = prefetched;
        polluted
    }

    /// Functional-warming touch: updates residency and LRU exactly like
    /// [`SetAssocCache::access`] (they share one transition) but counts
    /// **no** statistics. This is the warmup-only path used by sampled
    /// simulation's fast-forward mode, where cache *state* must track the
    /// architectural path without polluting the measured window's
    /// hit/miss counters. Returns `true` on hit.
    pub fn warm_access(&mut self, addr: Addr) -> bool {
        self.touch_fill(addr)
    }

    /// Checks residency without filling or touching LRU.
    pub fn probe(&self, addr: Addr) -> bool {
        let (set, tag) = self.locate(addr);
        let base = set * self.config.assoc;
        self.lines[base..base + self.config.assoc]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (e.g. after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Storage estimate in bits: data + tag (~25 bits) + valid + LRU per
    /// line.
    pub fn storage_bits(&self) -> u64 {
        let lines = self.lines.len() as u64;
        self.config.size_bytes * 8 + lines * (25 + 1 + 4)
    }

    /// Serializes residency, LRU state and statistics (warm-state banking).
    pub fn save_wire(&self, w: &mut WireWriter) {
        let Self { config, lines, sets, tick, stats } = self;
        w.u64(config.size_bytes);
        w.u64(config.assoc as u64);
        w.u64(config.line_bytes);
        w.u64(*sets as u64);
        w.u64(*tick);
        w.u64(stats.accesses);
        w.u64(stats.misses);
        w.u64(lines.len() as u64);
        for l in lines {
            let Line { valid, tag, lru, prefetched } = l;
            w.bool(*valid);
            w.u64(*tag);
            w.u64(*lru);
            w.bool(*prefetched);
        }
    }

    /// Deserializes into this cache; the stored geometry must match.
    pub fn load_wire(&mut self, r: &mut WireReader<'_>) -> Result<(), String> {
        let size = r.u64()?;
        let assoc = r.u64()?;
        let line_bytes = r.u64()?;
        let sets = r.u64()?;
        if size != self.config.size_bytes
            || assoc != self.config.assoc as u64
            || line_bytes != self.config.line_bytes
            || sets != self.sets as u64
        {
            return Err(format!(
                "cache geometry {size}B/{assoc}w/{line_bytes}B does not match \
                 {}B/{}w/{}B",
                self.config.size_bytes, self.config.assoc, self.config.line_bytes
            ));
        }
        self.tick = r.u64()?;
        self.stats = CacheStats { accesses: r.u64()?, misses: r.u64()? };
        let n = r.u64()?;
        if n != self.lines.len() as u64 {
            return Err(format!("cache has {n} lines, expected {}", self.lines.len()));
        }
        for l in self.lines.iter_mut() {
            l.valid = r.bool()?;
            l.tag = r.u64()?;
            l.lru = r.u64()?;
            l.prefetched = r.bool()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets x 2 ways x 64B = 512B
        SetAssocCache::new(CacheConfig { size_bytes: 512, assoc: 2, line_bytes: 64 })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(Addr::new(0x0)));
        assert!(c.access(Addr::new(0x3f)), "same line");
        assert!(!c.access(Addr::new(0x40)), "next line misses");
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_within_set() {
        let mut c = small();
        // Set 0 lines: addresses with line index ≡ 0 mod 4 → 0x000, 0x100, 0x200.
        c.access(Addr::new(0x000));
        c.access(Addr::new(0x100));
        assert!(c.access(Addr::new(0x000)), "still resident");
        c.access(Addr::new(0x200)); // evicts 0x100 (LRU)
        assert!(c.probe(Addr::new(0x000)));
        assert!(!c.probe(Addr::new(0x100)));
        assert!(c.probe(Addr::new(0x200)));
    }

    #[test]
    fn probe_does_not_fill() {
        let mut c = small();
        assert!(!c.probe(Addr::new(0x80)));
        assert!(!c.probe(Addr::new(0x80)), "probe must not fill");
        assert!(!c.access(Addr::new(0x80)));
        assert!(c.probe(Addr::new(0x80)));
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = small();
        // 16 distinct lines round-robin >> 8-line capacity with LRU => ~0 hits.
        for _ in 0..4 {
            for i in 0..16u64 {
                c.access(Addr::new(i * 64));
            }
        }
        assert!(c.stats().miss_rate() > 0.9);
    }

    #[test]
    fn working_set_within_capacity_hits() {
        let mut c = small();
        for _ in 0..8 {
            for i in 0..8u64 {
                c.access(Addr::new(i * 64));
            }
        }
        // 8 cold misses out of 64 accesses.
        assert!(c.stats().miss_rate() < 0.2);
    }

    #[test]
    fn table2_geometries_are_valid() {
        for (size, assoc, line) in [
            (64 << 10, 2, 32u64),
            (64 << 10, 2, 64),
            (64 << 10, 2, 128),
            (1 << 20, 4, 64),
        ] {
            let c = SetAssocCache::new(CacheConfig {
                size_bytes: size,
                assoc,
                line_bytes: line,
            });
            assert!(c.storage_bits() > size * 8);
        }
    }

    #[test]
    fn demand_access_counts_but_does_not_fill() {
        let mut c = small();
        assert_eq!(c.demand_access(Addr::new(0x80)), DemandOutcome::Miss);
        assert!(!c.probe(Addr::new(0x80)), "miss must not fill");
        assert_eq!(c.stats().accesses, 1);
        assert_eq!(c.stats().misses, 1);
        assert!(!c.fill_line(Addr::new(0x80), false));
        assert_eq!(
            c.demand_access(Addr::new(0x80)),
            DemandOutcome::Hit { first_use_of_prefetch: false }
        );
    }

    #[test]
    fn prefetched_lines_report_first_use_and_pollution() {
        let mut c = small();
        // Set 0 holds lines 0x000 / 0x100 / 0x200 (4 sets × 64B lines).
        c.fill_line(Addr::new(0x000), true);
        c.fill_line(Addr::new(0x100), true);
        // First demand touch: useful; second touch: bit consumed.
        assert_eq!(
            c.demand_access(Addr::new(0x000)),
            DemandOutcome::Hit { first_use_of_prefetch: true }
        );
        assert_eq!(
            c.demand_access(Addr::new(0x000)),
            DemandOutcome::Hit { first_use_of_prefetch: false }
        );
        // 0x100 is now LRU, prefetched and untouched: evicting it pollutes.
        assert!(c.fill_line(Addr::new(0x200), false), "evicts unused prefetch 0x100");
        // Evicting the demand-touched 0x000 does not.
        assert!(!c.fill_line(Addr::new(0x100), false));
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut c = small();
        c.access(Addr::new(0));
        c.reset_stats();
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!(c.stats().miss_rate(), 0.0);
    }
}
