//! Hardware-budget bookkeeping for the Table 1 cost comparison.
//!
//! Table 1 ranks fetch engines by cost and complexity; these helpers turn
//! structure geometries into storage-bit estimates so the `table1` harness
//! can print a quantitative cost column for *our* configurations.

/// Storage bits of a simple tagged table.
pub fn tagged_table_bits(entries: u64, tag_bits: u64, payload_bits: u64) -> u64 {
    entries * (tag_bits + payload_bits + 1 /* valid */ + 2 /* lru */)
}

/// Storage bits of an untagged counter table.
pub fn counter_table_bits(entries: u64, counter_bits: u64) -> u64 {
    entries * counter_bits
}

/// Bits of a cache including tags and state.
pub fn cache_bits(size_bytes: u64, line_bytes: u64, tag_bits: u64) -> u64 {
    let lines = size_bytes / line_bytes;
    size_bytes * 8 + lines * (tag_bits + 1 + 4)
}

/// Formats a bit count as a human-readable KB string.
pub fn fmt_kb(bits: u64) -> String {
    format!("{:.1}KB", bits as f64 / 8192.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_table_accounts_overhead() {
        // 1024 entries, 20-bit tag, 39-bit payload => 1024 * 62 bits.
        assert_eq!(tagged_table_bits(1024, 20, 39), 1024 * 62);
    }

    #[test]
    fn counter_table_is_exact() {
        assert_eq!(counter_table_bits(32 * 1024, 2), 64 * 1024);
    }

    #[test]
    fn cache_bits_exceed_data_bits() {
        assert!(cache_bits(64 << 10, 64, 25) > (64 << 10) * 8);
    }

    #[test]
    fn kb_formatting() {
        assert_eq!(fmt_kb(8192), "1.0KB");
        assert_eq!(fmt_kb(12288), "1.5KB");
    }
}
