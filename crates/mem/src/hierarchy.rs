//! The three-level memory hierarchy of Table 2, with an optional
//! non-blocking L1i miss pipeline (MSHRs + in-flight fill queue).

use sfetch_isa::wire::{WireReader, WireWriter};
use sfetch_isa::Addr;

use crate::cache::{CacheConfig, CacheStats, DemandOutcome, SetAssocCache};
use crate::mshr::{Mshr, MshrFile};

/// Latencies and geometries of the full hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// L1 access latency in cycles.
    pub l1_latency: u32,
    /// L2 access latency in cycles (added on L1 miss).
    pub l2_latency: u32,
    /// Memory latency in cycles (added on L2 miss).
    pub mem_latency: u32,
}

impl MemoryConfig {
    /// The Table 2 configuration for a given pipeline width: the L1I line is
    /// 4× the width (32/64/128 bytes for 2/4/8-wide).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a power of two.
    pub fn table2(width: usize) -> Self {
        assert!(width.is_power_of_two(), "pipeline width must be a power of two");
        MemoryConfig {
            l1i: CacheConfig {
                size_bytes: 64 << 10,
                assoc: 2,
                line_bytes: (width as u64) * 4 * 4, // 4x width instructions, 4B each
            },
            l1d: CacheConfig { size_bytes: 64 << 10, assoc: 2, line_bytes: 64 },
            l2: CacheConfig { size_bytes: 1 << 20, assoc: 4, line_bytes: 64 },
            l1_latency: 1,
            l2_latency: 15,
            mem_latency: 100,
        }
    }
}

/// Prefetch-effectiveness counters of the L1i miss pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Prefetch probes that started a fill (missed L1i, MSHR allocated).
    pub issued: u64,
    /// Demand hits whose line was brought in by a prefetch (first touch).
    pub useful: u64,
    /// Demand fetches that coalesced onto an in-flight prefetch — the
    /// prefetch was on the right line but issued too late to hide the
    /// whole miss.
    pub late: u64,
    /// Prefetched lines evicted without ever being demand-touched.
    pub polluting: u64,
    /// Probes dropped without a fill (line resident, already in flight,
    /// or no free MSHR).
    pub dropped: u64,
}

/// Outcome of a pipelined instruction demand fetch
/// ([`MemoryHierarchy::inst_demand`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstDemand {
    /// L1i hit: the line's data is usable this cycle.
    Ready,
    /// The line is (now) in flight; usable at `fill_at`.
    Wait {
        /// Completion cycle of the fill.
        fill_at: u64,
        /// Whether memory (vs the L2) serves the fill.
        from_mem: bool,
        /// Whether this call allocated the MSHR (vs coalescing onto an
        /// earlier demand or prefetch fill).
        allocated: bool,
    },
    /// No free MSHR: the demand cannot even start its fill this cycle.
    Blocked,
}

/// Outcome of a prefetch probe ([`MemoryHierarchy::inst_prefetch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstPrefetch {
    /// A fill was started.
    Started,
    /// The line is resident or already in flight — nothing to do, ever.
    Redundant,
    /// No free MSHR this cycle; the line may be worth re-probing later.
    NoMshr,
}

/// The L1i miss pipeline: outstanding fills and prefetch accounting.
#[derive(Debug, Clone)]
struct InstPipeline {
    mshrs: MshrFile,
    drain: Vec<Mshr>,
    stats: PrefetchStats,
}

/// The simulated memory hierarchy: L1I + L1D over a unified L2 over memory.
///
/// Accesses return the total latency in cycles and perform fills along the
/// way — including for wrong-path instruction fetches, reproducing the
/// pollution/prefetch effects the paper's simulator models (§4.1).
///
/// The instruction side has two modes. The default is the paper's
/// blocking model ([`MemoryHierarchy::inst_fetch`]): a miss stalls fetch
/// for its whole latency. [`MemoryHierarchy::enable_inst_pipeline`]
/// switches it to a non-blocking miss pipeline: demand misses allocate
/// MSHRs and complete through an in-flight fill queue
/// ([`MemoryHierarchy::inst_tick`]), so fetch can hit under miss, fills
/// overlap, and prefetch probes ([`MemoryHierarchy::inst_prefetch`]) run
/// ahead of the fetch cursor.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: MemoryConfig,
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2: SetAssocCache,
    pipeline: Option<InstPipeline>,
}

impl MemoryHierarchy {
    /// Builds the hierarchy.
    pub fn new(config: MemoryConfig) -> Self {
        MemoryHierarchy {
            config,
            l1i: SetAssocCache::new(config.l1i),
            l1d: SetAssocCache::new(config.l1d),
            l2: SetAssocCache::new(config.l2),
            pipeline: None,
        }
    }

    /// Switches the instruction side to the non-blocking miss pipeline
    /// with `mshr_entries` outstanding fills. Demand fetch must then go
    /// through [`MemoryHierarchy::inst_demand`] and the owner must call
    /// [`MemoryHierarchy::inst_tick`] once per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `mshr_entries == 0`.
    pub fn enable_inst_pipeline(&mut self, mshr_entries: usize) {
        self.pipeline = Some(InstPipeline {
            mshrs: MshrFile::new(mshr_entries),
            drain: Vec::with_capacity(mshr_entries),
            stats: PrefetchStats::default(),
        });
    }

    /// Whether the non-blocking L1i miss pipeline is active.
    pub fn inst_pipeline_enabled(&self) -> bool {
        self.pipeline.is_some()
    }

    /// Outstanding L1i fills (0 when the pipeline is disabled).
    pub fn inst_fills_in_flight(&self) -> usize {
        self.pipeline.as_ref().map_or(0, |p| p.mshrs.in_flight())
    }

    /// Completes every fill due at `now`, installing the lines into the
    /// L1i in completion order. Call once per cycle, before this cycle's
    /// demand and prefetch traffic. A no-op when the pipeline is disabled.
    pub fn inst_tick(&mut self, now: u64) {
        let Some(p) = self.pipeline.as_mut() else { return };
        let mut drain = std::mem::take(&mut p.drain);
        drain.clear();
        p.mshrs.drain_due(now, &mut drain);
        for m in &drain {
            let pure_prefetch = m.prefetch && !m.demanded;
            let line_addr = Addr::new(m.line * self.config.l1i.line_bytes);
            if self.l1i.fill_line(line_addr, pure_prefetch) {
                p.stats.polluting += 1;
            }
        }
        p.drain = drain;
    }

    /// A pipelined instruction demand fetch for the line containing
    /// `addr`: hits are [`InstDemand::Ready`]; misses allocate an MSHR
    /// (or coalesce onto one in flight) and report their fill cycle.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline is disabled (use
    /// [`MemoryHierarchy::inst_fetch`] for the blocking model).
    pub fn inst_demand(&mut self, now: u64, addr: Addr) -> InstDemand {
        let line_bytes = self.config.l1i.line_bytes;
        let p = self.pipeline.as_mut().expect("inst pipeline disabled");
        let line = addr.line_index(line_bytes);
        if let Some(m) = p.mshrs.lookup_mut(line) {
            if m.prefetch && !m.demanded {
                p.stats.late += 1;
            }
            m.demanded = true;
            return InstDemand::Wait { fill_at: m.fill_at, from_mem: m.from_mem, allocated: false };
        }
        if !p.mshrs.has_free() && !self.l1i.probe(addr) {
            // Would miss but cannot start the fill; retry next cycle
            // without perturbing hit/miss statistics. (MSHR check first:
            // it is cheap and usually passes, skipping the extra tag
            // probe on the hot path.)
            return InstDemand::Blocked;
        }
        match self.l1i.demand_access(addr) {
            DemandOutcome::Hit { first_use_of_prefetch } => {
                if first_use_of_prefetch {
                    p.stats.useful += 1;
                }
                InstDemand::Ready
            }
            DemandOutcome::Miss => {
                let from_mem = !self.l2.access(addr);
                let fill_at = now + fill_latency(&self.config, from_mem);
                p.mshrs.allocate(line, fill_at, from_mem, false);
                InstDemand::Wait { fill_at, from_mem, allocated: true }
            }
        }
    }

    /// Issues a prefetch probe for the line containing `addr`. Probes for
    /// resident or in-flight lines are redundant; probes finding no free
    /// MSHR cannot start (the caller may retry the line later). Both are
    /// counted as dropped. Always [`InstPrefetch::Redundant`] when the
    /// pipeline is disabled.
    pub fn inst_prefetch(&mut self, now: u64, addr: Addr) -> InstPrefetch {
        let line_bytes = self.config.l1i.line_bytes;
        let Some(p) = self.pipeline.as_mut() else { return InstPrefetch::Redundant };
        let line = addr.line_index(line_bytes);
        if p.mshrs.lookup(line).is_some() || self.l1i.probe(addr) {
            p.stats.dropped += 1;
            return InstPrefetch::Redundant;
        }
        if !p.mshrs.has_free() {
            p.stats.dropped += 1;
            return InstPrefetch::NoMshr;
        }
        let from_mem = !self.l2.access(addr);
        let fill_at = now + fill_latency(&self.config, from_mem);
        p.mshrs.allocate(line, fill_at, from_mem, true);
        p.stats.issued += 1;
        InstPrefetch::Started
    }

    /// Prefetch counters (all zero when the pipeline is disabled).
    pub fn prefetch_stats(&self) -> PrefetchStats {
        self.pipeline.as_ref().map_or_else(PrefetchStats::default, |p| p.stats)
    }

    /// The configuration.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Instruction-side line size in bytes.
    pub fn l1i_line_bytes(&self) -> u64 {
        self.config.l1i.line_bytes
    }

    /// Fetches the instruction cache line containing `addr`; returns the
    /// latency in cycles (1 on an L1I hit).
    pub fn inst_fetch(&mut self, addr: Addr) -> u32 {
        let mut lat = self.config.l1_latency;
        if !self.l1i.access(addr) {
            lat += self.config.l2_latency;
            if !self.l2.access(addr) {
                lat += self.config.mem_latency;
            }
        }
        lat
    }

    /// Performs a data access (load or store) at `addr`; returns the latency
    /// in cycles.
    pub fn data_access(&mut self, addr: Addr, _is_store: bool) -> u32 {
        let mut lat = self.config.l1_latency;
        if !self.l1d.access(addr) {
            lat += self.config.l2_latency;
            if !self.l2.access(addr) {
                lat += self.config.mem_latency;
            }
        }
        lat
    }

    /// Whether the instruction line containing `addr` is resident (no fill).
    pub fn inst_probe(&self, addr: Addr) -> bool {
        self.l1i.probe(addr)
    }

    /// Functional-warming touch of the instruction side: fills the L1i
    /// (and the L2 below it on a miss) along the architectural path
    /// without counting statistics, returning latencies, or involving the
    /// MSHR miss pipeline. This is the warmup-only update path sampled
    /// simulation's fast-forward mode drives — cache *state* tracks the
    /// committed path so the detailed window that follows starts warm.
    pub fn warm_inst(&mut self, addr: Addr) {
        if !self.l1i.warm_access(addr) {
            self.l2.warm_access(addr);
        }
    }

    /// Functional-warming touch of the data side (loads and stores alike);
    /// see [`MemoryHierarchy::warm_inst`].
    pub fn warm_data(&mut self, addr: Addr) {
        if !self.l1d.warm_access(addr) {
            self.l2.warm_access(addr);
        }
    }

    /// L1I statistics.
    pub fn l1i_stats(&self) -> CacheStats {
        self.l1i.stats()
    }

    /// L1D statistics.
    pub fn l1d_stats(&self) -> CacheStats {
        self.l1d.stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Clears all statistics (after warmup). In-flight fills are *not*
    /// cancelled — only counters restart, like the caches.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        if let Some(p) = self.pipeline.as_mut() {
            p.stats = PrefetchStats::default();
        }
    }

    /// Serializes the cache arrays of all three levels (warm-state
    /// banking). Functional warming only drives [`MemoryHierarchy::warm_inst`]
    /// / [`MemoryHierarchy::warm_data`], so no miss pipeline exists yet;
    /// saving with an active pipeline would lose its in-flight fills.
    ///
    /// # Panics
    ///
    /// Panics if the non-blocking L1i miss pipeline has been enabled.
    pub fn save_warm_wire(&self, w: &mut WireWriter) {
        assert!(
            self.pipeline.is_none(),
            "warm state capture requires the pre-pipeline hierarchy"
        );
        self.l1i.save_wire(w);
        self.l1d.save_wire(w);
        self.l2.save_wire(w);
    }

    /// Deserializes banked warm state into a freshly built hierarchy (same
    /// configuration, pipeline not yet enabled).
    pub fn load_warm_wire(&mut self, r: &mut WireReader<'_>) -> Result<(), String> {
        if self.pipeline.is_some() {
            return Err("cannot load warm state over an active miss pipeline".into());
        }
        self.l1i.load_wire(r)?;
        self.l1d.load_wire(r)?;
        self.l2.load_wire(r)
    }
}

/// Cycles from a miss starting now until its line is usable, matching the
/// blocking model's delivery cycle: a blocking access at `t` returning
/// latency `lat` delivers at `t + lat - 1`, so an isolated pipelined miss
/// completes on exactly the cycle the blocking model would deliver.
fn fill_latency(config: &MemoryConfig, from_mem: bool) -> u64 {
    let lat = config.l1_latency
        + config.l2_latency
        + if from_mem { config.mem_latency } else { 0 };
    u64::from(lat) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_line_scales_with_width() {
        assert_eq!(MemoryConfig::table2(2).l1i.line_bytes, 32);
        assert_eq!(MemoryConfig::table2(4).l1i.line_bytes, 64);
        assert_eq!(MemoryConfig::table2(8).l1i.line_bytes, 128);
    }

    #[test]
    fn latencies_compose_across_levels() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table2(8));
        let a = Addr::new(0x40_0000);
        // Cold: L1 miss + L2 miss -> 1 + 15 + 100.
        assert_eq!(m.inst_fetch(a), 116);
        // Now resident everywhere: 1.
        assert_eq!(m.inst_fetch(a), 1);
        assert_eq!(m.l1i_stats().misses, 1);
    }

    #[test]
    fn l2_hit_costs_intermediate_latency() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table2(8));
        let a = Addr::new(0x40_0000);
        m.inst_fetch(a); // cold fill of L1I and L2
        // Evict from the 64KB 2-way L1I by touching two conflicting lines;
        // L2 (1MB) keeps it.
        let sets = (64 << 10) / 128 / 2; // 256 sets
        let way_stride = 128 * sets as u64;
        m.inst_fetch(Addr::new(0x40_0000 + way_stride));
        m.inst_fetch(Addr::new(0x40_0000 + 2 * way_stride));
        assert_eq!(m.inst_fetch(a), 16, "L1 miss + L2 hit = 1 + 15");
    }

    #[test]
    fn data_and_inst_sides_are_separate() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table2(4));
        let a = Addr::new(0x1000_0000);
        assert_eq!(m.data_access(a, false), 116);
        assert_eq!(m.data_access(a, true), 1);
        // The same address on the instruction side still misses L1I but hits
        // the unified L2.
        assert_eq!(m.inst_fetch(a), 16);
        assert_eq!(m.l1d_stats().accesses, 2);
        assert_eq!(m.l1i_stats().accesses, 1);
    }

    #[test]
    fn pipelined_demand_miss_matches_blocking_delivery_cycle() {
        let mut blocking = MemoryHierarchy::new(MemoryConfig::table2(8));
        let mut piped = MemoryHierarchy::new(MemoryConfig::table2(8));
        piped.enable_inst_pipeline(8);
        let a = Addr::new(0x40_0000);
        // Blocking: access at 0 returns 116 → data usable at cycle 115.
        let lat = blocking.inst_fetch(a);
        assert_eq!(lat, 116);
        // Pipelined: miss at 0 fills at 115; demand hits at 115.
        piped.inst_tick(0);
        let InstDemand::Wait { fill_at, from_mem, allocated } = piped.inst_demand(0, a) else {
            panic!("cold miss must wait");
        };
        assert_eq!(fill_at, 115);
        assert!(from_mem);
        assert!(allocated);
        for t in 1..115 {
            piped.inst_tick(t);
            assert!(
                matches!(piped.inst_demand(t, a), InstDemand::Wait { allocated: false, .. }),
                "cycle {t}: still in flight, coalesced"
            );
        }
        piped.inst_tick(115);
        assert_eq!(piped.inst_demand(115, a), InstDemand::Ready);
        // One allocate + waiting coalesces count one access/miss + final hit.
        assert_eq!(piped.l1i_stats().misses, 1);
    }

    #[test]
    fn hit_under_miss_overlaps_fills() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table2(8));
        m.enable_inst_pipeline(4);
        let hot = Addr::new(0x1000);
        m.inst_tick(0);
        assert!(matches!(m.inst_demand(0, hot), InstDemand::Wait { .. }));
        m.inst_tick(200);
        assert_eq!(m.inst_demand(200, hot), InstDemand::Ready, "filled");
        // Start a demand miss, then keep hitting the hot line under it.
        m.inst_tick(201);
        assert!(matches!(m.inst_demand(201, Addr::new(0x80_0000)), InstDemand::Wait { .. }));
        m.inst_tick(202);
        assert_eq!(m.inst_demand(202, hot), InstDemand::Ready, "hit under miss");
        assert_eq!(m.inst_fills_in_flight(), 1);
    }

    #[test]
    fn prefetch_lifecycle_counts_issued_useful_late_polluting() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table2(8));
        m.enable_inst_pipeline(4);
        let a = Addr::new(0x2000);
        m.inst_tick(0);
        assert_eq!(m.inst_prefetch(0, a), InstPrefetch::Started, "cold prefetch starts a fill");
        assert_eq!(m.inst_prefetch(0, a), InstPrefetch::Redundant, "in-flight duplicate dropped");
        assert_eq!(m.prefetch_stats().issued, 1);
        assert_eq!(m.prefetch_stats().dropped, 1);
        // Demand arrives before the fill completes: late.
        m.inst_tick(5);
        assert!(matches!(m.inst_demand(5, a), InstDemand::Wait { allocated: false, .. }));
        assert_eq!(m.prefetch_stats().late, 1);
        // A second prefetched line demand-touched after filling: useful.
        let b = Addr::new(0x4000);
        assert_eq!(m.inst_prefetch(5, b), InstPrefetch::Started);
        m.inst_tick(400);
        assert_eq!(m.inst_demand(400, b), InstDemand::Ready);
        assert_eq!(m.prefetch_stats().useful, 1);
        // A demanded-while-in-flight line does not count useful on hit.
        assert_eq!(m.inst_demand(400, a), InstDemand::Ready);
        assert_eq!(m.prefetch_stats().useful, 1);
    }

    #[test]
    fn blocked_when_mshrs_exhausted() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table2(8));
        m.enable_inst_pipeline(1);
        m.inst_tick(0);
        assert_eq!(m.inst_prefetch(0, Addr::new(0x10_0000)), InstPrefetch::Started);
        assert_eq!(m.inst_demand(0, Addr::new(0x20_0000)), InstDemand::Blocked);
        assert_eq!(
            m.inst_prefetch(0, Addr::new(0x30_0000)),
            InstPrefetch::NoMshr,
            "full file drops probes as retryable"
        );
        let before = m.l1i_stats();
        // Blocked demands must not perturb hit/miss statistics.
        assert_eq!(m.inst_demand(1, Addr::new(0x20_0000)), InstDemand::Blocked);
        assert_eq!(m.l1i_stats(), before);
    }

    #[test]
    fn warm_paths_fill_state_without_stats() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table2(8));
        let a = Addr::new(0x40_0000);
        m.warm_inst(a);
        m.warm_data(Addr::new(0x9000));
        assert_eq!(m.l1i_stats(), CacheStats::default(), "warming counts nothing");
        assert_eq!(m.l1d_stats(), CacheStats::default());
        assert_eq!(m.l2_stats(), CacheStats::default());
        // But the state is there: the timed access now hits the L1i.
        assert_eq!(m.inst_fetch(a), 1, "warmed line hits");
        assert_eq!(m.data_access(Addr::new(0x9000), false), 1);
        // The L2 was warmed too: evict the line from the 2-way L1i and the
        // re-fetch is an L2 hit (1 + 15), not a memory miss.
        let way_stride = 128 * ((64 << 10) / 128 / 2) as u64;
        m.inst_fetch(Addr::new(0x40_0000 + way_stride));
        m.inst_fetch(Addr::new(0x40_0000 + 2 * way_stride));
        assert_eq!(m.inst_fetch(a), 16, "L2 retained the warmed line");
    }

    #[test]
    fn warm_access_matches_access_state_transitions() {
        use crate::cache::{CacheConfig, SetAssocCache};
        let cfg = CacheConfig { size_bytes: 512, assoc: 2, line_bytes: 64 };
        let mut a = SetAssocCache::new(cfg);
        let mut b = SetAssocCache::new(cfg);
        // Interleave the same address sequence through both paths: residency
        // must evolve identically (same LRU decisions).
        let seq = [0x000u64, 0x100, 0x000, 0x200, 0x140, 0x100, 0x040];
        for &raw in &seq {
            assert_eq!(
                a.access(Addr::new(raw)),
                b.warm_access(Addr::new(raw)),
                "hit/miss diverged at {raw:#x}"
            );
        }
        for &raw in &seq {
            assert_eq!(a.probe(Addr::new(raw)), b.probe(Addr::new(raw)));
        }
        assert_eq!(b.stats(), CacheStats::default(), "warm path counts nothing");
    }

    #[test]
    fn probe_reflects_fills() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table2(4));
        assert!(!m.inst_probe(Addr::new(0x9000)));
        m.inst_fetch(Addr::new(0x9000));
        assert!(m.inst_probe(Addr::new(0x9000)));
        m.reset_stats();
        assert_eq!(m.l1i_stats().accesses, 0);
    }
}
