//! The three-level memory hierarchy of Table 2.

use sfetch_isa::Addr;

use crate::cache::{CacheConfig, CacheStats, SetAssocCache};

/// Latencies and geometries of the full hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// L1 access latency in cycles.
    pub l1_latency: u32,
    /// L2 access latency in cycles (added on L1 miss).
    pub l2_latency: u32,
    /// Memory latency in cycles (added on L2 miss).
    pub mem_latency: u32,
}

impl MemoryConfig {
    /// The Table 2 configuration for a given pipeline width: the L1I line is
    /// 4× the width (32/64/128 bytes for 2/4/8-wide).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a power of two.
    pub fn table2(width: usize) -> Self {
        assert!(width.is_power_of_two(), "pipeline width must be a power of two");
        MemoryConfig {
            l1i: CacheConfig {
                size_bytes: 64 << 10,
                assoc: 2,
                line_bytes: (width as u64) * 4 * 4, // 4x width instructions, 4B each
            },
            l1d: CacheConfig { size_bytes: 64 << 10, assoc: 2, line_bytes: 64 },
            l2: CacheConfig { size_bytes: 1 << 20, assoc: 4, line_bytes: 64 },
            l1_latency: 1,
            l2_latency: 15,
            mem_latency: 100,
        }
    }
}

/// The simulated memory hierarchy: L1I + L1D over a unified L2 over memory.
///
/// Accesses return the total latency in cycles and perform fills along the
/// way — including for wrong-path instruction fetches, reproducing the
/// pollution/prefetch effects the paper's simulator models (§4.1).
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: MemoryConfig,
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2: SetAssocCache,
}

impl MemoryHierarchy {
    /// Builds the hierarchy.
    pub fn new(config: MemoryConfig) -> Self {
        MemoryHierarchy {
            config,
            l1i: SetAssocCache::new(config.l1i),
            l1d: SetAssocCache::new(config.l1d),
            l2: SetAssocCache::new(config.l2),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Instruction-side line size in bytes.
    pub fn l1i_line_bytes(&self) -> u64 {
        self.config.l1i.line_bytes
    }

    /// Fetches the instruction cache line containing `addr`; returns the
    /// latency in cycles (1 on an L1I hit).
    pub fn inst_fetch(&mut self, addr: Addr) -> u32 {
        let mut lat = self.config.l1_latency;
        if !self.l1i.access(addr) {
            lat += self.config.l2_latency;
            if !self.l2.access(addr) {
                lat += self.config.mem_latency;
            }
        }
        lat
    }

    /// Performs a data access (load or store) at `addr`; returns the latency
    /// in cycles.
    pub fn data_access(&mut self, addr: Addr, _is_store: bool) -> u32 {
        let mut lat = self.config.l1_latency;
        if !self.l1d.access(addr) {
            lat += self.config.l2_latency;
            if !self.l2.access(addr) {
                lat += self.config.mem_latency;
            }
        }
        lat
    }

    /// Whether the instruction line containing `addr` is resident (no fill).
    pub fn inst_probe(&self, addr: Addr) -> bool {
        self.l1i.probe(addr)
    }

    /// L1I statistics.
    pub fn l1i_stats(&self) -> CacheStats {
        self.l1i.stats()
    }

    /// L1D statistics.
    pub fn l1d_stats(&self) -> CacheStats {
        self.l1d.stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Clears all statistics (after warmup).
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_line_scales_with_width() {
        assert_eq!(MemoryConfig::table2(2).l1i.line_bytes, 32);
        assert_eq!(MemoryConfig::table2(4).l1i.line_bytes, 64);
        assert_eq!(MemoryConfig::table2(8).l1i.line_bytes, 128);
    }

    #[test]
    fn latencies_compose_across_levels() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table2(8));
        let a = Addr::new(0x40_0000);
        // Cold: L1 miss + L2 miss -> 1 + 15 + 100.
        assert_eq!(m.inst_fetch(a), 116);
        // Now resident everywhere: 1.
        assert_eq!(m.inst_fetch(a), 1);
        assert_eq!(m.l1i_stats().misses, 1);
    }

    #[test]
    fn l2_hit_costs_intermediate_latency() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table2(8));
        let a = Addr::new(0x40_0000);
        m.inst_fetch(a); // cold fill of L1I and L2
        // Evict from the 64KB 2-way L1I by touching two conflicting lines;
        // L2 (1MB) keeps it.
        let sets = (64 << 10) / 128 / 2; // 256 sets
        let way_stride = 128 * sets as u64;
        m.inst_fetch(Addr::new(0x40_0000 + way_stride));
        m.inst_fetch(Addr::new(0x40_0000 + 2 * way_stride));
        assert_eq!(m.inst_fetch(a), 16, "L1 miss + L2 hit = 1 + 15");
    }

    #[test]
    fn data_and_inst_sides_are_separate() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table2(4));
        let a = Addr::new(0x1000_0000);
        assert_eq!(m.data_access(a, false), 116);
        assert_eq!(m.data_access(a, true), 1);
        // The same address on the instruction side still misses L1I but hits
        // the unified L2.
        assert_eq!(m.inst_fetch(a), 16);
        assert_eq!(m.l1d_stats().accesses, 2);
        assert_eq!(m.l1i_stats().accesses, 1);
    }

    #[test]
    fn probe_reflects_fills() {
        let mut m = MemoryHierarchy::new(MemoryConfig::table2(4));
        assert!(!m.inst_probe(Addr::new(0x9000)));
        m.inst_fetch(Addr::new(0x9000));
        assert!(m.inst_probe(Addr::new(0x9000)));
        m.reset_stats();
        assert_eq!(m.l1i_stats().accesses, 0);
    }
}
