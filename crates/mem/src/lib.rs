//! # sfetch-mem
//!
//! The simulated memory hierarchy of the `stream-fetch` processor (Table 2):
//!
//! * L1 instruction cache — 64KB, 2-way, **wide lines** (4× the pipeline
//!   width: 32/64/128 bytes), 1-cycle, single-ported. Wide lines are a core
//!   design point of the stream front-end (§3.4): they amortize the stream
//!   misalignment problem of Fig. 7.
//! * L1 data cache — 64KB, 2-way, 64B lines, 1 cycle.
//! * Unified L2 — 1MB, 4-way, 64B lines, 15 cycles.
//! * Memory — 100 cycles.
//!
//! Caches are blocking and latency-oriented by default: an access returns
//! the number of cycles until the data is available and fills all levels
//! it traversed (so wrong-path fetch *prefetches into and pollutes* the
//! I-cache, which the paper's simulator explicitly models).
//!
//! The instruction side can additionally run a **non-blocking miss
//! pipeline** ([`MemoryHierarchy::enable_inst_pipeline`]): demand misses
//! allocate [`mshr::Mshr`]s, fills complete through an in-flight queue,
//! and prefetch probes ([`MemoryHierarchy::inst_prefetch`]) overlap with
//! demand fetch — the substrate of the `sfetch-prefetch` policies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cost;
pub mod hierarchy;
pub mod mshr;

pub use cache::{CacheConfig, CacheStats, DemandOutcome, SetAssocCache};
pub use hierarchy::{InstDemand, InstPrefetch, MemoryConfig, MemoryHierarchy, PrefetchStats};
pub use mshr::{Mshr, MshrFile};
