//! Miss-status holding registers: the in-flight fill queue of the
//! non-blocking L1i miss pipeline.
//!
//! Each entry tracks one outstanding line fill — its completion cycle,
//! which level serves it, and whether it was started by a demand fetch or
//! a prefetch probe. Demand fetches for a line already in flight
//! *coalesce* onto the existing entry instead of allocating a second one,
//! so a line is never fetched twice concurrently and never filled twice.

/// One in-flight L1i line fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mshr {
    /// Line index (byte address divided by the line size).
    pub line: u64,
    /// Cycle at which the fill completes (the data is usable that cycle).
    pub fill_at: u64,
    /// Whether memory (rather than the L2) serves the fill.
    pub from_mem: bool,
    /// Whether a prefetch probe allocated the entry.
    pub prefetch: bool,
    /// Whether a demand fetch has coalesced onto the entry.
    pub demanded: bool,
    /// Allocation order, for deterministic fill draining.
    seq: u64,
}

/// A fixed-capacity file of [`Mshr`]s.
#[derive(Debug, Clone)]
pub struct MshrFile {
    slots: Vec<Option<Mshr>>,
    live: usize,
    next_seq: u64,
}

impl MshrFile {
    /// Creates a file with `entries` registers.
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "MSHR file needs at least one entry");
        MshrFile { slots: vec![None; entries], live: 0, next_seq: 0 }
    }

    /// Total registers.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Outstanding fills.
    pub fn in_flight(&self) -> usize {
        self.live
    }

    /// Whether another fill can be started.
    pub fn has_free(&self) -> bool {
        self.live < self.slots.len()
    }

    /// The in-flight entry for `line`, if any.
    pub fn lookup(&self, line: u64) -> Option<&Mshr> {
        self.slots.iter().flatten().find(|m| m.line == line)
    }

    /// Mutable access to the in-flight entry for `line` (coalescing).
    pub fn lookup_mut(&mut self, line: u64) -> Option<&mut Mshr> {
        self.slots.iter_mut().flatten().find(|m| m.line == line)
    }

    /// Starts a fill.
    ///
    /// # Panics
    ///
    /// Panics if the file is full or the line is already in flight
    /// (callers must check [`MshrFile::has_free`] / [`MshrFile::lookup`]).
    pub fn allocate(&mut self, line: u64, fill_at: u64, from_mem: bool, prefetch: bool) {
        assert!(self.lookup(line).is_none(), "line {line:#x} already in flight");
        let slot = self
            .slots
            .iter_mut()
            .find(|s| s.is_none())
            .expect("MSHR file full — caller must check has_free()");
        *slot = Some(Mshr {
            line,
            fill_at,
            from_mem,
            prefetch,
            demanded: false,
            seq: self.next_seq,
        });
        self.next_seq += 1;
        self.live += 1;
    }

    /// Removes every fill due at or before `now`, appending them to `out`
    /// ordered by `(fill_at, allocation order)` — the order the fills
    /// actually complete, independent of slot reuse.
    pub fn drain_due(&mut self, now: u64, out: &mut Vec<Mshr>) {
        let start = out.len();
        for slot in &mut self.slots {
            if slot.is_some_and(|m| m.fill_at <= now) {
                out.push(slot.take().expect("checked above"));
                self.live -= 1;
            }
        }
        out[start..].sort_unstable_by_key(|m| (m.fill_at, m.seq));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_lookup_drain_roundtrip() {
        let mut f = MshrFile::new(4);
        assert!(f.has_free());
        f.allocate(10, 16, false, false);
        f.allocate(11, 116, true, true);
        assert_eq!(f.in_flight(), 2);
        assert!(f.lookup(10).is_some());
        assert!(f.lookup(12).is_none());
        let mut out = Vec::new();
        f.drain_due(15, &mut out);
        assert!(out.is_empty(), "nothing due yet");
        f.drain_due(16, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 10);
        assert_eq!(f.in_flight(), 1);
        f.drain_due(1000, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].line, 11);
        assert_eq!(f.in_flight(), 0);
    }

    #[test]
    fn drain_orders_by_fill_time_then_allocation() {
        let mut f = MshrFile::new(4);
        f.allocate(1, 50, false, false);
        f.allocate(2, 20, false, false);
        f.allocate(3, 20, false, true);
        let mut out = Vec::new();
        f.drain_due(100, &mut out);
        let lines: Vec<u64> = out.iter().map(|m| m.line).collect();
        assert_eq!(lines, vec![2, 3, 1]);
    }

    #[test]
    fn slot_reuse_preserves_completion_order() {
        let mut f = MshrFile::new(2);
        f.allocate(1, 10, false, false);
        f.allocate(2, 30, false, false);
        let mut out = Vec::new();
        f.drain_due(10, &mut out);
        assert_eq!(out[0].line, 1);
        // Reuses slot 0 but completes after line 2.
        f.allocate(3, 40, false, false);
        out.clear();
        f.drain_due(100, &mut out);
        let lines: Vec<u64> = out.iter().map(|m| m.line).collect();
        assert_eq!(lines, vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "already in flight")]
    fn duplicate_line_panics() {
        let mut f = MshrFile::new(2);
        f.allocate(7, 10, false, false);
        f.allocate(7, 20, false, false);
    }

    #[test]
    #[should_panic(expected = "full")]
    fn overflow_panics() {
        let mut f = MshrFile::new(1);
        f.allocate(1, 10, false, false);
        f.allocate(2, 10, false, false);
    }

    #[test]
    fn coalescing_marks_demanded() {
        let mut f = MshrFile::new(2);
        f.allocate(5, 100, true, true);
        let m = f.lookup_mut(5).expect("in flight");
        assert!(m.prefetch && !m.demanded);
        m.demanded = true;
        assert!(f.lookup(5).expect("still in flight").demanded);
    }
}
