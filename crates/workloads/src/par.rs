//! Minimal scoped-thread parallel map, shared by `Suite` construction and
//! the bench harness's simulation grid.
//!
//! `std::thread::scope` is all the machinery needed: work items are
//! independent (each simulation point owns its `Processor`; each workload
//! build owns its generator), so workers pull indices from one atomic
//! counter and write results into per-slot cells. Results come back in input
//! order regardless of completion order, which is what keeps parallel runs
//! bit-identical to serial ones.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` with up to `jobs` worker threads, preserving input
/// order in the result. `jobs <= 1` (or a single item) degrades to a plain
/// serial loop on the calling thread with no thread or lock overhead.
///
/// `f` receives `(index, item)` so callers can report progress or look up
/// per-item context.
///
/// # Panics
///
/// Panics if any invocation of `f` panicked (the panic is propagated once
/// all workers have stopped).
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(i, item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker completed every claimed slot")
        })
        .collect()
}

/// The host's available parallelism (1 if it cannot be determined) — the
/// default for `--jobs`.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..100).collect();
        for jobs in [1, 2, 8, 200] {
            let out = par_map(&items, jobs, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = par_map(&[] as &[u32], 8, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_matches_serial_for_stateful_work() {
        // Each item derives its result only from its own index — the
        // contract that makes grid simulation order-independent.
        let items: Vec<u64> = (0..64).collect();
        let serial = par_map(&items, 1, |_, &x| x.wrapping_mul(0x9e37).rotate_left(7));
        let parallel = par_map(&items, 8, |_, &x| x.wrapping_mul(0x9e37).rotate_left(7));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
