//! Minimal scoped-thread parallel map, shared by `Suite` construction and
//! the bench harness's simulation grid.
//!
//! `std::thread::scope` is all the machinery needed: work items are
//! independent (each simulation point owns its `Processor`; each workload
//! build owns its generator), so workers pull index *batches* from one
//! atomic counter and write results into per-slot cells. Results come back
//! in input order regardless of completion order, which is what keeps
//! parallel runs bit-identical to serial ones.
//!
//! Batching matters for grids of short points (smoke runs, CI, the
//! ablation sweeps with small `--inst`): claiming several points per
//! atomic bump amortizes the claim/wake overhead that otherwise rivals a
//! short point's own simulation time, without changing any result —
//! each slot is still written from its own item alone.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` with up to `jobs` worker threads, preserving input
/// order in the result. Workers claim batches of adjacent items sized by
/// [`auto_batch`]. `jobs <= 1` (or a single item) degrades to a plain
/// serial loop on the calling thread with no thread or lock overhead.
///
/// `f` receives `(index, item)` so callers can report progress or look up
/// per-item context.
///
/// # Panics
///
/// Panics if any invocation of `f` panicked (the panic is propagated once
/// all workers have stopped).
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_batched(items, jobs, auto_batch(items.len(), jobs), f)
}

/// [`par_map`] with an explicit claim-batch size: each worker grabs
/// `batch` adjacent indices per atomic bump. Results are bit-identical to
/// `batch = 1` (and to serial) for any batch size — only the scheduling
/// granularity changes.
///
/// # Panics
///
/// Panics if `batch == 0`, or if any invocation of `f` panicked.
pub fn par_map_batched<T, R, F>(items: &[T], jobs: usize, batch: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    assert!(batch > 0, "batch size must be at least 1");
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let start = next.fetch_add(batch, Ordering::Relaxed);
                if start >= items.len() {
                    break;
                }
                for (i, item) in items.iter().enumerate().skip(start).take(batch) {
                    let r = f(i, item);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker completed every claimed slot")
        })
        .collect()
}

/// Claim-batch size for `n` items over `jobs` workers: large enough to cut
/// per-claim overhead on big grids of short points, small enough to leave
/// every worker at least ~4 claims of load-balancing slack; capped at 8 so
/// one slow point never strands a long tail behind it.
pub fn auto_batch(n: usize, jobs: usize) -> usize {
    (n / jobs.max(1).saturating_mul(4).max(1)).clamp(1, 8)
}

/// The host's available parallelism (1 if it cannot be determined) — the
/// default for `--jobs`.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..100).collect();
        for jobs in [1, 2, 8, 200] {
            let out = par_map(&items, jobs, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = par_map(&[] as &[u32], 8, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_matches_serial_for_stateful_work() {
        // Each item derives its result only from its own index — the
        // contract that makes grid simulation order-independent.
        let items: Vec<u64> = (0..64).collect();
        let serial = par_map(&items, 1, |_, &x| x.wrapping_mul(0x9e37).rotate_left(7));
        let parallel = par_map(&items, 8, |_, &x| x.wrapping_mul(0x9e37).rotate_left(7));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn batched_results_are_bit_identical_across_batch_sizes() {
        let items: Vec<u64> = (0..137).collect();
        let serial = par_map_batched(&items, 1, 1, |_, &x| x.wrapping_mul(0x9e37).rotate_left(7));
        for jobs in [2, 4, 8] {
            for batch in [1, 2, 3, 8, 64, 1000] {
                let out =
                    par_map_batched(&items, jobs, batch, |_, &x| x.wrapping_mul(0x9e37).rotate_left(7));
                assert_eq!(out, serial, "jobs={jobs} batch={batch}");
            }
        }
    }

    #[test]
    fn batched_claims_cover_every_index_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let items: Vec<usize> = (0..100).collect();
        let calls: Vec<AtomicU64> = items.iter().map(|_| AtomicU64::new(0)).collect();
        par_map_batched(&items, 4, 7, |i, &x| {
            assert_eq!(i, x);
            calls[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in calls.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn auto_batch_is_bounded_and_scales() {
        assert_eq!(auto_batch(0, 8), 1);
        assert_eq!(auto_batch(4, 8), 1);
        assert_eq!(auto_batch(64, 2), 8, "large grid, few workers: max batch");
        assert_eq!(auto_batch(64, 8), 2);
        assert!(auto_batch(usize::MAX, usize::MAX) >= 1);
    }
}
