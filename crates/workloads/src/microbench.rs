//! Hand-built micro-programs, including the paper's Fig. 1 example.

use sfetch_cfg::{CfgBuilder, Cfg, CondBehavior, TripCount};

/// Builds the control-flow graph of Figure 1: a loop containing an
/// if-then-else hammock over blocks A, B, C, D, where profile data says
/// A→B→D is the frequent path.
///
/// Returns the CFG and the block ids `(A, B, C, D)`.
///
/// Laid out naturally in A, B, D, C order (the paper's "code layout"
/// panel), the frequent path A→B→D runs through a not-taken branch and a
/// fall-through, while C is reached through a taken branch and jumps back
/// into D — producing exactly the four streams the paper enumerates
/// (§1: ABD, C, A…, D) plus the partial stream at D after a misprediction.
pub fn figure1() -> (Cfg, [sfetch_cfg::BlockId; 4]) {
    let mut b = CfgBuilder::new();
    let f = b.add_func("figure1");
    // Creation order = layout order: A, B, D, C (C is out of line).
    let a = b.add_block(f, 3);
    let bb = b.add_block(f, 3);
    let d = b.add_block(f, 2);
    let c = b.add_block(f, 3);
    // A: the hammock condition. Taken edge (infrequent, 15%) goes to C,
    // fall-through to B — layout-aligned as in the figure.
    b.set_cond(a, c, bb, CondBehavior::Bernoulli { p_taken: 0.15 });
    // B falls through into D.
    b.set_fallthrough(bb, d);
    // C jumps back into D (the figure's taken branch at the end of C).
    b.set_jump(c, d);
    // D: loop latch back to A (effectively infinite for simulation).
    let exit = b.add_block(f, 1);
    b.set_cond(d, a, exit, CondBehavior::Loop { trip: TripCount::Fixed(1 << 30) });
    b.set_return(exit);
    let cfg = b.finish().expect("figure 1 is structurally valid");
    (cfg, [a, bb, c, d])
}

/// An instruction-cache walker: a hot loop calling `funcs` straight-line
/// leaf functions in sequence, each 12 blocks of 30 instructions. With
/// `funcs * 12 * 30 * 4` bytes beyond the L1i capacity, LRU evicts every
/// line before the loop returns to it, so *every* line misses *every*
/// iteration — the worst case for a blocking fetch path and the best
/// case for stream-directed prefetch (long, perfectly predictable
/// sequential runs; 64 leaves ≈ 92KB against the 64KB Table 2 L1i).
pub fn icache_walker(funcs: usize) -> Cfg {
    let mut b = CfgBuilder::new();
    let main = b.add_func("main");
    let callees: Vec<_> = (0..funcs)
        .map(|i| {
            let f = b.add_func(&format!("leaf{i}"));
            let blocks: Vec<_> = (0..12).map(|_| b.add_block(f, 30)).collect();
            for w in blocks.windows(2) {
                b.set_fallthrough(w[0], w[1]);
            }
            b.set_return(blocks[11]);
            f
        })
        .collect();
    let sites: Vec<_> = (0..funcs).map(|_| b.add_block(main, 2)).collect();
    let latch = b.add_block(main, 1);
    let exit = b.add_block(main, 1);
    for (i, (&site, &callee)) in sites.iter().zip(&callees).enumerate() {
        let ret_to = if i + 1 < funcs { sites[i + 1] } else { latch };
        b.set_call(site, callee, ret_to);
    }
    b.set_cond(latch, sites[0], exit, CondBehavior::Loop { trip: TripCount::Fixed(1 << 30) });
    b.set_return(exit);
    b.finish().expect("valid icache walker")
}

/// A minimal single-loop program used by quick tests and examples.
pub fn tight_loop(body_len: usize, trip: u32) -> Cfg {
    let mut b = CfgBuilder::new();
    let f = b.add_func("loop");
    let body = b.add_block(f, body_len);
    let exit = b.add_block(f, 1);
    b.set_cond(body, body, exit, CondBehavior::Loop { trip: TripCount::Fixed(trip) });
    b.set_return(exit);
    b.finish().expect("valid loop")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfetch_cfg::{layout, CodeImage};
    use sfetch_isa::BranchKind;
    use sfetch_trace::{Executor, StreamExtractor};
    use std::collections::HashSet;

    #[test]
    fn figure1_produces_the_papers_streams() {
        let (cfg, [a, _b, c, d]) = figure1();
        let lay = layout::natural(&cfg);
        let img = CodeImage::build(&cfg, &lay);
        let mut ex = StreamExtractor::new();
        let mut starts: HashSet<_> = HashSet::new();
        for dinst in Executor::new(&cfg, &img, 42).take(20_000) {
            if let Some(s) = ex.push(&dinst) {
                starts.insert(s.start);
            }
        }
        // The paper's streams: one starting at A (the loop path), one at C
        // (the infrequent arm), one at D (after C jumps back).
        assert!(starts.contains(&img.block_addr(a)), "stream at A");
        assert!(starts.contains(&img.block_addr(c)), "stream at C");
        assert!(starts.contains(&img.block_addr(d)), "stream at D");
    }

    #[test]
    fn figure1_frequent_path_is_fall_through() {
        let (cfg, [_a, _b, _c, _d]) = figure1();
        let lay = layout::natural(&cfg);
        let img = CodeImage::build(&cfg, &lay);
        let mut cond_taken = 0u64;
        let mut conds = 0u64;
        for dinst in Executor::new(&cfg, &img, 7).take(50_000) {
            if let Some(ctrl) = dinst.control {
                if ctrl.kind == BranchKind::Cond && !ctrl.is_fixup {
                    conds += 1;
                    cond_taken += u64::from(ctrl.taken);
                }
            }
        }
        // Hammock ~15% taken; latch ~100% taken: overall mid-range, but the
        // hammock branch specifically must be mostly not-taken. Bound the
        // aggregate loosely.
        assert!(conds > 0);
        let ratio = cond_taken as f64 / conds as f64;
        assert!(ratio > 0.4 && ratio < 0.7, "taken ratio {ratio}");
    }

    #[test]
    fn tight_loop_runs() {
        let cfg = tight_loop(6, 10);
        let img = CodeImage::build(&cfg, &layout::natural(&cfg));
        assert_eq!(img.len_insts(), 6 + 1 + 1 + 1);
    }

    #[test]
    fn icache_walker_overflows_a_64kb_l1i() {
        let cfg = icache_walker(64);
        let img = CodeImage::build(&cfg, &layout::natural(&cfg));
        assert!(img.len_insts() * 4 > 64 << 10, "footprint {} insts", img.len_insts());
        // Executes end to end: the loop visits every leaf each iteration.
        let insts: Vec<_> = Executor::new(&cfg, &img, 1).take(50_000).collect();
        assert_eq!(insts.len(), 50_000);
    }
}
