//! The eleven SPECint2000-like synthetic benchmarks (Fig. 9's x-axis).
//!
//! Parameters are chosen per benchmark to mirror the published coarse
//! characterization of its SPEC namesake: static footprint, loop
//! intensity, call structure, branch-bias mix and indirect-branch density.
//! Absolute behaviour is synthetic; what matters for the reproduction is
//! that the *suite* spans the same axes the paper's suite spans (small
//! loopy codes ↔ large branchy codes ↔ indirect-heavy codes).

use sfetch_cfg::gen::{BiasMix, GenParams, ProgramGenerator};

use crate::workload::Workload;

/// Generation recipe for one suite member.
#[derive(Debug, Clone)]
pub struct BenchSpec {
    /// SPECint2000 namesake (e.g. "176.gcc").
    pub name: &'static str,
    /// Generator parameters.
    pub params: GenParams,
    /// Program-generation seed.
    pub gen_seed: u64,
    /// Profile (train input) seed.
    pub train_seed: u64,
    /// Measurement (ref input) seed.
    pub ref_seed: u64,
}

fn spec(
    name: &'static str,
    gen_seed: u64,
    f: impl FnOnce(&mut GenParams),
) -> BenchSpec {
    let mut params = GenParams::default_int();
    f(&mut params);
    BenchSpec { name, params, gen_seed, train_seed: gen_seed * 7 + 1, ref_seed: gen_seed * 13 + 5 }
}

/// The eleven benchmarks, in the paper's Fig. 9 order.
pub fn all_specs() -> Vec<BenchSpec> {
    vec![
        spec("gzip", 101, |p| {
            // Small code, tight biased loops over buffers.
            p.n_funcs = 28;
            p.blocks_per_func = (10, 40);
            p.mean_trip = 26;
            p.p_loop = 0.22;
            p.p_switch = 0.01;
            p.indirect_call_frac = 0.02;
            p.bias = BiasMix { strong: 0.58, moderate: 0.12, balanced: 0.02, pattern: 0.15, correlated: 0.13 };
        }),
        spec("vpr", 102, |p| {
            // Placement/routing: mid-size, patterned decisions.
            p.n_funcs = 60;
            p.blocks_per_func = (14, 50);
            p.mean_trip = 16;
            p.bias = BiasMix { strong: 0.46, moderate: 0.16, balanced: 0.04, pattern: 0.20, correlated: 0.14 };
        }),
        spec("gcc", 103, |p| {
            // Huge footprint, branchy, switch-heavy, short loops.
            p.n_funcs = 340;
            p.blocks_per_func = (20, 80);
            p.mean_trip = 9;
            p.p_loop = 0.12;
            p.p_if = 0.52;
            p.p_switch = 0.04;
            p.indirect_call_frac = 0.10;
            p.bias = BiasMix { strong: 0.44, moderate: 0.18, balanced: 0.05, pattern: 0.16, correlated: 0.17 };
        }),
        spec("crafty", 104, |p| {
            // Chess: large, deeply branchy, correlated evaluations.
            p.n_funcs = 170;
            p.blocks_per_func = (18, 70);
            p.mean_trip = 12;
            p.p_if = 0.50;
            p.bias = BiasMix { strong: 0.42, moderate: 0.16, balanced: 0.05, pattern: 0.16, correlated: 0.21 };
        }),
        spec("parser", 105, |p| {
            // Link grammar: mid-size, call-chained, mixed biases.
            p.n_funcs = 120;
            p.blocks_per_func = (14, 60);
            p.mean_trip = 12;
            p.p_call = 0.22;
            p.indirect_call_frac = 0.06;
            p.bias = BiasMix { strong: 0.46, moderate: 0.17, balanced: 0.04, pattern: 0.16, correlated: 0.17 };
        }),
        spec("eon", 106, |p| {
            // C++ ray tracer: virtual dispatch, biased control.
            p.n_funcs = 90;
            p.blocks_per_func = (12, 50);
            p.mean_trip = 15;
            p.p_call = 0.24;
            p.indirect_call_frac = 0.22;
            p.bias = BiasMix { strong: 0.55, moderate: 0.13, balanced: 0.02, pattern: 0.15, correlated: 0.15 };
        }),
        spec("perlbmk", 107, |p| {
            // Interpreter: dispatch switches + indirect calls, big code.
            p.n_funcs = 210;
            p.blocks_per_func = (16, 70);
            p.mean_trip = 10;
            p.p_switch = 0.05;
            p.indirect_call_frac = 0.14;
            p.bias = BiasMix { strong: 0.45, moderate: 0.16, balanced: 0.04, pattern: 0.17, correlated: 0.18 };
        }),
        spec("gap", 108, |p| {
            // Group theory: call-heavy, arithmetic loops.
            p.n_funcs = 150;
            p.blocks_per_func = (14, 60);
            p.mean_trip = 18;
            p.p_call = 0.24;
            p.bias = BiasMix { strong: 0.48, moderate: 0.15, balanced: 0.03, pattern: 0.18, correlated: 0.16 };
        }),
        spec("vortex", 109, |p| {
            // OO database: large, strongly biased validation branches.
            p.n_funcs = 230;
            p.blocks_per_func = (16, 70);
            p.mean_trip = 14;
            p.p_call = 0.22;
            p.bias = BiasMix { strong: 0.60, moderate: 0.10, balanced: 0.02, pattern: 0.14, correlated: 0.14 };
        }),
        spec("bzip2", 110, |p| {
            // Small compressor: long tight loops.
            p.n_funcs = 32;
            p.blocks_per_func = (10, 40);
            p.mean_trip = 30;
            p.p_loop = 0.24;
            p.p_switch = 0.01;
            p.indirect_call_frac = 0.02;
            p.bias = BiasMix { strong: 0.55, moderate: 0.13, balanced: 0.03, pattern: 0.15, correlated: 0.14 };
        }),
        spec("twolf", 111, |p| {
            // Place & route: mid-size, correlated cost comparisons.
            p.n_funcs = 85;
            p.blocks_per_func = (14, 55);
            p.mean_trip = 13;
            p.bias = BiasMix { strong: 0.44, moderate: 0.17, balanced: 0.05, pattern: 0.17, correlated: 0.17 };
        }),
    ]
}

/// Finds a spec by (namesake) name.
pub fn by_name(name: &str) -> Option<BenchSpec> {
    all_specs().into_iter().find(|s| s.name == name)
}

/// Generates and lays out the workload for a spec.
pub fn build(spec: BenchSpec) -> Workload {
    let cfg = ProgramGenerator::new(spec.params, spec.gen_seed).generate();
    Workload::from_cfg(spec.name, cfg, spec.train_seed, spec.ref_seed)
}

/// The whole generated suite.
#[derive(Debug)]
pub struct Suite {
    workloads: Vec<Workload>,
}

impl Suite {
    /// Generates all eleven benchmarks, using every available core.
    pub fn build_all() -> Self {
        Self::build_all_jobs(crate::par::default_jobs())
    }

    /// Generates all eleven benchmarks with up to `jobs` worker threads.
    /// Workload construction (program generation + train-seed profiling +
    /// both layouts) is independent per benchmark, so it parallelizes
    /// perfectly; the resulting suite is identical for any `jobs`.
    pub fn build_all_jobs(jobs: usize) -> Self {
        Suite { workloads: crate::par::par_map(&all_specs(), jobs, |_, s| build(s.clone())) }
    }

    /// Generates a named subset of the suite (suite order preserved), with
    /// up to `jobs` worker threads. Used by the quicker ablation binaries
    /// and by tests that don't need all eleven members.
    ///
    /// # Panics
    ///
    /// Panics if a name is not a suite member.
    pub fn build_subset(names: &[&str], jobs: usize) -> Self {
        let specs: Vec<BenchSpec> = all_specs()
            .into_iter()
            .filter(|s| names.contains(&s.name))
            .collect();
        assert_eq!(specs.len(), names.len(), "unknown benchmark in {names:?}");
        Suite { workloads: crate::par::par_map(&specs, jobs, |_, s| build(s.clone())) }
    }

    /// The workloads, in Fig. 9 order.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// Consumes the suite, yielding the workloads.
    pub fn into_workloads(self) -> Vec<Workload> {
        self.workloads
    }

    /// Looks up one workload.
    pub fn get(&self, name: &str) -> Option<&Workload> {
        self.workloads.iter().find(|w| w.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eleven_unique_benchmarks() {
        let specs = all_specs();
        assert_eq!(specs.len(), 11);
        let mut names: Vec<_> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11, "duplicate benchmark names");
        let mut seeds: Vec<_> = specs.iter().map(|s| s.gen_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 11, "duplicate seeds");
    }

    #[test]
    fn ref_and_train_seeds_differ() {
        for s in all_specs() {
            assert_ne!(s.train_seed, s.ref_seed, "{}", s.name);
        }
    }

    #[test]
    fn by_name_finds_members() {
        assert!(by_name("gcc").is_some());
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn gcc_is_the_largest_footprint() {
        // Sanity: the gcc-alike must dwarf the gzip-alike, as in SPEC.
        let gzip = build(by_name("gzip").expect("gzip"));
        let gcc = build(by_name("gcc").expect("gcc"));
        assert!(
            gcc.image(crate::LayoutChoice::Base).len_insts()
                > 3 * gzip.image(crate::LayoutChoice::Base).len_insts()
        );
    }
}
