//! # sfetch-workloads
//!
//! The synthetic benchmark suite standing in for SPECint2000 in the
//! `stream-fetch` reproduction.
//!
//! The paper evaluates on the eleven SPECint2000 benchmarks (Fig. 9), each
//! traced for 300M instructions, in two binaries: baseline and
//! layout-optimized (spike). We cannot ship SPEC, so [`suite`] defines
//! eleven *parameterized synthetic programs* named after them, with
//! generation knobs chosen to mirror each benchmark's published coarse
//! characterization — instruction footprint, loopiness, call depth,
//! branch-bias mix and indirect-branch density (e.g. `gcc`/`crafty` are
//! large-footprint and branchy, `gzip`/`bzip2` are small tight loops, `eon`
//! and `perlbmk` carry indirect calls, `gap`/`vortex` are call-heavy).
//!
//! A [`Workload`] bundles the generated program with its two code layouts
//! (profiled with a *train* seed, per the paper's pixie/train
//! methodology) and exposes [`Workload::image`] for simulation with a
//! different *ref* seed.
//!
//! ```
//! use sfetch_workloads::{suite, LayoutChoice};
//!
//! let w = suite::build(suite::by_name("gzip").expect("known"));
//! assert!(w.image(LayoutChoice::Optimized).len_insts() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod microbench;
pub mod par;
pub mod phased;
pub mod suite;
pub mod workload;

pub use par::{default_jobs, par_map};
pub use suite::{BenchSpec, Suite};
pub use workload::{LayoutChoice, Workload};
