//! A generated benchmark bundled with its baseline and optimized layouts.

use sfetch_cfg::{layout, Cfg, CodeImage, EdgeProfile};
use sfetch_trace::profile_cfg;

/// Which binary flavour to simulate (the paper's base vs optimized sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutChoice {
    /// Natural (source-order) layout — the baseline binaries.
    Base,
    /// Profile-guided Pettis–Hansen layout — the spike-optimized binaries.
    Optimized,
}

impl std::fmt::Display for LayoutChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutChoice::Base => f.write_str("base"),
            LayoutChoice::Optimized => f.write_str("optimized"),
        }
    }
}

/// A benchmark instance: the program plus both laid-out images.
#[derive(Debug)]
pub struct Workload {
    name: &'static str,
    cfg: Cfg,
    base: CodeImage,
    optimized: CodeImage,
    profile: EdgeProfile,
    ref_seed: u64,
}

/// Instructions executed with the *train* seed to gather the layout
/// profile (the paper's pixie + train-input step).
pub const TRAIN_INSTS: u64 = 2_000_000;

/// Committed-trace prefix folded into [`Workload::fingerprint`]. Long
/// enough to reach steady-state control flow in every generated
/// workload, short enough to cost well under a millisecond.
pub const FINGERPRINT_PREFIX: u64 = 65_536;

impl Workload {
    /// Builds a workload: generates nothing itself — callers provide the
    /// program — but derives the profile (train seed) and both layouts.
    pub fn from_cfg(name: &'static str, cfg: Cfg, train_seed: u64, ref_seed: u64) -> Self {
        let base_layout = layout::natural(&cfg);
        let base = CodeImage::build(&cfg, &base_layout);
        let profile = profile_cfg(&cfg, &base, train_seed, TRAIN_INSTS);
        let opt_layout = layout::pettis_hansen(&cfg, &profile);
        let optimized = CodeImage::build(&cfg, &opt_layout);
        Workload { name, cfg, base, optimized, profile, ref_seed }
    }

    /// Benchmark name (SPECint2000 namesake).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The program.
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// The image for a layout flavour.
    pub fn image(&self, choice: LayoutChoice) -> &CodeImage {
        match choice {
            LayoutChoice::Base => &self.base,
            LayoutChoice::Optimized => &self.optimized,
        }
    }

    /// The training profile that drove the optimized layout.
    pub fn profile(&self) -> &EdgeProfile {
        &self.profile
    }

    /// The measurement (*ref* input) seed.
    pub fn ref_seed(&self) -> u64 {
        self.ref_seed
    }

    /// Deterministic fingerprint of the measured (*ref*-seed) trace on
    /// one layout flavour — the identity under which the `sfetch-sample`
    /// checkpoint store caches this workload's architectural state. Any
    /// change to the generated program, its branch-behaviour models, the
    /// layout, or the ref seed changes the committed path and therefore
    /// the fingerprint, invalidating cached checkpoints instead of
    /// silently replaying stale ones.
    pub fn fingerprint(&self, choice: LayoutChoice) -> u64 {
        sfetch_trace::trace_fingerprint(self.image(choice), self.ref_seed, FINGERPRINT_PREFIX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfetch_cfg::gen::{GenParams, ProgramGenerator};

    #[test]
    fn workload_builds_both_layouts() {
        let cfg = ProgramGenerator::new(GenParams::small(), 5).generate();
        let w = Workload::from_cfg("test", cfg, 100, 200);
        assert_eq!(w.name(), "test");
        assert!(w.image(LayoutChoice::Base).len_insts() > 0);
        assert_eq!(
            w.image(LayoutChoice::Base).len_insts() > 0,
            w.image(LayoutChoice::Optimized).len_insts() > 0
        );
        assert_ne!(w.ref_seed(), 100, "ref and train seeds must differ");
    }

    #[test]
    fn fingerprints_are_deterministic_and_distinguish_workloads() {
        let cfg = ProgramGenerator::new(GenParams::small(), 5).generate();
        let w = Workload::from_cfg("test", cfg, 100, 200);
        assert_eq!(
            w.fingerprint(LayoutChoice::Base),
            w.fingerprint(LayoutChoice::Base),
            "same workload + layout must fingerprint identically"
        );
        let cfg2 = ProgramGenerator::new(GenParams::small(), 6).generate();
        let other = Workload::from_cfg("other", cfg2, 100, 200);
        assert_ne!(
            w.fingerprint(LayoutChoice::Base),
            other.fingerprint(LayoutChoice::Base),
            "different programs must fingerprint differently"
        );
    }

    #[test]
    fn layout_choice_labels() {
        assert_eq!(LayoutChoice::Base.to_string(), "base");
        assert_eq!(LayoutChoice::Optimized.to_string(), "optimized");
    }
}
