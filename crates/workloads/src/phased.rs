//! Long-horizon **phased** workloads: multi-phase hot sets over a
//! shared-library-style hot/cold code split.
//!
//! The synthetic SPEC-like suite is L1i-resident once warm (ROADMAP's
//! calibration note), so million-instruction windows never exercise the
//! miss pipeline the way the paper's 300M-instruction traces do. This
//! generator builds programs whose *time-varying* instruction working set
//! makes long horizons matter:
//!
//! * the program cycles through `phases` distinct **hot sets** of
//!   functions (an indirect call dispatches phase drivers through a
//!   deterministic cycle — think request classes in a server loop);
//! * every phase also calls a **shared** function pool (the
//!   shared-library analogue: hot everywhere);
//! * a large **cold** pool (init/error/rare paths) pads the static
//!   footprint and is visited only on low-probability branches;
//! * static footprints land in the 128KB–1MB range, with per-phase hot
//!   sets sized just above the 64KB Table 2 L1i so phase residency shows
//!   steady-state behaviour and phase *changes* show miss storms.
//!
//! A phase residency lasts roughly a million instructions, so 50M+
//! instruction runs see dozens of phase changes — the scenario axis the
//! `sfetch-sample` subsystem exists to measure.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use sfetch_cfg::{
    Cfg, CfgBuilder, CondBehavior, FuncId, IndirectSelect, TripCount,
};
use sfetch_isa::{Addr, DepDistance, InstClass, MemPattern, StaticInst};

use crate::workload::Workload;

/// Generation parameters of a phased program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhasedParams {
    /// Number of distinct phase hot sets.
    pub phases: usize,
    /// Hot functions private to each phase.
    pub funcs_per_phase: usize,
    /// Shared-library-style functions called from every phase.
    pub shared_funcs: usize,
    /// Cold functions (rare paths; mostly static footprint).
    pub cold_funcs: usize,
    /// Structured segments per function (each is a block plus its
    /// hammock/loop/call scaffolding).
    pub segments_per_func: usize,
    /// Straight-line instructions per segment body, `[lo, hi]`.
    pub insts_per_segment: (usize, usize),
    /// Driver-loop iterations per phase residency; one iteration walks
    /// the phase's whole hot set once.
    pub phase_iters: u32,
    /// Probability that a driver iteration detours into a cold function.
    pub p_cold_visit: f64,
}

impl PhasedParams {
    /// The long-horizon flagship: 4 phases whose hot sets each slightly
    /// overflow the 64KB L1i, ≈300KB static footprint, ≈1M-instruction
    /// phase residencies.
    pub fn long() -> Self {
        PhasedParams {
            phases: 4,
            funcs_per_phase: 48,
            shared_funcs: 12,
            cold_funcs: 64,
            segments_per_func: 12,
            insts_per_segment: (10, 24),
            phase_iters: 45,
            p_cold_visit: 0.02,
        }
    }

    /// A scaled-down variant for tests (two phases, small pools, short
    /// residencies).
    pub fn small() -> Self {
        PhasedParams {
            phases: 2,
            funcs_per_phase: 6,
            shared_funcs: 3,
            cold_funcs: 6,
            segments_per_func: 6,
            insts_per_segment: (6, 12),
            phase_iters: 16,
            p_cold_visit: 0.05,
        }
    }
}

/// Base of the synthetic data segment; each function strides its own
/// region above it.
const DATA_BASE: u64 = 0x2000_0000;
/// Data-region spacing per function (64KB).
const DATA_STRIDE: u64 = 1 << 16;

/// Builds one structured work function: `segments_per_func` segments,
/// each a straight-line body closed by a biased hammock, a predictable
/// pattern, a short loop, a correlated branch, a call into `callees`, or
/// plain fall-through.
fn build_work_func(
    b: &mut CfgBuilder,
    name: &str,
    p: &PhasedParams,
    rng: &mut SmallRng,
    func_idx: usize,
    callees: &[FuncId],
) -> FuncId {
    let f = b.add_func(name);
    let data = DATA_BASE + func_idx as u64 * DATA_STRIDE;
    let (lo, hi) = p.insts_per_segment;
    let body = |rng: &mut SmallRng, n_mem: usize| -> Vec<StaticInst> {
        let n = rng.random_range(lo..=hi);
        (0..n)
            .map(|i| {
                if i < n_mem {
                    let class = if rng.random_bool(0.7) { InstClass::Load } else { InstClass::Store };
                    let off = rng.random_range(0..DATA_STRIDE / 2);
                    let stride = 8 << rng.random_range(0..3u32); // 8/16/32
                    let span = 16 << rng.random_range(0..4u32); // 16..128
                    let dep = DepDistance::new(rng.random_range(0..6u8));
                    StaticInst::memory(class, MemPattern::new(Addr::new(data + off), stride, span), dep)
                } else if rng.random_bool(0.4) {
                    let d1 = DepDistance::new(rng.random_range(1..16u8));
                    let d2 = DepDistance::new(rng.random_range(0..8u8));
                    StaticInst::with_deps(InstClass::IntAlu, d1, d2)
                } else {
                    StaticInst::simple(InstClass::IntAlu)
                }
            })
            .collect()
    };
    // Each segment's head must be terminated toward the next segment's
    // head; build heads first… instead, chain as we go: keep the block
    // that still needs a terminator into the next segment.
    let entry = b.add_block_with(f, body(rng, 1));
    let mut cur = entry;
    for _ in 0..p.segments_per_func {
        let n_mem = usize::from(rng.random_bool(0.5));
        let next = b.add_block_with(f, body(rng, n_mem));
        match rng.random_range(0..100u32) {
            // Strongly biased hammock: rare arm out of line.
            0..=34 => {
                let arm = b.add_block_with(f, body(rng, 0));
                let p_taken = if rng.random_bool(0.5) {
                    rng.random_range(0.01..0.12)
                } else {
                    rng.random_range(0.88..0.99)
                };
                // Logical-taken edge = the arm; layout decides physics.
                b.set_cond(cur, arm, next, CondBehavior::Bernoulli { p_taken });
                b.set_fallthrough(arm, next);
            }
            // History-predictable pattern hammock.
            35..=49 => {
                let arm = b.add_block_with(f, body(rng, 0));
                let len = rng.random_range(2..=8usize);
                let pat: Vec<bool> = (0..len).map(|_| rng.random_bool(0.5)).collect();
                b.set_cond(cur, arm, next, CondBehavior::Pattern(pat));
                b.set_fallthrough(arm, next);
            }
            // Short inner loop.
            50..=64 => {
                let lbody = b.add_block_with(f, body(rng, 1));
                b.set_fallthrough(cur, lbody);
                let lo_t = rng.random_range(2..6u32);
                let hi_t = lo_t + rng.random_range(1..8u32);
                b.set_cond(
                    lbody,
                    lbody,
                    next,
                    CondBehavior::Loop { trip: TripCount::Uniform { lo: lo_t, hi: hi_t } },
                );
            }
            // Correlated branch (global-history predictable).
            65..=79 => {
                let arm = b.add_block_with(f, body(rng, 0));
                let beh = CondBehavior::Correlated {
                    dist: rng.random_range(1..8u8),
                    invert: rng.random_bool(0.5),
                    noise: 0.02,
                };
                b.set_cond(cur, arm, next, beh);
                b.set_fallthrough(arm, next);
            }
            // Call into the shared pool.
            80..=89 if !callees.is_empty() => {
                let callee = callees[rng.random_range(0..callees.len())];
                b.set_call(cur, callee, next);
            }
            // Plain fall-through.
            _ => b.set_fallthrough(cur, next),
        }
        cur = next;
    }
    b.set_return(cur);
    f
}

/// Builds one phase driver: a loop of `phase_iters` iterations, each
/// walking the phase's hot set in sequence with rare cold detours.
fn build_driver(
    b: &mut CfgBuilder,
    name: &str,
    p: &PhasedParams,
    rng: &mut SmallRng,
    hot: &[FuncId],
    cold: &[FuncId],
) -> FuncId {
    let f = b.add_func(name);
    let head = b.add_block(f, 2);
    let mut sites: Vec<_> = hot.iter().map(|_| b.add_block(f, 1)).collect();
    let latch = b.add_block(f, 1);
    let exit = b.add_block(f, 1);
    b.set_fallthrough(head, sites[0]);
    sites.push(latch); // sentinel: the last call returns to the latch
    for (i, &callee) in hot.iter().enumerate() {
        let site = sites[i];
        let ret_to = sites[i + 1];
        if !cold.is_empty() && rng.random_bool(0.25) {
            // This site may detour into a cold function first.
            let detour = b.add_block(f, 1);
            let merge = b.add_block(f, 0);
            b.set_cond(
                site,
                detour,
                merge,
                CondBehavior::Bernoulli { p_taken: p.p_cold_visit },
            );
            let cold_callee = cold[rng.random_range(0..cold.len())];
            b.set_call(detour, cold_callee, merge);
            b.set_call(merge, callee, ret_to);
        } else {
            b.set_call(site, callee, ret_to);
        }
    }
    b.set_cond(
        latch,
        head,
        exit,
        CondBehavior::Loop { trip: TripCount::Fixed(p.phase_iters.max(1)) },
    );
    b.set_return(exit);
    f
}

/// Generates a phased program.
///
/// # Panics
///
/// Panics on degenerate parameters (zero phases or empty hot sets) —
/// the builder would reject the graph anyway.
pub fn generate(p: &PhasedParams, seed: u64) -> Cfg {
    assert!(p.phases >= 1 && p.funcs_per_phase >= 1, "need at least one phase hot set");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5048_4153_4544); // "PHASED"
    let mut b = CfgBuilder::new();
    // main first: function 0 is the program entry.
    let main = b.add_func("main");
    let mut func_idx = 0usize;
    let mut next_idx = || {
        func_idx += 1;
        func_idx
    };
    let shared: Vec<FuncId> = (0..p.shared_funcs)
        .map(|i| build_work_func(&mut b, &format!("shared{i}"), p, &mut rng, next_idx(), &[]))
        .collect();
    let cold: Vec<FuncId> = (0..p.cold_funcs)
        .map(|i| build_work_func(&mut b, &format!("cold{i}"), p, &mut rng, next_idx(), &shared))
        .collect();
    let mut drivers: Vec<FuncId> = Vec::with_capacity(p.phases);
    for phase in 0..p.phases {
        let hot: Vec<FuncId> = (0..p.funcs_per_phase)
            .map(|i| {
                build_work_func(&mut b, &format!("p{phase}_f{i}"), p, &mut rng, next_idx(), &shared)
            })
            .collect();
        drivers.push(build_driver(&mut b, &format!("phase{phase}"), p, &mut rng, &hot, &cold));
    }
    // main: an endless dispatch loop rotating through the phase drivers.
    let entry = b.add_block(main, 2);
    let dispatch = b.add_block(main, 1);
    let latch = b.add_block(main, 1);
    let exit = b.add_block(main, 1);
    b.set_fallthrough(entry, dispatch);
    let callees: Vec<(FuncId, u32)> = drivers.iter().map(|&d| (d, 1)).collect();
    let cycle: Vec<u16> = (0..p.phases as u16).collect();
    b.set_indirect_call(dispatch, callees, latch, IndirectSelect::Cyclic(cycle));
    b.set_cond(latch, dispatch, exit, CondBehavior::Loop { trip: TripCount::Fixed(1 << 30) });
    b.set_return(exit);
    b.finish().expect("phased program is structurally valid")
}

/// Seeds of the registered long-horizon workload (train ≠ ref, as the
/// suite requires).
const TRAIN_SEED: u64 = 7001;
const REF_SEED: u64 = 9103;

/// Name under which the long-horizon phased workload registers in the
/// suite (`--long`).
pub const LONG_NAME: &str = "phased";

/// Builds the registered long-horizon phased workload (both layouts +
/// training profile, like every suite member).
pub fn long_workload() -> Workload {
    Workload::from_cfg(LONG_NAME, generate(&PhasedParams::long(), 2026), TRAIN_SEED, REF_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayoutChoice;
    use sfetch_cfg::{layout, CodeImage};
    use sfetch_isa::BranchKind;
    use sfetch_trace::Executor;

    #[test]
    fn long_footprint_is_in_the_target_range() {
        let cfg = generate(&PhasedParams::long(), 1);
        let img = CodeImage::build(&cfg, &layout::natural(&cfg));
        let bytes = img.code_bytes();
        assert!(
            (128 << 10..=1 << 20).contains(&bytes),
            "footprint {bytes} outside 128KB..1MB"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&PhasedParams::small(), 5);
        let b = generate(&PhasedParams::small(), 5);
        assert_eq!(a.num_blocks(), b.num_blocks());
        let ia = CodeImage::build(&a, &layout::natural(&a));
        let ib = CodeImage::build(&b, &layout::natural(&b));
        let ta: Vec<_> = Executor::from_image(&ia, 3).take(20_000).collect();
        let tb: Vec<_> = Executor::from_image(&ib, 3).take(20_000).collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn phases_rotate_through_distinct_hot_sets() {
        // Observe the dispatch indirect call's targets over time: the
        // cyclic selector must visit all `phases` drivers in rotation.
        let p = PhasedParams::small();
        let cfg = generate(&p, 9);
        let img = CodeImage::build(&cfg, &layout::natural(&cfg));
        let mut driver_entries = Vec::new();
        let mut depth0_calls = 0;
        let mut depth = 0usize;
        for d in Executor::from_image(&img, 4).take(500_000) {
            if let Some(c) = d.control {
                match c.kind {
                    BranchKind::IndirectCall if depth == 0 => {
                        driver_entries.push(c.target);
                        depth0_calls += 1;
                        depth += 1;
                        if depth0_calls >= 8 {
                            break;
                        }
                    }
                    BranchKind::Call | BranchKind::IndirectCall => depth += 1,
                    BranchKind::Return => depth = depth.saturating_sub(1),
                    _ => {}
                }
            }
        }
        assert!(driver_entries.len() >= 4, "saw {} phase dispatches", driver_entries.len());
        let mut uniq = driver_entries.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), p.phases, "dispatch rotates through all drivers");
        // Rotation order repeats with period `phases`.
        for (i, t) in driver_entries.iter().enumerate().skip(p.phases) {
            assert_eq!(*t, driver_entries[i - p.phases], "cyclic dispatch");
        }
    }

    #[test]
    fn phase_residency_is_long() {
        // Between two consecutive top-level dispatches, the driver runs
        // its whole hot set `phase_iters` times — tens of thousands of
        // instructions even in the small configuration.
        let p = PhasedParams::small();
        let cfg = generate(&p, 9);
        let img = CodeImage::build(&cfg, &layout::natural(&cfg));
        let mut last_dispatch = None;
        let mut residencies = Vec::new();
        let mut depth = 0usize;
        for d in Executor::from_image(&img, 4).take(2_000_000) {
            if let Some(c) = d.control {
                match c.kind {
                    BranchKind::IndirectCall if depth == 0 => {
                        if let Some(prev) = last_dispatch {
                            residencies.push(d.seq - prev);
                        }
                        last_dispatch = Some(d.seq);
                        depth += 1;
                        if residencies.len() >= 3 {
                            break;
                        }
                    }
                    BranchKind::Call | BranchKind::IndirectCall => depth += 1,
                    BranchKind::Return => depth = depth.saturating_sub(1),
                    _ => {}
                }
            }
        }
        assert!(residencies.len() >= 2, "too few residencies observed");
        for r in &residencies {
            assert!(*r > 10_000, "phase residency {r} too short");
        }
    }

    #[test]
    fn long_workload_builds_and_registers() {
        let w = long_workload();
        assert_eq!(w.name(), LONG_NAME);
        assert!(w.image(LayoutChoice::Base).len_insts() > 0);
        assert!(w.image(LayoutChoice::Optimized).len_insts() > 0);
        assert_ne!(TRAIN_SEED, REF_SEED);
    }
}
